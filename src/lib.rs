//! # sizel — Size-l Object Summaries for Relational Keyword Search
//!
//! A from-scratch reproduction of Fakas, Cai & Mamoulis, *"Size-l Object
//! Summaries for Relational Keyword Search"*, PVLDB 5(3), 2011.
//!
//! A keyword query names a *Data Subject* (e.g. an author); the system
//! answers with **Object Summaries** — trees of joining tuples rooted at
//! the matching tuple — cut down to the **size-l** subtree of maximum
//! importance, like a web-search snippet for a database (Examples 1-5 of
//! the paper).
//!
//! ```
//! use sizel::{build_dblp_engine, DblpConfig, GaPreset};
//!
//! let engine = build_dblp_engine(&DblpConfig::small(), GaPreset::Ga1, 0.85);
//! // Q1 of the paper: one summary per Faloutsos brother, 15 tuples each.
//! let results = engine.query("Faloutsos", 15);
//! assert_eq!(results.len(), 3);
//! for r in &results {
//!     assert_eq!(r.summary.len(), 15);
//!     println!("{}", engine.render(r, &sizel::RenderOptions::default()));
//! }
//! ```
//!
//! The workspace crates are re-exported here; see `DESIGN.md` for the
//! paper-to-module map and `EXPERIMENTS.md` for the reproduction results.

pub use sizel_cluster::{
    ClusterConfig, ClusterError, ClusterRouter, ClusterStats, RefreshConfig, RefreshStats,
};
pub use sizel_core::algo::{
    AlgoKind, BottomUp, BruteForce, DpKnapsack, DpNaive, SizeLAlgorithm, SizeLResult, TopPath,
    TopPathOpt, WordBudgetDp,
};
pub use sizel_core::durability::{DiskTierConfig, DiskTierStats, RecoveryReport};
pub use sizel_core::engine::{
    EngineConfig, Mutation, QueryOptions, QueryResult, RefreshPolicy, ResultRanking, SizeLEngine,
};
pub use sizel_core::eval::{
    approximation_ratio, consecutive_optima_similarity, effectiveness, snippet_selection,
    tuple_effectiveness, EvaluatorPanel,
};
pub use sizel_core::keyword::KeywordIndex;
pub use sizel_core::os::{Os, OsArenaPool, OsNode, OsNodeId};
pub use sizel_core::osgen::{generate_os, generate_os_pooled, OsContext, OsSource};
pub use sizel_core::prelim::{generate_prelim, generate_prelim_pooled, PrelimStats};
pub use sizel_core::render::{render_os, RenderOptions};
pub use sizel_datagen::dblp::{Dblp, DblpConfig, FamousAuthorSpec};
pub use sizel_datagen::tpch::{Tpch, TpchConfig};
pub use sizel_disk::{
    BlockCache, CacheSnapshot, DiskError, PagedStore, SegmentFile, SegmentWriter, StoreStats, Wal,
    WalReplay,
};
pub use sizel_graph::{
    presets as gds_presets, AffinityModel, DataGraph, Gds, GdsConfig, SchemaGraph,
};
pub use sizel_net::{
    protocol_reference_table, BusyReason, NetClient, NetConfig, NetCounters, NetServer, Opcode,
    Reply, WireResult,
};
pub use sizel_serve::{
    CacheStats, HotKey, ServeConfig, ServerStats, SharedResult, SizeLServer, SummaryKey,
};

pub use sizel_rank::{
    dblp_ga, install_importance_order, tpch_ga, AuthorityGraph, GaPreset, RankConfig, RankScores,
    D1, D2, D3,
};
pub use sizel_storage::{
    Database, Epoch, FkOrderToken, StorageError, TableSchema, TupleRef, Value, ValueType,
};

/// Builds a ready-to-query engine over a synthetic DBLP database, with
/// Author and Paper as DS relations and the paper's GDS presets
/// (Figure 2 / Section 6.2).
pub fn build_dblp_engine(cfg: &DblpConfig, preset: GaPreset, damping: f64) -> SizeLEngine {
    let d = sizel_datagen::dblp::generate(cfg);
    SizeLEngine::build(
        d.db,
        move |db, sg, dg| sizel_rank::dblp_ga(preset, db, sg, dg),
        EngineConfig {
            rank: RankConfig::with_damping(damping),
            ..EngineConfig::new(vec![
                ("Author".into(), gds_presets::dblp_author_gds_config()),
                ("Paper".into(), gds_presets::dblp_paper_gds_config()),
            ])
        },
    )
    .expect("generated DBLP databases are FK-consistent")
}

/// Builds a ready-to-query engine over a synthetic TPC-H database, with
/// Customer and Supplier as DS relations and the paper's GDS presets
/// (Figure 12 / Section 6).
pub fn build_tpch_engine(cfg: &TpchConfig, preset: GaPreset, damping: f64) -> SizeLEngine {
    let t = sizel_datagen::tpch::generate(cfg);
    SizeLEngine::build(
        t.db,
        move |db, sg, dg| sizel_rank::tpch_ga(preset, db, sg, dg),
        EngineConfig {
            rank: RankConfig::with_damping(damping),
            ..EngineConfig::new(vec![
                ("Customer".into(), gds_presets::tpch_customer_gds_config()),
                ("Supplier".into(), gds_presets::tpch_supplier_gds_config()),
            ])
        },
    )
    .expect("generated TPC-H databases are FK-consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dblp_engine_builds_and_serves() {
        let e = build_dblp_engine(&DblpConfig::tiny(), GaPreset::Ga1, D1);
        // tiny has no famous authors; query a generated name token instead.
        let any_author = e.db().table(e.db().table_id("Author").unwrap());
        let name = any_author.value(sizel_storage::RowId(0), 1).as_str().unwrap().to_owned();
        let first = name.split(' ').next().unwrap();
        let results = e.query(first, 5);
        assert!(!results.is_empty());
        assert!(results[0].result.len() <= 5);
    }

    #[test]
    fn tpch_engine_builds_and_serves() {
        let e = build_tpch_engine(&TpchConfig::tiny(), GaPreset::Ga1, D1);
        let customers = e.db().table(e.db().table_id("Customer").unwrap());
        let name = customers.value(sizel_storage::RowId(0), 1).as_str().unwrap().to_owned();
        let results = e.query(&name, 10);
        assert_eq!(results.len(), 1);
        assert!(results[0].summary.len() <= 10);
    }
}
