//! A sharded LRU cache for memoized query results.
//!
//! Lock contention, not capacity, is the scaling hazard of a single shared
//! cache behind a worker pool: every hit mutates recency state, so even
//! reads need exclusive access. The cache is therefore split into shards,
//! each its own `Mutex`-guarded LRU, with keys assigned by hash — threads
//! touching different keys almost never contend. Each shard is a classic
//! O(1) LRU: a slab of entries threaded onto an intrusive doubly-linked
//! recency list, plus a `HashMap` from key to slab slot.
//!
//! Hit / miss / eviction / insertion counters are shared across shards and
//! atomically updated so the server can report one aggregate view.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Aggregate counters, shared by every shard of one cache.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    probe_misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    insertions: AtomicU64,
    poison_resets: AtomicU64,
}

/// A point-in-time view of a cache's counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Failed [`ShardedCache::probe`] lookups — the network layer's
    /// probe-then-recompute fast path counts its failed probe here
    /// instead of under [`CacheStats::misses`], because the very same
    /// request then misses again on the authoritative queued path.
    /// Folding both into `misses` double-counted every fast-path miss
    /// and skewed the hit ratio down under inline traffic.
    pub probe_misses: u64,
    /// Entries displaced to make room at capacity — *capacity pressure*
    /// only. Entries purged by [`ShardedCache::retain`] (epoch
    /// invalidation) count as [`CacheStats::invalidations`] instead:
    /// conflating the two made eviction counters look like thrashing
    /// after every write, which is exactly the signal a capacity-sizing
    /// decision must not be polluted by.
    pub evictions: u64,
    /// Entries dropped by [`ShardedCache::retain`] (write-through epoch
    /// invalidation) plus entries lost to a poison reset.
    pub invalidations: u64,
    /// Entries written (first writes and overwrites alike).
    pub insertions: u64,
    /// Shards reset after a panic poisoned their lock (see
    /// [`ShardedCache::get`]'s recovery path); each reset drops that
    /// shard's entries, counted under `invalidations`.
    pub poison_resets: u64,
    /// Live entries across all shards.
    pub len: usize,
    /// Maximum live entries across all shards.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit ratio over all *authoritative* lookups (0 when none
    /// happened). Probe misses are excluded: their requests re-arrive
    /// through [`ShardedCache::get`], which records the authoritative
    /// outcome.
    pub fn hit_ratio(self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    /// `None` only while the slot sits on the free list — evicted and
    /// retained-away values are dropped *immediately* (the whole point of
    /// the write-through purge is to release superseded summaries), not
    /// parked until the slot is reused.
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// One shard: an O(1) LRU over a slab + intrusive recency list.
#[derive(Debug)]
struct LruShard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot — the eviction victim.
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Drops every entry and restores the empty-shard invariants.
    /// Returns how many live entries were lost. This is the poison
    /// recovery path: a panic mid-operation can leave the recency list
    /// half-relinked, and a cache is the one structure where "throw the
    /// contents away" is always a correct repair.
    fn reset(&mut self) -> usize {
        let dropped = self.map.len();
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        dropped
    }

    /// Unlinks `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Links `slot` at the head (most recently used).
    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slots[h].prev = slot,
        }
        self.head = slot;
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let slot = *self.map.get(key)?;
        if slot != self.head {
            self.unlink(slot);
            self.link_front(slot);
        }
        debug_assert!(self.slots[slot].value.is_some(), "mapped slots always hold a value");
        self.slots[slot].value.clone()
    }

    /// Inserts or overwrites; returns true when an eviction made room.
    fn insert(&mut self, key: K, value: V) -> bool {
        debug_assert!(self.capacity > 0, "zero-capacity shards reject inserts upstream");
        match self.map.entry(key.clone()) {
            MapEntry::Occupied(e) => {
                let slot = *e.get();
                self.slots[slot].value = Some(value);
                if slot != self.head {
                    self.unlink(slot);
                    self.link_front(slot);
                }
                false
            }
            MapEntry::Vacant(_) => {
                let evicted = if self.map.len() >= self.capacity {
                    let victim = self.tail;
                    self.unlink(victim);
                    self.map.remove(&self.slots[victim].key);
                    self.slots[victim].value = None; // drop now, not at reuse
                    self.free.push(victim);
                    true
                } else {
                    false
                };
                let slot = match self.free.pop() {
                    Some(s) => {
                        self.slots[s] =
                            Slot { key: key.clone(), value: Some(value), prev: NIL, next: NIL };
                        s
                    }
                    None => {
                        self.slots.push(Slot {
                            key: key.clone(),
                            value: Some(value),
                            prev: NIL,
                            next: NIL,
                        });
                        self.slots.len() - 1
                    }
                };
                self.map.insert(key, slot);
                self.link_front(slot);
                evicted
            }
        }
    }
}

/// The sharded cache. `capacity = 0` disables it: every lookup misses, no
/// entry is stored (used by benches to measure the uncached baseline).
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    hasher: RandomState,
    counters: CacheCounters,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache of `capacity` total entries spread over `shards` shards
    /// (shard count is clamped to at least 1 and at most `capacity`).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let n_shards = shards.clamp(1, capacity.max(1));
        // Ceiling split so shard capacities sum to >= capacity and every
        // shard holds at least one entry.
        let per_shard = if capacity == 0 { 0 } else { capacity.div_ceil(n_shards) };
        ShardedCache {
            shards: (0..n_shards).map(|_| Mutex::new(LruShard::new(per_shard))).collect(),
            hasher: RandomState::new(),
            counters: CacheCounters::default(),
            capacity: per_shard * n_shards,
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Locks one shard, recovering from a poisoned lock by resetting the
    /// shard instead of cascading the panic.
    ///
    /// A panic while a shard lock is held (a worker dying mid-`get`, a
    /// value whose `Clone`/`Drop` panics) used to poison the lock and
    /// turn every subsequent cache call into a panic — one bad request
    /// taking the whole serving stack down. The intrusive recency list
    /// *can* be torn mid-relink, so unlike the queue the state is not
    /// trustworthy: recovery drops the shard's entries (this is a cache;
    /// losing entries is always correct) and restores the empty-shard
    /// invariants. Lost entries count as invalidations, the reset itself
    /// under [`CacheStats::poison_resets`].
    fn lock_shard<'a>(&self, shard: &'a Mutex<LruShard<K, V>>) -> MutexGuard<'a, LruShard<K, V>> {
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                shard.clear_poison();
                let mut guard = poisoned.into_inner();
                let dropped = guard.reset();
                self.counters.poison_resets.fetch_add(1, Ordering::Relaxed);
                self.counters.invalidations.fetch_add(dropped as u64, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        if self.capacity == 0 {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self.lock_shard(self.shard_of(key)).get(key);
        match found {
            Some(v) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Probe-only lookup: identical to [`ShardedCache::get`] except a
    /// failure counts under [`CacheStats::probe_misses`], not
    /// [`CacheStats::misses`]. For opportunistic fast paths whose miss
    /// is immediately retried through the authoritative path (which
    /// records the real miss) — a hit is a hit either way, but counting
    /// the probe's failure as a second miss double-counted the request.
    pub fn probe(&self, key: &K) -> Option<V> {
        if self.capacity == 0 {
            self.counters.probe_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self.lock_shard(self.shard_of(key)).get(key);
        match found {
            Some(v) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.counters.probe_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `key -> value`, evicting the shard's least recently used
    /// entry at capacity. A no-op on a disabled (zero-capacity) cache.
    pub fn insert(&self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let evicted = self.lock_shard(self.shard_of(&key)).insert(key, value);
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every entry whose key fails the predicate — the write-through
    /// invalidation hook: after a mutation bumps the epoch, the server
    /// retains only current-epoch entries, so superseded summaries free
    /// their memory immediately instead of aging out of the LRU. Dropped
    /// entries count as **invalidations**, not evictions: they were
    /// purged because their epoch is dead, not because the cache ran out
    /// of room, and folding them into the eviction counter made every
    /// write look like capacity thrashing.
    pub fn retain(&self, keep: impl Fn(&K) -> bool) {
        for shard in &self.shards {
            let mut s = self.lock_shard(shard);
            let doomed: Vec<K> = s.map.keys().filter(|k| !keep(k)).cloned().collect();
            for key in doomed {
                let slot = s.map.remove(&key).expect("key listed from this shard");
                s.unlink(slot);
                s.slots[slot].value = None; // release the summary now
                s.free.push(slot);
                self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock_shard(s).map.len()).sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent-enough snapshot of the counters plus occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            probe_misses: self.counters.probe_misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            invalidations: self.counters.invalidations.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            poison_resets: self.counters.poison_resets.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_misses_count_separately_from_authoritative_misses() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(4, 1);
        assert_eq!(c.probe(&1), None, "cold probe");
        assert_eq!(c.get(&1), None, "the authoritative retry records the real miss");
        c.insert(1, 10);
        assert_eq!(c.probe(&1), Some(10), "a probe hit is a plain hit");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.probe_misses), (1, 1, 1));
        let ratio = s.hit_ratio();
        assert!((ratio - 0.5).abs() < 1e-12, "probe misses stay out of the ratio: {ratio}");

        // A disabled cache still tells the two apart.
        let off: ShardedCache<u32, u32> = ShardedCache::new(0, 1);
        off.probe(&1);
        off.get(&1);
        let s = off.stats();
        assert_eq!((s.misses, s.probe_misses), (1, 1));
    }

    #[test]
    fn hit_after_miss() {
        let c: ShardedCache<u32, String> = ShardedCache::new(8, 2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used_in_order() {
        // Single shard so the recency order is fully observable.
        let c: ShardedCache<u32, u32> = ShardedCache::new(3, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(&1), Some(10));
        c.insert(4, 40);
        assert_eq!(c.get(&2), None, "LRU entry evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.get(&4), Some(40));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn overwrite_refreshes_without_eviction() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // overwrite, no eviction
        assert_eq!(c.stats().evictions, 0);
        c.insert(3, 30); // 2 is now the LRU
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(0, 4);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.capacity(), 0);
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn capacity_bound_holds_under_churn() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(16, 4);
        for i in 0..1000u64 {
            c.insert(i, i);
            let _ = c.get(&(i / 2));
        }
        assert!(c.len() <= c.capacity(), "{} > {}", c.len(), c.capacity());
        let s = c.stats();
        assert_eq!(s.insertions, 1000);
        assert!(s.evictions >= 1000 - s.capacity as u64);
    }

    #[test]
    fn retain_drops_only_failing_keys() {
        // Capacity 64 over 4 shards = 16 per shard: 10 keys cannot
        // overflow any shard whatever the (randomized) key hashing does,
        // so the only purges observable below come from `retain`.
        let c: ShardedCache<u32, u32> = ShardedCache::new(64, 4);
        for i in 0..10u32 {
            c.insert(i, i * 10);
        }
        c.retain(|&k| k % 2 == 0);
        for i in 0..10u32 {
            let want = (i % 2 == 0).then_some(i * 10);
            assert_eq!(c.get(&i), want, "key {i}");
        }
        assert_eq!(c.len(), 5);
        let s = c.stats();
        assert_eq!(s.invalidations, 5, "retain purges are invalidations");
        assert_eq!(s.evictions, 0, "an epoch purge is not capacity pressure");
        // The freed slots are reusable and the LRU stays coherent.
        for i in 10..30u32 {
            c.insert(i, i);
        }
        assert!(c.len() <= c.capacity());
    }

    #[test]
    fn retain_purges_never_masquerade_as_evictions_under_capacity_churn() {
        // Mixed regime: real capacity evictions AND a retain purge. The
        // two counters must stay independent — a monitoring/cache-sizing
        // decision reads `evictions` as "make it bigger" and
        // `invalidations` as "writes happened", and the old conflated
        // counter pointed the wrong way after every mutation.
        let c: ShardedCache<u32, u32> = ShardedCache::new(4, 1);
        for i in 0..8u32 {
            c.insert(i, i);
        }
        let evicted_by_capacity = c.stats().evictions;
        assert_eq!(evicted_by_capacity, 4, "8 inserts into 4 slots evict 4");
        assert_eq!(c.stats().invalidations, 0);
        c.retain(|_| false); // epoch purge: everything is stale
        let s = c.stats();
        assert_eq!(s.evictions, evicted_by_capacity, "the purge left evictions untouched");
        assert_eq!(s.invalidations, 4, "the 4 live entries were invalidated");
        assert_eq!(c.len(), 0);
    }

    /// A value whose clone panics on demand: the realistic poison vector
    /// for the cache, whose shard lock is held across `V::clone` in
    /// `get` and across value drops in `insert`/`retain`.
    #[derive(Debug)]
    struct Grenade(std::sync::Arc<std::sync::atomic::AtomicBool>);

    impl Clone for Grenade {
        fn clone(&self) -> Self {
            if self.0.load(Ordering::Relaxed) {
                panic!("deliberate clone panic while the shard lock is held");
            }
            Grenade(std::sync::Arc::clone(&self.0))
        }
    }

    #[test]
    fn poisoned_shard_resets_instead_of_cascading() {
        let armed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let c: std::sync::Arc<ShardedCache<u32, Grenade>> =
            std::sync::Arc::new(ShardedCache::new(8, 1));
        c.insert(1, Grenade(std::sync::Arc::clone(&armed)));
        c.insert(2, Grenade(std::sync::Arc::clone(&armed)));
        // One bad request: a get whose value clone panics mid-lock.
        armed.store(true, Ordering::Relaxed);
        let c2 = std::sync::Arc::clone(&c);
        let crash = std::thread::spawn(move || c2.get(&1));
        assert!(crash.join().is_err(), "the bad request itself still panics");
        armed.store(false, Ordering::Relaxed);
        // Every other client keeps working: the shard reset, its entries
        // were invalidated, and fresh traffic flows through it.
        assert_eq!(c.get(&2).map(|_| ()), None, "reset dropped the shard's entries");
        c.insert(3, Grenade(std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false))));
        assert!(c.get(&3).is_some(), "the shard serves again after recovery");
        let s = c.stats();
        assert_eq!(s.poison_resets, 1);
        assert!(s.invalidations >= 2, "the lost entries are accounted, got {}", s.invalidations);
        c.retain(|_| true); // the repaired recency list survives a sweep
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn hit_ratio_math() {
        let s = CacheStats { hits: 3, misses: 1, ..CacheStats::default() };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = std::sync::Arc::new(ShardedCache::<u64, u64>::new(64, 8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let k = (t * 131 + i) % 100;
                    if let Some(v) = c.get(&k) {
                        assert_eq!(v, k, "a key must only ever map to its own value");
                    } else {
                        c.insert(k, k);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= c.capacity());
    }
}
