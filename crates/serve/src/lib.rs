//! # sizel-serve — the concurrent serving layer
//!
//! [`SizeLEngine`]'s query paths take `&self` with all shared mutation
//! through atomics (the storage access counters), so one engine is safely
//! shareable across threads; its *write* path ([`SizeLEngine::apply`])
//! takes `&mut self`. The server therefore holds the engine behind an
//! `Arc<RwLock>` — many concurrent readers, one writer per mutation:
//!
//! * [`SizeLServer`] runs a fixed pool of worker threads pulling jobs
//!   from a *bounded* submission queue ([`queue::BoundedQueue`]), so
//!   heavy traffic exerts backpressure instead of growing an unbounded
//!   backlog. Each job holds a read lock for exactly one query.
//! * A sharded LRU cache ([`cache::ShardedCache`]) memoizes the per-DS
//!   summary computation across queries, keyed on
//!   `(epoch, t_DS, l, algo, prelim, source)` — the engine's mutation
//!   epoch plus the exact argument tuple [`SizeLEngine::summarize`] is a
//!   pure function of. Repeated keyword queries over a slowly-changing
//!   ranking re-hit the same `t_DS` tuples (the continual/top-k
//!   workload), so summary reuse dominates end-to-end latency.
//! * [`SizeLServer::apply`] is the write path: it takes the write lock,
//!   applies the [`Mutation`] (bumping the epoch), and retains only
//!   current-epoch cache entries. Because every lookup and insert is
//!   keyed by the epoch *read under the same lock as the computation*, a
//!   summary computed against superseded data can never be served — the
//!   epoch in its key no longer matches any future lookup (proven by
//!   `tests/epoch_equivalence.rs`).
//! * [`SizeLServer::batch_query`] amortizes keyword-index lookups across a
//!   batch: duplicate `(keywords, options)` requests are resolved with one
//!   index probe and one summary computation, then fanned back out.
//!
//! Results are returned as `Arc<QueryResult>` so a cache hit shares the
//! materialized size-l OS instead of deep-copying it per request. The
//! equivalence guarantee — server output byte-identical to the sequential
//! engine — is enforced by `tests/stress.rs` (read-only) and
//! `tests/epoch_equivalence.rs` (interleaved insert/query streams).

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;

use sizel_core::algo::AlgoKind;
pub use sizel_core::durability::{DiskTierConfig, DiskTierStats, RecoveryReport};
use sizel_core::engine::{QueryOptions, QueryResult, ResultRanking, SizeLEngine};
use sizel_core::osgen::OsSource;
use sizel_storage::{Epoch, StorageError, TupleRef};

pub mod cache;
pub mod hotness;
pub mod queue;

pub use cache::{CacheStats, ShardedCache};
pub use hotness::HotSketch;
pub use queue::{BoundedQueue, TryPushError};
pub use sizel_core::engine::{Mutation, MutationOp, RefreshPolicy};

/// The cache key: the engine's mutation epoch plus everything
/// [`SizeLEngine::summarize`] depends on. `ranking` is deliberately
/// excluded — it only reorders whole result lists and must never fragment
/// the cache (a hit for `(algo, prelim)` under one ranking is
/// byte-identical under the other). The epoch is first: a mutation makes
/// every prior entry unreachable by key, which is the staleness proof.
pub type SummaryKey = (Epoch, TupleRef, usize, AlgoKind, bool, OsSource);

/// The *epoch-less* summary key tracked by the hotness sketch: hotness
/// must survive mutations (the whole point of proactive re-warming is to
/// recompute exactly these keys at the **new** epoch before a reader
/// does), so the epoch stays out.
pub type HotKey = (TupleRef, usize, AlgoKind, bool, OsSource);

/// A cached, shareable query result.
pub type SharedResult = Arc<QueryResult>;

fn summary_key(epoch: Epoch, tds: TupleRef, opts: QueryOptions) -> SummaryKey {
    (epoch, tds, opts.l, opts.algo, opts.prelim, opts.source)
}

fn hot_key(tds: TupleRef, opts: QueryOptions) -> HotKey {
    (tds, opts.l, opts.algo, opts.prelim, opts.source)
}

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Bounded submission-queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Total cached summaries across all shards; 0 disables caching.
    pub cache_capacity: usize,
    /// Cache shard count (clamped to `[1, cache_capacity]`).
    pub cache_shards: usize,
    /// Hot-key sketch budget (tracked summary keys for proactive
    /// re-warming; 0 disables hotness tracking).
    pub hot_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4);
        ServeConfig {
            workers: cores,
            queue_capacity: 1024,
            cache_capacity: 4096,
            cache_shards: 16,
            hot_capacity: 128,
        }
    }
}

impl ServeConfig {
    /// A config with `workers` threads and default everything else.
    pub fn with_workers(workers: usize) -> Self {
        ServeConfig { workers, ..ServeConfig::default() }
    }
}

/// Point-in-time server health: cache counters plus served-query totals.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// The summary cache's counters.
    pub cache: CacheStats,
    /// Queries fully served (one per submitted job).
    pub queries_served: u64,
    /// Per-DS summaries computed (cache misses that did real work).
    pub summaries_computed: u64,
    /// Mutations applied through [`SizeLServer::apply`] /
    /// [`SizeLServer::apply_batch`].
    pub mutations_applied: u64,
    /// Cache entries proactively recomputed by
    /// [`SizeLServer::rewarm_hottest`].
    pub rewarmed: u64,
    /// Disk-tier statistics when one is attached
    /// ([`SizeLServer::attach_disk`]): block-cache counters, segment
    /// generation, WAL size.
    pub disk: Option<DiskTierStats>,
}

/// What one pool job computes: a whole keyword query, or a single
/// `(t_DS, options)` summary (the unit a cluster router fans out after
/// resolving the keyword lookup itself).
enum Work {
    Query { keywords: String },
    Summarize { tds: TupleRef },
}

/// One unit of work for the pool plus its reply slot. `seq` restores
/// submission order on the collecting side.
struct Job {
    work: Work,
    opts: QueryOptions,
    seq: usize,
    reply: mpsc::Sender<(usize, Vec<SharedResult>)>,
}

/// A shared epoch-versioned engine behind a worker pool with summary
/// caching and a write-through mutation path.
///
/// Dropping the server closes the queue, drains the backlog, and joins
/// every worker.
pub struct SizeLServer {
    engine: Arc<RwLock<SizeLEngine>>,
    cache: Arc<ShardedCache<SummaryKey, SharedResult>>,
    hot: Arc<HotSketch<HotKey>>,
    jobs: Arc<BoundedQueue<Job>>,
    queries_served: Arc<AtomicU64>,
    summaries_computed: Arc<AtomicU64>,
    mutations_applied: AtomicU64,
    rewarmed: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

impl SizeLServer {
    /// Spawns the worker pool over an engine the server takes ownership
    /// of. Use [`SizeLServer::from_shared`] to share one engine between a
    /// server and other readers.
    pub fn new(engine: SizeLEngine, cfg: ServeConfig) -> Self {
        SizeLServer::from_shared(Arc::new(RwLock::new(engine)), cfg)
    }

    /// Spawns the worker pool over a shared, lock-wrapped engine.
    pub fn from_shared(engine: Arc<RwLock<SizeLEngine>>, cfg: ServeConfig) -> Self {
        let cache = Arc::new(ShardedCache::new(cfg.cache_capacity, cfg.cache_shards));
        let hot = Arc::new(HotSketch::new(cfg.hot_capacity));
        let jobs: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let queries_served = Arc::new(AtomicU64::new(0));
        let summaries_computed = Arc::new(AtomicU64::new(0));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let engine = Arc::clone(&engine);
                let cache = Arc::clone(&cache);
                let hot = Arc::clone(&hot);
                let jobs = Arc::clone(&jobs);
                let served = Arc::clone(&queries_served);
                let computed = Arc::clone(&summaries_computed);
                std::thread::Builder::new()
                    .name(format!("sizel-serve-{i}"))
                    .spawn(move || {
                        while let Some(job) = jobs.pop() {
                            // A panic while serving one query must not kill
                            // the worker: queued jobs would strand and their
                            // clients block forever. Catch it, drop the
                            // reply sender (the submitter sees a recv error
                            // naming the panic), keep serving. Read guards
                            // never poison the lock.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let engine =
                                        engine.read().expect("a mutation panicked mid-apply");
                                    match &job.work {
                                        Work::Query { keywords } => run_query(
                                            &engine, &cache, &hot, &computed, keywords, job.opts,
                                        ),
                                        Work::Summarize { tds } => {
                                            let epoch = engine.epoch();
                                            vec![summarize_cached(
                                                &engine, &cache, &hot, &computed, epoch, *tds,
                                                job.opts,
                                            )]
                                        }
                                    }
                                }));
                            if let Ok(results) = outcome {
                                // Per-DS Summarize jobs are fan-out units
                                // of someone else's query, not queries —
                                // they must not inflate `queries_served`.
                                if matches!(job.work, Work::Query { .. }) {
                                    served.fetch_add(1, Ordering::Relaxed);
                                }
                                // The submitter may have given up (dropped
                                // the receiver); that is not a worker error.
                                let _ = job.reply.send((job.seq, results));
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        SizeLServer {
            engine,
            cache,
            hot,
            jobs,
            queries_served,
            summaries_computed,
            mutations_applied: AtomicU64::new(0),
            rewarmed: AtomicU64::new(0),
            workers,
        }
    }

    /// Read access to the shared engine (many readers may coexist with
    /// the worker pool; held guards block [`SizeLServer::apply`]).
    pub fn engine(&self) -> RwLockReadGuard<'_, SizeLEngine> {
        self.engine.read().expect("a mutation panicked mid-apply")
    }

    /// The engine's current mutation epoch.
    pub fn epoch(&self) -> Epoch {
        self.engine().epoch()
    }

    /// Non-blocking read access to the shared engine: `None` when a
    /// writer holds (or is poisoned on) the lock. The network layer's
    /// inline fast path probes through this — it must *never* wait on
    /// the I/O thread, and a poisoned lock falls back to the dispatch
    /// queue where the panic surfaces properly.
    pub fn try_engine(&self) -> Option<RwLockReadGuard<'_, SizeLEngine>> {
        self.engine.try_read().ok()
    }

    /// Cache-probe-only summarize: returns the cached summary for
    /// `(tds, opts)` at the engine's **current** epoch, or `None` when
    /// anything at all would require waiting or computing — writer
    /// contention on the engine lock, or a cache miss. Never blocks,
    /// never computes; the serving-path staleness proof carries over
    /// verbatim because the epoch is read under the same (try-acquired)
    /// read guard used for the probe.
    ///
    /// A hit feeds the hotness sketch exactly like the pooled path. A
    /// miss goes through [`ShardedCache::probe`], which records it under
    /// [`CacheStats::probe_misses`] rather than `misses` — the caller
    /// falls back to the dispatch queue, whose `summarize_cached`
    /// records the authoritative miss for the same request (counting
    /// both as `misses` double-counted every fast-path miss).
    pub fn try_summarize_cached(
        &self,
        tds: TupleRef,
        opts: QueryOptions,
    ) -> Option<(Epoch, SharedResult)> {
        let engine = self.try_engine()?;
        let epoch = engine.epoch();
        let hit = self.cache.probe(&summary_key(epoch, tds, opts))?;
        self.hot.record(hot_key(tds, opts));
        Some((epoch, hit))
    }

    /// The write path: applies a [`Mutation`] under the write lock
    /// (quiescing the pool for its duration), then drops every cache
    /// entry of superseded epochs. Returns the new epoch.
    ///
    /// Staleness proof sketch: entries are keyed by the epoch read under
    /// the *same read lock* as their computation, and the epoch only
    /// advances under the write lock — so an entry's key epoch equals the
    /// epoch of the data it was computed from, and a lookup (which keys
    /// by the current epoch, again under a read lock) can only hit
    /// entries computed against current data. The retain pass here is
    /// purely for memory: unreachable entries are dropped eagerly instead
    /// of aging out of the LRU.
    pub fn apply(&self, m: Mutation) -> Result<Epoch, StorageError> {
        let mut engine = self.engine.write().expect("a mutation panicked mid-apply");
        let epoch = engine.apply(m)?;
        // Purge while still holding the write lock: no reader can insert a
        // fresh entry and no concurrent apply can advance the epoch until
        // it is released, so `epoch` is exactly the current version and
        // the retain can never evict another writer's current entries.
        self.cache.retain(|k| k.0 == epoch);
        drop(engine);
        self.mutations_applied.fetch_add(1, Ordering::Relaxed);
        Ok(epoch)
    }

    /// The batched write path: applies a whole [`Mutation`] batch under
    /// **one** write-lock acquisition via [`SizeLEngine::apply_batch`]
    /// (one `DataGraph` rebuild and one posting settlement per
    /// incremental run, where folding [`SizeLServer::apply`] pays both —
    /// plus a cache purge and a pool quiescence — per mutation), then
    /// retains only current-epoch cache entries once. Same staleness
    /// proof as [`SizeLServer::apply`]: the epoch advances under the
    /// write lock, so every surviving and future entry is keyed by
    /// current data. On error the engine keeps the fold's applied prefix
    /// (synchronized), the purge still runs, and the error is returned.
    pub fn apply_batch(&self, ms: Vec<Mutation>) -> Result<Epoch, StorageError> {
        let mut engine = self.engine.write().expect("a mutation panicked mid-apply");
        let before = engine.epoch();
        let outcome = engine.apply_batch(ms);
        let epoch = engine.epoch();
        self.cache.retain(|k| k.0 == epoch);
        drop(engine);
        // Count exactly the mutations that landed (the epoch advances
        // once per accepted insert), so error paths stay accurate.
        self.mutations_applied.fetch_add(epoch.get() - before.get(), Ordering::Relaxed);
        outcome.map(|_| epoch)
    }

    /// Runs one query through the pool, blocking for the result. Identical
    /// output to [`SizeLEngine::query_with`] on the same engine (modulo
    /// `Arc` wrapping) — the stress suite asserts this byte-for-byte.
    pub fn query(&self, keywords: &str, opts: QueryOptions) -> Vec<SharedResult> {
        let (tx, rx) = mpsc::channel();
        let job =
            Job { work: Work::Query { keywords: keywords.to_owned() }, opts, seq: 0, reply: tx };
        if self.jobs.push(job).is_err() {
            unreachable!("queue closes only in Drop, which takes &mut self");
        }
        let (_, results) =
            rx.recv().expect("worker panicked while serving this query (see its panic output)");
        results
    }

    /// Computes (or serves from cache) one `(t_DS, options)` summary
    /// through the pool — the per-DS unit a cluster router dispatches
    /// after resolving the keyword lookup itself. Byte-identical to
    /// [`SizeLEngine::summarize`] on the same engine (modulo `Arc`).
    pub fn summarize(&self, tds: TupleRef, opts: QueryOptions) -> SharedResult {
        self.summarize_batch(&[(tds, opts)]).pop().expect("one job yields one result")
    }

    /// Serves a whole batch of `(t_DS, options)` summaries concurrently
    /// through the pool, in submission order.
    pub fn summarize_batch(&self, items: &[(TupleRef, QueryOptions)]) -> Vec<SharedResult> {
        let (tx, rx) = mpsc::channel();
        for (i, &(tds, opts)) in items.iter().enumerate() {
            let job = Job { work: Work::Summarize { tds }, opts, seq: i, reply: tx.clone() };
            if self.jobs.push(job).is_err() {
                unreachable!("queue closes only in Drop, which takes &mut self");
            }
        }
        drop(tx);
        let mut slots: Vec<Option<SharedResult>> = vec![None; items.len()];
        for _ in 0..items.len() {
            let (seq, mut results) = rx
                .recv()
                .expect("worker panicked while serving a summary job (see its panic output)");
            slots[seq] = Some(results.pop().expect("summarize jobs yield exactly one result"));
        }
        slots.into_iter().map(|s| s.expect("every job was served")).collect()
    }

    /// Proactively recomputes up to `budget` of the hottest summary keys
    /// at the **current** epoch — the continual-refresh hook: called
    /// after a mutation purged the cache, it pays the cold recomputes
    /// before steady-state readers of those keys do. Keys already cached
    /// at the current epoch are skipped. Returns the number recomputed.
    ///
    /// Staleness remains impossible by construction: each key's
    /// recompute runs under a read guard and is keyed by the epoch read
    /// under that same guard — exactly the argument that covers
    /// demand-filled entries. The guard is taken *per key* (not across
    /// the whole budget) so a concurrent writer stalls for at most one
    /// summary computation, never the full refresh pass; a write landing
    /// mid-pass simply makes the remaining keys re-warm at the newer
    /// epoch, which is what the next refresh would have done anyway.
    pub fn rewarm_hottest(&self, budget: usize) -> usize {
        let keys = self.hot.hottest(budget);
        let mut warmed = 0usize;
        for hk in keys {
            let (tds, l, algo, prelim, source) = hk;
            let opts = QueryOptions { l, algo, prelim, source, ranking: ResultRanking::default() };
            let engine = self.engine.read().expect("a mutation panicked mid-apply");
            // Hot keys deliberately survive epoch bumps — but a key whose
            // subject row was deleted can never be served again at any
            // epoch. Forget it instead of re-warming a dead summary.
            if !engine.is_live(tds) {
                self.hot.forget(&hk);
                continue;
            }
            let key = summary_key(engine.epoch(), tds, opts);
            if self.cache.get(&key).is_none() {
                let computed: SharedResult = Arc::new(engine.summarize(tds, opts));
                self.cache.insert(key, computed);
                warmed += 1;
            }
        }
        self.rewarmed.fetch_add(warmed as u64, Ordering::Relaxed);
        warmed
    }

    /// [`SizeLServer::rewarm_hottest`] with the budget derived from the
    /// sketch's observed count skew instead of a fixed constant: the
    /// smallest ranked head covering 90% of lookup mass
    /// ([`HotSketch::mass_cover`]), clamped to `[1, cap]`. A zipf-shaped
    /// workload re-warms just its short hot head; a flat one spends the
    /// whole cap.
    pub fn rewarm_hottest_auto(&self, cap: usize) -> usize {
        let budget = self.hot.mass_cover(0.9).clamp(1, cap.max(1));
        self.rewarm_hottest(budget)
    }

    /// The up-to-`n` hottest summary keys observed by the sketch.
    pub fn hottest(&self, n: usize) -> Vec<HotKey> {
        self.hot.hottest(n)
    }

    /// Serves a whole batch concurrently, returning results in submission
    /// order. Duplicate `(keywords, options)` requests are served by a
    /// single keyword-index lookup + summary computation and fanned back
    /// out, amortizing the index work across the batch.
    pub fn batch_query(&self, requests: &[(String, QueryOptions)]) -> Vec<Vec<SharedResult>> {
        let mut first_of: HashMap<(&str, QueryOptions), usize> = HashMap::new();
        // duplicate_of[i] = index of the first identical request, if any.
        let duplicate_of: Vec<Option<usize>> = requests
            .iter()
            .enumerate()
            .map(|(i, (kw, opts))| match first_of.entry((kw.as_str(), *opts)) {
                std::collections::hash_map::Entry::Occupied(e) => Some(*e.get()),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(i);
                    None
                }
            })
            .collect();

        let (tx, rx) = mpsc::channel();
        let mut distinct = 0usize;
        for (i, (keywords, opts)) in requests.iter().enumerate() {
            if duplicate_of[i].is_some() {
                continue;
            }
            distinct += 1;
            let job = Job {
                work: Work::Query { keywords: keywords.clone() },
                opts: *opts,
                seq: i,
                reply: tx.clone(),
            };
            if self.jobs.push(job).is_err() {
                unreachable!("queue closes only in Drop, which takes &mut self");
            }
        }
        drop(tx);

        let mut slots: Vec<Option<Vec<SharedResult>>> = vec![None; requests.len()];
        for _ in 0..distinct {
            let (seq, results) = rx
                .recv()
                .expect("worker panicked while serving a batched query (see its panic output)");
            slots[seq] = Some(results);
        }
        (0..requests.len())
            .map(|i| {
                let src = duplicate_of[i].unwrap_or(i);
                slots[src].clone().expect("every distinct request was served")
            })
            .collect()
    }

    /// Attaches the engine's disk tier under the write lock (see
    /// [`SizeLEngine::attach_disk`]): opens the WAL, replays whatever a
    /// crashed predecessor committed, checkpoints and pages the
    /// configured tables. The replay may advance the epoch, so
    /// superseded cache entries are purged before the lock drops —
    /// the same discipline as [`SizeLServer::apply`].
    pub fn attach_disk(&self, cfg: DiskTierConfig) -> Result<RecoveryReport, StorageError> {
        let mut engine = self.engine.write().expect("a mutation panicked mid-apply");
        let report = engine.attach_disk(cfg)?;
        let epoch = engine.epoch();
        self.cache.retain(|k| k.0 == epoch);
        Ok(report)
    }

    /// Re-checkpoints the paged tables into a fresh segment generation
    /// under the write lock (see [`SizeLEngine::checkpoint_disk`]).
    /// Answers are unchanged, so the summary cache is kept.
    pub fn checkpoint_disk(&self) -> Result<u64, StorageError> {
        self.engine.write().expect("a mutation panicked mid-apply").checkpoint_disk()
    }

    /// Discards the write-ahead log (see [`SizeLEngine::truncate_wal`]
    /// for when that is safe).
    pub fn truncate_wal(&self) -> Result<(), StorageError> {
        self.engine.write().expect("a mutation panicked mid-apply").truncate_wal()
    }

    /// Aggregate cache and throughput counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            cache: self.cache.stats(),
            queries_served: self.queries_served.load(Ordering::Relaxed),
            summaries_computed: self.summaries_computed.load(Ordering::Relaxed),
            mutations_applied: self.mutations_applied.load(Ordering::Relaxed),
            rewarmed: self.rewarmed.load(Ordering::Relaxed),
            disk: self.engine.read().ok().and_then(|e| e.disk_stats()),
        }
    }

    /// Worker pool size.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently sitting in the submission queue (a live
    /// backpressure signal for front-ends and metrics exposition).
    pub fn queue_depth(&self) -> usize {
        self.jobs.len()
    }
}

impl Drop for SizeLServer {
    fn drop(&mut self) {
        self.jobs.close();
        for w in self.workers.drain(..) {
            // Per-job panics are caught in the worker loop, so join errors
            // should be impossible; if one happens anyway, re-raise it —
            // unless this drop is itself part of an unwind, where a second
            // panic would abort the process and eat both messages.
            if let Err(e) = w.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(e);
                }
            }
        }
    }
}

/// The worker-side query path: `ds_hits` + per-DS memoized `summarize` +
/// the optional result-list reorder — a faithful recomposition of
/// `SizeLEngine::query_with` with the per-DS unit routed through the cache.
///
/// Two workers missing the same key concurrently both compute it and both
/// insert; `summarize` is deterministic, so last-write-wins is benign.
fn run_query(
    engine: &SizeLEngine,
    cache: &ShardedCache<SummaryKey, SharedResult>,
    hot: &HotSketch<HotKey>,
    summaries_computed: &AtomicU64,
    keywords: &str,
    opts: QueryOptions,
) -> Vec<SharedResult> {
    // The epoch is read under the same lock as the whole computation, so
    // every entry inserted below is keyed by the exact version of the
    // data it was computed from.
    let epoch = engine.epoch();
    let mut results: Vec<SharedResult> = engine
        .ds_hits(keywords)
        .into_iter()
        .map(|tds| summarize_cached(engine, cache, hot, summaries_computed, epoch, tds, opts))
        .collect();
    if opts.ranking == ResultRanking::SummaryImportance {
        results.sort_by(|a, b| {
            b.result.importance.total_cmp(&a.result.importance).then(a.tds.cmp(&b.tds))
        });
    }
    results
}

/// The per-DS unit behind every serving path: hotness-recorded,
/// epoch-keyed, cache-memoized `summarize`.
fn summarize_cached(
    engine: &SizeLEngine,
    cache: &ShardedCache<SummaryKey, SharedResult>,
    hot: &HotSketch<HotKey>,
    summaries_computed: &AtomicU64,
    epoch: Epoch,
    tds: TupleRef,
    opts: QueryOptions,
) -> SharedResult {
    // Every lookup — hit or miss — feeds the hotness sketch: the refresh
    // worker wants "what readers ask for", which a hit-only signal would
    // starve right after each purge.
    hot.record(hot_key(tds, opts));
    let key = summary_key(epoch, tds, opts);
    cache.get(&key).unwrap_or_else(|| {
        let computed: SharedResult = Arc::new(engine.summarize(tds, opts));
        summaries_computed.fetch_add(1, Ordering::Relaxed);
        cache.insert(key, Arc::clone(&computed));
        computed
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SizeLServer>();
        assert_send_sync::<ShardedCache<SummaryKey, SharedResult>>();
        assert_send_sync::<BoundedQueue<Job>>();
    }

    #[test]
    fn summary_key_ignores_ranking_but_not_the_epoch() {
        let tds = TupleRef::new(sizel_storage::TableId(0), sizel_storage::RowId(0));
        let a = QueryOptions { ranking: ResultRanking::DsGlobalImportance, ..test_opts() };
        let b = QueryOptions { ranking: ResultRanking::SummaryImportance, ..test_opts() };
        assert_eq!(summary_key(Epoch(3), tds, a), summary_key(Epoch(3), tds, b));
        assert_ne!(
            summary_key(Epoch(3), tds, a),
            summary_key(Epoch(4), tds, a),
            "a mutation makes every prior key unreachable"
        );
    }

    fn test_opts() -> QueryOptions {
        QueryOptions {
            l: 10,
            algo: AlgoKind::TopPath,
            source: OsSource::DataGraph,
            prelim: true,
            ranking: ResultRanking::default(),
        }
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.queue_capacity >= 1);
        assert!(cfg.cache_shards >= 1);
        let four = ServeConfig::with_workers(4);
        assert_eq!(four.workers, 4);
        assert_eq!(four.cache_capacity, cfg.cache_capacity);
    }
}
