//! Hot-key tracking: a small space-saving frequency sketch over summary
//! lookups.
//!
//! The continual-refresh worker (the `sizel-cluster` crate) wants "the
//! keys readers actually hit", not "the keys currently cached" — a cache
//! entry dies with every epoch bump (its epoch-prefixed key becomes
//! unreachable), while *hotness* survives mutations: the same
//! `(t_DS, l, algo, prelim, source)` tuple will be asked again at the new
//! epoch, and that is exactly the recompute the refresh worker wants to
//! pay **before** a reader does. The sketch therefore tracks the
//! epoch-less key.
//!
//! The structure is the classic space-saving top-k sketch (Metwally et
//! al.): a fixed budget of `capacity` counters; a tracked key increments
//! its counter, an untracked key evicts the current minimum and inherits
//! `min + 1` (an upper bound on the evicted history, which is what makes
//! the sketch's top-k a superset guarantee for sufficiently skewed
//! streams). A serving workload's hot head is heavily skewed by
//! construction — famous-subject queries — which is the regime the sketch
//! is designed for. All methods take `&self` behind one small mutex —
//! and, because the sketch rides on **every** summary lookup (the
//! warm-cache fast path included), [`HotSketch::record`] only
//! `try_lock`s: under contention the sample is dropped instead of
//! serializing the worker pool on one lock. A frequency sketch is
//! approximate by nature, and uniformly-dropped samples preserve the
//! relative ordering the refresh worker consumes.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Mutex, MutexGuard};

/// A concurrency-safe space-saving top-k frequency sketch.
///
/// `capacity` bounds the tracked key set; 0 disables the sketch entirely
/// (every `record` is a no-op and `hottest` is empty).
#[derive(Debug)]
pub struct HotSketch<K> {
    inner: Mutex<SpaceSaving<K>>,
    capacity: usize,
}

#[derive(Debug)]
struct SpaceSaving<K> {
    counts: HashMap<K, u64>,
}

impl<K: Hash + Eq + Clone> HotSketch<K> {
    /// A sketch tracking at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        HotSketch {
            inner: Mutex::new(SpaceSaving { counts: HashMap::with_capacity(capacity) }),
            capacity,
        }
    }

    /// Locks the sketch, recovering from a poisoned lock by clearing the
    /// counts. A panic while the sketch lock is held (a key clone dying
    /// mid-`record`) used to poison it — and the next `hottest` call
    /// would then panic *inside the refresh worker*, killing the
    /// background thread and (via its drop-time join) the router. The
    /// sketch is an approximation by design, so "forget everything and
    /// re-learn from live traffic" is always a correct repair.
    fn lock_counts(&self) -> MutexGuard<'_, SpaceSaving<K>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.inner.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.counts.clear();
                guard
            }
        }
    }

    /// Records one occurrence of `key`. Lossy under lock contention (see
    /// module docs): the serving fast path must never queue on the
    /// sketch.
    pub fn record(&self, key: K) {
        if self.capacity == 0 {
            return;
        }
        // `try_lock` keeps the fast path non-blocking; a poisoned lock is
        // indistinguishable from a contended one here (the sample is
        // dropped either way) — the slow paths below repair the poison.
        let Ok(mut s) = self.inner.try_lock() else { return };
        if let Some(c) = s.counts.get_mut(&key) {
            *c += 1;
            return;
        }
        if s.counts.len() < self.capacity {
            s.counts.insert(key, 1);
            return;
        }
        // Space-saving eviction: the new key replaces the current minimum
        // and inherits its count as an over-estimate.
        let (victim, min) = s
            .counts
            .iter()
            .min_by_key(|&(_, &c)| c)
            .map(|(k, &c)| (k.clone(), c))
            .expect("capacity > 0 implies a non-empty full sketch");
        s.counts.remove(&victim);
        s.counts.insert(key, min + 1);
    }

    /// The up-to-`n` hottest keys, most-counted first (ties in
    /// unspecified order).
    ///
    /// Every ranking read also **ages** the sketch (all counts halve):
    /// with monotone counts, a formerly-hot key would outrank the keys
    /// readers currently hit forever and the refresh budget would chase
    /// dead traffic after a workload shift. Halving preserves the current
    /// ranking (monotone) while still-hot keys re-earn their counts
    /// before the next read and stale ones decay toward eviction — tying
    /// the decay rate to the consumer's own cadence (the refresh worker
    /// reads once per epoch bump).
    pub fn hottest(&self, n: usize) -> Vec<K> {
        let mut s = self.lock_counts();
        let mut entries: Vec<(K, u64)> = s.counts.iter().map(|(k, &c)| (k.clone(), c)).collect();
        entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.1));
        entries.truncate(n);
        for c in s.counts.values_mut() {
            *c /= 2;
        }
        entries.into_iter().map(|(k, _)| k).collect()
    }

    /// The smallest ranked head of the sketch covering at least
    /// `fraction` of its total counted mass — a pure read (unlike
    /// [`HotSketch::hottest`], it does not age the counts).
    ///
    /// This is how the refresh worker derives its re-warm budget from the
    /// *observed* skew instead of a fixed constant: a zipf-shaped
    /// workload concentrates its mass in a short head (the famous-subject
    /// regime the sketch is built for), so the budget tracks the size of
    /// the actual hot set — a handful of keys under heavy skew, most of
    /// the sketch under a flat workload — rather than over- or
    /// under-warming by a constant.
    ///
    /// Edge cases are clamped to a sane floor rather than returning a
    /// degenerate budget of 0: a sketch that *tracks keys* always
    /// returns at least 1, even when every count has been aged to zero
    /// by [`HotSketch::hottest`]'s halving (counts of 1 halve to 0, so a
    /// lightly-hit sketch reaches all-zero within one refresh pass — the
    /// exact state that used to zero the rewarm budget and stall the
    /// continual refresh until new traffic arrived). Only a sketch with
    /// **nothing tracked** returns 0: there is genuinely nothing to
    /// re-warm.
    pub fn mass_cover(&self, fraction: f64) -> usize {
        let s = self.lock_counts();
        if s.counts.is_empty() {
            return 0;
        }
        let total: u64 = s.counts.values().sum();
        if total == 0 {
            // All counts aged to zero: no mass to rank by, but the keys
            // are still the most recent hot set — floor at one re-warm.
            return 1;
        }
        let mut counts: Vec<u64> = s.counts.values().copied().collect();
        counts.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
        let target = (fraction.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return i + 1;
            }
        }
        counts.len()
    }

    /// Drops a key from the sketch. Hot keys deliberately survive epoch
    /// bumps, but a key whose subject row was *deleted* can never be
    /// served again at any epoch — the refresh worker forgets it instead
    /// of re-warming a dead summary forever.
    pub fn forget(&self, key: &K) {
        self.lock_counts().counts.remove(key);
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.lock_counts().counts.len()
    }

    /// True when nothing has been recorded (or the sketch is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tracking budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_and_ranks_by_frequency() {
        let s: HotSketch<u32> = HotSketch::new(8);
        for _ in 0..5 {
            s.record(1);
        }
        for _ in 0..3 {
            s.record(2);
        }
        s.record(3);
        assert_eq!(s.hottest(2), vec![1, 2]);
        assert_eq!(s.hottest(10), vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn eviction_keeps_the_heavy_hitters() {
        let s: HotSketch<u32> = HotSketch::new(2);
        for _ in 0..50 {
            s.record(1);
        }
        for _ in 0..30 {
            s.record(2);
        }
        // A burst of one-off keys churns the minimum slot (each eviction
        // inherits min + 1, so ten one-offs lift it from 30 to 40) but
        // can never displace the heavy head at 50.
        for k in 100..110 {
            s.record(k);
        }
        let hot = s.hottest(1);
        assert_eq!(hot, vec![1], "the heavy hitter survives the churn");
        assert_eq!(s.len(), 2, "the budget holds");
    }

    #[test]
    fn ranking_reads_age_the_sketch_so_shifted_workloads_take_over() {
        let s: HotSketch<u32> = HotSketch::new(8);
        for _ in 0..64 {
            s.record(1); // the old hot key
        }
        // The workload shifts: key 2 is what readers hit now. Each
        // ranking read halves the stale count while the live key keeps
        // re-earning, so it overtakes within a few refresh passes.
        let mut overtaken = false;
        for _ in 0..12 {
            for _ in 0..4 {
                s.record(2);
            }
            if s.hottest(1) == vec![2] {
                overtaken = true;
                break;
            }
        }
        assert!(overtaken, "a shifted workload must displace the stale head");
    }

    #[test]
    fn mass_cover_tracks_zipf_skew_without_aging() {
        // A zipf(2)-shaped stream over 32 keys: key k recorded
        // max(⌊256/k²⌋, 1) times (the floor keeps every key tracked). The
        // head is heavily concentrated, so covering 90% of the mass needs
        // far fewer keys than the sketch tracks — and a flat stream needs
        // nearly all of them.
        let s: HotSketch<u32> = HotSketch::new(64);
        for k in 1..=32u32 {
            for _ in 0..(256 / (k * k)).max(1) {
                s.record(k);
            }
        }
        let head = s.mass_cover(0.9);
        assert!((1..16).contains(&head), "zipf mass concentrates in a short head, got {head}");
        // Pure read: no aging, so the ranking and the cover are stable.
        assert_eq!(s.mass_cover(0.9), head);
        assert_eq!(s.mass_cover(1.0), 32, "full cover needs every tracked key");
        assert_eq!(s.mass_cover(0.0), 1, "any positive target needs at least the top key");

        let flat: HotSketch<u32> = HotSketch::new(64);
        for k in 0..20u32 {
            for _ in 0..10 {
                flat.record(k);
            }
        }
        assert_eq!(flat.mass_cover(0.9), 18, "a flat workload has no head to exploit");
        assert_eq!(HotSketch::<u32>::new(8).mass_cover(0.9), 0, "empty sketch covers nothing");
    }

    #[test]
    fn mass_cover_edge_cases_keep_a_sane_floor() {
        // Empty: genuinely nothing to re-warm.
        assert_eq!(HotSketch::<u32>::new(8).mass_cover(0.9), 0);
        assert_eq!(HotSketch::<u32>::new(8).mass_cover(0.0), 0);
        assert_eq!(HotSketch::<u32>::new(8).mass_cover(1.0), 0);

        // All-equal counts: the cover is proportional, never zero, and
        // the fraction extremes behave.
        let flat: HotSketch<u32> = HotSketch::new(16);
        for k in 0..8u32 {
            flat.record(k);
        }
        assert_eq!(flat.mass_cover(0.0), 1, "fraction 0.0 still warms the top key");
        assert_eq!(flat.mass_cover(1.0), 8, "fraction 1.0 covers every tracked key");

        // Counts aged to zero by `hottest`'s halving: the old code saw
        // total == 0 and returned a degenerate budget of 0 even though
        // keys were tracked. Now floored at 1.
        let aged: HotSketch<u32> = HotSketch::new(8);
        aged.record(1);
        aged.record(2);
        let _ = aged.hottest(8); // counts 1 halve to 0
        assert_eq!(aged.len(), 2, "keys survive aging");
        assert_eq!(aged.mass_cover(0.9), 1, "aged-to-zero sketch floors at 1, not 0");
        assert_eq!(aged.mass_cover(0.0), 1);
        assert_eq!(aged.mass_cover(1.0), 1);
    }

    #[test]
    fn poisoned_sketch_recovers_by_relearning() {
        /// A key whose clone panics on demand — clones happen inside
        /// `record`'s eviction and `hottest`'s ranking, both under the
        /// sketch lock.
        #[derive(Debug, PartialEq, Eq, Hash)]
        struct Volatile(u32, bool);
        impl Clone for Volatile {
            fn clone(&self) -> Self {
                if self.1 {
                    panic!("deliberate clone panic under the sketch lock");
                }
                Volatile(self.0, self.1)
            }
        }

        let s = std::sync::Arc::new(HotSketch::<Volatile>::new(8));
        s.record(Volatile(1, false));
        s.record(Volatile(2, true)); // armed: cloning this key panics
        let s2 = std::sync::Arc::clone(&s);
        let crash = std::thread::spawn(move || s2.hottest(8));
        assert!(crash.join().is_err(), "the ranking read panics on the armed key");
        // The refresh worker's next read recovers instead of dying: the
        // sketch resets and re-learns from live traffic. (`record`'s
        // try_lock treats the poison as contention and drops the sample,
        // so the first slow-path call performs the repair.)
        assert_eq!(s.len(), 0, "recovery clears the torn counts");
        s.record(Volatile(3, false));
        assert_eq!(s.hottest(8), vec![Volatile(3, false)]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn forget_drops_a_key_for_good() {
        let s: HotSketch<u32> = HotSketch::new(8);
        for _ in 0..9 {
            s.record(7);
        }
        s.record(8);
        s.forget(&7);
        assert_eq!(s.hottest(8), vec![8]);
        s.forget(&99); // unknown keys are a no-op
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_tracking() {
        let s: HotSketch<u32> = HotSketch::new(0);
        s.record(1);
        assert!(s.is_empty());
        assert!(s.hottest(5).is_empty());
        assert_eq!(s.capacity(), 0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let s = std::sync::Arc::new(HotSketch::<u64>::new(16));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        s.record(i % (4 + t));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.len() <= 16);
        assert!(!s.hottest(4).is_empty());
    }
}
