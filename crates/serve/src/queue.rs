//! A bounded MPMC submission queue built on `Mutex` + two `Condvar`s.
//!
//! The standard library offers only unbounded MPSC channels; the server
//! needs *bounded* multi-producer/multi-consumer semantics so that
//! submission exerts backpressure when the worker pool falls behind
//! (producers block in [`BoundedQueue::push`] instead of growing an
//! unbounded backlog). No external crates are available offline, so the
//! classic two-condvar bounded buffer is implemented here directly.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// A closable bounded FIFO shared by producers and consumers.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    /// Signalled when an item is enqueued or the queue closes.
    not_empty: Condvar,
    /// Signalled when an item is dequeued or the queue closes.
    not_full: Condvar,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Error returned by [`BoundedQueue::push`] on a closed queue; carries the
/// rejected item back to the caller.
#[derive(Debug)]
pub struct Closed<T>(pub T);

/// Error returned by [`BoundedQueue::try_push`]; carries the rejected item
/// back to the caller so it can be retried or answered with a shed reply.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity right now — the caller should shed load
    /// (reply `Busy`) rather than block a non-blocking front-end.
    Full(T),
    /// The queue has been closed; no further items will ever be accepted.
    Closed(T),
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Locks the queue state, recovering from a poisoned mutex.
    ///
    /// A thread that panics while holding the lock poisons it; before
    /// this recovery, every subsequent producer and consumer call would
    /// itself panic — one bad request cascading into a dead server. The
    /// queue's critical sections are single `VecDeque` operations and
    /// flag writes, none of which can leave the state torn mid-way, so
    /// the inner value is always coherent and the poison flag carries no
    /// information: clear it and hand the guard out.
    fn lock_inner(&self) -> MutexGuard<'_, Inner<T>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.inner.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Fails only when
    /// the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), Closed<T>> {
        let mut inner = self.lock_inner();
        loop {
            if inner.closed {
                return Err(Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = match self.not_full.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => {
                    self.inner.clear_poison();
                    poisoned.into_inner()
                }
            };
        }
    }

    /// Enqueues `item` only if there is room right now — the non-blocking
    /// admission hook for a network front-end: a full queue is answered
    /// with [`TryPushError::Full`] (reply `Busy` to the client, never
    /// block the event loop or silently drop the request).
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = self.lock_inner();
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        if inner.items.len() < self.capacity {
            inner.items.push_back(item);
            self.not_empty.notify_one();
            Ok(())
        } else {
            Err(TryPushError::Full(item))
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained — consumers
    /// use this as their shutdown signal after processing the backlog.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock_inner();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = match self.not_empty.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => {
                    self.inner.clear_poison();
                    poisoned.into_inner()
                }
            };
        }
    }

    /// Closes the queue: pending `pop`s drain the backlog then return
    /// `None`; subsequent `push`es fail. Idempotent.
    pub fn close(&self) {
        let mut inner = self.lock_inner();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.lock_inner().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert!(q.push(8).is_err());
        assert_eq!(q.pop(), Some(7), "backlog drains after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_push_wakes_on_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2).is_ok());
        // The producer blocks on the full queue until this pop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn try_push_sheds_when_full_and_fails_when_closed() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(TryPushError::Full(item)) => assert_eq!(item, 3, "the item comes back"),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "room reopens after a pop");
        q.close();
        match q.try_push(4) {
            Err(TryPushError::Closed(item)) => assert_eq!(item, 4),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(1).unwrap();
        // Poison the mutex: a thread panics while holding the lock — the
        // moral equivalent of a worker dying mid-queue-operation.
        let q2 = Arc::clone(&q);
        let _ = std::thread::spawn(move || {
            let _guard = q2.inner.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(q.inner.is_poisoned() || q.len() == 1, "setup: lock was held through a panic");
        // Every path recovers: the backlog survives and new traffic flows.
        assert_eq!(q.pop(), Some(1), "pop recovers from the poison");
        q.push(2).unwrap();
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn many_producers_many_consumers() {
        let q = Arc::new(BoundedQueue::new(8));
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    q.push(p * 1000 + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<u64> =
            (0..4u64).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, expect);
    }
}
