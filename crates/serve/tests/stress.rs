//! The equivalence oracle for the serving layer: every path through the
//! server must produce output *byte-identical* to the sequential
//! `SizeLEngine` from PR 1 — same DS tuples in the same order, same float
//! bits, same materialized size-l OS trees.
//!
//! The stress tests are barrier-driven: N client threads release at once
//! and hammer the same query set through one server (so cache misses,
//! hits, and concurrent same-key computations all occur), then every
//! response is compared against the sequential baseline fingerprint.
//!
//! Tests honor `RUST_TEST_THREADS` (each test is self-contained; the
//! shared engine is read-only) and pass in any order.

use std::sync::{Arc, Barrier};

use sizel_core::algo::AlgoKind;
use sizel_core::engine::{QueryOptions, QueryResult, ResultRanking, SizeLEngine};
use sizel_core::osgen::OsSource;
use sizel_serve::{ServeConfig, SizeLServer};

mod common;
use common::{fingerprint, small_engine as engine};

/// The workload: real hits (one DS, several DSs, Paper-table DSs), misses,
/// and empty queries, crossed with every algorithm/input/source/ranking
/// combination the engine serves.
fn query_set() -> Vec<(String, QueryOptions)> {
    let keywords = [
        "Faloutsos",
        "Christos Faloutsos",
        "Michalis Faloutsos",
        "Petros Faloutsos",
        "Power-law",
        "declustering",
        "xylophone quantum", // no hits
    ];
    let mut set = Vec::new();
    for kw in keywords {
        for l in [5usize, 15] {
            for algo in [AlgoKind::TopPath, AlgoKind::BottomUp, AlgoKind::Optimal] {
                for prelim in [true, false] {
                    set.push((
                        kw.to_owned(),
                        QueryOptions {
                            l,
                            algo,
                            prelim,
                            source: OsSource::DataGraph,
                            ranking: ResultRanking::default(),
                        },
                    ));
                }
            }
        }
    }
    // A few database-source and summary-ranked probes (slower, so fewer).
    set.push((
        "Faloutsos".into(),
        QueryOptions {
            l: 10,
            algo: AlgoKind::TopPath,
            prelim: true,
            source: OsSource::Database,
            ranking: ResultRanking::default(),
        },
    ));
    set.push((
        "Faloutsos".into(),
        QueryOptions {
            l: 10,
            algo: AlgoKind::TopPath,
            prelim: true,
            source: OsSource::DataGraph,
            ranking: ResultRanking::SummaryImportance,
        },
    ));
    set
}

/// Sequential ground truth, computed directly on the engine.
fn baseline(engine: &SizeLEngine, set: &[(String, QueryOptions)]) -> Vec<String> {
    set.iter()
        .map(|(kw, opts)| {
            let results = engine.query_with(kw, *opts);
            let refs: Vec<&QueryResult> = results.iter().collect();
            fingerprint(&refs)
        })
        .collect()
}

#[test]
fn n_thread_stress_matches_sequential_engine() {
    let engine = engine();
    let set = query_set();
    let expected = baseline(&engine.read().unwrap(), &set);

    let n_threads = 8;
    let server = Arc::new(SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 4,
            queue_capacity: 16,
            cache_capacity: 256,
            cache_shards: 8,
            ..ServeConfig::default()
        },
    ));
    let barrier = Arc::new(Barrier::new(n_threads));
    let handles: Vec<_> = (0..n_threads)
        .map(|t| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let set = set.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                barrier.wait();
                // Each thread walks the set from a different offset so
                // first-touch (miss) and re-touch (hit) interleave across
                // threads.
                for i in 0..set.len() {
                    let j = (i + t * 7) % set.len();
                    let (kw, opts) = &set[j];
                    let got = server.query(kw, *opts);
                    assert_eq!(
                        fingerprint(&got),
                        expected[j],
                        "thread {t} query {j} ({kw:?}, {opts:?}) diverged from the \
                         sequential engine"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let stats = server.stats();
    assert_eq!(stats.queries_served, (n_threads * set.len()) as u64);
    assert!(stats.cache.hits > 0, "8 threads re-running the set must hit the cache");
}

#[test]
fn batch_query_matches_sequential_engine_and_dedups() {
    let engine = engine();
    let set = query_set();
    let expected = baseline(&engine.read().unwrap(), &set);

    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 4,
            queue_capacity: 8,
            cache_capacity: 512,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    // Duplicate the whole set 3x in interleaved order: results must come
    // back in submission order, each identical to its baseline.
    let mut batch = Vec::new();
    let mut expect_order = Vec::new();
    for round in 0..3 {
        for i in 0..set.len() {
            let j = (i + round) % set.len();
            batch.push(set[j].clone());
            expect_order.push(j);
        }
    }
    let responses = server.batch_query(&batch);
    assert_eq!(responses.len(), batch.len());
    for (resp, &j) in responses.iter().zip(&expect_order) {
        assert_eq!(fingerprint(resp), expected[j]);
    }
    // Only the distinct requests did index + summary work.
    let stats = server.stats();
    assert_eq!(stats.queries_served, set.len() as u64, "duplicates served without new jobs");
}

#[test]
fn uncached_server_still_matches() {
    // cache_capacity = 0 disables memoization entirely; the pool itself
    // must still be equivalence-preserving.
    let engine = engine();
    let set: Vec<(String, QueryOptions)> = query_set().into_iter().take(12).collect();
    let expected = baseline(&engine.read().unwrap(), &set);
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 3,
            queue_capacity: 4,
            cache_capacity: 0,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    for ((kw, opts), want) in set.iter().zip(&expected) {
        assert_eq!(&fingerprint(&server.query(kw, *opts)), want);
    }
    let stats = server.stats();
    assert_eq!(stats.cache.hits, 0);
    assert_eq!(stats.cache.len, 0);
}

#[test]
fn single_worker_server_serializes_correctly() {
    // One worker, many producers: the bounded queue provides the ordering
    // and backpressure; results must still be correct.
    let engine = engine();
    let server = Arc::new(SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 64,
            cache_shards: 1,
            ..ServeConfig::default()
        },
    ));
    let expected = fingerprint(
        &engine.read().unwrap().query("Faloutsos", 15).iter().collect::<Vec<&QueryResult>>(),
    );
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let server = Arc::clone(&server);
            let expected = expected.clone();
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let got =
                        server.query("Faloutsos", QueryOptions { l: 15, ..Default::default() });
                    assert_eq!(fingerprint(&got), expected);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
}
