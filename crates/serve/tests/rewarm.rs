//! The per-DS summarize job path and the hot-key re-warm hook (ISSUE 5):
//! `summarize_batch` must be byte-identical to the engine's `summarize`,
//! and `rewarm_hottest` must pre-pay exactly the recomputes that a hot
//! reader would otherwise eat after a write — at the current epoch, under
//! the same staleness proof as demand fill.

use sizel_core::engine::QueryOptions;
use sizel_datagen::dblp::DblpConfig;
use sizel_serve::{Mutation, ServeConfig, SizeLServer};
use sizel_storage::{TupleRef, Value};

mod common;
use common::{build_engine, fingerprint};
use sizel_core::test_fixtures::max_pk;

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        cache_shards: 4,
        hot_capacity: 32,
    }
}

/// An existing keyword plus the DS tuples it resolves to.
fn probe(server: &SizeLServer) -> (String, Vec<TupleRef>) {
    let engine = server.engine();
    let kw = {
        let tid = engine.db().table_id("Author").unwrap();
        let name =
            engine.db().table(tid).value(sizel_storage::RowId(0), 1).as_str().unwrap().to_owned();
        name.split(' ').next().unwrap().to_owned()
    };
    let hits = engine.ds_hits(&kw);
    assert!(!hits.is_empty(), "fixture keyword must resolve");
    (kw, hits)
}

#[test]
fn summarize_batch_is_byte_identical_to_the_engine() {
    let server = SizeLServer::new(build_engine(&DblpConfig::tiny()), test_config());
    let (_, hits) = probe(&server);
    let opts = [
        QueryOptions { l: 8, ..Default::default() },
        QueryOptions { l: 5, prelim: false, ..Default::default() },
        QueryOptions { l: 8, source: sizel_core::osgen::OsSource::Database, ..Default::default() },
    ];
    let items: Vec<(TupleRef, QueryOptions)> =
        hits.iter().flat_map(|&t| opts.iter().map(move |&o| (t, o))).collect();
    // Twice: cold pass computes, warm pass serves the same Arc'd entries.
    for round in 0..2 {
        let got = server.summarize_batch(&items);
        assert_eq!(got.len(), items.len());
        let engine = server.engine();
        for ((tds, o), r) in items.iter().zip(&got) {
            let want = engine.summarize(*tds, *o);
            assert_eq!(
                fingerprint(std::slice::from_ref(r)),
                fingerprint(&[want]),
                "round {round}: {tds:?} {o:?} diverged from the engine"
            );
        }
    }
    assert!(server.stats().cache.hits > 0, "the second pass hits the cache");
}

#[test]
fn rewarm_recomputes_hot_keys_before_readers_do() {
    let server = SizeLServer::new(build_engine(&DblpConfig::tiny()), test_config());
    let (kw, _) = probe(&server);
    let opts = QueryOptions { l: 8, ..Default::default() };
    // Heat the key set.
    for _ in 0..4 {
        let _ = server.query(&kw, opts);
    }
    assert!(!server.hottest(8).is_empty(), "queries feed the hotness sketch");

    // A mutation purges every cached entry (superseded epoch)...
    let (author, junction, paper) = {
        let e = server.engine();
        (max_pk(e.db(), "Author"), max_pk(e.db(), "AuthorPaper"), max_pk(e.db(), "Paper"))
    };
    server
        .apply(Mutation::insert("Author", vec![Value::Int(author + 1), "Renn Calloway".into()]))
        .unwrap();
    server
        .apply(Mutation::insert(
            "AuthorPaper",
            vec![Value::Int(junction + 1), Value::Int(author + 1), Value::Int(paper)],
        ))
        .unwrap();
    assert_eq!(server.stats().cache.len, 0, "the purge drops superseded entries");

    // ...and the re-warm pays the recomputes proactively.
    let warmed = server.rewarm_hottest(8);
    assert!(warmed > 0, "hot keys are recomputed at the new epoch");
    assert_eq!(server.stats().rewarmed, warmed as u64);

    // A steady-state reader of the hot key now misses nothing: the query
    // is served without a single new summary computation, byte-identical
    // to the sequential engine at the current epoch.
    let computed_before = server.stats().summaries_computed;
    let got = server.query(&kw, opts);
    assert_eq!(
        server.stats().summaries_computed,
        computed_before,
        "the hot reader must not eat a cold recompute after the re-warm"
    );
    assert_eq!(fingerprint(&got), fingerprint(&server.engine().query_with(&kw, opts)));
}

#[test]
fn rewarm_respects_the_budget_and_skips_current_entries() {
    let server = SizeLServer::new(build_engine(&DblpConfig::tiny()), test_config());
    let (kw, hits) = probe(&server);
    let opts = QueryOptions { l: 6, ..Default::default() };
    let _ = server.query(&kw, opts);
    // Everything the query touched is cached at the current epoch: a
    // re-warm finds nothing to do.
    assert_eq!(server.rewarm_hottest(16), 0, "current-epoch entries are skipped");

    // After a purge, the budget caps the recompute count.
    let author = max_pk(server.engine().db(), "Author");
    server
        .apply(Mutation::insert("Author", vec![Value::Int(author + 1), "Mira Stonewell".into()]))
        .unwrap();
    let warmed = server.rewarm_hottest(1);
    assert!(warmed <= 1, "budget bounds the refresh work");
    assert!(warmed <= hits.len());
}
