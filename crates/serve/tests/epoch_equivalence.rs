//! The mutation-workload equivalence oracle (ISSUE 4, satellite b;
//! extended by ISSUE 6 to the full insert/update/delete model): an
//! interleaved mutation/query stream against [`SizeLServer`] must produce
//! summaries **byte-identical to a freshly rebuilt sequential engine at
//! each epoch** — the cache, keyed by the mutation epoch, must never
//! serve a summary computed against superseded data, including summaries
//! whose rows were renamed or deleted mid-stream.
//!
//! Three angles:
//! * `exact_stream_*` — exact-policy applies, compared per epoch against
//!   an engine rebuilt from scratch over an identically-mutated database
//!   (the strongest oracle: every float bit comes out equal).
//! * `incremental_stream_*` — incremental-policy applies, compared
//!   against the same engine queried sequentially (internal consistency:
//!   what the live engine computes is what every server path returns),
//!   plus the recompute-after-epoch-bump proof that stale entries are
//!   unreachable.
//! * `concurrent_*` — clients hammer the server while a writer applies
//!   mutations; every response must equal the sequential answer of one
//!   of the epochs the stream passed through.

use std::sync::{Arc, Barrier};

use sizel_core::engine::{QueryOptions, SizeLEngine};
use sizel_datagen::dblp::DblpConfig;
use sizel_serve::{Mutation, MutationOp, ServeConfig, SizeLServer};
use sizel_storage::Value;

mod common;
use common::{build_engine, engine_config, fingerprint, generate_dblp, seq_fingerprint};
use sizel_core::test_fixtures::max_pk;

/// The mutation script: two new authors linked into existing papers and a
/// fresh paper (the ISSUE 4 insert prefix), then the ISSUE 6 suffix — a
/// paper retitle, an author rename, two junction deletes, and finally the
/// delete of the renamed author once nothing references it. Quorra Veldt
/// keeps one junction throughout, so a live summary survives the churn.
/// Pure function of the base engine.
fn mutation_script(engine: &SizeLEngine) -> Vec<Mutation> {
    let db = engine.db();
    let (author, paper, junction) =
        (max_pk(db, "Author"), max_pk(db, "Paper"), max_pk(db, "AuthorPaper"));
    // Any existing Year row serves as the new paper's venue.
    let year_pk = {
        let t = db.table(db.table_id("Year").unwrap());
        t.pk_of(sizel_storage::RowId(0))
    };
    vec![
        Mutation::insert("Author", vec![Value::Int(author + 1), "Quorra Veldt".into()]),
        Mutation::insert(
            "AuthorPaper",
            vec![Value::Int(junction + 1), Value::Int(author + 1), Value::Int(paper)],
        ),
        Mutation::insert("Author", vec![Value::Int(author + 2), "Brann Oxley".into()]),
        Mutation::insert(
            "Paper",
            vec![Value::Int(paper + 1), "veldt summaries revisited".into(), Value::Int(year_pk)],
        ),
        Mutation::insert(
            "AuthorPaper",
            vec![Value::Int(junction + 2), Value::Int(author + 2), Value::Int(paper + 1)],
        ),
        Mutation::insert(
            "AuthorPaper",
            vec![Value::Int(junction + 3), Value::Int(author + 1), Value::Int(paper + 1)],
        ),
        // -- ISSUE 6: updates re-tokenize, deletes retire rows -----------
        Mutation::update(
            "Paper",
            paper + 1,
            vec![Value::Int(paper + 1), "veldt summaries reiterated".into(), Value::Int(year_pk)],
        ),
        Mutation::update(
            "Author",
            author + 2,
            vec![Value::Int(author + 2), "Brann Quillfeather".into()],
        ),
        Mutation::delete("AuthorPaper", junction + 3),
        Mutation::delete("AuthorPaper", junction + 2),
        Mutation::delete("Author", author + 2),
    ]
}

/// Queries covering pre-existing, freshly inserted, renamed, and deleted
/// DSs, both tuple sources, prelim and complete inputs. Keywords whose
/// rows die mid-stream ("Oxley", then "Quillfeather") must go dark at the
/// right epoch — an empty answer is a fingerprinted answer too.
fn query_set(engine: &SizeLEngine) -> Vec<(String, QueryOptions)> {
    let existing = {
        let tid = engine.db().table_id("Author").unwrap();
        let t = engine.db().table(tid);
        let name = t.value(sizel_storage::RowId(0), 1).as_str().unwrap().to_owned();
        name.split(' ').next().unwrap().to_owned()
    };
    let mut set = Vec::new();
    for kw in [
        existing.as_str(),
        "Quorra",
        "Veldt",
        "Brann",
        "veldt",
        "Oxley",
        "Quillfeather",
        "reiterated",
    ] {
        for (prelim, source) in [
            (true, sizel_core::osgen::OsSource::DataGraph),
            (false, sizel_core::osgen::OsSource::DataGraph),
            (true, sizel_core::osgen::OsSource::Database),
        ] {
            set.push((kw.to_owned(), QueryOptions { l: 8, prelim, source, ..Default::default() }));
        }
    }
    set
}

/// Replays an applied prefix through the plain storage API (the oracle's
/// database takes the same mutations by kind, minus scoring).
fn replay(d: &mut sizel_datagen::dblp::Dblp, applied: &[Mutation]) {
    for m in applied {
        match &m.op {
            MutationOp::Insert { values } => {
                d.db.insert(&m.table, values.clone()).unwrap();
            }
            MutationOp::Update { pk, values } => {
                d.db.update(&m.table, *pk, values.clone()).unwrap();
            }
            MutationOp::Delete { pk } => {
                d.db.delete(&m.table, *pk).unwrap();
            }
        }
    }
}

#[test]
fn exact_stream_is_byte_identical_to_fresh_rebuild_at_each_epoch() {
    let cfg = DblpConfig::tiny();
    let server = SizeLServer::new(
        build_engine(&cfg),
        ServeConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 256,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    let (script, set) = {
        let e = server.engine();
        (mutation_script(&e), query_set(&e))
    };

    let mut applied: Vec<Mutation> = Vec::new();
    for step in 0..=script.len() {
        // Oracle: a sequential engine rebuilt from scratch over an
        // identically-mutated database.
        let mut d = generate_dblp(&cfg);
        replay(&mut d, &applied);
        let oracle = SizeLEngine::build(
            d.db,
            |db, sg, dg| sizel_rank::dblp_ga(sizel_rank::GaPreset::Ga1, db, sg, dg),
            engine_config(),
        )
        .unwrap();

        // Every query — twice, so the second pass is served from the
        // epoch-keyed cache — must match the oracle byte-for-byte.
        for round in 0..2 {
            for (kw, opts) in &set {
                let got = server.query(kw, *opts);
                let want = seq_fingerprint(&oracle, kw, *opts);
                assert_eq!(
                    fingerprint(&got),
                    want,
                    "step {step} round {round}: {kw:?} {opts:?} diverged from the fresh rebuild"
                );
            }
        }

        if let Some(m) = script.get(step) {
            let before = server.epoch();
            let after = server.apply(m.clone().exact()).unwrap();
            assert!(after > before, "apply must advance the epoch");
            applied.push(m.clone());
        }
    }
    let stats = server.stats();
    assert_eq!(stats.mutations_applied, script.len() as u64);
    assert!(stats.cache.hits > 0, "the second pass of each epoch must hit the cache");
}

#[test]
fn incremental_stream_matches_its_engine_and_never_serves_stale_entries() {
    let server = SizeLServer::new(
        build_engine(&DblpConfig::tiny()),
        ServeConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 256,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    let (script, set) = {
        let e = server.engine();
        (mutation_script(&e), query_set(&e))
    };

    for step in 0..=script.len() {
        // Warm pass + cached pass, both compared against the shared
        // engine queried sequentially under a read guard.
        for _ in 0..2 {
            for (kw, opts) in &set {
                let got = server.query(kw, *opts);
                let want = seq_fingerprint(&server.engine(), kw, *opts);
                assert_eq!(fingerprint(&got), want, "step {step}: {kw:?} {opts:?}");
            }
        }
        if let Some(m) = script.get(step) {
            let computed_before = server.stats().summaries_computed;
            let hit_kw = &set[0];
            let _ = server.query(&hit_kw.0, hit_kw.1); // cached at the old epoch
            server.apply(m.clone()).unwrap();
            let _ = server.query(&hit_kw.0, hit_kw.1);
            let computed_after = server.stats().summaries_computed;
            assert!(
                computed_after > computed_before,
                "step {step}: post-mutation query must recompute, not reuse the stale entry"
            );
        }
    }

    // The surviving inserted author is served with a real summary; the
    // deleted one (and its pre-rename token) went dark.
    let quorra = server.query("Quorra", QueryOptions { l: 8, ..Default::default() });
    assert_eq!(quorra.len(), 1);
    assert!(quorra[0].summary.len() > 1, "the junction rows joined the summary");
    for gone in ["Oxley", "Quillfeather"] {
        let hits = server.query(gone, QueryOptions { l: 8, ..Default::default() });
        assert!(hits.is_empty(), "{gone:?} must stop matching once the row is renamed/deleted");
    }
}

#[test]
fn concurrent_queries_during_mutations_always_observe_a_consistent_epoch() {
    let server = Arc::new(SizeLServer::new(
        build_engine(&DblpConfig::tiny()),
        ServeConfig {
            workers: 3,
            queue_capacity: 8,
            cache_capacity: 128,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    ));
    let script = mutation_script(&server.engine());
    let probe: (String, QueryOptions) = {
        let e = server.engine();
        query_set(&e)[0].clone()
    };

    // The writer records the sequential fingerprint of the probe at every
    // epoch the stream passes through; every concurrent response must
    // equal one of them (a torn or stale answer matches none).
    let n_clients = 4;
    let barrier = Arc::new(Barrier::new(n_clients + 1));
    let clients: Vec<_> = (0..n_clients)
        .map(|_| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let probe = probe.clone();
            std::thread::spawn(move || {
                barrier.wait();
                (0..40).map(|_| fingerprint(&server.query(&probe.0, probe.1))).collect::<Vec<_>>()
            })
        })
        .collect();

    barrier.wait();
    let mut legal = vec![seq_fingerprint(&server.engine(), &probe.0, probe.1)];
    for m in &script {
        server.apply(m.clone()).unwrap();
        legal.push(seq_fingerprint(&server.engine(), &probe.0, probe.1));
    }
    for client in clients {
        for fp in client.join().expect("client thread") {
            assert!(
                legal.contains(&fp),
                "a concurrent response matched no epoch of the mutation stream"
            );
        }
    }
}
