//! Shared fixture for the serving-layer integration tests: the same
//! small-scale DBLP engine (Author + Paper DS relations, GA1) that
//! `sizel-core`'s own engine tests build — the sequential baseline every
//! server path is compared against.

#![allow(dead_code)] // each test binary uses the subset it needs

use std::sync::{Arc, OnceLock, RwLock};

use sizel_core::engine::{EngineConfig, SizeLEngine};
use sizel_datagen::dblp::{generate, Dblp, DblpConfig};
use sizel_graph::presets;
use sizel_rank::{dblp_ga, GaPreset};

/// The canonical byte-exact result fingerprint, re-exported from
/// `sizel_core::test_fixtures` so every oracle in every crate compares
/// the same bytes.
pub use sizel_core::test_fixtures::result_fingerprint as fingerprint;

/// [`fingerprint`] of a query run sequentially on an engine.
pub fn seq_fingerprint(
    engine: &SizeLEngine,
    kw: &str,
    opts: sizel_core::engine::QueryOptions,
) -> String {
    fingerprint(&engine.query_with(kw, opts))
}

/// A fresh engine over `cfg` (each mutation test owns its own).
pub fn build_engine(cfg: &DblpConfig) -> SizeLEngine {
    SizeLEngine::build(
        generate(cfg).db,
        |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
        engine_config(),
    )
    .expect("engine builds")
}

/// The generated database alongside its table handles (for tests that
/// mirror mutations into a plain database).
pub fn generate_dblp(cfg: &DblpConfig) -> Dblp {
    generate(cfg)
}

/// The engine configuration every fixture shares.
pub fn engine_config() -> EngineConfig {
    EngineConfig::new(vec![
        ("Author".into(), presets::dblp_author_gds_config()),
        ("Paper".into(), presets::dblp_paper_gds_config()),
    ])
}

/// One lock-wrapped engine per test binary, shared between servers
/// (`SizeLServer::from_shared`) and sequential baselines (`.read()`).
/// Read-only suites only — mutation tests build their own engines.
pub fn small_engine() -> Arc<RwLock<SizeLEngine>> {
    static E: OnceLock<Arc<RwLock<SizeLEngine>>> = OnceLock::new();
    Arc::clone(E.get_or_init(|| Arc::new(RwLock::new(build_engine(&DblpConfig::small())))))
}
