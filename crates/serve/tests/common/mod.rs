//! Shared fixture for the serving-layer integration tests: the same
//! small-scale DBLP engine (Author + Paper DS relations, GA1) that
//! `sizel-core`'s own engine tests build — the sequential baseline every
//! server path is compared against.

use std::sync::{Arc, OnceLock};

use sizel_core::engine::{EngineConfig, SizeLEngine};
use sizel_datagen::dblp::{generate, DblpConfig};
use sizel_graph::presets;
use sizel_rank::{dblp_ga, GaPreset};

/// One engine per test binary, shared read-only across its tests.
pub fn small_engine() -> Arc<SizeLEngine> {
    static E: OnceLock<Arc<SizeLEngine>> = OnceLock::new();
    Arc::clone(E.get_or_init(|| {
        let d = generate(&DblpConfig::small());
        Arc::new(
            SizeLEngine::build(
                d.db,
                |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
                EngineConfig::new(vec![
                    ("Author".into(), presets::dblp_author_gds_config()),
                    ("Paper".into(), presets::dblp_paper_gds_config()),
                ]),
            )
            .expect("engine builds"),
        )
    }))
}
