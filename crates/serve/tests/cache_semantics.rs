//! Cache-correctness tests at the server level: the memoized summary must
//! behave exactly like recomputation — hits after misses, bounded
//! occupancy with LRU eviction, and *never* a stale `Os` when any
//! key-relevant option (`algo`, `prelim`, `l`, `source`) differs.

use std::sync::Arc;

use sizel_core::algo::AlgoKind;
use sizel_core::engine::{QueryOptions, QueryResult};
use sizel_core::osgen::OsSource;
use sizel_serve::{ServeConfig, SizeLServer};

mod common;
use common::small_engine as engine;

fn opts(l: usize, algo: AlgoKind, prelim: bool) -> QueryOptions {
    QueryOptions { l, algo, prelim, ..QueryOptions::default() }
}

/// Field-by-field equality against a freshly computed sequential result,
/// including the flat arena's full structure: parent links, depths, and
/// the CSR child slices.
fn assert_same(cached: &QueryResult, fresh: &QueryResult) {
    assert_eq!(cached.tds, fresh.tds);
    assert_eq!(cached.ds_label, fresh.ds_label);
    assert_eq!(cached.global_score.to_bits(), fresh.global_score.to_bits());
    assert_eq!(cached.input_os_size, fresh.input_os_size);
    assert_eq!(cached.result, fresh.result);
    assert_eq!(cached.summary.len(), fresh.summary.len());
    for ((ia, a), (ib, b)) in cached.summary.iter().zip(fresh.summary.iter()) {
        assert_eq!(a.tuple, b.tuple);
        assert_eq!(a.gds_node, b.gds_node);
        assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        assert_eq!(a.parent, b.parent);
        assert_eq!(a.depth, b.depth);
        assert_eq!(cached.summary.children(ia), fresh.summary.children(ib));
    }
}

#[test]
fn hit_after_miss_returns_identical_result() {
    let engine = engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig { workers: 2, cache_capacity: 64, ..ServeConfig::default() },
    );
    let o = opts(15, AlgoKind::TopPath, true);

    let first = server.query("Faloutsos", o);
    let after_miss = server.stats();
    assert_eq!(after_miss.cache.hits, 0);
    assert_eq!(after_miss.cache.misses, 3, "one miss per Faloutsos DS");
    assert_eq!(after_miss.summaries_computed, 3);

    let second = server.query("Faloutsos", o);
    let after_hit = server.stats();
    assert_eq!(after_hit.cache.hits, 3, "all three summaries re-served from cache");
    assert_eq!(after_hit.summaries_computed, 3, "no recomputation on a hit");
    // The hit is the same Arc, not merely an equal value.
    for (a, b) in first.iter().zip(&second) {
        assert!(Arc::ptr_eq(a, b), "a cache hit shares the stored summary");
    }
    // And both match sequential recomputation.
    for (res, fresh) in second.iter().zip(engine.read().unwrap().query_with("Faloutsos", o)) {
        assert_same(res, &fresh);
    }
}

#[test]
fn eviction_at_capacity_keeps_serving_correctly() {
    let engine = engine();
    // Capacity 2 with one shard: three distinct summaries cannot coexist,
    // so the Faloutsos trio forces an eviction on every pass.
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 2,
            cache_shards: 1,
            ..ServeConfig::default()
        },
    );
    let o = opts(10, AlgoKind::TopPath, true);
    for _ in 0..4 {
        let got = server.query("Faloutsos", o);
        for (res, fresh) in got.iter().zip(engine.read().unwrap().query_with("Faloutsos", o)) {
            assert_same(res, &fresh);
        }
    }
    let stats = server.stats();
    assert!(stats.cache.len <= 2, "occupancy bounded by capacity");
    assert!(stats.cache.evictions > 0, "capacity pressure must evict");
    assert!(stats.summaries_computed > 3, "evicted summaries are recomputed, not served stale");
}

#[test]
fn no_stale_os_across_algo_and_prelim_combinations() {
    let engine = engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig { workers: 2, cache_capacity: 256, ..ServeConfig::default() },
    );
    // Warm the cache with one combination, then request every other
    // combination of (algo, prelim, l, source): each must be computed
    // fresh and match its own sequential baseline — a cache hit handed to
    // the wrong combination would fail the byte comparison.
    let warm = opts(15, AlgoKind::TopPath, true);
    let _ = server.query("Christos Faloutsos", warm);

    let combos = [
        opts(15, AlgoKind::TopPath, false),
        opts(15, AlgoKind::BottomUp, true),
        opts(15, AlgoKind::BottomUp, false),
        opts(15, AlgoKind::Optimal, true),
        opts(15, AlgoKind::Optimal, false),
        opts(10, AlgoKind::TopPath, true), // same algo/prelim, different l
        QueryOptions { source: OsSource::Database, ..opts(15, AlgoKind::TopPath, true) },
    ];
    for o in combos {
        let got = server.query("Christos Faloutsos", o);
        let fresh = engine.read().unwrap().query_with("Christos Faloutsos", o);
        assert_eq!(got.len(), fresh.len());
        for (a, b) in got.iter().zip(&fresh) {
            assert_same(a, b);
        }
    }
    // 1 warm + 7 combos, all distinct keys: zero hits is the proof that no
    // combination was served from another combination's entry.
    let stats = server.stats();
    assert_eq!(stats.cache.hits, 0, "distinct (algo, prelim, l, source) never alias");
    assert_eq!(stats.summaries_computed, 8);

    // Re-requesting the warm combination still hits.
    let _ = server.query("Christos Faloutsos", warm);
    assert_eq!(server.stats().cache.hits, 1);
}

#[test]
fn cached_flat_os_round_trips_byte_identically_through_batch_query() {
    // The cache stores the flat CSR `Os` by `Arc`; a batch that mixes
    // first-touch misses, in-batch duplicates, and warm re-requests must
    // hand every client the exact arena the sequential engine computes —
    // same node slab, same child slices, same float bits.
    let engine = engine();
    let server = SizeLServer::from_shared(
        Arc::clone(&engine),
        ServeConfig { workers: 3, queue_capacity: 8, cache_capacity: 128, ..Default::default() },
    );
    let a = opts(15, AlgoKind::TopPath, true);
    let b = opts(10, AlgoKind::Optimal, false);
    let batch: Vec<(String, QueryOptions)> = vec![
        ("Faloutsos".into(), a),
        ("Christos Faloutsos".into(), b),
        ("Faloutsos".into(), a), // in-batch duplicate
        ("Power-law".into(), a),
    ];
    let first = server.batch_query(&batch);
    let second = server.batch_query(&batch); // warm: all summaries hit

    for (responses, (kw, o)) in [&first, &second].into_iter().flat_map(|r| r.iter().zip(&batch)) {
        let fresh = engine.read().unwrap().query_with(kw, *o);
        assert_eq!(responses.len(), fresh.len(), "{kw}");
        for (res, seq) in responses.iter().zip(&fresh) {
            assert_same(res, seq);
        }
    }
    // In-batch duplicates share the very same Arc, and the warm pass
    // re-serves the cached arenas rather than equal copies.
    for (x, y) in first[0].iter().zip(&first[2]) {
        assert!(Arc::ptr_eq(x, y), "duplicate requests share one computation");
    }
    for (x, y) in first[0].iter().zip(&second[0]) {
        assert!(Arc::ptr_eq(x, y), "the warm pass serves the cached arena");
    }
    let stats = server.stats();
    assert!(stats.cache.hits > 0);
}
