//! Total-order `f64` wrapper for use as sort and priority-queue keys.

use std::cmp::Ordering;

/// An `f64` with a total order (IEEE-754 `totalOrder` via `f64::total_cmp`).
///
/// Importance scores in this workspace are finite and non-negative, but the
/// wrapper is safe for any input: NaNs order after +inf, and -0.0 < +0.0.
#[derive(Clone, Copy, Debug, Default)]
pub struct F64Ord(pub f64);

impl F64Ord {
    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64Ord {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for F64Ord {}

impl PartialOrd for F64Ord {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Ord {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for F64Ord {
    fn from(v: f64) -> Self {
        F64Ord(v)
    }
}

/// Compares two floats for "approximately equal" with a relative tolerance,
/// falling back to an absolute tolerance near zero. Used pervasively in
/// tests that compare importance sums computed along different paths.
pub fn approx_eq(a: f64, b: f64, rel: f64) -> bool {
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs());
    diff <= (rel * scale).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_like_floats() {
        assert!(F64Ord(1.0) < F64Ord(2.0));
        assert!(F64Ord(-1.0) < F64Ord(0.0));
        assert_eq!(F64Ord(3.5), F64Ord(3.5));
    }

    #[test]
    fn nan_sorts_last() {
        let mut v = [F64Ord(f64::NAN), F64Ord(1.0), F64Ord(f64::INFINITY)];
        v.sort();
        assert_eq!(v[0].get(), 1.0);
        assert!(v[1].get().is_infinite());
        assert!(v[2].get().is_nan());
    }

    #[test]
    fn works_in_binary_heap() {
        let mut heap = BinaryHeap::new();
        for w in [3.0, 1.0, 2.0] {
            heap.push(F64Ord(w));
        }
        assert_eq!(heap.pop().unwrap().get(), 3.0);
        assert_eq!(heap.pop().unwrap().get(), 2.0);
        assert_eq!(heap.pop().unwrap().get(), 1.0);
    }

    #[test]
    fn approx_eq_tolerates_relative_error() {
        assert!(approx_eq(100.0, 100.0 + 1e-9, 1e-9));
        assert!(!approx_eq(100.0, 101.0, 1e-9));
        assert!(approx_eq(0.0, 1e-12, 1e-6));
    }
}
