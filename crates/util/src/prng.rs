//! Deterministic pseudo-random number generation.
//!
//! The generator is xoshiro256★★ (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend. Both algorithms are public domain.
//! The point of rolling these ~60 lines ourselves instead of depending on an
//! RNG crate is *reproducibility*: the synthetic DBLP/TPC-H databases, and
//! therefore every number in `EXPERIMENTS.md`, are a pure function of the
//! seed, independent of crate versions and platforms.

/// Deterministic PRNG: xoshiro256★★ seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform (see [`Prng::normal`]).
    spare_normal: Option<f64>,
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Prng { s, spare_normal: None }
    }

    /// Derives an independent child generator; used to give each table /
    /// evaluator its own stream so that adding rows to one table does not
    /// shift the random sequence of another.
    pub fn fork(&mut self, tag: u64) -> Prng {
        let a = self.next_u64();
        Prng::new(a ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output (xoshiro256★★).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)`. Uses Lemire's nearly-divisionless
    /// method; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "Prng::below bound must be > 0");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`; `lo < hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "Prng::range empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as i64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len())]
    }

    /// Standard normal variate (Box-Muller; caches the paired output).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Log-normal multiplicative noise `exp(sigma * N(0,1))`.
    pub fn lognormal(&mut self, sigma: f64) -> f64 {
        (sigma * self.normal()).exp()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k <= n), in random order.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        if k * 3 >= n {
            // Dense case: partial Fisher-Yates over the full index range.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = self.range(i, n);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            // Sparse case: rejection sampling into a sorted probe vector.
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let c = self.range(0, n);
                if !out.contains(&c) {
                    out.push(c);
                }
            }
            out
        }
    }
}

/// Zipfian sampler over ranks `0..n` with exponent `s`: the probability of
/// rank `i` is proportional to `1 / (i+1)^s`. Uses a precomputed CDF and
/// binary search, so sampling is `O(log n)` after `O(n)` setup.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler; `n > 0`, `s >= 0` (s = 0 degenerates to uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point drift at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Prng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Prng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Prng::new(3);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = Prng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Prng::new(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::new(9);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = Prng::new(13);
        for (n, k) in [(10, 10), (100, 5), (50, 40), (1, 1), (7, 0)] {
            let s = rng.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), k, "distinctness for n={n} k={k}");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = Prng::new(21);
        let z = Zipf::new(1000, 1.1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 should dominate rank 10");
        assert!(counts[0] > counts[100] * 5, "heavy head expected");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let mut rng = Prng::new(23);
        let z = Zipf::new(10, 0.0);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "count {c}");
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Prng::new(42);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
