//! Wall-clock stopwatch used by the benchmark harness.

use std::time::{Duration, Instant};

/// A stopwatch that accumulates elapsed time across start/stop cycles.
///
/// The `repro` harness uses this to split query cost into the same two parts
/// the paper's Figure 10(f) reports: OS generation vs. size-l computation.
#[derive(Debug)]
pub struct Stopwatch {
    accumulated: Duration,
    started: Option<Instant>,
}

impl Stopwatch {
    /// A fresh, stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Stopwatch { accumulated: Duration::ZERO, started: None }
    }

    /// Starts (or restarts) timing; a no-op if already running.
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Stops timing and folds the elapsed interval into the total.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.accumulated += t0.elapsed();
        }
    }

    /// Total accumulated time (including the running interval, if any).
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(t0) => self.accumulated + t0.elapsed(),
            None => self.accumulated,
        }
    }

    /// Times a closure and returns its result together with the duration.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
        let t0 = Instant::now();
        let out = f();
        (out, t0.elapsed())
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

/// Formats a duration in seconds with millisecond resolution, matching the
/// units of the paper's timing figures.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_cycles() {
        let mut sw = Stopwatch::new();
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        let first = sw.elapsed();
        assert!(first >= Duration::from_millis(4));
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        assert!(sw.elapsed() > first);
    }

    #[test]
    fn time_closure_returns_value() {
        let (v, d) = Stopwatch::time(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn fmt_secs_format() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500s");
    }
}
