//! Shared utilities for the `sizel` workspace.
//!
//! This crate deliberately has no external dependencies so that every other
//! crate in the workspace can rely on it without pulling anything in. It
//! provides:
//!
//! * [`prng`] — a deterministic, seedable PRNG (SplitMix64 seeding feeding a
//!   xoshiro256★★ stream) with the distributions the workload generators and
//!   the synthetic evaluator panel need (uniform ints/floats, normal,
//!   Zipfian). Data generation must be bit-reproducible across platforms and
//!   crate versions for the experiment tables in `EXPERIMENTS.md` to be
//!   comparable, which is why we do not use an external RNG crate here.
//! * [`float`] — a total-order wrapper for `f64` so scores can be used as
//!   priority-queue keys.
//! * [`timer`] — a tiny wall-clock stopwatch used by the benchmark harness.

pub mod float;
pub mod prng;
pub mod timer;

pub use float::F64Ord;
pub use prng::Prng;
pub use timer::Stopwatch;
