//! The continual-refresh worker: keep served top-l summaries fresh under
//! updates instead of recomputing on demand (the continual top-k line of
//! work — Xu, PAPERS.md — that the epoch subsystem was built to enable).
//!
//! One background thread per cluster watches the shards' mutation epochs.
//! When an epoch moves (the router signals after every apply; a fallback
//! interval sweep catches anything else), the worker asks each moved
//! shard to [`rewarm`](sizel_serve::SizeLServer::rewarm_hottest_auto)
//! its hottest summary keys under a skew-derived, capped **budget** — so
//! the cache entries a write just purged are recomputed *before*
//! steady-state readers of those keys arrive, and the refresh cost is
//! bounded per epoch bump rather than proportional to the cache.
//!
//! Freshness-correctness is inherited, not re-proven: the re-warm runs
//! under a shard read lock and keys every entry by the epoch read under
//! that same lock — exactly the staleness-impossible-by-construction
//! argument of the demand path — and `summarize` is deterministic, so a
//! refreshed entry is byte-identical to what the reader would have
//! computed. The worker can therefore never serve (or cause to be
//! served) anything the sequential engine would not.

//! ## Shutdown/notify race audit (ISSUE 7)
//!
//! The worker's condvar protocol was audited for the two races a
//! notify/drop pair can hit:
//!
//! * **A notify landing between the `wait_timeout` wake and re-lock.**
//!   Cannot be lost: `pending` is only written under the signal mutex,
//!   and `Condvar::wait_timeout` re-acquires that mutex *before*
//!   returning — a notify that fires while the worker is waking either
//!   finds it still waiting (wakeup delivered) or blocks on the mutex
//!   until the worker has re-checked `pending` under the lock. A notify
//!   landing between the worker's `*pending = false` and the sweep sets
//!   `pending` for the *next* iteration, which re-sweeps — at worst one
//!   redundant sweep, never a missed one.
//! * **`Drop` racing a sweep in flight.** `stop` is now re-checked
//!   between shards inside the sweep (not just once per wakeup), so a
//!   drop no longer waits out a full pass over every shard's re-warm
//!   budget; the worker owns its own `Arc`s to the shards, so the
//!   router's fields dropping first cannot free a shard under it.
//!
//! Two real defects were fixed: the signal mutex was locked with
//! `expect("refresh signal poisoned")` on **both** sides, so a panic in
//! the worker poisoned the lock and made the router's next
//! `notify` — including the one issued by `Drop` itself — panic too
//! (a double panic during unwind aborts the process). Both sides now
//! recover the flag. And the worker's last-seen epochs were thread-local,
//! so the serving stack could not export refresh *lag*; they now live in
//! shared per-shard atomics, surfaced via [`RefreshStats::last_epochs`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use sizel_serve::SizeLServer;
use sizel_storage::Epoch;

/// Continual-refresh configuration.
#[derive(Clone, Debug)]
pub struct RefreshConfig {
    /// Cap on hottest keys recomputed per shard per epoch bump. The
    /// actual per-pass budget is derived from the observed hot-key skew
    /// (`rewarm_hottest_auto`: the smallest sketch head covering 90% of
    /// the counted lookup mass, clamped to this cap) — what it does not
    /// cover is demand-filled as before.
    pub budget: usize,
    /// Fallback sweep interval: the worker re-checks shard epochs at
    /// least this often even without a router signal.
    pub interval: Duration,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig { budget: 32, interval: Duration::from_millis(50) }
    }
}

/// Counters of the refresh worker's activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Sweeps that checked every shard's epoch.
    pub passes: u64,
    /// Summary keys recomputed across all shards.
    pub rewarmed_keys: u64,
    /// Per shard: the epoch the worker last finished re-warming at (in
    /// shard order; empty when the worker is disabled). A shard's
    /// current epoch minus this value is its **refresh lag** — the
    /// metrics endpoint exposes it per shard, and a persistently
    /// non-zero lag means writes outpace the re-warm budget.
    pub last_epochs: Vec<u64>,
}

struct Shared {
    /// "An epoch may have moved" — set by the router, consumed by the
    /// worker.
    pending: Mutex<bool>,
    cv: Condvar,
    stop: AtomicBool,
    passes: AtomicU64,
    rewarmed_keys: AtomicU64,
    /// Per shard: the epoch of the last completed re-warm (mirrors the
    /// worker's sweep state so stats/metrics can compute lag).
    last_epochs: Vec<AtomicU64>,
}

/// Locks the signal flag, recovering from poisoning: the flag is a plain
/// bool (never torn), and panicking here would cascade into the router's
/// drop-time notify — a double panic that aborts the process.
fn lock_pending(shared: &Shared) -> MutexGuard<'_, bool> {
    match shared.pending.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            shared.pending.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// The background refresh thread; dropping it (via the router) stops and
/// joins the worker.
pub(crate) struct RefreshWorker {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl RefreshWorker {
    pub(crate) fn spawn(shards: Vec<Arc<SizeLServer>>, cfg: RefreshConfig) -> Self {
        let initial: Vec<Epoch> = shards.iter().map(|s| s.epoch()).collect();
        let shared = Arc::new(Shared {
            pending: Mutex::new(false),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            passes: AtomicU64::new(0),
            rewarmed_keys: AtomicU64::new(0),
            last_epochs: initial.iter().map(|e| AtomicU64::new(e.get())).collect(),
        });
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("sizel-cluster-refresh".into())
            .spawn(move || {
                let shared = worker_shared;
                let mut last: Vec<Epoch> = initial;
                loop {
                    {
                        let mut pending = lock_pending(&shared);
                        while !*pending && !shared.stop.load(Ordering::Acquire) {
                            let (guard, timeout) =
                                match shared.cv.wait_timeout(pending, cfg.interval) {
                                    Ok(woken) => woken,
                                    Err(poisoned) => {
                                        shared.pending.clear_poison();
                                        poisoned.into_inner()
                                    }
                                };
                            pending = guard;
                            if timeout.timed_out() {
                                break; // fallback sweep
                            }
                        }
                        *pending = false;
                    }
                    if shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    for (i, shard) in shards.iter().enumerate() {
                        // Re-check between shards: a drop mid-sweep must
                        // not wait out the remaining shards' budgets.
                        if shared.stop.load(Ordering::Acquire) {
                            return;
                        }
                        let epoch = shard.epoch();
                        if epoch != last[i] {
                            let warmed = shard.rewarm_hottest_auto(cfg.budget);
                            shared.rewarmed_keys.fetch_add(warmed as u64, Ordering::Relaxed);
                            last[i] = epoch;
                            shared.last_epochs[i].store(epoch.get(), Ordering::Relaxed);
                        }
                    }
                    shared.passes.fetch_add(1, Ordering::Relaxed);
                }
            })
            .expect("spawn refresh worker");
        RefreshWorker { shared, handle: Some(handle) }
    }

    /// Signals the worker that an epoch moved (called by the router after
    /// every apply).
    pub(crate) fn notify(&self) {
        let mut pending = lock_pending(&self.shared);
        *pending = true;
        self.shared.cv.notify_one();
    }

    pub(crate) fn stats(&self) -> RefreshStats {
        RefreshStats {
            passes: self.shared.passes.load(Ordering::Relaxed),
            rewarmed_keys: self.shared.rewarmed_keys.load(Ordering::Relaxed),
            last_epochs: self
                .shared
                .last_epochs
                .iter()
                .map(|e| e.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Drop for RefreshWorker {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.notify();
        if let Some(h) = self.handle.take() {
            // The worker checks `stop` right after every wakeup; a panic
            // here would mean it already panicked on its own.
            if let Err(e) = h.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(e);
                }
            }
        }
    }
}
