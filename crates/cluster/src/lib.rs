//! # sizel-cluster — multi-tenant sharded serving
//!
//! A [`ClusterRouter`] owns N independent [`SizeLServer`] shards and
//! routes queries and writes across them, in one of two modes:
//!
//! * **Partitioned** ([`ClusterRouter::partitioned`]): N replica engines
//!   of *one* logical database; each Data Subject is owned by exactly one
//!   shard via a deterministic TDS → shard hash
//!   ([`ClusterRouter::shard_of`]), so the expensive per-DS work —
//!   summary computation, cache residency, hotness tracking — partitions
//!   across shards while any shard can resolve the (cheap) keyword
//!   lookup. Cross-shard queries fan the per-DS jobs out to their owners
//!   and merge the answers back in rank order, byte-identical to one
//!   sequential engine (the equivalence suite proves it at every epoch).
//! * **Multi-tenant** ([`ClusterRouter::multi_tenant`]): one engine per
//!   tenant database; queries and writes name the tenant and route to
//!   its shard, isolating tenants' data, caches, and write paths.
//!
//! Writes go through [`ClusterRouter::apply_batch`]: mutations are
//! grouped per shard and applied through the engines' batched path (one
//! `DataGraph` rebuild and one posting settlement per incremental run —
//! see `SizeLEngine::apply_batch`), under a cluster-wide write gate so
//! readers always observe every shard at one consistent epoch. A
//! [`refresh::RefreshWorker`] per cluster watches epoch bumps and
//! proactively re-warms each shard's hottest summary keys under a budget
//! (continual top-k refresh à la Xu, PAPERS.md), so steady-state readers
//! of hot keys don't eat cold recomputes after writes.

use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use sizel_core::engine::{QueryOptions, QueryResult, ResultRanking, SizeLEngine};
use sizel_serve::{
    DiskTierConfig, Mutation, RecoveryReport, ServeConfig, ServerStats, SharedResult, SizeLServer,
};
use sizel_storage::{Epoch, StorageError, TupleRef};

pub mod refresh;

pub use refresh::{RefreshConfig, RefreshStats};
pub use sizel_serve::HotKey;

/// Cluster construction parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-shard server configuration.
    pub serve: ServeConfig,
    /// Continual-refresh worker configuration; `None` disables the
    /// worker (hot keys are then only demand-filled).
    pub refresh: Option<RefreshConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { serve: ServeConfig::default(), refresh: Some(RefreshConfig::default()) }
    }
}

/// Everything that can go wrong at the cluster layer.
#[derive(Debug)]
pub enum ClusterError {
    /// A shard's storage/engine layer rejected the operation.
    Storage(StorageError),
    /// The operation does not exist in this router's mode (e.g. a
    /// tenant-less query against a multi-tenant cluster).
    WrongMode(&'static str),
    /// No tenant with that name.
    UnknownTenant(String),
    /// Partitioned replicas disagreed (construction-time validation or a
    /// write that left shards at different epochs — a bug, surfaced
    /// rather than served).
    ReplicaMismatch(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Storage(e) => write!(f, "shard storage error: {e}"),
            ClusterError::WrongMode(m) => write!(f, "wrong cluster mode: {m}"),
            ClusterError::UnknownTenant(t) => write!(f, "unknown tenant `{t}`"),
            ClusterError::ReplicaMismatch(m) => write!(f, "replica mismatch: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<StorageError> for ClusterError {
    fn from(e: StorageError) -> Self {
        ClusterError::Storage(e)
    }
}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// How the router maps work to shards.
#[derive(Debug)]
enum Mode {
    /// Replicas of one database; DS ownership by TDS hash.
    Partitioned,
    /// One engine per tenant; name → shard index.
    MultiTenant(HashMap<String, usize>),
}

/// Per-cluster aggregate view: every shard's counters plus their sum.
#[derive(Clone, Debug, Default)]
pub struct ClusterStats {
    /// One entry per shard, in shard order.
    pub per_shard: Vec<ServerStats>,
    /// The shards' mutation epochs, in shard order.
    pub epochs: Vec<Epoch>,
    /// Refresh-worker counters (zeroes when the worker is disabled).
    pub refresh: RefreshStats,
}

impl ClusterStats {
    /// Sums a counter across shards.
    pub fn total<F: Fn(&ServerStats) -> u64>(&self, f: F) -> u64 {
        self.per_shard.iter().map(f).sum()
    }
}

/// The shard router (see module docs).
pub struct ClusterRouter {
    shards: Vec<Arc<SizeLServer>>,
    mode: Mode,
    /// Cluster-wide epoch gate: queries hold it shared, applies hold it
    /// exclusively while mutating *every* affected shard — so a reader
    /// can never observe shard A at the new epoch and shard B at the old
    /// one (torn cross-shard results are impossible by construction, the
    /// cluster analogue of the serve layer's epoch-keyed cache proof).
    gate: RwLock<()>,
    refresh: Option<refresh::RefreshWorker>,
}

/// FNV-1a over the `(table, row)` identity — process-independent, so a
/// DS's owner shard is stable across restarts and (because appends never
/// renumber existing rows) across incremental writes; only a shard-count
/// change rebalances.
fn fnv_shard(tds: TupleRef, n_shards: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0100_0000_01b3;
    let mut h = OFFSET;
    for b in tds.table.0.to_le_bytes().into_iter().chain(tds.row.0.to_le_bytes()) {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    (h % n_shards as u64) as usize
}

impl ClusterRouter {
    /// A partitioned cluster over N replica engines of one database
    /// (build them identically — same data, same config; validated
    /// cheaply here). Queries route per Data Subject by
    /// [`ClusterRouter::shard_of`]; writes apply to every replica under
    /// the cluster gate.
    pub fn partitioned(engines: Vec<SizeLEngine>, cfg: ClusterConfig) -> Result<Self> {
        if engines.is_empty() {
            return Err(ClusterError::ReplicaMismatch("at least one shard required".into()));
        }
        let (epoch, tuples) = (engines[0].epoch(), engines[0].db().total_tuples());
        for (i, e) in engines.iter().enumerate() {
            if e.epoch() != epoch || e.db().total_tuples() != tuples {
                return Err(ClusterError::ReplicaMismatch(format!(
                    "shard {i} disagrees with shard 0 (epoch {} vs {}, {} vs {} tuples)",
                    e.epoch(),
                    epoch,
                    e.db().total_tuples(),
                    tuples
                )));
            }
        }
        Ok(Self::assemble(engines, Mode::Partitioned, cfg))
    }

    /// A multi-tenant cluster: one engine per named tenant database.
    pub fn multi_tenant(tenants: Vec<(String, SizeLEngine)>, cfg: ClusterConfig) -> Result<Self> {
        if tenants.is_empty() {
            return Err(ClusterError::ReplicaMismatch("at least one tenant required".into()));
        }
        let mut by_name = HashMap::with_capacity(tenants.len());
        let mut engines = Vec::with_capacity(tenants.len());
        for (i, (name, engine)) in tenants.into_iter().enumerate() {
            if by_name.insert(name.clone(), i).is_some() {
                return Err(ClusterError::ReplicaMismatch(format!("duplicate tenant `{name}`")));
            }
            engines.push(engine);
        }
        Ok(Self::assemble(engines, Mode::MultiTenant(by_name), cfg))
    }

    fn assemble(engines: Vec<SizeLEngine>, mode: Mode, cfg: ClusterConfig) -> Self {
        let shards: Vec<Arc<SizeLServer>> =
            engines.into_iter().map(|e| Arc::new(SizeLServer::new(e, cfg.serve.clone()))).collect();
        let refresh = cfg.refresh.map(|rc| refresh::RefreshWorker::spawn(shards.clone(), rc));
        ClusterRouter { shards, mode, gate: RwLock::new(()), refresh }
    }

    /// Takes the cluster gate shared, recovering from poisoning: the
    /// gate guards no data (it is a `RwLock<()>` ordering fence), so a
    /// panic under the exclusive side carries no torn state — before
    /// this recovery, one panicking apply turned every subsequent query
    /// on every shard into a panic.
    fn read_gate(&self) -> RwLockReadGuard<'_, ()> {
        match self.gate.read() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.gate.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Takes the cluster gate exclusively (see [`ClusterRouter::read_gate`]
    /// for the poison-recovery rationale).
    fn write_gate(&self) -> RwLockWriteGuard<'_, ()> {
        match self.gate.write() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.gate.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Tenant names with their shard indexes, in shard order (empty for
    /// a partitioned cluster) — the metrics endpoint labels per-shard
    /// series with these.
    pub fn tenant_names(&self) -> Vec<(String, usize)> {
        match &self.mode {
            Mode::MultiTenant(by_name) => {
                let mut names: Vec<(String, usize)> =
                    by_name.iter().map(|(n, &s)| (n.clone(), s)).collect();
                names.sort_by_key(|(_, s)| *s);
                names
            }
            Mode::Partitioned => Vec::new(),
        }
    }

    /// Direct access to one shard's server (stats, diagnostics).
    pub fn shard(&self, i: usize) -> &SizeLServer {
        &self.shards[i]
    }

    /// The owner shard of a Data Subject (partitioned mode's routing
    /// function): deterministic FNV-1a over the tuple identity.
    pub fn shard_of(&self, tds: TupleRef) -> usize {
        fnv_shard(tds, self.shards.len())
    }

    /// The tenant's shard index.
    pub fn tenant_shard(&self, tenant: &str) -> Result<usize> {
        match &self.mode {
            Mode::MultiTenant(by_name) => by_name
                .get(tenant)
                .copied()
                .ok_or_else(|| ClusterError::UnknownTenant(tenant.to_owned())),
            Mode::Partitioned => {
                Err(ClusterError::WrongMode("tenant routing needs a multi-tenant cluster"))
            }
        }
    }

    /// Runs one keyword query across the partitioned cluster: the
    /// keyword lookup resolves on shard 0 (any replica could), each hit's
    /// summary is computed by its owner shard, and the merged result is
    /// byte-identical to the sequential single-engine answer.
    pub fn query(&self, keywords: &str, opts: QueryOptions) -> Result<Vec<SharedResult>> {
        self.batch_query(&[(keywords.to_owned(), opts)]).map(|mut r| r.pop().expect("one request"))
    }

    /// Cross-shard batch fan-out/merge (partitioned mode): all requests'
    /// keyword lookups resolve under one read pass, the per-DS summary
    /// jobs are grouped by owner shard and served by every owner's worker
    /// pool concurrently, and the answers are reassembled per request in
    /// rank order.
    pub fn batch_query(
        &self,
        requests: &[(String, QueryOptions)],
    ) -> Result<Vec<Vec<SharedResult>>> {
        self.batch_query_at(requests).map(|(_, results)| results)
    }

    /// [`ClusterRouter::batch_query`] plus the consistent cluster epoch
    /// the batch was served at — read under the *same* gate hold as the
    /// fan-out, so a network front-end can stamp every reply with the
    /// exact version of the data it was computed from (the wire-level
    /// analogue of the serve cache's epoch-keyed staleness proof).
    pub fn batch_query_at(
        &self,
        requests: &[(String, QueryOptions)],
    ) -> Result<(Epoch, Vec<Vec<SharedResult>>)> {
        if !matches!(self.mode, Mode::Partitioned) {
            return Err(ClusterError::WrongMode(
                "tenant-less queries need a partitioned cluster (see query_tenant)",
            ));
        }
        let _epoch_gate = self.read_gate();
        // Writes hold the gate exclusively, so every shard sits at this
        // epoch for the whole fan-out.
        let epoch = self.shards[0].epoch();
        // Resolve every request's DS hits on one replica.
        let hits_per_request: Vec<Vec<TupleRef>> = {
            let engine = self.shards[0].engine();
            requests.iter().map(|(kw, _)| engine.ds_hits(kw)).collect()
        };
        // Group the per-DS jobs by owner shard, remembering where each
        // answer goes: (request index, hit index within the request).
        let mut per_shard: Vec<Vec<(usize, usize, TupleRef, QueryOptions)>> =
            vec![Vec::new(); self.shards.len()];
        for (ri, hits) in hits_per_request.iter().enumerate() {
            let opts = requests[ri].1;
            for (hi, &tds) in hits.iter().enumerate() {
                per_shard[self.shard_of(tds)].push((ri, hi, tds, opts));
            }
        }
        // Fan out: every owner shard's pool works its group concurrently.
        let mut slots: Vec<Vec<Option<SharedResult>>> =
            hits_per_request.iter().map(|h| vec![None; h.len()]).collect();
        std::thread::scope(|scope| {
            let tasks: Vec<_> = per_shard
                .iter()
                .enumerate()
                .filter(|(_, items)| !items.is_empty())
                .map(|(si, items)| {
                    let shard = &self.shards[si];
                    scope.spawn(move || {
                        let batch: Vec<(TupleRef, QueryOptions)> =
                            items.iter().map(|&(_, _, tds, opts)| (tds, opts)).collect();
                        shard.summarize_batch(&batch)
                    })
                })
                .collect();
            let groups: Vec<Vec<SharedResult>> =
                tasks.into_iter().map(|t| t.join().expect("shard fan-out task")).collect();
            for (items, results) in per_shard.iter().filter(|i| !i.is_empty()).zip(groups) {
                for (&(ri, hi, _, _), result) in items.iter().zip(results) {
                    slots[ri][hi] = Some(result);
                }
            }
        });
        // Merge: per request, hits order (the paper's global-importance
        // rank) or the summary-importance reorder — the exact comparator
        // the sequential engine uses.
        let merged = slots
            .into_iter()
            .zip(requests)
            .map(|(row, (_, opts))| {
                let mut results: Vec<SharedResult> =
                    row.into_iter().map(|s| s.expect("every hit was summarized")).collect();
                if opts.ranking == ResultRanking::SummaryImportance {
                    results.sort_by(|a, b| {
                        b.result.importance.total_cmp(&a.result.importance).then(a.tds.cmp(&b.tds))
                    });
                }
                results
            })
            .collect();
        Ok((epoch, merged))
    }

    /// Cache-only, never-blocking form of [`ClusterRouter::batch_query_at`]
    /// for the network layer's inline fast path: succeeds only when the
    /// *entire* batch — gate, keyword lookups, and every hit's summary —
    /// can be served without waiting on any lock or computing anything.
    /// Any contention or any cache miss returns `None` and the caller
    /// dispatches the request through the worker queue instead.
    ///
    /// Consistency is the same argument as the blocking path: the gate is
    /// held (shared) across the whole probe, so every shard sits at one
    /// epoch, and each per-shard probe reads that epoch under the same
    /// try-acquired engine guard as its cache lookup. Every `try_*` here
    /// is non-blocking by construction — a queued writer on any lock
    /// makes the probe fail, never wait.
    pub fn try_batch_query_cached(
        &self,
        requests: &[(String, QueryOptions)],
    ) -> Option<(Epoch, Vec<Vec<SharedResult>>)> {
        if !matches!(self.mode, Mode::Partitioned) {
            return None;
        }
        let _epoch_gate = self.gate.try_read().ok()?;
        let engine0 = self.shards[0].try_engine()?;
        let epoch = engine0.epoch();
        let mut merged = Vec::with_capacity(requests.len());
        for (kw, opts) in requests {
            let hits = engine0.ds_hits(kw);
            let mut results = Vec::with_capacity(hits.len());
            for tds in hits {
                // Owner-shard probe. For shard 0 this re-try-reads a lock
                // this thread already holds shared — which cannot block
                // and at worst fails (pending writer), falling back.
                let (e, hit) = self.shards[self.shard_of(tds)].try_summarize_cached(tds, *opts)?;
                debug_assert_eq!(e, epoch, "gate held: every shard serves one epoch");
                results.push(hit);
            }
            if opts.ranking == ResultRanking::SummaryImportance {
                results.sort_by(|a, b| {
                    b.result.importance.total_cmp(&a.result.importance).then(a.tds.cmp(&b.tds))
                });
            }
            merged.push(results);
        }
        Some((epoch, merged))
    }

    /// Cache-only, never-blocking form of [`ClusterRouter::summarize_at`]
    /// (see [`ClusterRouter::try_batch_query_cached`] for the contract).
    pub fn try_summarize_cached_at(
        &self,
        tds: TupleRef,
        opts: QueryOptions,
    ) -> Option<(Epoch, SharedResult)> {
        if !matches!(self.mode, Mode::Partitioned) {
            return None;
        }
        let _epoch_gate = self.gate.try_read().ok()?;
        // The owner's epoch IS the cluster epoch while the gate is held.
        self.shards[self.shard_of(tds)].try_summarize_cached(tds, opts)
    }

    /// Computes one `(t_DS, options)` summary on its owner shard
    /// (partitioned mode), returning it with the cluster epoch it was
    /// served at — the per-DS unit the wire protocol's `Summarize` frame
    /// maps to.
    pub fn summarize_at(&self, tds: TupleRef, opts: QueryOptions) -> Result<(Epoch, SharedResult)> {
        if !matches!(self.mode, Mode::Partitioned) {
            return Err(ClusterError::WrongMode(
                "tenant-less summaries need a partitioned cluster",
            ));
        }
        let _epoch_gate = self.read_gate();
        let epoch = self.shards[0].epoch();
        Ok((epoch, self.shards[self.shard_of(tds)].summarize(tds, opts)))
    }

    /// Runs one keyword query against a tenant's shard.
    pub fn query_tenant(
        &self,
        tenant: &str,
        keywords: &str,
        opts: QueryOptions,
    ) -> Result<Vec<SharedResult>> {
        self.query_tenant_at(tenant, keywords, opts).map(|(_, results)| results)
    }

    /// [`ClusterRouter::query_tenant`] plus the tenant shard's epoch,
    /// read under the same gate hold as the query (see
    /// [`ClusterRouter::batch_query_at`]).
    pub fn query_tenant_at(
        &self,
        tenant: &str,
        keywords: &str,
        opts: QueryOptions,
    ) -> Result<(Epoch, Vec<SharedResult>)> {
        let shard = self.tenant_shard(tenant)?;
        let _epoch_gate = self.read_gate();
        let epoch = self.shards[shard].epoch();
        Ok((epoch, self.shards[shard].query(keywords, opts)))
    }

    /// Applies one mutation cluster-wide (partitioned mode: every
    /// replica) under the exclusive gate. Returns the shards' common new
    /// epoch.
    pub fn apply(&self, m: Mutation) -> Result<Epoch> {
        self.apply_batch(vec![m])
    }

    /// The batched write path (partitioned mode): the whole batch applies
    /// to every replica through `SizeLEngine::apply_batch` — one
    /// `DataGraph` rebuild and one posting settlement per shard per
    /// incremental run — under the exclusive cluster gate, then the
    /// refresh worker is signalled. Returns the common new epoch;
    /// replicas ending at different epochs (impossible for deterministic
    /// mutation streams) surface as [`ClusterError::ReplicaMismatch`].
    pub fn apply_batch(&self, ms: Vec<Mutation>) -> Result<Epoch> {
        if !matches!(self.mode, Mode::Partitioned) {
            return Err(ClusterError::WrongMode(
                "tenant-less writes need a partitioned cluster (see apply_batch_grouped)",
            ));
        }
        let _epoch_gate = self.write_gate();
        let mut epochs = Vec::with_capacity(self.shards.len());
        let mut failure: Option<StorageError> = None;
        for shard in &self.shards {
            // Replicas apply the same stream; a deterministic rejection
            // hits every shard at the same prefix, keeping them aligned.
            match shard.apply_batch(ms.clone()) {
                Ok(e) => epochs.push(e),
                Err(e) => {
                    epochs.push(shard.epoch());
                    failure.get_or_insert(e);
                }
            }
        }
        if let Some(e) = failure {
            self.notify_refresh();
            return Err(e.into());
        }
        if epochs.windows(2).any(|w| w[0] != w[1]) {
            return Err(ClusterError::ReplicaMismatch(format!("epochs diverged: {epochs:?}")));
        }
        self.notify_refresh();
        Ok(epochs[0])
    }

    /// The multi-tenant batched write path: mutations are grouped per
    /// tenant shard (preserving each tenant's order) and applied through
    /// each shard's batched path under the exclusive gate. Returns each
    /// touched tenant's new epoch, in first-touch order.
    pub fn apply_batch_grouped(&self, ms: Vec<(String, Mutation)>) -> Result<Vec<(String, Epoch)>> {
        let mut groups: Vec<(String, usize, Vec<Mutation>)> = Vec::new();
        for (tenant, m) in ms {
            let shard = self.tenant_shard(&tenant)?;
            match groups.iter_mut().find(|(_, s, _)| *s == shard) {
                Some((_, _, batch)) => batch.push(m),
                None => groups.push((tenant, shard, vec![m])),
            }
        }
        let _epoch_gate = self.write_gate();
        let mut epochs = Vec::with_capacity(groups.len());
        for (tenant, shard, batch) in groups {
            let e = self.shards[shard].apply_batch(batch).map_err(|e| {
                self.notify_refresh();
                ClusterError::Storage(e)
            })?;
            epochs.push((tenant, e));
        }
        self.notify_refresh();
        Ok(epochs)
    }

    /// Attaches a disk tier to **every** shard under the exclusive gate:
    /// shard `i` gets its own WAL and segment store under
    /// `base_dir/shard-<i>`, so replicas (and tenants) log and page
    /// independently — a replica's recovery replays *its own* WAL
    /// against its own base, and the deterministic mutation stream keeps
    /// replicas aligned exactly as the write path does. Any replay may
    /// advance shard epochs, so the refresh worker is signalled after.
    ///
    /// Returns each shard's [`RecoveryReport`] in shard order.
    pub fn attach_disk_tier(
        &self,
        base_dir: &std::path::Path,
        cfg: &DiskTierConfig,
    ) -> Result<Vec<RecoveryReport>> {
        let _epoch_gate = self.write_gate();
        let mut reports = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let mut per_shard = cfg.clone();
            per_shard.dir = base_dir.join(format!("shard-{i}"));
            reports.push(shard.attach_disk(per_shard)?);
        }
        self.notify_refresh();
        Ok(reports)
    }

    /// Per-shard counters, epochs, and refresh-worker activity.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            per_shard: self.shards.iter().map(|s| s.stats()).collect(),
            epochs: self.shards.iter().map(|s| s.epoch()).collect(),
            refresh: self.refresh.as_ref().map(|r| r.stats()).unwrap_or_default(),
        }
    }

    fn notify_refresh(&self) {
        if let Some(r) = &self.refresh {
            r.notify();
        }
    }
}

// QueryResult rides through the router inside Arc'd SharedResults.
#[allow(dead_code)]
fn _assert_result_shareable(r: SharedResult) -> Arc<QueryResult> {
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizel_storage::{RowId, TableId};

    #[test]
    fn shard_hash_is_deterministic_and_spreads() {
        let tds = |t: u16, r: u32| TupleRef::new(TableId(t), RowId(r));
        // Stable across calls (and, being pure FNV-1a over the identity,
        // across processes).
        assert_eq!(fnv_shard(tds(1, 7), 4), fnv_shard(tds(1, 7), 4));
        // Different identities spread over shards.
        let mut seen = [false; 4];
        for r in 0..64 {
            seen[fnv_shard(tds(0, r), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 subjects cover all 4 shards");
        // Single shard degenerates to 0.
        assert_eq!(fnv_shard(tds(3, 9), 1), 0);
    }

    #[test]
    fn cluster_error_formats() {
        let e = ClusterError::UnknownTenant("acme".into());
        assert!(e.to_string().contains("acme"));
        assert!(ClusterError::WrongMode("x").to_string().contains("x"));
        let s: ClusterError = StorageError::UnknownTable("nope".into()).into();
        assert!(s.to_string().contains("nope"));
    }
}
