//! The cluster equivalence oracle (ISSUE 5 acceptance): a partitioned
//! cluster — sharded per-DS serving, **batched** mutation apply, and the
//! continual-refresh worker running — must produce output byte-identical
//! to one sequential single-engine baseline **at every epoch** of the
//! mutation stream. Plus the multi-tenant mode's isolation guarantees.

use std::time::{Duration, Instant};

use sizel_cluster::{ClusterConfig, ClusterError, ClusterRouter, RefreshConfig};
use sizel_core::engine::{QueryOptions, ResultRanking, SizeLEngine};
use sizel_core::osgen::OsSource;
use sizel_core::test_fixtures::max_pk;
use sizel_datagen::dblp::DblpConfig;
use sizel_serve::{Mutation, ServeConfig};
use sizel_storage::Value;

mod common;
use common::{build_engine, existing_keyword, fingerprint, replicas};

fn test_cluster_config(refresh: bool) -> ClusterConfig {
    ClusterConfig {
        serve: ServeConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 256,
            cache_shards: 4,
            hot_capacity: 32,
        },
        refresh: refresh.then(|| RefreshConfig { budget: 16, interval: Duration::from_millis(10) }),
    }
}

/// Batches of mutations with intra-batch references (junction rows
/// naming authors/papers created earlier in the same batch), ending in a
/// mixed batch (ISSUE 6): a retitle, a rename-then-delete chained behind
/// the junction delete that frees the row, and a fresh insert — all in
/// one settlement.
fn mutation_batches(e: &SizeLEngine) -> Vec<Vec<Mutation>> {
    let (a, p, j) =
        (max_pk(e.db(), "Author"), max_pk(e.db(), "Paper"), max_pk(e.db(), "AuthorPaper"));
    let year_pk = {
        let t = e.db().table(e.db().table_id("Year").unwrap());
        t.pk_of(sizel_storage::RowId(0))
    };
    vec![
        vec![
            Mutation::insert("Author", vec![Value::Int(a + 1), "Quorra Veldt".into()]),
            Mutation::insert(
                "AuthorPaper",
                vec![Value::Int(j + 1), Value::Int(a + 1), Value::Int(p)],
            ),
        ],
        vec![
            Mutation::insert(
                "Paper",
                vec![Value::Int(p + 1), "veldt summaries revisited".into(), Value::Int(year_pk)],
            ),
            Mutation::insert(
                "AuthorPaper",
                vec![Value::Int(j + 2), Value::Int(a + 1), Value::Int(p + 1)],
            ),
            Mutation::insert("Author", vec![Value::Int(a + 2), "Brann Oxley".into()]),
            Mutation::insert(
                "AuthorPaper",
                vec![Value::Int(j + 3), Value::Int(a + 2), Value::Int(p + 1)],
            ),
        ],
        vec![
            Mutation::update(
                "Paper",
                p + 1,
                vec![Value::Int(p + 1), "veldt summaries reiterated".into(), Value::Int(year_pk)],
            ),
            Mutation::update("Author", a + 2, vec![Value::Int(a + 2), "Brann Quillfeather".into()]),
            Mutation::delete("AuthorPaper", j + 3),
            Mutation::delete("Author", a + 2),
            Mutation::insert("Author", vec![Value::Int(a + 3), "Mirelle Stroud".into()]),
        ],
    ]
}

/// Queries covering pre-existing and inserted DSs, both sources, both
/// rankings.
fn query_set(existing: &str) -> Vec<(String, QueryOptions)> {
    let mut set = Vec::new();
    for kw in [existing, "Quorra", "Veldt", "Brann", "veldt", "Oxley", "reiterated", "Mirelle"] {
        for (prelim, source) in
            [(true, OsSource::DataGraph), (false, OsSource::DataGraph), (true, OsSource::Database)]
        {
            set.push((kw.to_owned(), QueryOptions { l: 8, prelim, source, ..Default::default() }));
        }
        set.push((
            kw.to_owned(),
            QueryOptions { l: 6, ranking: ResultRanking::SummaryImportance, ..Default::default() },
        ));
    }
    set
}

#[test]
fn sharded_batched_refreshed_cluster_is_byte_identical_to_sequential_engine_at_every_epoch() {
    let cfg = DblpConfig::tiny();
    let cluster = ClusterRouter::partitioned(replicas(&cfg, 3), test_cluster_config(true))
        .expect("cluster builds");
    let mut baseline = build_engine(&cfg);
    let set = query_set(&existing_keyword(&baseline));
    let batches = mutation_batches(&baseline);

    for step in 0..=batches.len() {
        // Twice per epoch: the second pass reads the (possibly refreshed)
        // caches — byte-identical either way.
        for round in 0..2 {
            for (kw, opts) in &set {
                let got = cluster.query(kw, *opts).expect("partitioned query");
                let want = baseline.query_with(kw, *opts);
                assert_eq!(
                    fingerprint(&got),
                    fingerprint(&want),
                    "step {step} round {round}: {kw:?} {opts:?} diverged from the baseline"
                );
            }
        }
        if let Some(batch) = batches.get(step) {
            let epoch = cluster.apply_batch(batch.clone()).expect("batched apply");
            for m in batch.clone() {
                baseline.apply(m).expect("baseline fold");
            }
            assert_eq!(epoch, baseline.epoch(), "step {step}: cluster epoch diverged");
            let stats = cluster.stats();
            assert!(stats.epochs.iter().all(|&e| e == epoch), "replica epochs aligned");
        }
    }

    // The work really partitioned: more than one shard computed
    // summaries for the query set.
    let stats = cluster.stats();
    let active = stats.per_shard.iter().filter(|s| s.summaries_computed > 0).count();
    assert!(active >= 2, "per-DS work spread over {active} shard(s): {stats:?}");
    assert_eq!(
        stats.total(|s| s.mutations_applied),
        (batches.iter().map(Vec::len).sum::<usize>() * cluster.shards()) as u64,
        "every replica absorbed every mutation"
    );
}

#[test]
fn batch_query_fans_out_and_merges_in_rank_order() {
    let cfg = DblpConfig::tiny();
    let cluster = ClusterRouter::partitioned(replicas(&cfg, 4), test_cluster_config(false))
        .expect("cluster builds");
    let baseline = build_engine(&cfg);
    let kw = existing_keyword(&baseline);
    let requests: Vec<(String, QueryOptions)> = vec![
        (kw.clone(), QueryOptions { l: 8, ..Default::default() }),
        (kw.clone(), QueryOptions { l: 5, prelim: false, ..Default::default() }),
        (
            kw.clone(),
            QueryOptions { l: 6, ranking: ResultRanking::SummaryImportance, ..Default::default() },
        ),
        ("zzz-no-such-keyword".into(), QueryOptions::default()),
    ];
    let got = cluster.batch_query(&requests).expect("batch fan-out");
    assert_eq!(got.len(), requests.len());
    for ((kw, opts), row) in requests.iter().zip(&got) {
        assert_eq!(
            fingerprint(row),
            fingerprint(&baseline.query_with(kw, *opts)),
            "{kw:?} {opts:?} diverged after the merge"
        );
    }
    assert!(got[3].is_empty(), "unknown keywords stay empty through the router");
}

#[test]
fn refresh_worker_rewarms_hot_keys_so_readers_skip_cold_recomputes() {
    let cfg = DblpConfig::tiny();
    let cluster = ClusterRouter::partitioned(replicas(&cfg, 2), test_cluster_config(true))
        .expect("cluster builds");
    let baseline = build_engine(&cfg);
    let kw = existing_keyword(&baseline);
    let opts = QueryOptions { l: 8, ..Default::default() };

    // Heat the key set.
    for _ in 0..4 {
        let _ = cluster.query(&kw, opts).unwrap();
    }

    // A batched write purges every shard's cache; the refresh worker is
    // signalled and must re-warm the hot keys within its budget.
    let a = max_pk(baseline.db(), "Author");
    cluster
        .apply_batch(vec![Mutation::insert(
            "Author",
            vec![Value::Int(a + 1), "Refresh Probe".into()],
        )])
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.stats().refresh.rewarmed_keys == 0 {
        assert!(Instant::now() < deadline, "refresh worker never re-warmed: {:?}", cluster.stats());
        std::thread::sleep(Duration::from_millis(5));
    }

    // The steady-state reader of the hot key is now served without any
    // new summary computation — the refresh paid the cold recomputes.
    let computed_before: Vec<u64> =
        cluster.stats().per_shard.iter().map(|s| s.summaries_computed).collect();
    let got = cluster.query(&kw, opts).unwrap();
    let computed_after: Vec<u64> =
        cluster.stats().per_shard.iter().map(|s| s.summaries_computed).collect();
    assert_eq!(
        computed_before, computed_after,
        "hot-key readers must not eat cold recomputes after a refreshed write"
    );
    // And what the refresh warmed is byte-identical to the live baseline.
    let mut baseline = baseline;
    baseline
        .apply(Mutation::insert("Author", vec![Value::Int(a + 1), "Refresh Probe".into()]))
        .unwrap();
    assert_eq!(fingerprint(&got), fingerprint(&baseline.query_with(&kw, opts)));
}

#[test]
fn multi_tenant_mode_isolates_tenants_and_groups_batches() {
    let cfg = DblpConfig::tiny();
    let cluster = ClusterRouter::multi_tenant(
        vec![("acme".into(), build_engine(&cfg)), ("globex".into(), build_engine(&cfg))],
        test_cluster_config(false),
    )
    .expect("cluster builds");

    // Wrong-mode and unknown-tenant routing errors.
    assert!(matches!(
        cluster.query("anything", QueryOptions::default()),
        Err(ClusterError::WrongMode(_))
    ));
    assert!(matches!(
        cluster.query_tenant("nope", "anything", QueryOptions::default()),
        Err(ClusterError::UnknownTenant(_))
    ));
    assert!(matches!(cluster.apply_batch(vec![]), Err(ClusterError::WrongMode(_))));

    // A mixed grouped batch (inserts, an update, a delete) routes each
    // tenant's mutations to its own shard, in order.
    let (a, p, j) = {
        let e = cluster.shard(0).engine();
        (max_pk(e.db(), "Author"), max_pk(e.db(), "Paper"), max_pk(e.db(), "AuthorPaper"))
    };
    let epochs = cluster
        .apply_batch_grouped(vec![
            (
                "acme".into(),
                Mutation::insert("Author", vec![Value::Int(a + 1), "Acme Author".into()]),
            ),
            (
                "acme".into(),
                Mutation::insert(
                    "AuthorPaper",
                    vec![Value::Int(j + 1), Value::Int(a + 1), Value::Int(p)],
                ),
            ),
            (
                "globex".into(),
                Mutation::insert("Author", vec![Value::Int(a + 1), "Globex Author".into()]),
            ),
            (
                "globex".into(),
                Mutation::insert("Author", vec![Value::Int(a + 2), "Globex Temp".into()]),
            ),
            (
                "acme".into(),
                Mutation::update(
                    "Author",
                    a + 1,
                    vec![Value::Int(a + 1), "Acme Author Prime".into()],
                ),
            ),
            ("globex".into(), Mutation::delete("Author", a + 2)),
        ])
        .expect("grouped batch applies");
    assert_eq!(epochs.len(), 2, "one epoch per touched tenant");

    // Isolation: each tenant sees its own writes — updates and deletes
    // included — and nobody else's.
    let opts = QueryOptions { l: 8, ..Default::default() };
    let acme = cluster.query_tenant("acme", "Acme", opts).unwrap();
    assert_eq!(acme.len(), 1);
    assert_eq!(cluster.query_tenant("acme", "Prime", opts).unwrap().len(), 1, "update landed");
    assert!(cluster.query_tenant("acme", "Globex", opts).unwrap().is_empty());
    let globex = cluster.query_tenant("globex", "Globex", opts).unwrap();
    assert_eq!(globex.len(), 1);
    assert!(cluster.query_tenant("globex", "Temp", opts).unwrap().is_empty(), "delete landed");
    assert!(cluster.query_tenant("globex", "Acme", opts).unwrap().is_empty());

    // Each tenant's answers equal a sequential engine given the same
    // tenant-local mutation stream.
    let mut acme_baseline = build_engine(&cfg);
    acme_baseline
        .apply(Mutation::insert("Author", vec![Value::Int(a + 1), "Acme Author".into()]))
        .unwrap();
    acme_baseline
        .apply(Mutation::insert(
            "AuthorPaper",
            vec![Value::Int(j + 1), Value::Int(a + 1), Value::Int(p)],
        ))
        .unwrap();
    acme_baseline
        .apply(Mutation::update(
            "Author",
            a + 1,
            vec![Value::Int(a + 1), "Acme Author Prime".into()],
        ))
        .unwrap();
    assert_eq!(fingerprint(&acme), fingerprint(&acme_baseline.query_with("Acme", opts)));
}

#[test]
fn replica_validation_rejects_mismatched_shards() {
    let a = build_engine(&DblpConfig::tiny());
    let mut b = build_engine(&DblpConfig::tiny());
    let pk = max_pk(b.db(), "Author") + 1;
    b.apply(Mutation::insert("Author", vec![Value::Int(pk), "Drift".into()])).unwrap();
    assert!(matches!(
        ClusterRouter::partitioned(vec![a, b], test_cluster_config(false)),
        Err(ClusterError::ReplicaMismatch(_))
    ));
    assert!(matches!(
        ClusterRouter::partitioned(vec![], test_cluster_config(false)),
        Err(ClusterError::ReplicaMismatch(_))
    ));
}
