//! Shared fixture for the cluster integration tests: small DBLP engines
//! (Author + Paper DS relations, GA1) — the same stack the serve-layer
//! suites compare against, built N times for replica shards.

#![allow(dead_code, unused_imports)] // each test binary uses the subset it needs

use sizel_core::engine::{EngineConfig, SizeLEngine};
use sizel_datagen::dblp::{generate, DblpConfig};
use sizel_graph::presets;
use sizel_rank::{dblp_ga, GaPreset};

/// The canonical byte-exact result fingerprint (shared with every other
/// equivalence oracle in the workspace).
pub use sizel_core::test_fixtures::result_fingerprint as fingerprint;

/// A fresh engine over `cfg`.
pub fn build_engine(cfg: &DblpConfig) -> SizeLEngine {
    SizeLEngine::build(
        generate(cfg).db,
        |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
        engine_config(),
    )
    .expect("engine builds")
}

/// N identically-built replica engines (the generator is a pure function
/// of the config seed, so these are byte-for-byte the same database).
pub fn replicas(cfg: &DblpConfig, n: usize) -> Vec<SizeLEngine> {
    (0..n).map(|_| build_engine(cfg)).collect()
}

/// The engine configuration every fixture shares.
pub fn engine_config() -> EngineConfig {
    EngineConfig::new(vec![
        ("Author".into(), presets::dblp_author_gds_config()),
        ("Paper".into(), presets::dblp_paper_gds_config()),
    ])
}

/// A keyword resolving to pre-existing DS tuples of the fixture.
pub fn existing_keyword(engine: &SizeLEngine) -> String {
    let tid = engine.db().table_id("Author").unwrap();
    let name =
        engine.db().table(tid).value(sizel_storage::RowId(0), 1).as_str().unwrap().to_owned();
    name.split(' ').next().unwrap().to_owned()
}
