//! Per-shard disk tiers under the cluster write gate: every replica
//! owns its own WAL + segment directory (`shard-<i>`), logs the same
//! deterministic write stream, and recovers independently — a rebuilt
//! cluster that re-attaches the same base directory replays every
//! shard's WAL and answers byte-identically to the survivor.

mod common;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use common::{build_engine, existing_keyword, fingerprint, replicas};
use sizel_cluster::{ClusterConfig, ClusterRouter};
use sizel_core::engine::QueryOptions;
use sizel_datagen::dblp::DblpConfig;
use sizel_serve::{DiskTierConfig, Mutation};
use sizel_storage::Value;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "sizel-cluster-disk-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cluster(shards: usize) -> ClusterRouter {
    let mut cfg = ClusterConfig::default();
    cfg.serve.workers = 1;
    ClusterRouter::partitioned(replicas(&DblpConfig::tiny(), shards), cfg).unwrap()
}

#[test]
fn every_shard_logs_and_pages_in_its_own_directory_and_recovers_replayed() {
    let base = temp_dir("shards");
    let tier = DiskTierConfig {
        dir: PathBuf::new(), // replaced per shard by the router
        cache_pages: 16,
        fsync_every: 1,
        paged_tables: vec!["AuthorPaper".into()],
    };

    let router = cluster(2);
    let reports = router.attach_disk_tier(&base, &tier).unwrap();
    assert_eq!(reports.len(), 2);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.batches_replayed, 0, "fresh directories replay nothing");
        assert!(r.generation > 0, "shard {i} checkpointed its paged table");
        assert!(base.join(format!("shard-{i}")).join("wal.log").is_file());
        assert!(base.join(format!("shard-{i}")).join("segments").is_dir());
    }

    // A write lands in every shard's WAL (replicated stream).
    let kw = {
        let engine = build_engine(&DblpConfig::tiny());
        existing_keyword(&engine)
    };
    let a = 1_000_003;
    router
        .apply_batch(vec![
            Mutation::insert("Author", vec![Value::Int(a), "Durable Author".into()]),
            Mutation::update("Author", a, vec![Value::Int(a), "Durable Author II".into()]),
        ])
        .unwrap();
    let stats = router.stats();
    for per_shard in &stats.per_shard {
        let disk = per_shard.disk.expect("tier attached");
        assert_eq!(disk.wal_appends, 1, "one record per shard for the whole batch");
        assert!(disk.wal_bytes > 0);
    }
    let survivor = fingerprint(&router.query(&kw, QueryOptions::default()).unwrap())
        + &fingerprint(&router.query("Durable", QueryOptions::default()).unwrap());

    // Crash the whole cluster; rebuild from the same bases + directories.
    drop(router);
    let rebuilt = cluster(2);
    let reports = rebuilt.attach_disk_tier(&base, &tier).unwrap();
    for r in &reports {
        assert_eq!((r.batches_replayed, r.mutations_replayed), (1, 2));
        assert!(!r.wal_tail_damaged);
    }
    let recovered = fingerprint(&rebuilt.query(&kw, QueryOptions::default()).unwrap())
        + &fingerprint(&rebuilt.query("Durable", QueryOptions::default()).unwrap());
    assert_eq!(recovered, survivor, "recovery is byte-identical on every shard");
    std::fs::remove_dir_all(&base).ok();
}
