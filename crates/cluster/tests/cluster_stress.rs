//! Concurrent readers vs a batch writer (ISSUE 5 satellite): clients
//! hammer the partitioned cluster while batched mutations land. The
//! cluster-wide epoch gate must make every response a *consistent*
//! cross-shard snapshot — equal to the sequential answer at one of the
//! epochs the stream passed through; a torn result (shard A at the new
//! epoch merged with shard B at the old one) matches none of them.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use sizel_cluster::{ClusterConfig, ClusterRouter, RefreshConfig};
use sizel_core::engine::QueryOptions;
use sizel_core::test_fixtures::max_pk;
use sizel_datagen::dblp::DblpConfig;
use sizel_serve::{Mutation, ServeConfig};
use sizel_storage::Value;

mod common;
use common::{build_engine, existing_keyword, fingerprint, replicas};

#[test]
fn concurrent_readers_vs_batch_writer_always_observe_one_epoch() {
    let cfg = DblpConfig::tiny();
    let cluster = Arc::new(
        ClusterRouter::partitioned(
            replicas(&cfg, 3),
            ClusterConfig {
                serve: ServeConfig {
                    workers: 2,
                    queue_capacity: 16,
                    cache_capacity: 128,
                    cache_shards: 4,
                    hot_capacity: 16,
                },
                // The refresh worker runs during the stress: it must never
                // surface anything the sequential engine would not.
                refresh: Some(RefreshConfig { budget: 8, interval: Duration::from_millis(10) }),
            },
        )
        .expect("cluster builds"),
    );
    let mut baseline = build_engine(&cfg);
    let kw = existing_keyword(&baseline);
    let opts = QueryOptions { l: 8, ..Default::default() };

    // The batched mutation stream: four batches, junction rows naming
    // authors created in the same batch.
    let (a, p, j) = (
        max_pk(baseline.db(), "Author"),
        max_pk(baseline.db(), "Paper"),
        max_pk(baseline.db(), "AuthorPaper"),
    );
    let batches: Vec<Vec<Mutation>> = (0..4)
        .map(|i| {
            vec![
                Mutation::insert(
                    "Author",
                    vec![Value::Int(a + 1 + i), format!("Stress Author{i}").into()],
                ),
                Mutation::insert(
                    "AuthorPaper",
                    vec![Value::Int(j + 1 + i), Value::Int(a + 1 + i), Value::Int(p)],
                ),
            ]
        })
        .collect();

    let n_clients = 4;
    let barrier = Arc::new(Barrier::new(n_clients + 1));
    let clients: Vec<_> = (0..n_clients)
        .map(|_| {
            let cluster = Arc::clone(&cluster);
            let barrier = Arc::clone(&barrier);
            let kw = kw.clone();
            std::thread::spawn(move || {
                barrier.wait();
                (0..30)
                    .map(|_| fingerprint(&cluster.query(&kw, opts).expect("partitioned query")))
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    barrier.wait();
    // The writer folds the same batches into the sequential baseline and
    // records its answer at every epoch the stream passes through.
    let mut legal = vec![fingerprint(&baseline.query_with(&kw, opts))];
    for batch in batches {
        cluster.apply_batch(batch.clone()).expect("batched apply under readers");
        for m in batch {
            baseline.apply(m).expect("baseline fold");
        }
        legal.push(fingerprint(&baseline.query_with(&kw, opts)));
    }

    for client in clients {
        for fp in client.join().expect("client thread") {
            assert!(
                legal.contains(&fp),
                "a concurrent cluster response matched no epoch of the stream (torn snapshot?)"
            );
        }
    }

    // Post-stream: the cluster settles byte-identical to the baseline.
    assert_eq!(fingerprint(&cluster.query(&kw, opts).unwrap()), *legal.last().unwrap());
    let stats = cluster.stats();
    assert!(stats.epochs.windows(2).all(|w| w[0] == w[1]), "replicas aligned: {stats:?}");
}
