//! Regression suite for the `RefreshWorker` shutdown/notify races
//! (ISSUE 7 satellite): epoch bumps hammered against worker drops.
//!
//! The audited hazards (see `refresh.rs` module docs):
//! * a notify landing between the `wait_timeout` wake and re-lock must
//!   never be lost (at worst it causes one redundant sweep);
//! * `Drop` racing a sweep in flight must neither deadlock, nor abort
//!   the process via a drop-time panic, nor leave the worker thread
//!   running (drop joins it);
//! * the drop-time `notify` must survive a poisoned signal lock (the
//!   pre-fix code `expect`ed on it and a poisoned lock during unwind
//!   aborted the whole process).
//!
//! The tests are timing-hammers: many rounds of build → bump → drop with
//! a near-zero sweep interval, so drops land before, during, and after
//! sweeps. They assert completion (no deadlock/abort), response
//! correctness while the worker lives, and lag convergence when the
//! stream quiesces.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sizel_cluster::{ClusterConfig, ClusterRouter, RefreshConfig};
use sizel_core::engine::QueryOptions;
use sizel_core::test_fixtures::max_pk;
use sizel_datagen::dblp::DblpConfig;
use sizel_serve::{Mutation, ServeConfig};
use sizel_storage::Value;

mod common;
use common::{existing_keyword, replicas};

fn small_serve() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 128,
        cache_shards: 4,
        hot_capacity: 16,
    }
}

/// Build → hammer epoch bumps (each one a notify) → drop the router
/// while the worker is likely mid-sweep. Many rounds with a ~zero
/// interval so the drop lands at every phase of the worker's loop.
#[test]
fn dropping_the_worker_while_hammering_epoch_bumps_never_hangs_or_aborts() {
    let cfg = DblpConfig::tiny();
    for round in 0..12 {
        let cluster = Arc::new(
            ClusterRouter::partitioned(
                replicas(&cfg, 2),
                ClusterConfig {
                    serve: small_serve(),
                    // A near-zero interval keeps the worker sweeping
                    // continuously, maximizing the drop-mid-sweep window.
                    refresh: Some(RefreshConfig {
                        budget: 8,
                        interval: Duration::from_micros(200),
                    }),
                },
            )
            .expect("cluster builds"),
        );
        let kw = existing_keyword(&cluster.shard(0).engine());
        let opts = QueryOptions { l: 6, ..Default::default() };
        // Prime hotness so every sweep has keys to re-warm (a sweep that
        // does real work is the one a drop can interrupt).
        cluster.query(&kw, opts).expect("prime query");

        let (a, p, j) = {
            let engine = cluster.shard(0).engine();
            (
                max_pk(engine.db(), "Author"),
                max_pk(engine.db(), "Paper"),
                max_pk(engine.db(), "AuthorPaper"),
            )
        };
        // Burst of epoch bumps; each apply notifies the worker.
        for i in 0..4i64 {
            cluster
                .apply_batch(vec![
                    Mutation::insert(
                        "Author",
                        vec![Value::Int(a + 1 + i), format!("Race Author{round}_{i}").into()],
                    ),
                    Mutation::insert(
                        "AuthorPaper",
                        vec![Value::Int(j + 1 + i), Value::Int(a + 1 + i), Value::Int(p)],
                    ),
                ])
                .expect("bump applies");
            // Queries interleaved with bumps keep the hot sketch and the
            // cache live mid-sweep.
            cluster.query(&kw, opts).expect("query during bumps");
        }
        // Drop immediately after the last notify: the worker is either
        // about to wake, mid-wake, or mid-sweep. The test's assertion is
        // that this line *returns* (join, no deadlock) and the process
        // survives (no drop-time panic/abort).
        drop(cluster);
    }
}

/// Quiesced stream: once bumps stop, the worker's exported last-seen
/// epochs converge to the shards' — refresh lag reaches zero, proving no
/// notify was lost in the wake/re-lock window.
#[test]
fn notifies_are_never_lost_and_lag_converges_to_zero() {
    let cfg = DblpConfig::tiny();
    let cluster = ClusterRouter::partitioned(
        replicas(&cfg, 2),
        ClusterConfig {
            serve: small_serve(),
            refresh: Some(RefreshConfig { budget: 8, interval: Duration::from_millis(5) }),
        },
    )
    .expect("cluster builds");
    let kw = existing_keyword(&cluster.shard(0).engine());
    let opts = QueryOptions { l: 6, ..Default::default() };
    cluster.query(&kw, opts).expect("prime query");

    let (a, p, j) = {
        let engine = cluster.shard(0).engine();
        (
            max_pk(engine.db(), "Author"),
            max_pk(engine.db(), "Paper"),
            max_pk(engine.db(), "AuthorPaper"),
        )
    };
    for i in 0..6i64 {
        cluster
            .apply_batch(vec![
                Mutation::insert(
                    "Author",
                    vec![Value::Int(a + 1 + i), format!("Lag Author{i}").into()],
                ),
                Mutation::insert(
                    "AuthorPaper",
                    vec![Value::Int(j + 1 + i), Value::Int(a + 1 + i), Value::Int(p)],
                ),
            ])
            .expect("bump applies");
        cluster.query(&kw, opts).expect("query during bumps");
    }

    // The stream has quiesced; the worker must catch up to the final
    // epoch on every shard within a few sweep intervals.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = cluster.stats();
        let caught_up = stats
            .epochs
            .iter()
            .zip(&stats.refresh.last_epochs)
            .all(|(epoch, &last)| epoch.get() == last);
        if caught_up {
            assert_eq!(stats.refresh.last_epochs.len(), 2, "one exported epoch per shard");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "refresh worker never caught up: epochs {:?} vs last seen {:?}",
            stats.epochs,
            stats.refresh.last_epochs
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}
