//! GA presets (Figure 13) and the paper's damping factors.

use sizel_storage::Database;

use sizel_graph::{DataGraph, SchemaGraph};

use crate::authority::AuthorityGraph;

/// The paper's default damping factor d1.
pub const D1: f64 = 0.85;
/// The paper's low damping factor d2 (importance dominated by the base set).
pub const D2: f64 = 0.10;
/// The paper's high damping factor d3 (importance dominated by link flow).
pub const D3: f64 = 0.99;

/// Which authority transfer schema graph to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GaPreset {
    /// The calibrated graph of Figure 13 (ValueRank for TPC-H).
    Ga1,
    /// DBLP: uniform 0.3 rates; TPC-H: same topology as GA1 but with value
    /// functions dropped (i.e. plain ObjectRank), per Section 6.
    Ga2,
}

impl GaPreset {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            GaPreset::Ga1 => "GA1",
            GaPreset::Ga2 => "GA2",
        }
    }
}

/// The DBLP authority transfer graph (Figure 13(a)).
///
/// GA1 rates: Paper→Author 0.3, Author→Paper 0.1, citing→cited 0.7,
/// cited→citing 0, Paper↔Year 0.2/0.2, Year↔Conference 0.3/0.3.
/// GA2: uniform 0.3 everywhere.
pub fn dblp_ga(
    preset: GaPreset,
    db: &Database,
    sg: &SchemaGraph,
    dg: &DataGraph,
) -> AuthorityGraph {
    match preset {
        GaPreset::Ga2 => AuthorityGraph::uniform("GA2", sg, dg, 0.3),
        GaPreset::Ga1 => {
            let mut ga = AuthorityGraph::zero("GA1", sg, dg);
            ga.set_link(db, sg, dg, "AuthorPaper", "paper_id", 0.3) // Paper -> Author
                .set_link(db, sg, dg, "AuthorPaper", "author_id", 0.1) // Author -> Paper
                .set_link(db, sg, dg, "Citation", "citing_id", 0.7) // citing -> cited
                .set_link(db, sg, dg, "Citation", "cited_id", 0.0)
                .set_edge(db, sg, "Paper", "year_id", 0.2, 0.2)
                .set_edge(db, sg, "Year", "conf_id", 0.3, 0.3);
            ga
        }
    }
}

/// The TPC-H authority transfer graph (Figure 13(b)).
///
/// GA1 is a ValueRank GA: Orders scale outgoing authority by
/// `f(totalprice)`, Lineitem by `f(extendedprice)`, Partsupp by
/// `f(supplycost)`, Part by `f(retailprice)`. GA2 keeps the same rates but
/// drops the value functions ("neglects values, i.e. becomes an ObjectRank
/// GA", Section 6).
pub fn tpch_ga(
    preset: GaPreset,
    db: &Database,
    sg: &SchemaGraph,
    dg: &DataGraph,
) -> AuthorityGraph {
    let mut ga = AuthorityGraph::zero(preset.name(), sg, dg);
    ga.set_edge(db, sg, "Orders", "cust_id", 0.5, 0.3) // Order <-> Customer
        .set_edge(db, sg, "Lineitem", "order_id", 0.5, 0.3)
        .set_edge(db, sg, "Lineitem", "ps_id", 0.1, 0.1)
        .set_edge(db, sg, "Partsupp", "part_id", 0.1, 0.1)
        .set_edge(db, sg, "Partsupp", "supp_id", 0.2, 0.1)
        .set_edge(db, sg, "Customer", "nation_id", 0.1, 0.1)
        .set_edge(db, sg, "Supplier", "nation_id", 0.1, 0.1)
        .set_edge(db, sg, "Nation", "region_id", 0.1, 0.1);
    if preset == GaPreset::Ga1 {
        ga.add_value_fn(db, "Orders", "totalprice", 4.0)
            .add_value_fn(db, "Lineitem", "extendedprice", 4.0)
            .add_value_fn(db, "Partsupp", "supplycost", 4.0)
            .add_value_fn(db, "Part", "retailprice", 4.0);
    }
    ga
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{compute, RankConfig};
    use sizel_datagen::tpch::{generate, TpchConfig};

    #[test]
    fn tpch_ga1_is_valuerank_ga2_is_not() {
        let t = generate(&TpchConfig::tiny());
        let sg = SchemaGraph::from_database(&t.db);
        let dg = DataGraph::build(&t.db, &sg);
        assert!(tpch_ga(GaPreset::Ga1, &t.db, &sg, &dg).is_value_rank());
        assert!(!tpch_ga(GaPreset::Ga2, &t.db, &sg, &dg).is_value_rank());
    }

    #[test]
    fn valuerank_prefers_high_value_customers() {
        // Two customers with the same order *count*: the one with larger
        // order values must rank higher under GA1 (ValueRank) — the paper's
        // "five $10 orders vs three $100 orders" motivation.
        let t = generate(&TpchConfig::tiny());
        let sg = SchemaGraph::from_database(&t.db);
        let dg = DataGraph::build(&t.db, &sg);
        let ga = tpch_ga(GaPreset::Ga1, &t.db, &sg, &dg);
        let r = compute(&t.db, &sg, &dg, &ga, &RankConfig::default());

        let orders = t.db.table(t.orders);
        let cust_col = orders.schema.column_index("cust_id").unwrap();
        let price_col = orders.schema.column_index("totalprice").unwrap();
        let customers = t.db.table(t.customer);
        // Group customers by order count; find a count bucket with spread.
        let mut by_count: std::collections::HashMap<usize, Vec<(f64, usize)>> = Default::default();
        for (rid, _) in customers.iter() {
            let pk = customers.pk_of(rid);
            let ords = orders.rows_where_eq(cust_col, pk);
            if ords.is_empty() {
                continue;
            }
            let total: f64 =
                ords.iter().map(|&o| orders.value(o, price_col).as_f64().unwrap()).sum();
            by_count.entry(ords.len()).or_default().push((total, rid.index()));
        }
        let start = dg.table_start(t.customer) as usize;
        let mut checked = 0;
        for (_, mut group) in by_count {
            if group.len() < 2 {
                continue;
            }
            group.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (low_total, low_row) = group[0];
            let (high_total, high_row) = *group.last().unwrap();
            if high_total > 3.0 * low_total {
                checked += 1;
                assert!(
                    r.scores[start + high_row] > r.scores[start + low_row],
                    "customer with {high_total:.0} should outrank {low_total:.0}"
                );
            }
        }
        assert!(checked > 0, "test needs at least one comparable pair");
    }
}
