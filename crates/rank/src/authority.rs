//! Authority Transfer Schema Graphs (`G_A`, Figure 13).

use sizel_storage::{Database, TableId};

use sizel_graph::{DataGraph, SchemaGraph};

/// Transfer rates for one FK edge of the schema graph.
#[derive(Clone, Copy, Debug, Default)]
pub struct EdgeRates {
    /// Rate along the FK (referencing tuple -> referenced tuple).
    pub forward: f64,
    /// Rate against the FK (referenced tuple -> referencing tuples, split
    /// equally among them, as ObjectRank divides by type out-degree).
    pub backward: f64,
}

/// ValueRank's per-tuple multiplier: tuples of `table` scale their outgoing
/// authority by `column`'s value, normalized to mean 1 over the relation
/// and capped (Figure 13(b): `S_i = coef · f(attr)`).
#[derive(Clone, Debug)]
pub struct ValueFunction {
    /// The relation whose tuples are value-scaled.
    pub table: TableId,
    /// The numeric column holding the value.
    pub column: usize,
    /// Upper bound on the normalized multiplier (guards convergence).
    pub cap: f64,
}

/// An authority transfer schema graph: rates for every FK edge (both
/// directions), every collapsed M:N link, and optional value functions.
#[derive(Clone, Debug)]
pub struct AuthorityGraph {
    /// Human-readable name (`GA1`, `GA2`), used in experiment output.
    pub name: String,
    /// Indexed by [`sizel_graph::SchemaEdgeId`].
    pub edge_rates: Vec<EdgeRates>,
    /// Indexed by [`sizel_graph::MnLinkId`].
    pub link_rates: Vec<f64>,
    /// ValueRank value functions (empty = plain ObjectRank).
    pub value_fns: Vec<ValueFunction>,
}

impl AuthorityGraph {
    /// A graph with all rates zero.
    pub fn zero(name: &str, sg: &SchemaGraph, dg: &DataGraph) -> Self {
        AuthorityGraph {
            name: name.to_owned(),
            edge_rates: vec![EdgeRates::default(); sg.edges().len()],
            link_rates: vec![0.0; dg.links().len()],
            value_fns: Vec::new(),
        }
    }

    /// A graph with one uniform rate on every edge direction and link
    /// (the paper's DBLP `GA2`: "common transfer rates (0.3) for all
    /// edges").
    pub fn uniform(name: &str, sg: &SchemaGraph, dg: &DataGraph, rate: f64) -> Self {
        AuthorityGraph {
            name: name.to_owned(),
            edge_rates: vec![EdgeRates { forward: rate, backward: rate }; sg.edges().len()],
            link_rates: vec![rate; dg.links().len()],
            value_fns: Vec::new(),
        }
    }

    /// Sets the rates of the FK edge declared as `table.fk_col`.
    pub fn set_edge(
        &mut self,
        db: &Database,
        sg: &SchemaGraph,
        table: &str,
        fk_col: &str,
        forward: f64,
        backward: f64,
    ) -> &mut Self {
        let tid = db.table_id(table).expect("preset table name");
        let col = db.table(tid).schema.column_index(fk_col).expect("preset column name");
        let edge = sg
            .edges()
            .iter()
            .find(|e| e.from == tid && e.fk_col == col)
            .unwrap_or_else(|| panic!("no FK edge {table}.{fk_col}"));
        self.edge_rates[edge.id.index()] = EdgeRates { forward, backward };
        self
    }

    /// Sets the rate of the collapsed M:N link through `junction` whose
    /// *source* side is the relation referenced by `from_col`.
    /// E.g. `set_link(db, sg, dg, "AuthorPaper", "author_id", 0.1)` rates
    /// the Author -> Paper flow.
    pub fn set_link(
        &mut self,
        db: &Database,
        sg: &SchemaGraph,
        dg: &DataGraph,
        junction: &str,
        from_col: &str,
        rate: f64,
    ) -> &mut Self {
        let jid = db.table_id(junction).expect("preset junction name");
        let col = db.table(jid).schema.column_index(from_col).expect("preset column name");
        let idx = dg
            .links()
            .iter()
            .position(|l| l.junction == jid && sg.edge(l.e_from).fk_col == col)
            .unwrap_or_else(|| panic!("no M:N link {junction}.{from_col}"));
        self.link_rates[idx] = rate;
        self
    }

    /// Adds a ValueRank value function.
    pub fn add_value_fn(
        &mut self,
        db: &Database,
        table: &str,
        column: &str,
        cap: f64,
    ) -> &mut Self {
        let tid = db.table_id(table).expect("preset table name");
        let col = db.table(tid).schema.column_index(column).expect("preset column name");
        self.value_fns.push(ValueFunction { table: tid, column: col, cap });
        self
    }

    /// True when this GA uses value functions (i.e. is a ValueRank GA).
    pub fn is_value_rank(&self) -> bool {
        !self.value_fns.is_empty()
    }

    /// Computes per-node value multipliers over the whole database:
    /// 1.0 everywhere except tuples covered by a value function, which get
    /// `|v| / mean(|v|)` capped at `cap`.
    pub fn value_multipliers(&self, db: &Database, dg: &DataGraph) -> Vec<f64> {
        let mut m = vec![1.0; dg.n_nodes()];
        for vf in &self.value_fns {
            let table = db.table(vf.table);
            if table.is_empty() {
                continue;
            }
            let mut sum = 0.0;
            for (_, row) in table.iter() {
                sum += row[vf.column].as_f64().unwrap_or(0.0).abs();
            }
            let mean = sum / table.len() as f64;
            if mean <= 0.0 {
                continue;
            }
            let base = dg.table_start(vf.table) as usize;
            for (rid, row) in table.iter() {
                let v = row[vf.column].as_f64().unwrap_or(0.0).abs();
                m[base + rid.index()] = (v / mean).min(vf.cap);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizel_datagen::dblp::{generate, DblpConfig};

    fn setup() -> (sizel_datagen::dblp::Dblp, SchemaGraph, DataGraph) {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let dg = DataGraph::build(&d.db, &sg);
        (d, sg, dg)
    }

    #[test]
    fn uniform_sets_every_rate() {
        let (_, sg, dg) = setup();
        let ga = AuthorityGraph::uniform("GA2", &sg, &dg, 0.3);
        assert!(ga.edge_rates.iter().all(|r| r.forward == 0.3 && r.backward == 0.3));
        assert!(ga.link_rates.iter().all(|&r| r == 0.3));
        assert!(!ga.is_value_rank());
    }

    #[test]
    fn set_edge_and_link_target_the_right_slots() {
        let (d, sg, dg) = setup();
        let mut ga = AuthorityGraph::zero("GA1", &sg, &dg);
        ga.set_edge(&d.db, &sg, "Paper", "year_id", 0.2, 0.25);
        ga.set_link(&d.db, &sg, &dg, "AuthorPaper", "author_id", 0.1);
        ga.set_link(&d.db, &sg, &dg, "Citation", "citing_id", 0.7);
        let e = sg.edges().iter().find(|e| e.from == d.paper).unwrap();
        assert_eq!(ga.edge_rates[e.id.index()].forward, 0.2);
        assert_eq!(ga.edge_rates[e.id.index()].backward, 0.25);
        // Exactly two links rated, the rest zero.
        let nonzero: Vec<f64> = ga.link_rates.iter().copied().filter(|&r| r > 0.0).collect();
        assert_eq!(nonzero.len(), 2);
        // The rated citation link's source side must be the citing column.
        let idx = ga.link_rates.iter().position(|&r| r == 0.7).unwrap();
        let link = &dg.links()[idx];
        assert_eq!(link.junction, d.citation);
        let col = sg.edge(link.e_from).fk_col;
        assert_eq!(d.db.table(d.citation).schema.columns[col].name, "citing_id");
    }

    #[test]
    fn value_multipliers_mean_one_and_capped() {
        let (d, sg, dg) = setup();
        let mut ga = AuthorityGraph::zero("GA1", &sg, &dg);
        // Use Year.year as a dummy numeric column.
        ga.add_value_fn(&d.db, "Year", "year", 1.5);
        let m = ga.value_multipliers(&d.db, &dg);
        assert_eq!(m.len(), dg.n_nodes());
        let base = dg.table_start(d.year) as usize;
        let years = d.db.table(d.year).len();
        let slice = &m[base..base + years];
        assert!(slice.iter().all(|&v| v > 0.0 && v <= 1.5));
        // Non-covered tuples keep multiplier 1.
        assert_eq!(m[0], 1.0);
    }
}
