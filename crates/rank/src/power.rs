//! Power-iteration solver for global ObjectRank / ValueRank.
//!
//! `r(v) = (1-d)/|V| + d · Σ_{u→v} α(u→v) · r(u) / outdeg_α(u)`
//!
//! where `α` is the edge-type transfer rate of the `G_A` (scaled per source
//! tuple by the value multiplier when the GA is a ValueRank GA). Per-node
//! total outgoing rate is capped at 1, which bounds the iteration's spectral
//! radius by `d` and guarantees convergence for `d < 1` — including the
//! paper's d3 = 0.99 setting.

use sizel_storage::{Database, TableId, TupleRef, Value};

use sizel_graph::{DataGraph, NodeId, SchemaGraph};

use crate::authority::AuthorityGraph;

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct RankConfig {
    /// Damping factor `d` (paper: d1 = 0.85, d2 = 0.10, d3 = 0.99).
    pub damping: f64,
    /// Convergence threshold on the L1 delta of the (sum-1 normalized)
    /// score vector.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Log-compress the final scores: `s -> 1 + ln(1 + s)`. A monotone
    /// transform (all rankings preserved) that tames the synthetic
    /// workloads' heavy head so that within-OS importance ratios match the
    /// regime of the paper's Figure 3 (author 58, papers ~20, co-authors
    /// 43/34 — single order of magnitude). See DESIGN.md §3.
    pub log_compress: bool,
}

impl Default for RankConfig {
    fn default() -> Self {
        RankConfig { damping: 0.85, epsilon: 1e-9, max_iterations: 500, log_compress: true }
    }
}

impl RankConfig {
    /// A config with the given damping and default tolerances.
    pub fn with_damping(d: f64) -> Self {
        RankConfig { damping: d, ..RankConfig::default() }
    }
}

/// Global importance scores for every tuple, scaled to mean 1.
#[derive(Clone, Debug)]
pub struct RankScores {
    /// Dense scores indexed by data-graph [`NodeId`].
    pub scores: Vec<f64>,
    /// Iterations performed.
    pub iterations: u32,
    /// Whether the L1 delta dropped below epsilon.
    pub converged: bool,
    /// Per-table maximum score — the global statistic behind the GDS
    /// `max(Ri)` annotations (Section 5.3).
    pub per_table_max: Vec<f64>,
    /// Token of the FK importance order these scores installed into their
    /// database via [`crate::install_importance_order`], if any. Query
    /// contexts compare it against `Database::fk_order` to decide whether
    /// the sorted-FK prefix scan is valid under these scores.
    pub fk_order: Option<sizel_storage::FkOrderToken>,
}

impl RankScores {
    /// The global importance of a node.
    pub fn global(&self, node: NodeId) -> f64 {
        self.scores[node.index()]
    }

    /// The per-table maximum global importance.
    pub fn table_max(&self, table: TableId) -> f64 {
        self.per_table_max[table.index()]
    }
}

/// Sorts every FK posting list of `db` by these scores' descending global
/// importance and stamps the scores with the resulting order token, so
/// query contexts built over `(db, scores)` serve Avoidance-Condition-2
/// probes as bounded prefix scans (see `sizel_storage::fk_index`).
///
/// Local importance is `Im(t) · Af(Ri)` with the affinity a positive
/// per-relation constant, so one global-importance order per table is
/// valid for every GDS. Call once after ranking, before serving; scores
/// from a *different* setting keep `fk_order: None` and fall back to the
/// heap path automatically.
pub fn install_importance_order(db: &mut Database, dg: &DataGraph, scores: &mut RankScores) {
    let token = db.install_importance_order(&|t, r| scores.global(dg.node_id(TupleRef::new(t, r))));
    scores.fk_order = Some(token);
}

/// Estimates the global importance of a row *about to be appended* to
/// `table`, without re-running the power iteration — the incremental
/// score-installation path of the update subsystem.
///
/// The estimate is one gather step of the iteration, evaluated at the
/// converged scores, restricted to the in-edges a fresh row can have:
/// nothing references a brand-new primary key, so the only authority
/// flowing *into* it is the backward share of each FK parent it names
/// (`rate_b · Im(parent) / (deg(parent) + 1)`, the `+1` counting the new
/// row itself), plus the teleport floor `(1 − d)`.
///
/// **Approximation bound (documented, empirically pinned).** Relative to
/// the exact-refresh escape hatch ([`compute`] over the mutated
/// database), the estimate ignores four effects, each of bounded size:
/// (1) value multipliers and the per-node emission cap are taken as 1 —
/// exact for plain ObjectRank GAs below the cap; (2) the siblings of the
/// new row keep their pre-insert share of the parent's backward mass — a
/// per-sibling relative error ≤ `1/deg(parent)`; (3) mean-1
/// renormalization drift — `O(1/n)` per insert since one row carries
/// `O(1/n)` of the total mass; (4) the gather runs in the log-compressed
/// score space through its exact inverse, so compression itself
/// introduces no error beyond (1)–(3) being applied to decompressed
/// values. Multi-hop propagation of the new row's own out-mass is damped
/// by `d^2` and ignored. The rank test-suite pins the resulting
/// end-to-end error on the DBLP fixture at ≤ 50% relative for the
/// appended row and ≤ 1% L1 drift for pre-existing rows; workloads
/// needing exactness use [`compute`] (the `RefreshPolicy::Exact` path of
/// the engine).
#[allow(clippy::too_many_arguments)] // mirrors the gather step's inputs
pub fn estimate_appended_score(
    db: &Database,
    sg: &SchemaGraph,
    dg: &DataGraph,
    ga: &AuthorityGraph,
    cfg: &RankConfig,
    scores: &RankScores,
    table: TableId,
    values: &[Value],
) -> f64 {
    estimate_appended_score_with(
        db,
        sg,
        ga,
        cfg,
        &|t: TupleRef| scores.global(dg.node_id(t)),
        table,
        values,
    )
}

/// [`estimate_appended_score`] with the converged scores read through a
/// caller-supplied resolver instead of a materialized score vector — the
/// form the **batched** apply path needs: mid-batch, the fold's spliced
/// vector does not exist yet, but its entries are exactly "the pre-batch
/// score for pre-batch tuples, the already-estimated score for rows
/// appended earlier in this batch", which the resolver expresses without
/// a data-graph rebuild per mutation. The FK in-degree is read from the
/// database's hash index, which equals the data graph's backward
/// adjacency count by construction (pinned by a graph property test), so
/// the two entry points are float-identical.
pub fn estimate_appended_score_with(
    db: &Database,
    sg: &SchemaGraph,
    ga: &AuthorityGraph,
    cfg: &RankConfig,
    score_of: &dyn Fn(TupleRef) -> f64,
    table: TableId,
    values: &[Value],
) -> f64 {
    let decompress = |s: f64| {
        if cfg.log_compress {
            ((s - 1.0).exp() - 1.0).max(0.0)
        } else {
            s.max(0.0)
        }
    };
    let d = cfg.damping;
    let mut raw = 1.0 - d;
    for e in sg.edges() {
        if e.from != table {
            continue;
        }
        let rate = ga.edge_rates[e.id.index()].backward;
        if rate <= 0.0 {
            continue;
        }
        let Some(k) = values[e.fk_col].as_int() else { continue };
        let Some(p) = db.table(e.to).by_pk(k) else { continue };
        let deg = db.table(table).rows_where_eq(e.fk_col, k).len() + 1;
        let parent = decompress(score_of(TupleRef::new(e.to, p)));
        raw += d * rate * parent / deg as f64;
    }
    if cfg.log_compress {
        1.0 + (1.0 + raw).ln()
    } else {
        raw
    }
}

/// The update-path sibling of [`estimate_appended_score_with`]: one gather
/// step for a row whose values are about to change in place, evaluated
/// *before* the storage update (the engine estimates first, then stages).
/// The degree compensation differs from the append case per FK edge: when
/// the update keeps a key, the row is already counted in the parent's
/// fanout (`deg = |rows_where_eq|`); when it re-homes to a new key, the
/// posting does not include the row yet, so — exactly like a fresh append
/// — the count is one short (`deg = |rows_where_eq| + 1`). In-edges from
/// referencing rows are ignored for the same reason the append estimator
/// ignores multi-hop terms: their contribution is damped by `d²` and the
/// bounded re-iteration ([`reiterate`]) sweeps it back in; the
/// incremental policy's pinned bounds cover the residual.
#[allow(clippy::too_many_arguments)] // mirrors the gather step's inputs
pub fn estimate_updated_score_with(
    db: &Database,
    sg: &SchemaGraph,
    ga: &AuthorityGraph,
    cfg: &RankConfig,
    score_of: &dyn Fn(TupleRef) -> f64,
    table: TableId,
    old_values: &[Value],
    new_values: &[Value],
) -> f64 {
    let decompress = |s: f64| {
        if cfg.log_compress {
            ((s - 1.0).exp() - 1.0).max(0.0)
        } else {
            s.max(0.0)
        }
    };
    let d = cfg.damping;
    let mut raw = 1.0 - d;
    for e in sg.edges() {
        if e.from != table {
            continue;
        }
        let rate = ga.edge_rates[e.id.index()].backward;
        if rate <= 0.0 {
            continue;
        }
        let Some(k) = new_values[e.fk_col].as_int() else { continue };
        let Some(p) = db.table(e.to).by_pk(k) else { continue };
        let moved = old_values[e.fk_col].as_int() != Some(k);
        let deg = (db.table(table).rows_where_eq(e.fk_col, k).len() + usize::from(moved)).max(1);
        let parent = decompress(score_of(TupleRef::new(e.to, p)));
        raw += d * rate * parent / deg as f64;
    }
    if cfg.log_compress {
        1.0 + (1.0 + raw).ln()
    } else {
        raw
    }
}

/// Splices an appended row's score into `scores` after the data graph has
/// been rebuilt over the mutated database: dense node ids shift by one
/// for every tuple after the insertion point, so the score vector absorbs
/// the new value at exactly the new row's node index, `per_table_max`
/// takes the running maximum, and the scores adopt `fk_order` (the
/// re-stamped token of the maintained importance order). Everything else
/// is untouched — the documented approximation of
/// [`estimate_appended_score`].
pub fn splice_appended_score(
    scores: &mut RankScores,
    dg_new: &DataGraph,
    tuple: TupleRef,
    score: f64,
    fk_order: Option<sizel_storage::FkOrderToken>,
) {
    splice_appended_scores(scores, dg_new, &[(tuple, score)], fk_order);
}

/// Splices a whole batch of appended rows' scores in one `O(n + B log B)`
/// merge pass — the batched form of [`splice_appended_score`], producing
/// exactly the vector the fold of single splices would (each new value
/// lands at its final node index of `dg_new`, which reflects *all* the
/// appended rows; pre-existing entries keep their values and relative
/// order, `per_table_max` takes running maxima — an order-independent
/// fold).
pub fn splice_appended_scores(
    scores: &mut RankScores,
    dg_new: &DataGraph,
    appended: &[(TupleRef, f64)],
    fk_order: Option<sizel_storage::FkOrderToken>,
) {
    let mut items: Vec<(usize, TupleRef, f64)> =
        appended.iter().map(|&(t, s)| (dg_new.node_id(t).index(), t, s)).collect();
    items.sort_unstable_by_key(|&(i, _, _)| i);
    let n = scores.scores.len() + items.len();
    debug_assert_eq!(n, dg_new.n_nodes(), "splice covers every appended row exactly once");
    let mut merged = Vec::with_capacity(n);
    let mut old = scores.scores.iter().copied();
    let mut next = items.iter().peekable();
    for idx in 0..n {
        match next.peek() {
            Some(&&(i, tuple, score)) if i == idx => {
                next.next();
                merged.push(score);
                let mx = &mut scores.per_table_max[tuple.table.index()];
                *mx = mx.max(score);
            }
            _ => merged.push(old.next().expect("old scores fill the non-appended slots")),
        }
    }
    scores.scores = merged;
    scores.fk_order = fk_order;
}

/// Per-node emission scale capping total outgoing authority at 1 (shared
/// by [`compute`] and [`reiterate`] so their sweeps are float-identical).
fn emission_scales(
    db: &Database,
    sg: &SchemaGraph,
    dg: &DataGraph,
    ga: &AuthorityGraph,
    m: &[f64],
) -> Vec<f64> {
    let n = dg.n_nodes();
    // Per-node total outgoing rate (including value multipliers), used to
    // cap emission at 1.
    let mut out = vec![0.0f64; n];
    for e in sg.edges() {
        let rates = ga.edge_rates[e.id.index()];
        let from_start = dg.table_start(e.from) as usize;
        let to_start = dg.table_start(e.to) as usize;
        if rates.forward > 0.0 {
            for (rid, _) in db.table(e.from).iter() {
                if dg.fwd_neighbor(e.id, rid).is_some() {
                    let u = from_start + rid.index();
                    out[u] += rates.forward * m[u];
                }
            }
        }
        if rates.backward > 0.0 {
            for (rid, _) in db.table(e.to).iter() {
                if !dg.bwd_neighbors(e.id, rid).is_empty() {
                    let u = to_start + rid.index();
                    out[u] += rates.backward * m[u];
                }
            }
        }
    }
    for (li, link) in dg.links().iter().enumerate() {
        let rate = ga.link_rates[li];
        if rate <= 0.0 {
            continue;
        }
        let from_start = dg.table_start(link.from_table) as usize;
        for (rid, _) in db.table(link.from_table).iter() {
            if !link.targets(rid).is_empty() {
                let u = from_start + rid.index();
                out[u] += rate * m[u];
            }
        }
    }
    // Emission scale: cap per-node outgoing authority at 1.
    out.iter().map(|&o| if o > 1.0 { 1.0 / o } else { 1.0 }).collect()
}

/// One power sweep: `next = base + d · transfer(cur)`.
#[allow(clippy::too_many_arguments)] // the sweep's full working set
fn sweep_once(
    db: &Database,
    sg: &SchemaGraph,
    dg: &DataGraph,
    ga: &AuthorityGraph,
    m: &[f64],
    scale: &[f64],
    d: f64,
    base: f64,
    cur: &[f64],
    next: &mut [f64],
) {
    next.iter_mut().for_each(|v| *v = base);

    for e in sg.edges() {
        let rates = ga.edge_rates[e.id.index()];
        let from_start = dg.table_start(e.from) as usize;
        let to_start = dg.table_start(e.to) as usize;
        if rates.forward > 0.0 {
            for (rid, _) in db.table(e.from).iter() {
                if let Some(t) = dg.fwd_neighbor(e.id, rid) {
                    let u = from_start + rid.index();
                    next[t.index()] += d * rates.forward * m[u] * scale[u] * cur[u];
                }
            }
        }
        if rates.backward > 0.0 {
            for (rid, _) in db.table(e.to).iter() {
                let list = dg.bwd_neighbors(e.id, rid);
                if list.is_empty() {
                    continue;
                }
                let u = to_start + rid.index();
                let share = d * rates.backward * m[u] * scale[u] * cur[u] / list.len() as f64;
                for &t in list {
                    next[t as usize] += share;
                }
            }
        }
    }
    for (li, link) in dg.links().iter().enumerate() {
        let rate = ga.link_rates[li];
        if rate <= 0.0 {
            continue;
        }
        let from_start = dg.table_start(link.from_table) as usize;
        for (rid, _) in db.table(link.from_table).iter() {
            let targets = link.targets(rid);
            if targets.is_empty() {
                continue;
            }
            let u = from_start + rid.index();
            let share = d * rate * m[u] * scale[u] * cur[u] / targets.len() as f64;
            for &t in targets {
                next[t as usize] += share;
            }
        }
    }
}

/// Mean-1 normalization, optional log compression, and per-table maxima —
/// the shared tail of [`compute`] and [`reiterate`].
fn finalize_scores(
    db: &Database,
    dg: &DataGraph,
    cfg: &RankConfig,
    mut cur: Vec<f64>,
    iterations: u32,
    converged: bool,
) -> RankScores {
    let n = cur.len();
    // Scale to mean 1 for readable local-importance numbers.
    let sum: f64 = cur.iter().sum();
    if sum > 0.0 {
        let k = n as f64 / sum;
        cur.iter_mut().for_each(|v| *v *= k);
    }
    if cfg.log_compress {
        cur.iter_mut().for_each(|v| *v = 1.0 + (1.0 + *v).ln());
    }

    let mut per_table_max = vec![0.0f64; db.table_count()];
    for (tid, t) in db.tables() {
        let start = dg.table_start(tid) as usize;
        let mut mx = 0.0f64;
        for i in 0..t.len() {
            mx = mx.max(cur[start + i]);
        }
        per_table_max[tid.index()] = mx;
    }

    RankScores { scores: cur, iterations, converged, per_table_max, fk_order: None }
}

/// Runs the power iteration. See module docs for semantics.
pub fn compute(
    db: &Database,
    sg: &SchemaGraph,
    dg: &DataGraph,
    ga: &AuthorityGraph,
    cfg: &RankConfig,
) -> RankScores {
    let n = dg.n_nodes();
    assert!(n > 0, "cannot rank an empty database");
    assert!((0.0..1.0).contains(&cfg.damping), "damping must be in [0, 1)");

    let m = ga.value_multipliers(db, dg);
    let scale = emission_scales(db, sg, dg, ga, &m);

    let d = cfg.damping;
    let base = (1.0 - d) / n as f64;
    let mut cur = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;

    while iterations < cfg.max_iterations {
        iterations += 1;
        sweep_once(db, sg, dg, ga, &m, &scale, d, base, &cur, &mut next);
        let delta: f64 = cur.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut cur, &mut next);
        if delta < cfg.epsilon {
            converged = true;
            break;
        }
    }

    finalize_scores(db, dg, cfg, cur, iterations, converged)
}

/// Bounded rank re-iteration: a few power sweeps over the *mutated*
/// database, seeded from the stale converged vector — the update/delete
/// analogue of [`estimate_appended_score`] and the replacement for the
/// exact-rebuild escape hatch on incremental refresh.
///
/// After an update or delete the data graph keeps its node count (deletes
/// are tombstones; dense ids never shift), so the stale scores are a valid
/// — and nearly converged — starting point: only the mutated rows and
/// their graph neighborhoods moved. Each sweep applies the same
/// `next = (1-d)/n + d · transfer(cur)` update as [`compute`] (bitwise the
/// same inner loop), and because the transfer operator's spectral radius
/// is bounded by `d` (per-node emission cap), every sweep contracts the L1
/// distance to the exact fixed point by at least `d`. Seeding from scores
/// that were exact before a small mutation makes the initial distance
/// `O(churn/n)`, so a *constant* number of sweeps — independent of
/// database size — recovers near-exact scores. The rank test-suite pins
/// the measured bound on the DBLP fixture: monotone per-sweep decay and
/// ≤ 1% relative L1 error after three sweeps (the engine's default),
/// mirroring the ≤ 50%/≤ 1% pins of the append-splice path.
///
/// The seed is decompressed through the exact inverse of the log
/// transform and renormalized to the iteration's sum-1 scale, so
/// compression introduces no error of its own. If inserts are part of the
/// mutation run, splice their estimated scores first
/// ([`splice_appended_scores`]) — the seed must already cover every node
/// of `dg` (asserted). Runs at most `sweeps` sweeps, stopping early below
/// `cfg.epsilon`; `converged` reports whether the early stop fired.
pub fn reiterate(
    db: &Database,
    sg: &SchemaGraph,
    dg: &DataGraph,
    ga: &AuthorityGraph,
    cfg: &RankConfig,
    stale: &RankScores,
    sweeps: u32,
) -> RankScores {
    let n = dg.n_nodes();
    assert!(n > 0, "cannot rank an empty database");
    assert!((0.0..1.0).contains(&cfg.damping), "damping must be in [0, 1)");
    assert_eq!(
        stale.scores.len(),
        n,
        "re-iteration seed must cover every node; splice appended rows first"
    );

    let m = ga.value_multipliers(db, dg);
    let scale = emission_scales(db, sg, dg, ga, &m);

    let d = cfg.damping;
    let base = (1.0 - d) / n as f64;
    let decompress = |s: f64| {
        if cfg.log_compress {
            ((s - 1.0).exp() - 1.0).max(0.0)
        } else {
            s.max(0.0)
        }
    };
    assert!(sweeps >= 1, "re-iteration needs at least one sweep");
    // Decompress the stale mean-1 vector and normalize its *shape* to
    // sum 1. The iteration's fixed point does not sum to 1 — mass leaks
    // through the emission cap and reference-free nodes — so the seed must
    // also be rescaled to the fixed point's own magnitude, or the affine
    // base term pollutes every node with a shape-distorting offset that
    // takes many sweeps to wash out.
    let mut cur: Vec<f64> = stale.scores.iter().map(|&s| decompress(s)).collect();
    let sum: f64 = cur.iter().sum();
    if sum > 0.0 {
        cur.iter_mut().for_each(|v| *v /= sum);
    } else {
        cur.iter_mut().for_each(|v| *v = 1.0 / n as f64);
    }
    let mut next = vec![0.0f64; n];
    // Calibration probe (doubles as sweep 1): for the sum-1 seed `g`,
    // `sweep(g) = base·1 + d·M g` measures the retained transfer mass
    // `r = Σ M g`; a fixed point of shape `c·g` must satisfy
    // `c = (1-d)/(1-d·r)`, and by linearity of `M` the probe rescales into
    // the calibrated sweep without recomputation:
    // `sweep(c·g) = (1-c)·base·1 + c·sweep(g)`.
    sweep_once(db, sg, dg, ga, &m, &scale, d, base, &cur, &mut next);
    let retained = (next.iter().sum::<f64>() - (1.0 - d)) / d;
    let c = (1.0 - d) / (1.0 - d * retained).max(1.0 - d);
    for (v, &p) in cur.iter_mut().zip(next.iter()) {
        *v = (1.0 - c) * base + c * p;
    }
    let mut iterations = 1;
    let mut converged = false;

    while iterations < sweeps {
        iterations += 1;
        sweep_once(db, sg, dg, ga, &m, &scale, d, base, &cur, &mut next);
        let delta: f64 = cur.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut cur, &mut next);
        if delta < cfg.epsilon {
            converged = true;
            break;
        }
    }

    finalize_scores(db, dg, cfg, cur, iterations, converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{dblp_ga, GaPreset};
    use sizel_datagen::dblp::{generate, DblpConfig};
    use sizel_storage::TupleRef;

    fn setup() -> (sizel_datagen::dblp::Dblp, SchemaGraph, DataGraph) {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let dg = DataGraph::build(&d.db, &sg);
        (d, sg, dg)
    }

    #[test]
    fn converges_and_normalizes() {
        let (d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let cfg = RankConfig { log_compress: false, ..RankConfig::default() };
        let r = compute(&d.db, &sg, &dg, &ga, &cfg);
        assert!(r.converged, "should converge within the cap");
        let mean: f64 = r.scores.iter().sum::<f64>() / r.scores.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9, "scores scaled to mean 1, got {mean}");
        assert!(r.scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn log_compression_preserves_ranking() {
        let (d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let raw = compute(
            &d.db,
            &sg,
            &dg,
            &ga,
            &RankConfig { log_compress: false, ..RankConfig::default() },
        );
        let log = compute(&d.db, &sg, &dg, &ga, &RankConfig::default());
        // Pairwise order is preserved (monotone transform) ...
        for pair in [(0usize, 100usize), (5, 200), (17, 42)] {
            let raw_ord = raw.scores[pair.0].total_cmp(&raw.scores[pair.1]);
            let log_ord = log.scores[pair.0].total_cmp(&log.scores[pair.1]);
            assert_eq!(raw_ord, log_ord);
        }
        // ... and the dynamic range shrinks.
        let range = |s: &[f64]| {
            let mx = s.iter().cloned().fold(0.0, f64::max);
            let mn = s.iter().cloned().fold(f64::MAX, f64::min);
            mx / mn.max(1e-12)
        };
        assert!(range(&log.scores) < range(&raw.scores));
    }

    #[test]
    fn well_cited_papers_rank_higher() {
        let (d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let r = compute(&d.db, &sg, &dg, &ga, &RankConfig::default());
        // Compare the most-cited paper with an uncited one.
        let cited_link = dg
            .links()
            .iter()
            .find(|l| {
                l.junction == d.citation
                    && sg.edge(l.e_from).fk_col
                        == d.db.table(d.citation).schema.column_index("cited_id").unwrap()
            })
            .unwrap();
        let papers = d.db.table(d.paper);
        let mut best = (0usize, 0usize); // (row, citations)
        let mut uncited = None;
        for (rid, _) in papers.iter() {
            let c = cited_link.targets(rid).len();
            if c > best.1 {
                best = (rid.index(), c);
            }
            if c == 0 && uncited.is_none() {
                uncited = Some(rid.index());
            }
        }
        assert!(best.1 >= 3, "tiny dataset should still have a cited head");
        let start = dg.table_start(d.paper) as usize;
        let top = r.scores[start + best.0];
        let bottom = r.scores[start + uncited.expect("some uncited paper")];
        assert!(top > bottom, "well-cited paper should outrank uncited one ({top} vs {bottom})");
    }

    #[test]
    fn low_damping_flattens_scores() {
        let (d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let spread = |damping: f64| {
            let r = compute(&d.db, &sg, &dg, &ga, &RankConfig::with_damping(damping));
            let max = r.scores.iter().cloned().fold(0.0, f64::max);
            let min = r.scores.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(spread(0.10) < spread(0.85), "d2 yields flatter importance than d1");
    }

    #[test]
    fn d3_converges_with_emission_cap() {
        let (d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let cfg = RankConfig {
            damping: 0.99,
            epsilon: 1e-7,
            max_iterations: 3000,
            ..RankConfig::default()
        };
        let r = compute(&d.db, &sg, &dg, &ga, &cfg);
        assert!(r.converged, "emission cap must keep d=0.99 convergent");
    }

    #[test]
    fn per_table_max_matches_scores() {
        let (d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let r = compute(&d.db, &sg, &dg, &ga, &RankConfig::default());
        for (tid, t) in d.db.tables() {
            let mx = (0..t.len())
                .map(|i| r.global(dg.node_id(TupleRef::new(tid, sizel_storage::RowId(i as u32)))))
                .fold(0.0f64, f64::max);
            assert!((mx - r.table_max(tid)).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_estimate_stays_within_documented_bound() {
        // The documented approximation bound of `estimate_appended_score`:
        // on the DBLP fixture, appending a paper and splicing its
        // estimated score must land within 50% relative error of the
        // exact-refresh score for the new row, and pre-existing rows —
        // untouched by the splice — must be within 1% L1 drift of the
        // exact refresh (the mass one row shifts is O(1/n)).
        let (mut d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let cfg = RankConfig::default();
        let scores = compute(&d.db, &sg, &dg, &ga, &cfg);

        // A new paper in an existing year (the FK parent the estimate
        // gathers from), with a fresh primary key.
        let years = d.db.table(d.year);
        let year_pk = years.pk_of(sizel_storage::RowId(0));
        let papers = d.db.table(d.paper);
        let new_pk =
            (0..papers.len()).map(|i| papers.pk_of(sizel_storage::RowId(i as u32))).max().unwrap()
                + 1;
        let values =
            vec![Value::Int(new_pk), "incremental splice probe".into(), Value::Int(year_pk)];
        let est = estimate_appended_score(&d.db, &sg, &dg, &ga, &cfg, &scores, d.paper, &values);

        // Exact refresh over the mutated database.
        let row = d.db.insert("Paper", values).unwrap();
        let dg2 = DataGraph::build(&d.db, &sg);
        let ga2 = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg2);
        let exact = compute(&d.db, &sg, &dg2, &ga2, &cfg);
        let exact_new = exact.global(dg2.node_id(TupleRef::new(d.paper, row)));
        let rel = (est - exact_new).abs() / exact_new;
        assert!(rel <= 0.5, "appended-row estimate off by {rel:.3} (est {est}, exact {exact_new})");

        // Splice and compare the untouched remainder against the refresh.
        let mut spliced = scores.clone();
        splice_appended_score(&mut spliced, &dg2, TupleRef::new(d.paper, row), est, None);
        assert_eq!(spliced.scores.len(), exact.scores.len());
        let new_idx = dg2.node_id(TupleRef::new(d.paper, row)).index();
        let (mut l1, mut total) = (0.0f64, 0.0f64);
        for i in 0..spliced.scores.len() {
            if i == new_idx {
                continue;
            }
            l1 += (spliced.scores[i] - exact.scores[i]).abs();
            total += exact.scores[i].abs();
        }
        let drift = l1 / total;
        assert!(drift <= 0.01, "pre-existing rows drifted {drift:.4} L1-relative");
        // per_table_max stays an upper bound under the splice.
        for (tid, t) in d.db.tables() {
            let start = dg2.table_start(tid) as usize;
            for i in 0..t.len() {
                assert!(spliced.scores[start + i] <= spliced.table_max(tid) + 1e-12);
            }
        }
    }

    #[test]
    fn batch_splice_is_bit_identical_to_the_fold_of_single_splices() {
        // Append two papers and one author; the one-pass merge must equal
        // folding single splices (each against the then-current graph) to
        // the float bit, including per_table_max.
        let (d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let cfg = RankConfig::default();
        let base = compute(&d.db, &sg, &dg, &ga, &cfg);
        let years = d.db.table(d.year);
        let year_pk = years.pk_of(sizel_storage::RowId(0));
        let max_pk = |t: sizel_storage::TableId| {
            let tb = d.db.table(t);
            tb.iter().map(|(r, _)| tb.pk_of(r)).max().unwrap()
        };
        let rows: Vec<(&str, Vec<Value>, f64)> = vec![
            ("Paper", vec![Value::Int(max_pk(d.paper) + 1), "a".into(), Value::Int(year_pk)], 1.25),
            ("Author", vec![Value::Int(max_pk(d.author) + 1), "b".into()], 0.75),
            ("Paper", vec![Value::Int(max_pk(d.paper) + 2), "c".into(), Value::Int(year_pk)], 2.5),
        ];

        // The fold: rebuild + single splice per insert.
        let mut folded = base.clone();
        let mut db1 = generate(&DblpConfig::tiny()).db;
        for (table, values, score) in &rows {
            let row = db1.insert(table, values.clone()).unwrap();
            let dg1 = DataGraph::build(&db1, &sg);
            let tid = db1.table_id(table).unwrap();
            splice_appended_score(&mut folded, &dg1, TupleRef::new(tid, row), *score, None);
        }

        // The batch: one rebuild, one merge.
        let mut batched = base.clone();
        let mut db2 = generate(&DblpConfig::tiny()).db;
        let mut appended = Vec::new();
        for (table, values, score) in &rows {
            let row = db2.insert(table, values.clone()).unwrap();
            let tid = db2.table_id(table).unwrap();
            appended.push((TupleRef::new(tid, row), *score));
        }
        let dg2 = DataGraph::build(&db2, &sg);
        splice_appended_scores(&mut batched, &dg2, &appended, None);

        assert_eq!(folded.scores.len(), batched.scores.len());
        for (a, b) in folded.scores.iter().zip(&batched.scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in folded.per_table_max.iter().zip(&batched.per_table_max) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Applies the fixture's churn — one FK re-home and one junction-row
    /// delete (junction rows have no referencers, so a plain delete is
    /// safe) — and returns the updated paper's new values.
    fn churn(d: &mut sizel_datagen::dblp::Dblp) -> Vec<Value> {
        use sizel_storage::RowId;
        let year_t = d.db.table(d.year);
        let year_pks: Vec<i64> = year_t.iter().map(|(r, _)| year_t.pk_of(r)).collect();
        let paper_t = d.db.table(d.paper);
        let p_pk = paper_t.pk_of(RowId(0));
        let title = paper_t.value(RowId(0), 1).clone();
        let old_year = paper_t.value(RowId(0), 2).as_int().unwrap();
        let new_year = year_pks.into_iter().find(|&y| y != old_year).unwrap();
        let values = vec![Value::Int(p_pk), title, Value::Int(new_year)];
        d.db.update("Paper", p_pk, values.clone()).unwrap();
        let cit_t = d.db.table(d.citation);
        let cit_pk = cit_t.iter().map(|(r, _)| cit_t.pk_of(r)).next().unwrap();
        d.db.delete("Citation", cit_pk).unwrap();
        values
    }

    #[test]
    fn bounded_reiteration_contracts_to_exact_within_pinned_bound() {
        // The measured convergence bound of the bounded re-iteration mode
        // (DESIGN.md §8): seeded from the stale vector after an
        // update+delete churn, the per-sweep relative L1 error against the
        // exact refresh decays monotonically and lands within 1% by the
        // third sweep — the engine's default budget.
        let (mut d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let cfg = RankConfig::default();
        let stale = compute(&d.db, &sg, &dg, &ga, &cfg);

        churn(&mut d);

        // Tombstoned deletes and in-place updates keep the node count, so
        // the stale vector remains a valid seed over the rebuilt graph.
        let dg2 = DataGraph::build(&d.db, &sg);
        assert_eq!(dg2.n_nodes(), dg.n_nodes());
        let ga2 = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg2);
        let exact = compute(&d.db, &sg, &dg2, &ga2, &cfg);
        let rel_l1 = |r: &RankScores| {
            let l1: f64 = r.scores.iter().zip(&exact.scores).map(|(a, b)| (a - b).abs()).sum();
            l1 / exact.scores.iter().sum::<f64>()
        };

        let err0 = rel_l1(&stale);
        assert!(err0 > 0.0, "churn must actually move the fixed point");
        let mut prev = err0;
        for k in 1..=4 {
            let r = reiterate(&d.db, &sg, &dg2, &ga2, &cfg, &stale, k);
            assert_eq!(r.iterations, k);
            let e = rel_l1(&r);
            assert!(e <= prev + 1e-12, "sweep {k} regressed: {e:.2e} after {prev:.2e}");
            if k == 3 {
                assert!(e <= 0.01, "three sweeps must land within 1% relative L1, got {e:.4}");
            }
            prev = e;
        }
        // With an uncapped budget the re-iteration reaches the solver's
        // own fixed point.
        let full = reiterate(&d.db, &sg, &dg2, &ga2, &cfg, &stale, 500);
        assert!(full.converged, "epsilon early-stop must fire");
        assert!(rel_l1(&full) <= 1e-6);
    }

    #[test]
    fn updated_row_estimate_stays_within_the_append_bound() {
        // The pre-update gather (with the re-home degree compensation:
        // +1 only on FK edges whose key changed) must land within the same
        // 50% relative bound the append estimator pins.
        let (mut d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let cfg = RankConfig::default();
        let stale = compute(&d.db, &sg, &dg, &ga, &cfg);

        use sizel_storage::RowId;
        let paper_t = d.db.table(d.paper);
        let p_pk = paper_t.pk_of(RowId(0));
        let old_values: Vec<Value> = (0..3).map(|c| paper_t.value(RowId(0), c).clone()).collect();
        let year_t = d.db.table(d.year);
        let old_year = old_values[2].as_int().unwrap();
        let new_year =
            year_t.iter().map(|(r, _)| year_t.pk_of(r)).find(|&y| y != old_year).unwrap();
        let new_values = vec![Value::Int(p_pk), old_values[1].clone(), Value::Int(new_year)];

        // Estimate against the pre-update catalog and stale scores — the
        // state the engine's incremental path sees.
        let est = estimate_updated_score_with(
            &d.db,
            &sg,
            &ga,
            &cfg,
            &|t| stale.global(dg.node_id(t)),
            d.paper,
            &old_values,
            &new_values,
        );

        d.db.update("Paper", p_pk, new_values).unwrap();
        let dg2 = DataGraph::build(&d.db, &sg);
        let ga2 = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg2);
        let exact = compute(&d.db, &sg, &dg2, &ga2, &cfg);
        let exact_row = exact.global(dg2.node_id(TupleRef::new(d.paper, RowId(0))));
        let rel = (est - exact_row).abs() / exact_row;
        assert!(rel <= 0.5, "updated-row estimate off by {rel:.3} (est {est}, exact {exact_row})");
    }

    #[test]
    fn junction_tuples_hold_minimal_rank() {
        let (d, sg, dg) = setup();
        let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
        let cfg = RankConfig { log_compress: false, ..RankConfig::default() };
        let r = compute(&d.db, &sg, &dg, &ga, &cfg);
        // Junction rows receive only the base (1-d)/n mass; they must rank
        // strictly below the average tuple.
        let start = dg.table_start(d.author_paper) as usize;
        let len = d.db.table(d.author_paper).len();
        for i in 0..len {
            assert!(r.scores[start + i] < 1.0, "junction rank should be sub-average");
        }
    }
}
