//! Global tuple importance: ObjectRank and ValueRank (Section 2.2).
//!
//! * [`authority`] — the Authority Transfer Schema Graph `G_A` (Figure 13):
//!   per-FK-edge transfer rates in both directions, per-M:N-link rates, and
//!   ValueRank's per-tuple value multipliers.
//! * [`power`] — the power-iteration solver over the
//!   [`sizel_graph::DataGraph`], producing dense global importance scores
//!   plus the per-relation maxima that feed the `max(Ri)` GDS statistics.
//! * [`presets`] — GA1/GA2 for both databases and the paper's three damping
//!   factors d1 = 0.85, d2 = 0.10, d3 = 0.99.
//!
//! Design note: authority flows across collapsed M:N links directly
//! (Author → Paper), *not* through junction tuples, so junction rows hold no
//! rank — matching ObjectRank's relation-level `G_A`, where `AuthorPaper`
//! does not exist as a node.

pub mod authority;
pub mod power;
pub mod presets;

pub use authority::{AuthorityGraph, ValueFunction};
pub use power::{
    compute, estimate_appended_score, estimate_appended_score_with, estimate_updated_score_with,
    install_importance_order, reiterate, splice_appended_score, splice_appended_scores, RankConfig,
    RankScores,
};
pub use presets::{dblp_ga, tpch_ga, GaPreset, D1, D2, D3};
