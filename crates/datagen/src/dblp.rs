//! Synthetic DBLP generator.
//!
//! Schema (Figure 1 of the paper, with the two M:N links materialized as
//! junction tables):
//!
//! ```text
//! Conference(id, name)
//! Year(id, year, conf_id -> Conference)         -- a venue instance, e.g. "SIGCOMM 1999"
//! Paper(id, title, year_id -> Year)
//! Author(id, name)
//! AuthorPaper(id, author_id -> Author, paper_id -> Paper)   [junction]
//! Citation(id, citing_id -> Paper, cited_id -> Paper)       [junction]
//! ```
//!
//! Skew: author productivity and citation popularity are Zipfian, so the
//! database contains a few authors with hundreds of papers (the paper's
//! Christos Faloutsos has a 1,309-tuple OS) and a long tail of small ones.
//! *Famous author* specs pin exact paper counts, which the benchmark uses to
//! build the |OS| ladder of Figure 10(e).

use std::collections::HashSet;

use sizel_storage::{Database, StorageError, TableId, TableSchema, Value, ValueType};
use sizel_util::prng::{Prng, Zipf};

use crate::names;

/// A pinned author with an exact number of authored papers.
#[derive(Clone, Debug)]
pub struct FamousAuthorSpec {
    /// Full author name (unique in the generated database).
    pub name: String,
    /// Exact number of papers this author is attached to.
    pub papers: usize,
}

/// Configuration for the DBLP generator.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// PRNG seed; the whole database is a pure function of the config.
    pub seed: u64,
    /// Number of conferences.
    pub conferences: usize,
    /// Venue-year instances per conference.
    pub years_per_conference: usize,
    /// Latest publication year (inclusive).
    pub last_year: i64,
    /// Number of regular papers.
    pub papers: usize,
    /// Number of regular authors.
    pub authors: usize,
    /// Zipf exponent for author productivity (0 = uniform).
    pub author_zipf: f64,
    /// Mean citations *made* per paper (exponentially distributed).
    pub citations_per_paper_mean: f64,
    /// Zipf exponent for citation popularity.
    pub citation_zipf: f64,
    /// Pinned famous authors (appended after regular authors).
    pub famous: Vec<FamousAuthorSpec>,
    /// When true and at least three famous authors exist, the first three
    /// co-author one shared paper ("On Power-law Relationships of the
    /// Internet Topology", SIGCOMM) — the paper's Example 4/5 anchor.
    pub link_famous_triple: bool,
}

impl DblpConfig {
    /// Minimal database for unit tests (hundreds of tuples).
    pub fn tiny() -> Self {
        DblpConfig {
            seed: 42,
            conferences: 5,
            years_per_conference: 4,
            last_year: 2004,
            papers: 120,
            authors: 60,
            author_zipf: 0.8,
            citations_per_paper_mean: 2.0,
            citation_zipf: 0.9,
            famous: Vec::new(),
            link_famous_triple: false,
        }
    }

    /// Small database with the example trio, for examples and integration
    /// tests (a few thousand tuples).
    pub fn small() -> Self {
        DblpConfig {
            seed: 42,
            conferences: 12,
            years_per_conference: 10,
            last_year: 2004,
            papers: 1500,
            authors: 500,
            author_zipf: 0.85,
            citations_per_paper_mean: 2.5,
            citation_zipf: 0.7,
            famous: vec![
                FamousAuthorSpec { name: "Christos Faloutsos".into(), papers: 40 },
                FamousAuthorSpec { name: "Michalis Faloutsos".into(), papers: 18 },
                FamousAuthorSpec { name: "Petros Faloutsos".into(), papers: 12 },
            ],
            link_famous_triple: true,
        }
    }

    /// The benchmark database: tuned so that Author object summaries of the
    /// famous ladder land near the paper's Figure 10(e) sizes
    /// (|OS| ≈ 67, 202, 606, 922, 1309).
    pub fn bench() -> Self {
        DblpConfig {
            seed: 42,
            conferences: 30,
            years_per_conference: 15,
            last_year: 2004,
            papers: 12_000,
            authors: 3_000,
            author_zipf: 0.8,
            // Citation skew calibrated against the paper's regime: the
            // *mean* stays moderate (it drives the per-paper PaperCites
            // fan-out inside every Author OS, whose Aver|OS| must hold at
            // ~1116) while the *zipf exponent* concentrates fan-in on the
            // head papers the Paper-GDS samples draw from (real DBLP's
            // well-cited papers, Aver|OS| = 367).
            citations_per_paper_mean: 3.6,
            citation_zipf: 1.0,
            famous: vec![
                FamousAuthorSpec { name: "Christos Faloutsos".into(), papers: 124 },
                FamousAuthorSpec { name: "Michalis Faloutsos".into(), papers: 87 },
                FamousAuthorSpec { name: "Petros Faloutsos".into(), papers: 57 },
                FamousAuthorSpec { name: "Ariadne Metaxa".into(), papers: 19 },
                FamousAuthorSpec { name: "Stavros Koronis".into(), papers: 6 },
            ],
            link_famous_triple: true,
        }
    }
}

/// Handles to the generated database.
#[derive(Debug)]
pub struct Dblp {
    /// The populated database (FK-consistent by construction; validated in
    /// tests).
    pub db: Database,
    /// `Author` table id.
    pub author: TableId,
    /// `Paper` table id.
    pub paper: TableId,
    /// `AuthorPaper` junction table id.
    pub author_paper: TableId,
    /// `Citation` junction table id.
    pub citation: TableId,
    /// `Year` table id.
    pub year: TableId,
    /// `Conference` table id.
    pub conference: TableId,
    /// `(name, author_pk)` of each famous author, in spec order.
    pub famous: Vec<(String, i64)>,
}

/// Builds the six DBLP table schemas into `db`.
fn create_schema(db: &mut Database) -> Result<(), StorageError> {
    db.create_table(TableSchema::builder("Conference").pk("id").searchable_text("name").build()?)?;
    db.create_table(
        TableSchema::builder("Year")
            .pk("id")
            .column("year", ValueType::Int)
            .fk("conf_id", "Conference")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("Paper")
            .pk("id")
            .searchable_text("title")
            .fk("year_id", "Year")
            .build()?,
    )?;
    db.create_table(TableSchema::builder("Author").pk("id").searchable_text("name").build()?)?;
    db.create_table(
        TableSchema::builder("AuthorPaper")
            .pk("id")
            .fk("author_id", "Author")
            .fk("paper_id", "Paper")
            .junction()
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("Citation")
            .pk("id")
            .fk("citing_id", "Paper")
            .fk("cited_id", "Paper")
            .junction()
            .build()?,
    )?;
    Ok(())
}

/// Generates a DBLP database from the config. Panics only on internal
/// invariant violations (the schema is fixed, inserts cannot fail).
pub fn generate(cfg: &DblpConfig) -> Dblp {
    let mut rng = Prng::new(cfg.seed);
    let mut db = Database::new();
    create_schema(&mut db).expect("static DBLP schema is valid");

    // --- Conferences -----------------------------------------------------
    for c in 0..cfg.conferences {
        let name = if c < names::CONFERENCES.len() {
            names::CONFERENCES[c].to_owned()
        } else {
            format!("CONF-{c}")
        };
        db.insert("Conference", vec![Value::Int(c as i64 + 1), name.into()])
            .expect("conference insert");
    }

    // --- Years ------------------------------------------------------------
    // year_ids[c][k] = pk of the k-th venue instance of conference c.
    let first_year = cfg.last_year - cfg.years_per_conference as i64 + 1;
    let mut year_ids: Vec<Vec<i64>> = Vec::with_capacity(cfg.conferences);
    let mut year_pk = 0i64;
    for c in 0..cfg.conferences {
        let mut ids = Vec::with_capacity(cfg.years_per_conference);
        for k in 0..cfg.years_per_conference {
            year_pk += 1;
            db.insert(
                "Year",
                vec![
                    Value::Int(year_pk),
                    Value::Int(first_year + k as i64),
                    Value::Int(c as i64 + 1),
                ],
            )
            .expect("year insert");
            ids.push(year_pk);
        }
        year_ids.push(ids);
    }

    // --- Authors ----------------------------------------------------------
    let mut used_names: HashSet<String> = HashSet::new();
    let mut famous = Vec::with_capacity(cfg.famous.len());
    let mut name_rng = rng.fork(0xA07);
    for a in 0..cfg.authors {
        let mut name =
            format!("{} {}", name_rng.pick(names::FIRST_NAMES), name_rng.pick(names::LAST_NAMES));
        if !used_names.insert(name.clone()) {
            name = format!("{name} {:04}", a);
            used_names.insert(name.clone());
        }
        db.insert("Author", vec![Value::Int(a as i64 + 1), name.into()]).expect("author insert");
    }
    for (i, spec) in cfg.famous.iter().enumerate() {
        let pk = cfg.authors as i64 + 1 + i as i64;
        assert!(
            used_names.insert(spec.name.clone()),
            "famous author name `{}` collides with a generated name",
            spec.name
        );
        db.insert("Author", vec![Value::Int(pk), spec.name.clone().into()]).expect("author insert");
        famous.push((spec.name.clone(), pk));
    }

    // --- Papers and authorship --------------------------------------------
    // Author productivity follows a Zipf over a shuffled permutation of the
    // regular authors (so which authors are prolific is seed-dependent, not
    // id-dependent).
    let author_perm = {
        let mut p: Vec<i64> = (1..=cfg.authors as i64).collect();
        rng.shuffle(&mut p);
        p
    };
    let author_dist = Zipf::new(cfg.authors.max(1), cfg.author_zipf);
    // Weights for the number of authors of a paper: mean ~2.6.
    const AUTHOR_COUNT_WEIGHTS: [(usize, f64); 5] =
        [(1, 0.15), (2, 0.35), (3, 0.30), (4, 0.15), (5, 0.05)];

    let mut paper_rng = rng.fork(0xBEEF);
    let mut paper_authors: Vec<Vec<i64>> = Vec::with_capacity(cfg.papers + 1);
    let mut author_links: Vec<(i64, i64)> = Vec::new(); // (author_pk, paper_pk)
    let total_papers = cfg.papers + usize::from(cfg.link_famous_triple && cfg.famous.len() >= 3);

    for p in 0..cfg.papers {
        let pk = p as i64 + 1;
        let conf = paper_rng.range(0, cfg.conferences);
        let year_id = *paper_rng.pick(&year_ids[conf]);
        let n_words = paper_rng.range(4, 8);
        let words: Vec<&str> = (0..n_words).map(|_| *paper_rng.pick(names::TITLE_WORDS)).collect();
        let title = names::title(&words);
        db.insert("Paper", vec![Value::Int(pk), title.into(), Value::Int(year_id)])
            .expect("paper insert");

        let roll = paper_rng.f64();
        let mut acc = 0.0;
        let mut k = 1;
        for (count, w) in AUTHOR_COUNT_WEIGHTS {
            acc += w;
            if roll < acc {
                k = count;
                break;
            }
        }
        let k = k.min(cfg.authors);
        let mut chosen: Vec<i64> = Vec::with_capacity(k);
        let mut attempts = 0;
        while chosen.len() < k && attempts < 50 * k {
            attempts += 1;
            let a = author_perm[author_dist.sample(&mut paper_rng)];
            if !chosen.contains(&a) {
                chosen.push(a);
            }
        }
        for &a in &chosen {
            author_links.push((a, pk));
        }
        paper_authors.push(chosen);
    }

    // The shared Example-4/5 paper for the first three famous authors.
    if cfg.link_famous_triple && cfg.famous.len() >= 3 {
        let pk = cfg.papers as i64 + 1;
        // SIGCOMM is conference 0 by construction of the acronym list;
        // choose its venue-year closest to 1999.
        let target = 1999i64;
        let year_id = *year_ids[0]
            .iter()
            .min_by_key(|&&yid| {
                let y = first_year + (yid - year_ids[0][0]);
                (y - target).abs()
            })
            .expect("conference 0 has years");
        db.insert(
            "Paper",
            vec![
                Value::Int(pk),
                "On Power-law Relationships of the Internet Topology".into(),
                Value::Int(year_id),
            ],
        )
        .expect("paper insert");
        let trio: Vec<i64> = famous.iter().take(3).map(|&(_, pk)| pk).collect();
        for &a in &trio {
            author_links.push((a, pk));
        }
        paper_authors.push(trio);
    }

    // Famous authors: attach each to exactly `spec.papers` distinct papers
    // (the shared triple paper counts toward the first three).
    let mut famous_rng = rng.fork(0xFA0);
    for (i, spec) in cfg.famous.iter().enumerate() {
        let author_pk = famous[i].1;
        let already: usize =
            paper_authors.iter().filter(|authors| authors.contains(&author_pk)).count();
        let mut need = spec.papers.saturating_sub(already);
        let mut guard = 0;
        while need > 0 {
            guard += 1;
            assert!(guard < 100 * cfg.papers, "cannot place famous author {}", spec.name);
            let p = famous_rng.range(0, cfg.papers); // only regular papers
            if !paper_authors[p].contains(&author_pk) {
                paper_authors[p].push(author_pk);
                author_links.push((author_pk, p as i64 + 1));
                need -= 1;
            }
        }
    }

    let mut link_pk = 0i64;
    for (a, p) in author_links {
        link_pk += 1;
        db.insert("AuthorPaper", vec![Value::Int(link_pk), Value::Int(a), Value::Int(p)])
            .expect("author-paper insert");
    }

    // --- Citations ----------------------------------------------------------
    // Each paper cites an exponential number of papers; *which* papers are
    // popular follows a Zipf over a shuffled permutation.
    let cite_perm = {
        let mut p: Vec<i64> = (1..=total_papers as i64).collect();
        rng.shuffle(&mut p);
        p
    };
    let cite_dist = Zipf::new(total_papers.max(1), cfg.citation_zipf);
    let mut cite_rng = rng.fork(0xC17E);
    let mut cite_pk = 0i64;
    for p in 1..=total_papers as i64 {
        let draw = (1.0 - cite_rng.f64()).max(f64::MIN_POSITIVE);
        let count = ((-cfg.citations_per_paper_mean * draw.ln()) as usize).min(30);
        let mut cited: Vec<i64> = Vec::with_capacity(count);
        let mut attempts = 0;
        while cited.len() < count && attempts < 20 * (count + 1) {
            attempts += 1;
            let q = cite_perm[cite_dist.sample(&mut cite_rng)];
            if q != p && !cited.contains(&q) {
                cited.push(q);
            }
        }
        for q in cited {
            cite_pk += 1;
            db.insert("Citation", vec![Value::Int(cite_pk), Value::Int(p), Value::Int(q)])
                .expect("citation insert");
        }
    }

    Dblp {
        author: db.table_id("Author").expect("schema"),
        paper: db.table_id("Paper").expect("schema"),
        author_paper: db.table_id("AuthorPaper").expect("schema"),
        citation: db.table_id("Citation").expect("schema"),
        year: db.table_id("Year").expect("schema"),
        conference: db.table_id("Conference").expect("schema"),
        famous,
        db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_db_is_fk_consistent() {
        let d = generate(&DblpConfig::tiny());
        d.db.validate_foreign_keys().expect("FKs consistent");
        assert_eq!(d.db.table(d.author).len(), 60);
        assert_eq!(d.db.table(d.paper).len(), 120);
        assert_eq!(d.db.table(d.conference).len(), 5);
        assert_eq!(d.db.table(d.year).len(), 20);
        assert!(d.db.table(d.author_paper).len() >= 120, "every paper has >= 1 author");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&DblpConfig::tiny());
        let b = generate(&DblpConfig::tiny());
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
        for (ta, tb) in a.db.tables().zip(b.db.tables()) {
            assert_eq!(ta.1.len(), tb.1.len());
            for ((_, ra), (_, rb)) in ta.1.iter().zip(tb.1.iter()) {
                assert_eq!(ra, rb);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DblpConfig::tiny());
        let mut cfg = DblpConfig::tiny();
        cfg.seed = 7;
        let b = generate(&cfg);
        // Same shape, different content.
        assert_eq!(a.db.table_count(), b.db.table_count());
        let authors_a: Vec<String> =
            a.db.table(a.author).iter().map(|(_, r)| r[1].as_str().unwrap().to_owned()).collect();
        let authors_b: Vec<String> =
            b.db.table(b.author).iter().map(|(_, r)| r[1].as_str().unwrap().to_owned()).collect();
        assert_ne!(authors_a, authors_b);
    }

    #[test]
    fn famous_authors_have_exact_paper_counts() {
        let d = generate(&DblpConfig::small());
        d.db.validate_foreign_keys().expect("FKs consistent");
        let ap = d.db.table(d.author_paper);
        let author_col = ap.schema.column_index("author_id").unwrap();
        for (spec, (name, pk)) in DblpConfig::small().famous.iter().zip(&d.famous) {
            assert_eq!(&spec.name, name);
            let count = ap.rows_where_eq(author_col, *pk).len();
            assert_eq!(count, spec.papers, "paper count for {name}");
        }
    }

    #[test]
    fn triple_shares_the_powerlaw_paper() {
        let d = generate(&DblpConfig::small());
        let paper_tbl = d.db.table(d.paper);
        let (row, _) = paper_tbl
            .iter()
            .find(|(_, r)| r[1].as_str().unwrap().starts_with("On Power-law"))
            .expect("shared paper exists");
        let ap = d.db.table(d.author_paper);
        let paper_col = ap.schema.column_index("paper_id").unwrap();
        let authors: Vec<i64> = ap
            .rows_where_eq(paper_col, paper_tbl.pk_of(row))
            .iter()
            .map(|&r| ap.value(r, 1).as_int().unwrap())
            .collect();
        let famous_pks: Vec<i64> = d.famous.iter().take(3).map(|&(_, pk)| pk).collect();
        for pk in famous_pks {
            assert!(authors.contains(&pk));
        }
    }

    #[test]
    fn author_productivity_is_skewed() {
        let d = generate(&DblpConfig::tiny());
        let ap = d.db.table(d.author_paper);
        let author_col = ap.schema.column_index("author_id").unwrap();
        let mut counts: Vec<usize> =
            (1..=60).map(|a| ap.rows_where_eq(author_col, a).len()).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] >= 3 * counts[30].max(1), "head {} tail {}", counts[0], counts[30]);
    }

    #[test]
    fn citations_never_self_cite() {
        let d = generate(&DblpConfig::tiny());
        let c = d.db.table(d.citation);
        for (_, row) in c.iter() {
            assert_ne!(row[1].as_int(), row[2].as_int());
        }
    }
}
