//! Synthetic TPC-H-like generator.
//!
//! Schema (Figure 11 of the paper):
//!
//! ```text
//! Region(id, name)
//! Nation(id, name, region_id -> Region)
//! Customer(id, name, acctbal, nation_id -> Nation)
//! Supplier(id, name, acctbal, nation_id -> Nation)
//! Part(id, name, retailprice)
//! Partsupp(id, part_id -> Part, supp_id -> Supplier, supplycost, availqty, comment)
//! Orders(id, cust_id -> Customer, totalprice, orderyear)
//! Lineitem(id, order_id -> Orders, ps_id -> Partsupp, extendedprice, quantity)
//! ```
//!
//! Two documented deviations from `dbgen` (see DESIGN.md §3):
//!
//! * `Partsupp` gets a surrogate single-column key `id`, referenced by
//!   `Lineitem.ps_id`, instead of the composite `(partkey, suppkey)` —
//!   our storage layer keys are single-column; cardinalities are unchanged.
//! * Scale is configurable and defaults far below SF-1 so the benchmark
//!   suite runs in seconds; the paper's average |OS| sizes per GDS are
//!   matched by the `bench()` preset and recorded in EXPERIMENTS.md.
//!
//! Prices are *consistent*: an order's `totalprice` is the exact sum of its
//! lineitems' `extendedprice`, so ValueRank's authority flow (Figure 13b)
//! sees the same correlation structure as real TPC-H.

use std::collections::HashSet;

use sizel_storage::{Database, StorageError, TableId, TableSchema, Value, ValueType};
use sizel_util::prng::{Prng, Zipf};

use crate::names;

/// Configuration for the TPC-H generator.
#[derive(Clone, Debug)]
pub struct TpchConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Number of customers.
    pub customers: usize,
    /// Number of suppliers.
    pub suppliers: usize,
    /// Number of parts.
    pub parts: usize,
    /// Partsupp rows per part (supplier assignments).
    pub suppliers_per_part: usize,
    /// Mean orders per customer (Zipf-skewed across customers).
    pub orders_per_customer_mean: f64,
    /// Zipf exponent for order-count skew across customers.
    pub customer_zipf: f64,
    /// Lineitems per order: uniform in `[1, max_lineitems_per_order]`.
    pub max_lineitems_per_order: usize,
}

impl TpchConfig {
    /// Minimal database for unit tests.
    pub fn tiny() -> Self {
        TpchConfig {
            seed: 42,
            customers: 40,
            suppliers: 8,
            parts: 50,
            suppliers_per_part: 2,
            orders_per_customer_mean: 3.0,
            customer_zipf: 0.6,
            max_lineitems_per_order: 4,
        }
    }

    /// Benchmark database: calibrated so average |OS| per GDS approaches the
    /// paper's reported sizes (Customer ≈ 176, Supplier ≈ 1341).
    pub fn bench() -> Self {
        TpchConfig {
            seed: 42,
            customers: 800,
            suppliers: 70,
            parts: 1_000,
            suppliers_per_part: 4,
            orders_per_customer_mean: 16.0,
            customer_zipf: 0.5,
            max_lineitems_per_order: 6,
        }
    }
}

/// Handles to the generated TPC-H database.
#[derive(Debug)]
pub struct Tpch {
    /// The populated database.
    pub db: Database,
    /// `Customer` table id.
    pub customer: TableId,
    /// `Supplier` table id.
    pub supplier: TableId,
    /// `Orders` table id.
    pub orders: TableId,
    /// `Lineitem` table id.
    pub lineitem: TableId,
    /// `Partsupp` table id.
    pub partsupp: TableId,
    /// `Part` table id.
    pub part: TableId,
    /// `Nation` table id.
    pub nation: TableId,
    /// `Region` table id.
    pub region: TableId,
}

/// Builds the eight TPC-H table schemas into `db`.
fn create_schema(db: &mut Database) -> Result<(), StorageError> {
    db.create_table(TableSchema::builder("Region").pk("id").searchable_text("name").build()?)?;
    db.create_table(
        TableSchema::builder("Nation")
            .pk("id")
            .searchable_text("name")
            .fk("region_id", "Region")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("Customer")
            .pk("id")
            .searchable_text("name")
            .column("acctbal", ValueType::Float)
            .fk("nation_id", "Nation")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("Supplier")
            .pk("id")
            .searchable_text("name")
            .column("acctbal", ValueType::Float)
            .fk("nation_id", "Nation")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("Part")
            .pk("id")
            .searchable_text("name")
            .column("retailprice", ValueType::Float)
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("Partsupp")
            .pk("id")
            .fk("part_id", "Part")
            .fk("supp_id", "Supplier")
            .column("supplycost", ValueType::Float)
            .column("availqty", ValueType::Int)
            // The paper's θ' example: Partsupp.comment is excluded from
            // Customer OSs; we model attribute selection with display flags.
            .hidden_column("comment", ValueType::Text)
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("Orders")
            .pk("id")
            .fk("cust_id", "Customer")
            .column("totalprice", ValueType::Float)
            .column("orderyear", ValueType::Int)
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("Lineitem")
            .pk("id")
            .fk("order_id", "Orders")
            .fk("ps_id", "Partsupp")
            .column("extendedprice", ValueType::Float)
            .column("quantity", ValueType::Int)
            .build()?,
    )?;
    Ok(())
}

/// Generates a TPC-H database from the config.
pub fn generate(cfg: &TpchConfig) -> Tpch {
    let mut rng = Prng::new(cfg.seed);
    let mut db = Database::new();
    create_schema(&mut db).expect("static TPC-H schema is valid");

    // --- Regions and nations (the official 5 / 25) ------------------------
    for (i, name) in names::REGIONS.iter().enumerate() {
        db.insert("Region", vec![Value::Int(i as i64 + 1), (*name).into()]).expect("region");
    }
    for (i, name) in names::NATIONS.iter().enumerate() {
        let region = names::NATION_REGION[i] as i64 + 1;
        db.insert("Nation", vec![Value::Int(i as i64 + 1), (*name).into(), Value::Int(region)])
            .expect("nation");
    }
    let n_nations = names::NATIONS.len();

    // --- Customers and suppliers ------------------------------------------
    let mut used: HashSet<String> = HashSet::new();
    let mut person = |rng: &mut Prng, prefix: &str, i: usize| -> String {
        let mut name =
            format!("{} {} {}", prefix, rng.pick(names::FIRST_NAMES), rng.pick(names::LAST_NAMES));
        if !used.insert(name.clone()) {
            name = format!("{name} {i:05}");
            used.insert(name.clone());
        }
        name
    };
    for c in 0..cfg.customers {
        let name = person(&mut rng, "Customer", c);
        let nation = rng.range(0, n_nations) as i64 + 1;
        let acctbal = rng.f64_range(-999.0, 9999.0);
        db.insert(
            "Customer",
            vec![Value::Int(c as i64 + 1), name.into(), Value::Float(acctbal), Value::Int(nation)],
        )
        .expect("customer");
    }
    for s in 0..cfg.suppliers {
        let name = person(&mut rng, "Supplier", s);
        let nation = rng.range(0, n_nations) as i64 + 1;
        let acctbal = rng.f64_range(-999.0, 9999.0);
        db.insert(
            "Supplier",
            vec![Value::Int(s as i64 + 1), name.into(), Value::Float(acctbal), Value::Int(nation)],
        )
        .expect("supplier");
    }

    // --- Parts and partsupp -------------------------------------------------
    let mut part_prices = Vec::with_capacity(cfg.parts);
    for p in 0..cfg.parts {
        let name = format!(
            "{} {} {}",
            rng.pick(names::PART_ADJECTIVES),
            rng.pick(names::PART_MATERIALS),
            rng.pick(names::PART_NOUNS)
        );
        let price = rng.f64_range(10.0, 2000.0);
        part_prices.push(price);
        db.insert("Part", vec![Value::Int(p as i64 + 1), name.into(), Value::Float(price)])
            .expect("part");
    }
    let mut ps_pk = 0i64;
    let mut ps_of_part: Vec<Vec<i64>> = vec![Vec::new(); cfg.parts];
    for p in 0..cfg.parts {
        let k = cfg.suppliers_per_part.min(cfg.suppliers);
        for s in rng.sample_distinct(cfg.suppliers, k) {
            ps_pk += 1;
            let cost = part_prices[p] * rng.f64_range(0.4, 0.9);
            let qty = rng.range_i64(1, 10_000);
            db.insert(
                "Partsupp",
                vec![
                    Value::Int(ps_pk),
                    Value::Int(p as i64 + 1),
                    Value::Int(s as i64 + 1),
                    Value::Float(cost),
                    Value::Int(qty),
                    format!("lot {qty} of part {p}").into(),
                ],
            )
            .expect("partsupp");
            ps_of_part[p].push(ps_pk);
        }
    }
    let total_ps = ps_pk;

    // --- Orders and lineitems -----------------------------------------------
    // Order counts are Zipf-skewed across customers, preserving the paper's
    // regime of a few very active customers.
    let cust_perm = {
        let mut p: Vec<usize> = (0..cfg.customers).collect();
        rng.shuffle(&mut p);
        p
    };
    let cust_dist = Zipf::new(cfg.customers.max(1), cfg.customer_zipf);
    let total_orders = (cfg.customers as f64 * cfg.orders_per_customer_mean) as usize;
    let mut orders_of_customer = vec![0usize; cfg.customers];
    for _ in 0..total_orders {
        orders_of_customer[cust_perm[cust_dist.sample(&mut rng)]] += 1;
    }

    let mut order_pk = 0i64;
    let mut line_pk = 0i64;
    for (c, &n_orders) in orders_of_customer.iter().enumerate() {
        for _ in 0..n_orders {
            order_pk += 1;
            let year = rng.range_i64(1995, 2005);
            let n_lines = rng.range(1, cfg.max_lineitems_per_order + 1);
            // Generate lineitems first so totalprice can be their exact sum.
            let mut lines = Vec::with_capacity(n_lines);
            let mut total = 0.0;
            for _ in 0..n_lines {
                let ps = rng.range_i64(1, total_ps + 1);
                let qty = rng.range_i64(1, 50);
                // extendedprice follows the referenced part's retail price.
                let part_idx = ps_part_index(ps, cfg.suppliers_per_part.min(cfg.suppliers));
                let price = part_prices[part_idx] * qty as f64;
                total += price;
                lines.push((ps, qty, price));
            }
            db.insert(
                "Orders",
                vec![
                    Value::Int(order_pk),
                    Value::Int(c as i64 + 1),
                    Value::Float(total),
                    Value::Int(year),
                ],
            )
            .expect("order");
            for (ps, qty, price) in lines {
                line_pk += 1;
                db.insert(
                    "Lineitem",
                    vec![
                        Value::Int(line_pk),
                        Value::Int(order_pk),
                        Value::Int(ps),
                        Value::Float(price),
                        Value::Int(qty),
                    ],
                )
                .expect("lineitem");
            }
        }
    }

    Tpch {
        customer: db.table_id("Customer").expect("schema"),
        supplier: db.table_id("Supplier").expect("schema"),
        orders: db.table_id("Orders").expect("schema"),
        lineitem: db.table_id("Lineitem").expect("schema"),
        partsupp: db.table_id("Partsupp").expect("schema"),
        part: db.table_id("Part").expect("schema"),
        nation: db.table_id("Nation").expect("schema"),
        region: db.table_id("Region").expect("schema"),
        db,
    }
}

/// Maps a partsupp pk back to its part index. Partsupp rows are emitted in
/// part order with a fixed number of suppliers per part, so this is pure
/// arithmetic (avoids a lookup table).
fn ps_part_index(ps_pk: i64, per_part: usize) -> usize {
    ((ps_pk - 1) as usize) / per_part.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_db_is_fk_consistent() {
        let t = generate(&TpchConfig::tiny());
        t.db.validate_foreign_keys().expect("FKs consistent");
        assert_eq!(t.db.table(t.region).len(), 5);
        assert_eq!(t.db.table(t.nation).len(), 25);
        assert_eq!(t.db.table(t.customer).len(), 40);
        assert_eq!(t.db.table(t.partsupp).len(), 100);
    }

    #[test]
    fn determinism() {
        let a = generate(&TpchConfig::tiny());
        let b = generate(&TpchConfig::tiny());
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
        let oa = a.db.table(a.orders);
        let ob = b.db.table(b.orders);
        for ((_, ra), (_, rb)) in oa.iter().zip(ob.iter()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn totalprice_is_sum_of_lineitems() {
        let t = generate(&TpchConfig::tiny());
        let li = t.db.table(t.lineitem);
        let orders = t.db.table(t.orders);
        let order_col = li.schema.column_index("order_id").unwrap();
        let price_col = li.schema.column_index("extendedprice").unwrap();
        let total_col = orders.schema.column_index("totalprice").unwrap();
        for (oid, row) in orders.iter() {
            let pk = orders.pk_of(oid);
            let sum: f64 = li
                .rows_where_eq(order_col, pk)
                .iter()
                .map(|&r| li.value(r, price_col).as_f64().unwrap())
                .sum();
            let total = row[total_col].as_f64().unwrap();
            assert!((sum - total).abs() < 1e-6, "order {pk}: {sum} vs {total}");
        }
    }

    #[test]
    fn order_counts_are_skewed() {
        let t = generate(&TpchConfig::tiny());
        let orders = t.db.table(t.orders);
        let cust_col = orders.schema.column_index("cust_id").unwrap();
        let mut counts: Vec<usize> =
            (1..=40).map(|c| orders.rows_where_eq(cust_col, c).len()).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] > counts[20], "expected head-heavy order distribution");
    }

    #[test]
    fn ps_part_index_arithmetic() {
        assert_eq!(ps_part_index(1, 2), 0);
        assert_eq!(ps_part_index(2, 2), 0);
        assert_eq!(ps_part_index(3, 2), 1);
        assert_eq!(ps_part_index(100, 2), 49);
    }

    #[test]
    fn partsupp_comment_is_hidden() {
        let t = generate(&TpchConfig::tiny());
        let ps = t.db.table(t.partsupp);
        let comment = ps.schema.column_index("comment").unwrap();
        assert!(!ps.schema.column(comment).display);
        assert!(ps.schema.column(comment).ty == ValueType::Text);
    }
}
