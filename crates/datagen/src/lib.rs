//! Deterministic synthetic workload generators.
//!
//! The paper evaluates on a real DBLP dump and on TPC-H SF-1. Neither is
//! available offline, so this crate generates *synthetic equivalents* that
//! preserve what the algorithms actually observe: schema topology (Figures 1
//! and 11), foreign-key fan-outs with Zipfian skew (a few huge object
//! summaries, many small ones), and value columns for ValueRank.
//!
//! Everything is a pure function of the config seed (see
//! [`sizel_util::prng`]), so the experiment tables in `EXPERIMENTS.md` are
//! reproducible bit-for-bit.
//!
//! * [`dblp`] — Author / Paper / AuthorPaper / Citation / Year / Conference,
//!   with "famous author" seeds that pin OS sizes for the scalability
//!   experiment (Figure 10e) and reproduce the Example 4/5 walk-through.
//! * [`tpch`] — Region / Nation / Customer / Supplier / Part / Partsupp /
//!   Orders / Lineitem with consistent prices (an order's `totalprice` is
//!   the sum of its lineitems), scaled down from SF-1.

pub mod dblp;
pub mod names;
pub mod tpch;

pub use dblp::{DblpConfig, FamousAuthorSpec};
pub use tpch::TpchConfig;
