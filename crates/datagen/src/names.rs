//! Word lists for synthetic names and titles.
//!
//! The lists are intentionally generic; only a handful of entries (the
//! SIGCOMM/SIGMOD-style venue acronyms and the pinned example names in
//! [`crate::dblp`]) echo the paper's running example so that the README
//! walk-through looks like Examples 1-5.

/// First names for synthetic people.
pub const FIRST_NAMES: &[&str] = &[
    "Ada", "Alan", "Alex", "Alice", "Amir", "Ana", "Andre", "Anna", "Ben", "Bianca", "Boris",
    "Carla", "Carlos", "Chen", "Clara", "Daniel", "Dario", "David", "Dawn", "Diego", "Dimitris",
    "Elena", "Emil", "Erik", "Eva", "Felix", "Fiona", "Georg", "Georgia", "Hana", "Hans", "Helen",
    "Hugo", "Ines", "Irene", "Ivan", "Jan", "Jana", "Jorge", "Julia", "Kai", "Karl", "Kenji",
    "Lars", "Laura", "Lea", "Leon", "Lin", "Louis", "Luca", "Lucia", "Maja", "Marco", "Maria",
    "Marta", "Mei", "Milan", "Mira", "Nadia", "Nikos", "Nina", "Noor", "Olga", "Omar", "Otto",
    "Paula", "Pavel", "Pedro", "Petra", "Priya", "Rafael", "Rania", "Ravi", "Rosa", "Sara",
    "Sergei", "Silvia", "Simon", "Sofia", "Stefan", "Tara", "Theo", "Tomas", "Uma", "Vera",
    "Victor", "Wei", "Xavier", "Yara", "Yuki", "Zara", "Zhen",
];

/// Last names for synthetic people.
pub const LAST_NAMES: &[&str] = &[
    "Abadi",
    "Adler",
    "Aoki",
    "Baker",
    "Barros",
    "Bauer",
    "Becker",
    "Berg",
    "Bianchi",
    "Blake",
    "Brandt",
    "Braun",
    "Castro",
    "Chen",
    "Cohen",
    "Costa",
    "Cruz",
    "Dias",
    "Duarte",
    "Dumont",
    "Eriksen",
    "Farkas",
    "Ferrari",
    "Fischer",
    "Fontaine",
    "Fuchs",
    "Garcia",
    "Gruber",
    "Haas",
    "Hansen",
    "Hartmann",
    "Hoffman",
    "Horvat",
    "Huang",
    "Ibrahim",
    "Ishikawa",
    "Ivanov",
    "Jansen",
    "Jensen",
    "Kato",
    "Keller",
    "Kim",
    "Klein",
    "Kovacs",
    "Kraus",
    "Kumar",
    "Lang",
    "Larsen",
    "Lehmann",
    "Lima",
    "Lopez",
    "Lorenz",
    "Maier",
    "Marino",
    "Martin",
    "Mendes",
    "Meyer",
    "Miller",
    "Molnar",
    "Moreau",
    "Moretti",
    "Nagy",
    "Nakamura",
    "Neumann",
    "Novak",
    "Oliveira",
    "Olsen",
    "Park",
    "Peters",
    "Petrov",
    "Pinto",
    "Popov",
    "Ramos",
    "Ricci",
    "Richter",
    "Rios",
    "Romano",
    "Rossi",
    "Roy",
    "Ruiz",
    "Sato",
    "Schmidt",
    "Schneider",
    "Silva",
    "Simon",
    "Sokolov",
    "Sousa",
    "Suzuki",
    "Takeda",
    "Tanaka",
    "Torres",
    "Vargas",
    "Vogel",
    "Wagner",
    "Walter",
    "Wang",
    "Weber",
    "Winter",
    "Wolf",
    "Yamada",
    "Zhang",
    "Zimmer",
];

/// Venue acronyms; the first few mirror the paper's examples.
pub const CONFERENCES: &[&str] = &[
    "SIGCOMM", "SIGMOD", "VLDB", "PODS", "ICDE", "KDD", "SIGIR", "WWW", "SIGGRAPH", "PDIS", "EDBT",
    "CIKM", "ICML", "SODA", "FOCS", "STOC", "OSDI", "SOSP", "NSDI", "EuroSys", "ATC", "MIDL",
    "DEXA", "ADBIS", "SSDBM", "MDM", "WISE", "ER", "ICDT", "DASFAA",
];

/// Words used to assemble synthetic paper titles.
pub const TITLE_WORDS: &[&str] = &[
    "adaptive",
    "aggregate",
    "analysis",
    "approximate",
    "caching",
    "clustering",
    "compression",
    "concurrent",
    "databases",
    "declustering",
    "dimensionality",
    "discovery",
    "distributed",
    "dynamic",
    "efficient",
    "elastic",
    "estimation",
    "evaluation",
    "exploration",
    "fractal",
    "graphs",
    "hashing",
    "hierarchical",
    "incremental",
    "indexing",
    "keyword",
    "learning",
    "locality",
    "mining",
    "models",
    "multicast",
    "networks",
    "optimization",
    "parallel",
    "partitioning",
    "patterns",
    "power-law",
    "probabilistic",
    "processing",
    "protocols",
    "queries",
    "querying",
    "ranking",
    "relational",
    "retrieval",
    "sampling",
    "scalable",
    "scheduling",
    "search",
    "semantics",
    "sequences",
    "similarity",
    "spatial",
    "storage",
    "streams",
    "summaries",
    "systems",
    "temporal",
    "topology",
    "transactions",
    "workloads",
];

/// TPC-H region names (the official five).
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// TPC-H nation names (the official twenty-five).
pub const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

/// Map from nation index to region index, following the TPC-H spec layout.
pub const NATION_REGION: &[usize] =
    &[0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1];

/// Adjectives for part names.
pub const PART_ADJECTIVES: &[&str] = &[
    "anodized",
    "brushed",
    "burnished",
    "chiffon",
    "cream",
    "dim",
    "drab",
    "floral",
    "frosted",
    "glazed",
    "hot",
    "lace",
    "lemon",
    "light",
    "metallic",
    "midnight",
    "misty",
    "pale",
    "plum",
    "polished",
    "powder",
    "sandy",
    "smoke",
    "spring",
    "steel",
    "thistle",
    "turquoise",
    "wheat",
];

/// Materials for part names.
pub const PART_MATERIALS: &[&str] =
    &["brass", "copper", "nickel", "steel", "tin", "zinc", "chrome", "cobalt"];

/// Nouns for part names.
pub const PART_NOUNS: &[&str] = &[
    "anchor", "bearing", "bolt", "bracket", "casing", "clamp", "coupling", "fitting", "flange",
    "gasket", "gear", "hinge", "lever", "pin", "plate", "rivet", "rod", "shaft", "spring", "valve",
    "washer", "wheel",
];

/// Builds a synthetic paper title with `n` words, capitalized.
pub fn title(words: &[&str]) -> String {
    let mut out = String::new();
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        if i == 0 {
            let mut chars = w.chars();
            if let Some(c) = chars.next() {
                out.extend(c.to_uppercase());
                out.push_str(chars.as_str());
            }
        } else {
            out.push_str(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_are_nonempty_and_deduped() {
        for list in [FIRST_NAMES, LAST_NAMES, CONFERENCES, TITLE_WORDS] {
            assert!(!list.is_empty());
            let mut v: Vec<&str> = list.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), list.len(), "duplicate entries in word list");
        }
    }

    #[test]
    fn nation_region_mapping_is_complete() {
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(NATION_REGION.len(), 25);
        assert!(NATION_REGION.iter().all(|&r| r < REGIONS.len()));
    }

    #[test]
    fn title_capitalizes_first_word() {
        assert_eq!(title(&["efficient", "similarity", "search"]), "Efficient similarity search");
    }
}
