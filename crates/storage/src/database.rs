//! The catalog: named tables, FK validation, and the query forms used by
//! the OS-generation algorithms.

use std::collections::HashMap;
use std::sync::Arc;

use crate::access::AccessCounter;
use crate::epoch::Epoch;
use crate::error::StorageError;
use crate::fk_index::{FkOrderToken, LinkTarget, SortedLinkIndex};
use crate::pager::{PostingCursor, PostingPager, SlicePostingCursor};
use crate::schema::TableSchema;
use crate::table::{RowId, Table};
use crate::value::Value;
use crate::Result;

/// Incremental scored inserts a table absorbs before the maintenance
/// switches to an epoch-batched full re-sort of its postings (see
/// [`Database::set_churn_threshold`]).
pub const DEFAULT_CHURN_THRESHOLD: usize = 4096;

/// Dead posting entries a table's sorted FK postings carry before a
/// settlement triggers a compaction pass (see
/// [`Database::set_compaction_threshold`]).
pub const DEFAULT_COMPACTION_THRESHOLD: usize = 1024;

/// A table identifier (dense index into the catalog).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

impl TableId {
    /// The table index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to one tuple anywhere in the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleRef {
    /// The containing table.
    pub table: TableId,
    /// The row within that table.
    pub row: RowId,
}

impl TupleRef {
    /// Convenience constructor.
    pub fn new(table: TableId, row: RowId) -> Self {
        TupleRef { table, row }
    }
}

/// One mutation staged in a [`ScoredBatch`], with the posting keys it
/// touches captured *at staging time* — settlement replays the ops in
/// order, and a row mutated more than once per batch has a different key
/// set at each step than its final values suggest.
#[derive(Debug)]
pub enum StagedOp {
    /// A scored insert awaiting binary posting insertion.
    Insert {
        /// The inserted row.
        target: (TableId, RowId),
        /// `(fk column, key)` posting entries the row held *at insert
        /// time* (a later in-batch update may have moved it since).
        keys: Vec<(usize, i64)>,
    },
    /// A scored update awaiting a reposition (remove under the old keys,
    /// re-insert at the new score under the new keys).
    Update {
        /// The rewritten row.
        target: (TableId, RowId),
        /// `(fk column, key)` posting entries the row held before this op.
        old_keys: Vec<(usize, i64)>,
        /// `(fk column, key)` posting entries the row holds after this op.
        new_keys: Vec<(usize, i64)>,
        /// The row's new installed importance.
        score: f64,
    },
    /// A scored delete: the row's posting entries stay behind as
    /// tombstones (counted toward the compaction debt).
    Delete {
        /// The tombstoned row.
        target: (TableId, RowId),
        /// `(fk column, key)` posting entries the row leaves behind.
        keys: Vec<(usize, i64)>,
    },
}

impl StagedOp {
    /// The `(table, row)` this op targets.
    pub fn target(&self) -> (TableId, RowId) {
        match *self {
            StagedOp::Insert { target, .. }
            | StagedOp::Update { target, .. }
            | StagedOp::Delete { target, .. } => target,
        }
    }
}

/// A handle staging several scored mutations (inserts, updates, deletes)
/// whose sorted-posting maintenance is settled in **one** pass
/// ([`Database::finish_scored_batch`]): per affected table, either every
/// staged op replays incrementally (binary insert / reposition /
/// tombstone), or — above the churn threshold — one re-sort absorbs the
/// whole batch, instead of potentially several mid-stream re-sorts when
/// the same ops arrive one [`Database::insert_scored`] /
/// [`Database::update_scored`] / [`Database::delete_scored`] at a time.
/// Junction link postings touched by any update/delete are rebuilt once
/// per batch, and at most one tombstone compaction per table runs at the
/// end. While the batch is open the affected tables' postings are
/// suspended, so probes conservatively heap-fall-back rather than scan
/// prefixes missing the staged ops.
///
/// The settled end state serves queries byte-identically to folding the
/// single-op calls in the same order (property-tested at every churn and
/// compaction threshold); only compaction *timing* may differ, which is
/// invisible to probes (tombstones are skipped) and to accounting.
#[derive(Debug)]
#[must_use = "settle with Database::finish_scored_batch or staged ops never re-join the sorted postings"]
pub struct ScoredBatch {
    /// Ops that took the maintained path, in arrival order (plain
    /// fallbacks need no settlement).
    staged: Vec<StagedOp>,
    /// Tables whose postings were suspended at first touch.
    touched: Vec<TableId>,
    /// Epoch of the last staged (maintained) op — the stamp the settled
    /// [`FkOrderToken`] carries, exactly as the fold would leave it.
    last_scored_epoch: Option<Epoch>,
}

impl ScoredBatch {
    /// Ops staged so far (maintained path only), in arrival order.
    pub fn staged(&self) -> &[StagedOp] {
        &self.staged
    }
}

/// An in-memory relational database: a catalog of [`Table`]s plus an
/// [`AccessCounter`] shared by all query paths.
#[derive(Debug)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    access: AccessCounter,
    /// The currently installed importance order, if any (see
    /// [`crate::fk_index`]).
    fk_order: Option<FkOrderToken>,
    /// Global mutation epoch: bumped on every mutation of any table.
    epoch: Epoch,
    /// Per-table churn bound before the epoch-batched posting re-sort.
    churn_threshold: usize,
    /// Per-table dead-entry bound before a settlement compacts the
    /// sorted FK postings.
    compaction_threshold: usize,
    /// Missing junction-link endpoints: `(target table, pk)` → the
    /// junction tables whose link postings were dropped because a scored
    /// insert referenced that not-yet-existing row. When the endpoint
    /// later arrives through a scored insert, the waiting junctions'
    /// postings are rebuilt (healed) instead of staying on the heap
    /// fallback until the next full install.
    dangling_watch: HashMap<(TableId, i64), Vec<TableId>>,
    /// An attached paged posting store (the disk tier), if any: serves
    /// prefix scans for tables whose in-RAM postings were evicted
    /// ([`Database::evict_table_postings`]), but only while its segment
    /// stamp equals the live installed [`FkOrderToken`] — any mutation
    /// re-stamps the token and silently stales the segments until the
    /// next checkpoint.
    pager: Option<Arc<dyn PostingPager>>,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            tables: Vec::new(),
            by_name: HashMap::new(),
            access: AccessCounter::default(),
            fk_order: None,
            epoch: Epoch::default(),
            churn_threshold: DEFAULT_CHURN_THRESHOLD,
            compaction_threshold: DEFAULT_COMPACTION_THRESHOLD,
            dangling_watch: HashMap::new(),
            pager: None,
        }
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The global mutation epoch (bumped on every mutation; see
    /// [`crate::epoch`]).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Advances the global epoch without touching any row. For derived
    /// state that downstream caches key on but that can change out of band
    /// of a row mutation — e.g. a re-ranked importance vector after a
    /// bounded rank re-iteration: entries computed under the superseded
    /// scores must stop being served even though no tuple moved.
    pub fn bump_epoch(&mut self) -> Epoch {
        self.epoch = self.epoch.next();
        self.epoch
    }

    /// Sets the per-table churn bound: after this many incremental scored
    /// inserts, the next one triggers a full re-sort of the table's
    /// postings instead of another binary insert. Both strategies are
    /// byte-identical; the threshold only trades insert latency
    /// (`O(g)` memmove per posting) against a periodic `O(Σ g log g)`
    /// batch.
    pub fn set_churn_threshold(&mut self, threshold: usize) {
        self.churn_threshold = threshold.max(1);
    }

    /// The current churn bound.
    pub fn churn_threshold(&self) -> usize {
        self.churn_threshold
    }

    /// Sets the per-table tombstone bound: once a settlement leaves more
    /// than this many dead entries in a table's sorted FK postings, the
    /// settlement ends with one compaction pass (a full rebuild from the
    /// live-only hash indexes) for that table. Probes are oblivious —
    /// tombstones are skipped during prefix scans and invisible to
    /// accounting — so the threshold only trades scan overhead
    /// (`O(dead)` skipped entries worst case) against periodic
    /// `O(Σ g log g)` rebuilds. `0` compacts on every settling delete.
    pub fn set_compaction_threshold(&mut self, threshold: usize) {
        self.compaction_threshold = threshold;
    }

    /// The current tombstone bound.
    pub fn compaction_threshold(&self) -> usize {
        self.compaction_threshold
    }

    /// Registers a table; names must be unique.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableId> {
        if self.by_name.contains_key(&schema.name) {
            return Err(StorageError::BadSchema(format!("table `{}` already exists", schema.name)));
        }
        let id = TableId(self.tables.len() as u16);
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(Table::new(schema));
        Ok(id)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Mutable access to a table (used by generators).
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.index()]
    }

    /// Looks a table up by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name.get(name).copied().ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Iterates `(TableId, &Table)` over the catalog.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables.iter().enumerate().map(|(i, t)| (TableId(i as u16), t))
    }

    /// Inserts a row into a named table (the legacy *un-scored* path: any
    /// installed sorted postings of that table are dropped and the heap
    /// path takes over for it — see [`Database::insert_scored`] for the
    /// maintenance path). Bumps the table's and the global epoch.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<RowId> {
        let id = self.table_id(table)?;
        let row = self.tables[id.index()].insert(values)?;
        self.epoch = self.epoch.next();
        Ok(row)
    }

    /// Rewrites the live row with primary key `pk` in place (the legacy
    /// *un-scored* path — drops the table's sorted postings like
    /// [`Database::insert`]; see [`Database::update_scored`] for the
    /// maintained path). The pk itself is immutable. Bumps the table's
    /// and the global epoch.
    pub fn update(&mut self, table: &str, pk: i64, values: Vec<Value>) -> Result<RowId> {
        let id = self.table_id(table)?;
        let row = self.tables[id.index()].update(pk, values)?;
        self.epoch = self.epoch.next();
        Ok(row)
    }

    /// Tombstones the live row with primary key `pk` (the legacy
    /// *un-scored* path — see [`Database::delete_scored`] for the
    /// maintained path). The row slot and its `RowId` survive; the row
    /// becomes invisible to iteration, hash indexes, and `by_pk`.
    /// Referential integrity is *not* checked here (mirroring
    /// [`Database::insert`], which defers FK existence to
    /// [`Database::validate_foreign_keys`]); the engine layer rejects
    /// deletes that would strand live referencers. Bumps the table's and
    /// the global epoch.
    pub fn delete(&mut self, table: &str, pk: i64) -> Result<RowId> {
        let id = self.table_id(table)?;
        let row = self.tables[id.index()].delete(pk)?;
        self.epoch = self.epoch.next();
        Ok(row)
    }

    /// Finds a live row still referencing `(target, pk)` through any FK,
    /// returning the referencing table's name — the engine's RESTRICT
    /// check before a delete (a tombstoned row with live referencers
    /// would dangle their FKs).
    pub fn find_referencer(&self, target: TableId, pk: i64) -> Option<&str> {
        let target_name = &self.table(target).schema.name;
        for (_, t) in self.tables() {
            for fk in &t.schema.fks {
                if fk.ref_table == *target_name && !t.rows_where_eq(fk.column, pk).is_empty() {
                    return Some(&t.schema.name);
                }
            }
        }
        None
    }

    /// Inserts a row whose installed global importance is `score`,
    /// *maintaining* the importance order instead of invalidating it: the
    /// row is binary-inserted into every affected sorted FK posting list
    /// (and, for junction tables, into both orientations' sorted link
    /// postings), and the installed [`FkOrderToken`] is re-stamped with
    /// the new epoch. Holders of the superseded token heap-fall-back;
    /// contexts synchronized to the new token keep the prefix-scan fast
    /// path. Above the churn threshold the table's postings are re-sorted
    /// in one epoch-batched pass instead (byte-identical either way). A
    /// batch of one: see [`Database::begin_scored_batch`] for amortizing
    /// the settlement across many inserts.
    ///
    /// Falls back to the plain [`Database::insert`] when no live
    /// importance order covers the table (nothing to maintain).
    pub fn insert_scored(&mut self, table: &str, values: Vec<Value>, score: f64) -> Result<RowId> {
        let mut batch = self.begin_scored_batch();
        let row = self.insert_scored_staged(&mut batch, table, values, score);
        self.finish_scored_batch(batch);
        row
    }

    /// Rewrites a live row while *maintaining* the importance order: the
    /// row's posting entries are removed under its old keys and
    /// re-inserted at `score` under its new keys, at the exact positions
    /// a from-scratch install would use; junction link postings whose
    /// target importance the update staled are rebuilt. A batch of one —
    /// see [`Database::update_scored_staged`].
    ///
    /// Falls back to the plain [`Database::update`] when no live
    /// importance order covers the table.
    pub fn update_scored(
        &mut self,
        table: &str,
        pk: i64,
        values: Vec<Value>,
        score: f64,
    ) -> Result<RowId> {
        let mut batch = self.begin_scored_batch();
        let row = self.update_scored_staged(&mut batch, table, pk, values, score);
        self.finish_scored_batch(batch);
        row
    }

    /// Tombstones a live row while *maintaining* the importance order:
    /// the row's sorted-posting entries stay behind as skipped-over
    /// tombstones until the compaction threshold purges them; junction
    /// link postings that referenced the row as a target are rebuilt
    /// (dropping to the heap fallback and watching the endpoint when the
    /// reference now dangles — the PR 5 dangling watch run in reverse).
    /// A batch of one — see [`Database::delete_scored_staged`].
    ///
    /// Falls back to the plain [`Database::delete`] when no live
    /// importance order covers the table.
    pub fn delete_scored(&mut self, table: &str, pk: i64) -> Result<RowId> {
        let mut batch = self.begin_scored_batch();
        let row = self.delete_scored_staged(&mut batch, table, pk);
        self.finish_scored_batch(batch);
        row
    }

    /// Opens a scored-insert batch (see [`ScoredBatch`]). Stage rows with
    /// [`Database::insert_scored_staged`], settle with
    /// [`Database::finish_scored_batch`].
    pub fn begin_scored_batch(&self) -> ScoredBatch {
        ScoredBatch { staged: Vec::new(), touched: Vec::new(), last_scored_epoch: None }
    }

    /// Stages one scored insert into an open batch: the row (and its
    /// score) lands in the table — visible to hash-index and PK reads,
    /// epoch bumped — but sorted-posting maintenance is deferred to
    /// [`Database::finish_scored_batch`]. The affected table's postings
    /// are suspended for the batch's duration (probes heap-fall-back).
    /// Falls back to the plain [`Database::insert`] exactly like
    /// [`Database::insert_scored`] when no live order covers the table.
    pub fn insert_scored_staged(
        &mut self,
        batch: &mut ScoredBatch,
        table: &str,
        values: Vec<Value>,
        score: f64,
    ) -> Result<RowId> {
        let tid = self.table_id(table)?;
        if self.fk_order.is_none() || !self.tables[tid.index()].has_installed_scores() {
            return self.insert(table, values);
        }
        self.touch(batch, tid);
        let t = &mut self.tables[tid.index()];
        let row = t.insert_scored_staged(values, score)?;
        let keys = t.fk_keys_of(row);
        self.epoch = self.epoch.next();
        batch.staged.push(StagedOp::Insert { target: (tid, row), keys });
        batch.last_scored_epoch = Some(self.epoch);
        Ok(row)
    }

    /// Stages one scored update into an open batch: the row is rewritten
    /// in place — hash-visible, epoch bumped — and its pre-/post-update
    /// posting keys are captured so [`Database::finish_scored_batch`] can
    /// replay the reposition. Falls back to the plain
    /// [`Database::update`] when no live order covers the table.
    pub fn update_scored_staged(
        &mut self,
        batch: &mut ScoredBatch,
        table: &str,
        pk: i64,
        values: Vec<Value>,
        score: f64,
    ) -> Result<RowId> {
        let tid = self.table_id(table)?;
        if self.fk_order.is_none() || !self.tables[tid.index()].has_installed_scores() {
            return self.update(table, pk, values);
        }
        self.touch(batch, tid);
        let t = &mut self.tables[tid.index()];
        let old_keys = match t.by_pk(pk) {
            Some(row) => t.fk_keys_of(row),
            // Let the validated path produce the canonical error.
            None => Vec::new(),
        };
        let row = t.update_scored_staged(pk, values)?;
        let new_keys = t.fk_keys_of(row);
        self.epoch = self.epoch.next();
        batch.staged.push(StagedOp::Update { target: (tid, row), old_keys, new_keys, score });
        batch.last_scored_epoch = Some(self.epoch);
        Ok(row)
    }

    /// Stages one scored delete into an open batch: the row is
    /// tombstoned — invisible to hash reads, epoch bumped — and the
    /// posting keys it leaves behind are captured so settlement can count
    /// the compaction debt. Falls back to the plain [`Database::delete`]
    /// when no live order covers the table.
    pub fn delete_scored_staged(
        &mut self,
        batch: &mut ScoredBatch,
        table: &str,
        pk: i64,
    ) -> Result<RowId> {
        let tid = self.table_id(table)?;
        if self.fk_order.is_none() || !self.tables[tid.index()].has_installed_scores() {
            return self.delete(table, pk);
        }
        self.touch(batch, tid);
        let t = &mut self.tables[tid.index()];
        let keys = match t.by_pk(pk) {
            Some(row) => t.fk_keys_of(row),
            None => Vec::new(),
        };
        let row = t.delete_scored_staged(pk)?;
        self.epoch = self.epoch.next();
        batch.staged.push(StagedOp::Delete { target: (tid, row), keys });
        batch.last_scored_epoch = Some(self.epoch);
        Ok(row)
    }

    /// Suspends a table's postings at its first touch by an open batch.
    fn touch(&mut self, batch: &mut ScoredBatch, tid: TableId) {
        if !batch.touched.contains(&tid) {
            self.tables[tid.index()].suspend_postings();
            batch.touched.push(tid);
        }
    }

    /// Settles an open batch by *replaying* the staged ops in arrival
    /// order: per op, a binary posting insert, a reposition (remove under
    /// the old keys, re-insert at the new score), or a tombstone count —
    /// or, for tables whose accumulated churn crosses the threshold,
    /// **one** full re-sort for the whole batch (where the fold pays one
    /// mid-stream re-sort per threshold crossing). Junction link postings
    /// made stale by any update/delete — of the junction's own rows *or*
    /// of rows its pairs target — are rebuilt once per batch (a rebuild
    /// that trips over a now-dead target drops the orientation and
    /// watches the endpoint, so a re-inserted pk heals it: the dangling
    /// watch run in reverse). Endpoint arrivals heal waiting junctions,
    /// tables whose tombstone debt crossed the compaction threshold
    /// compact (at most once each), and the [`FkOrderToken`] is
    /// re-stamped once.
    ///
    /// Serves queries byte-identically to the fold of single
    /// [`Database::insert_scored`] / [`Database::update_scored`] /
    /// [`Database::delete_scored`] calls; internal scheduling state (the
    /// churn counter, compaction timing) may differ, which is
    /// content-neutral: re-sorts are order-equivalent and tombstones are
    /// invisible to probes.
    pub fn finish_scored_batch(&mut self, batch: ScoredBatch) {
        let ScoredBatch { staged, touched, last_scored_epoch } = batch;
        for &tid in &touched {
            self.tables[tid.index()].resume_postings();
        }
        // Tables whose accumulated churn crosses the threshold settle by
        // one re-sort; their staged ops skip incremental replay.
        let resort: Vec<TableId> = touched
            .iter()
            .copied()
            .filter(|&tid| {
                let t = &self.tables[tid.index()];
                t.has_installed_scores() && t.churn() > self.churn_threshold
            })
            .collect();
        // Junctions whose pair *order* any update/delete staled — by
        // mutating rows of a table their pairs target (pairs sort by
        // target importance) — rebuild wholesale after the replay.
        // Mutations of a junction's *own* rows no longer force a rebuild:
        // pair membership is maintained incrementally (reposition on
        // update, tombstone-then-compact on delete — the FK postings'
        // discipline extended to links, with consumers skipping dead
        // pairs via dual-endpoint liveness checks).
        let mutated: Vec<TableId> = staged
            .iter()
            .filter(|op| !matches!(op, StagedOp::Insert { .. }))
            .map(|op| op.target().0)
            .collect();
        let link_dirty: Vec<TableId> = if mutated.is_empty() {
            Vec::new()
        } else {
            self.tables()
                .filter(|&(jid, _)| {
                    self.junction_orientations(jid).is_some_and(|orients| {
                        orients.iter().any(|&(_, _, t_table)| mutated.contains(&t_table))
                    })
                })
                .map(|(jid, _)| jid)
                .collect()
        };
        // Heals are *collected* during settlement and run after it: a
        // heal's wholesale rebuild reads the full current state, which
        // already contains rows staged later in this batch — firing it
        // mid-loop would rebuild their pairs and then binary-insert them
        // again when the loop reaches them (duplicate pairs; regression-
        // tested). Deferred, the rebuild subsumes those rows exactly once
        // and ends at the same full-state content as the fold's
        // heal-then-insert sequence.
        let mut heals: Vec<TableId> = Vec::new();
        for op in &staged {
            let (tid, row) = op.target();
            // A mid-batch un-scored mutation may have killed the snapshot;
            // its table's postings are already gone, nothing to settle.
            if !self.tables[tid.index()].has_installed_scores() {
                continue;
            }
            let resorting = resort.contains(&tid);
            match op {
                StagedOp::Insert { keys, .. } => {
                    if !resorting {
                        self.tables[tid.index()].insert_into_postings(row, keys);
                        self.access.record_binary_insert();
                    }
                    // A junction headed for a wholesale link rebuild skips
                    // incremental pair maintenance — the rebuild reads the
                    // final state and subsumes this row's pairs.
                    if !link_dirty.contains(&tid) {
                        self.settle_junction_links(tid, row, keys, resorting);
                    }
                    self.collect_heals(tid, row, &mut heals);
                }
                StagedOp::Update { old_keys, new_keys, score, .. } => {
                    if !resorting {
                        self.tables[tid.index()].remove_from_postings(row, old_keys);
                    }
                    // The snapshot takes the new score *between* removal
                    // and re-insertion, so the postings' sort keys never
                    // disagree with it — binary searches stay valid.
                    self.tables[tid.index()].set_installed_score(row, *score);
                    if !resorting {
                        self.tables[tid.index()].insert_into_postings(row, new_keys);
                        self.access.record_binary_insert();
                    }
                    // A junction row's move repositions its link pairs
                    // incrementally (remove under the old source key,
                    // re-insert under the new), unless a rebuild covers it.
                    if !resorting && !link_dirty.contains(&tid) {
                        self.settle_junction_link_update(tid, row, old_keys, new_keys);
                    }
                }
                StagedOp::Delete { keys, .. } => {
                    if !resorting {
                        // The entries stay behind as tombstones; probes
                        // skip them, the debt below triggers compaction.
                        self.tables[tid.index()].add_posting_tombstones(keys.len());
                        // A junction row's delete tombstones its pairs the
                        // same way: consumers skip them via the junction-
                        // endpoint liveness check, and the link debt
                        // triggers a rebuild once it crosses the threshold.
                        if !link_dirty.contains(&tid) {
                            self.settle_junction_link_delete(tid, row, keys);
                        }
                    }
                }
            }
        }
        let mut rebuilt: Vec<TableId> = Vec::new();
        for &tid in &resort {
            if self.tables[tid.index()].has_installed_scores() {
                self.tables[tid.index()].resort_from_snapshot();
                self.access.record_posting_resort();
                self.rebuild_links_for(tid);
                rebuilt.push(tid);
            }
        }
        for &jid in &link_dirty {
            if !rebuilt.contains(&jid) && self.tables[jid.index()].has_installed_scores() {
                self.rebuild_links_for(jid);
                rebuilt.push(jid);
            }
        }
        for jid in heals {
            if !rebuilt.contains(&jid) {
                self.rebuild_links_for(jid);
            }
        }
        // Compaction: at most one pass per table per batch, once the
        // tombstone debt its deletes left behind crosses the threshold.
        // (A churn re-sort above already paid the debt off — it rebuilds
        // from the live-only hash indexes — so it cannot re-trigger here.)
        for &tid in &touched {
            let t = &self.tables[tid.index()];
            if t.has_installed_scores() && t.fk_tombstones() > self.compaction_threshold {
                self.tables[tid.index()].resort_from_snapshot();
                self.access.record_compaction();
            }
            // Junction pair tombstones compact by a wholesale link
            // rebuild (live pairs only) under the same threshold.
            let t = &self.tables[tid.index()];
            if t.has_installed_scores() && t.link_tombstones() > self.compaction_threshold {
                self.rebuild_links_for(tid);
                self.access.record_compaction();
            }
        }
        if let Some(epoch) = last_scored_epoch {
            // The stamp the fold would leave: the epoch of the last
            // *maintained* op. A trailing plain-fallback mutation bumps
            // the epoch further but never restamps in the fold either.
            self.fk_order = self.fk_order.map(|t| t.restamped(epoch));
        }
    }

    /// Joins one freshly inserted junction row into its table's sorted
    /// link postings, resolving source key and target pk from the op's
    /// *staged* keys (a later in-batch update may have moved the row's
    /// current values; the update's own settlement replays that move). A
    /// dead target snapshot drops the links; a *dangling* target FK drops
    /// them **and** registers the missing `(table, pk)` endpoint in the
    /// dangling watch, so the endpoint's later arrival repairs the
    /// orientation ([`Database::collect_heals`]) instead of leaving the
    /// table on the heap fallback until the next full install. With
    /// `skip_pairs` (the table is about to re-sort), only the drop/watch
    /// bookkeeping runs — the rebuild supplies the pairs.
    fn settle_junction_links(
        &mut self,
        jid: TableId,
        row: RowId,
        keys: &[(usize, i64)],
        skip_pairs: bool,
    ) {
        let Some(orientations) = self.junction_orientations(jid) else { return };
        let key_of = |col: usize| keys.iter().find(|&&(c, _)| c == col).map(|&(_, k)| k);
        let mut updates: Vec<(usize, i64, Option<RowId>, TableId)> = Vec::new();
        let mut drop_links = false;
        for (s_col, t_col, t_table) in orientations {
            if !self.tables[t_table.index()].has_installed_scores() {
                drop_links = true;
                continue;
            }
            let Some(key) = key_of(s_col) else { continue };
            let target = match key_of(t_col) {
                None => None, // NULL target: counts in raw_len only
                Some(k) => match self.tables[t_table.index()].by_pk(k) {
                    Some(r) => Some(r),
                    None => {
                        drop_links = true;
                        let waiters = self.dangling_watch.entry((t_table, k)).or_default();
                        if !waiters.contains(&jid) {
                            waiters.push(jid);
                        }
                        continue;
                    }
                },
            };
            updates.push((s_col, key, target, t_table));
        }
        if drop_links {
            self.tables[jid.index()].drop_sorted_links();
        } else if !skip_pairs {
            for (s_col, key, target, t_table) in updates {
                // Take the index out so the target table's score snapshot
                // can be borrowed alongside the junction table.
                let Some(mut idx) = self.tables[jid.index()].take_sorted_link(s_col) else {
                    continue;
                };
                idx.insert_scored(
                    key,
                    row,
                    target,
                    self.tables[t_table.index()].installed_scores(),
                );
                self.tables[jid.index()].set_sorted_link(s_col, idx);
            }
        }
    }

    /// Repositions one updated junction row in its table's sorted link
    /// postings: each orientation's pair is removed by identity scan under
    /// the *old* source key and re-inserted under the new one at the exact
    /// `(target score, target RowId, junction RowId)` position a rebuild
    /// would use. Raw group counts move with the row. A dangling new
    /// target drops the links and watches the endpoint, exactly like the
    /// insert path.
    fn settle_junction_link_update(
        &mut self,
        jid: TableId,
        row: RowId,
        old_keys: &[(usize, i64)],
        new_keys: &[(usize, i64)],
    ) {
        let Some(orientations) = self.junction_orientations(jid) else { return };
        let key_in = |keys: &[(usize, i64)], col: usize| {
            keys.iter().find(|&&(c, _)| c == col).map(|&(_, k)| k)
        };
        for (s_col, t_col, t_table) in orientations {
            if !self.tables[t_table.index()].has_installed_scores() {
                self.tables[jid.index()].drop_sorted_links();
                continue;
            }
            // Un-post under the old source key first (physical removal —
            // the row is about to be re-posted, not tombstoned).
            if let Some(old_key) = key_in(old_keys, s_col) {
                if let Some(mut idx) = self.tables[jid.index()].take_sorted_link(s_col) {
                    idx.unpost(old_key, row, true);
                    self.tables[jid.index()].set_sorted_link(s_col, idx);
                }
            }
            let Some(new_key) = key_in(new_keys, s_col) else { continue };
            let target = match key_in(new_keys, t_col) {
                None => None, // NULL target: counts in raw_len only
                Some(k) => match self.tables[t_table.index()].by_pk(k) {
                    Some(r) => Some(r),
                    None => {
                        self.tables[jid.index()].drop_sorted_links();
                        let waiters = self.dangling_watch.entry((t_table, k)).or_default();
                        if !waiters.contains(&jid) {
                            waiters.push(jid);
                        }
                        continue;
                    }
                },
            };
            if let Some(mut idx) = self.tables[jid.index()].take_sorted_link(s_col) {
                idx.insert_scored(
                    new_key,
                    row,
                    target,
                    self.tables[t_table.index()].installed_scores(),
                );
                self.tables[jid.index()].set_sorted_link(s_col, idx);
            }
        }
    }

    /// Settles one deleted junction row against its table's sorted link
    /// postings: each orientation's raw group count drops, while the
    /// row's pair stays behind as a tombstone — consumers skip it via the
    /// dual-endpoint liveness check, and the accumulated debt triggers a
    /// rebuild once it crosses the compaction threshold (the FK postings'
    /// tombstone-then-compact discipline extended to links).
    fn settle_junction_link_delete(&mut self, jid: TableId, row: RowId, keys: &[(usize, i64)]) {
        let Some(orientations) = self.junction_orientations(jid) else { return };
        let mut debt = 0;
        for (s_col, _, _) in orientations {
            let Some(&(_, key)) = keys.iter().find(|&&(c, _)| c == s_col) else { continue };
            let Some(mut idx) = self.tables[jid.index()].take_sorted_link(s_col) else { continue };
            if idx.unpost(key, row, false) {
                debt += 1;
            }
            self.tables[jid.index()].set_sorted_link(s_col, idx);
        }
        if debt > 0 {
            self.tables[jid.index()].add_link_tombstones(debt);
        }
    }

    /// If the freshly inserted row is a watched missing endpoint, queues
    /// the waiting junctions for a post-settlement link rebuild (see
    /// [`Database::finish_scored_batch`]). The rebuild resolves every
    /// reference from current state; a junction with *another* endpoint
    /// still missing yields nothing and registers that endpoint, retrying
    /// when its own watch entry fires. Endpoints that arrive through the
    /// un-scored [`Database::insert`] cannot heal (the insert kills the
    /// target table's score snapshot, so there is no order to repair
    /// into).
    fn collect_heals(&mut self, tid: TableId, row: RowId, heals: &mut Vec<TableId>) {
        if self.dangling_watch.is_empty() {
            return;
        }
        let pk = self.tables[tid.index()].pk_of(row);
        let Some(waiters) = self.dangling_watch.remove(&(tid, pk)) else { return };
        for jid in waiters {
            if !heals.contains(&jid) {
                heals.push(jid);
            }
        }
    }

    /// The two (source column, target column, target table) orientations
    /// of a junction table, or `None` for non-junctions.
    fn junction_orientations(&self, jid: TableId) -> Option<[(usize, usize, TableId); 2]> {
        let jt = self.table(jid);
        if !jt.schema.is_junction || jt.schema.fks.len() != 2 {
            return None;
        }
        let (a, b) = (&jt.schema.fks[0], &jt.schema.fks[1]);
        let ta = self.table_id(&a.ref_table).ok()?;
        let tb = self.table_id(&b.ref_table).ok()?;
        Some([(a.column, b.column, tb), (b.column, a.column, ta)])
    }

    /// (Re)builds both orientations' sorted link postings of a junction
    /// table from the current score snapshots. An orientation whose
    /// target snapshot is dead is left absent (heap fallback); one with a
    /// dangling target FK is left absent **and** the missing endpoint is
    /// registered in the dangling watch, so its later scored arrival
    /// heals the orientation (a junction with several missing endpoints
    /// heals progressively: each rebuild attempt registers the next one
    /// it trips over).
    fn rebuild_links_for(&mut self, jid: TableId) {
        let Some(orientations) = self.junction_orientations(jid) else { return };
        self.access.record_link_rebuild();
        let mut built: Vec<(usize, SortedLinkIndex)> = Vec::new();
        let mut dangling: Vec<(TableId, i64)> = Vec::new();
        {
            let jt = self.table(jid);
            for (s_col, t_col, t_table) in orientations {
                let target = self.table(t_table);
                if !target.has_installed_scores() {
                    continue;
                }
                let Some(base) = jt.fk_index_base(s_col) else { continue };
                let idx = SortedLinkIndex::build(
                    base,
                    &|j| match jt.value(j, t_col).as_int() {
                        None => LinkTarget::Null,
                        Some(k) => match target.by_pk(k) {
                            Some(row) => LinkTarget::Row(row),
                            None => LinkTarget::Dangling(k),
                        },
                    },
                    &|t| target.installed_score(t),
                );
                match idx {
                    Ok(idx) => built.push((s_col, idx)),
                    Err(pk) => dangling.push((t_table, pk)),
                }
            }
        }
        self.tables[jid.index()].drop_sorted_links();
        // A rebuild sources live pairs only, paying off any tombstone debt.
        self.tables[jid.index()].reset_link_tombstones();
        for (col, idx) in built {
            self.tables[jid.index()].set_sorted_link(col, idx);
        }
        for key in dangling {
            let waiters = self.dangling_watch.entry(key).or_default();
            if !waiters.contains(&jid) {
                waiters.push(jid);
            }
        }
    }

    /// Total number of tuples across all tables (the paper reports
    /// 2,959,511 for DBLP and 8,661,245 for TPC-H SF-1).
    pub fn total_tuples(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// The shared access counter.
    pub fn access(&self) -> &AccessCounter {
        &self.access
    }

    /// The value of a tuple's column.
    pub fn value(&self, t: TupleRef, col: usize) -> &Value {
        self.table(t.table).value(t.row, col)
    }

    /// Validates that every non-NULL FK value references an existing row.
    /// Returns the number of FK values checked.
    pub fn validate_foreign_keys(&self) -> Result<usize> {
        let mut checked = 0;
        for table in &self.tables {
            for fk in &table.schema.fks {
                let target_id = self.table_id(&fk.ref_table)?;
                let target = self.table(target_id);
                for (_, row) in table.iter() {
                    match row[fk.column] {
                        Value::Null => {}
                        Value::Int(k) => {
                            checked += 1;
                            if target.by_pk(k).is_none() {
                                return Err(StorageError::DanglingForeignKey {
                                    table: table.schema.name.clone(),
                                    column: table.schema.columns[fk.column].name.clone(),
                                    key: k,
                                });
                            }
                        }
                        _ => {
                            return Err(StorageError::TypeMismatch {
                                table: table.schema.name.clone(),
                                column: table.schema.columns[fk.column].name.clone(),
                            })
                        }
                    }
                }
            }
        }
        Ok(checked)
    }

    /// Sorts every table's FK posting lists by descending `score` (ties:
    /// ascending RowId), pre-joins and sorts every junction table's link
    /// postings by target score, snapshots the per-row scores (so scored
    /// inserts can maintain the order incrementally), and returns the
    /// token identifying this ordering at the current epoch. Query paths
    /// pass the token back in ([`Self::select_eq_top_l`]); a mismatch —
    /// different scores, a later re-install, or a mutation epoch the
    /// holder has not synchronized to — falls back to the heap path.
    ///
    /// Call after loading, before serving. [`Self::insert_scored`] keeps
    /// the order live across inserts; the plain [`Self::insert`] drops the
    /// affected table's sorted postings.
    pub fn install_importance_order(
        &mut self,
        score: &dyn Fn(TableId, RowId) -> f64,
    ) -> FkOrderToken {
        for (i, t) in self.tables.iter_mut().enumerate() {
            let tid = TableId(i as u16);
            t.build_sorted_fk(&|r| score(tid, r));
        }
        // A full install re-derives everything, so stale watch entries
        // (endpoints that since arrived un-scored, or re-registrations
        // below) must not accumulate across installs: start fresh and let
        // the rebuilds register exactly the currently-missing endpoints.
        self.dangling_watch.clear();
        let junctions: Vec<TableId> =
            self.tables().filter(|(_, t)| t.schema.is_junction).map(|(id, _)| id).collect();
        for jid in junctions {
            self.rebuild_links_for(jid);
        }
        let token = FkOrderToken::fresh(self.epoch);
        self.fk_order = Some(token);
        token
    }

    /// The token of the currently installed importance order, if any.
    pub fn fk_order(&self) -> Option<FkOrderToken> {
        self.fk_order
    }

    /// Rebuilds every table's sorted postings from its *installed* score
    /// snapshot — the road back from eviction: a paged table that
    /// mutated (or never kept RAM postings) re-materializes them for the
    /// next checkpoint without recomputing scores. A full install under
    /// the hood, so it returns the fresh token; `None` when any table
    /// lacks an installed snapshot (there is no order to rebuild).
    pub fn rebuild_postings_from_installed(&mut self) -> Option<FkOrderToken> {
        let snap: Vec<Vec<f64>> = self
            .tables
            .iter()
            .map(|t| t.has_installed_scores().then(|| t.installed_scores().to_vec()))
            .collect::<Option<_>>()?;
        let score = move |t: TableId, r: RowId| snap[t.index()][r.index()];
        Some(self.install_importance_order(&score))
    }

    /// Attaches a paged posting store (see [`PostingPager`]): evicted
    /// tables' prefix scans route to it while its stamp matches the live
    /// installed token.
    pub fn set_pager(&mut self, pager: Arc<dyn PostingPager>) {
        self.pager = Some(pager);
    }

    /// Detaches the paged posting store; evicted tables fall back to the
    /// heap path until their postings are rebuilt.
    pub fn clear_pager(&mut self) {
        self.pager = None;
    }

    /// The attached paged posting store, if any.
    pub fn pager(&self) -> Option<&(dyn PostingPager + 'static)> {
        self.pager.as_deref()
    }

    /// Evicts a table's in-RAM sorted FK and link postings (the disk
    /// tier's residency policy — cold tables serve prefix scans from
    /// segments instead). The score snapshot survives, so mutations keep
    /// working; results are unchanged by construction (the pager serves
    /// the same postings, and any coverage gap heap-falls-back). Does not
    /// bump the epoch: no tuple and no servable content moved.
    pub fn evict_table_postings(&mut self, table: TableId) {
        self.tables[table.index()].evict_sorted_postings();
    }

    /// Number of missing junction-link endpoints currently watched for
    /// healing (a diagnostic: bounded by the currently-dangling
    /// references — installs prune stale entries).
    pub fn dangling_watch_len(&self) -> usize {
        self.dangling_watch.len()
    }

    /// `SELECT * FROM Ri WHERE Ri.col = key` — Algorithm 4 line 12 /
    /// Algorithm 5 line 6. One counted join access.
    pub fn select_eq(&self, table: TableId, col: usize, key: i64) -> Vec<RowId> {
        let t = self.table(table);
        let rows: Vec<RowId> = if col == t.schema.pk {
            // O(1): the unique PK hash index.
            t.by_pk(key).into_iter().collect()
        } else {
            t.rows_where_eq(col, key).to_vec()
        };
        self.access.record_join(rows.len());
        rows
    }

    /// `SELECT * TOP l FROM Ri WHERE Ri.col = key AND li(ti) > largest_l
    /// ORDER BY li DESC` — Algorithm 4 line 10 (Avoidance Condition 2).
    /// `li` maps a row of `table` to its local importance. One counted join
    /// access even when the result is empty, matching the paper's cost
    /// accounting.
    ///
    /// When `order` matches the installed importance order (which attests
    /// that `li` is a monotone non-decreasing function of the installed
    /// score — true for `li = global · affinity` with a positive
    /// affinity), the probe is a bounded prefix scan of the pre-sorted
    /// postings: `O(l + t)` rows visited (`t` = the li-tie run straddling
    /// the cut) instead of `O(g log l)` over the whole FK group, and
    /// byte-identical to the heap path even when distinct scores collapse
    /// to equal `li` (the tie run at the boundary is collected in full and
    /// re-ranked by `(li desc, RowId asc)`, exactly [`crate::top_l`]'s
    /// order). Pass `None` (or a stale token) to force the heap path.
    #[allow(clippy::too_many_arguments)] // mirrors the SQL probe's clause list
    pub fn select_eq_top_l(
        &self,
        table: TableId,
        col: usize,
        key: i64,
        l: usize,
        largest_l: f64,
        order: Option<FkOrderToken>,
        li: &dyn Fn(RowId) -> f64,
    ) -> Vec<RowId> {
        let mut scratch = crate::topl::TopLScratch::new();
        let mut out = Vec::new();
        self.select_eq_top_l_into(table, col, key, l, largest_l, order, li, &mut scratch, &mut out);
        out
    }

    /// [`Self::select_eq_top_l`] appending to `out` and drawing every
    /// working buffer — the fast path's boundary-tie staging run, the
    /// heap path's bounded min-heap — from `scratch`, so a warm serving
    /// loop probes without touching the allocator (the core crate's
    /// `tests/alloc_guard.rs` pins this end to end). Results and access
    /// accounting are byte-identical to the allocating form, which
    /// delegates here.
    #[allow(clippy::too_many_arguments)] // mirrors the SQL probe's clause list
    pub fn select_eq_top_l_into(
        &self,
        table: TableId,
        col: usize,
        key: i64,
        l: usize,
        largest_l: f64,
        order: Option<FkOrderToken>,
        li: &dyn Fn(RowId) -> f64,
        scratch: &mut crate::topl::TopLScratch<RowId>,
        out: &mut Vec<RowId>,
    ) {
        let t = self.table(table);
        let start = out.len();
        if l > 0 && order.is_some() && order == self.fk_order && col != t.schema.pk {
            // Tombstones (deleted rows awaiting compaction) are skipped
            // by the `is_live` filter inside the shared prefix-cut loop
            // (`stage_prefix`): the scan sees exactly the live rows a
            // fresh install would serve, and the join accounting below
            // counts only returned rows — so compaction state is
            // invisible to results and cost alike. The collected prefix
            // is then ranked through the same comparator the heap path
            // uses, so the paths agree by construction.
            if let Some(sorted) = t.sorted_fk_index(col) {
                let mut cur = SlicePostingCursor::new(sorted.rows(key));
                scratch.stage_prefix(
                    l,
                    largest_l,
                    || cur.next_row(),
                    |&r| t.is_live(r).then(|| li(r)),
                );
                scratch.rank_staged_into(l, out);
                self.access.record_join(out.len() - start);
                self.access.record_fast_probe();
                return;
            }
            // Evicted postings: the paged backend serves the identical
            // scan — same loop, same accounting — while its segment
            // stamp matches the live token (any mutation stales it).
            if let Some(pager) = self.pager.as_deref() {
                if pager.stamp() == self.fk_order {
                    if let Some(mut cur) = pager.fk_cursor(table, col, key) {
                        scratch.stage_prefix(
                            l,
                            largest_l,
                            || cur.next_row(),
                            |&r| t.is_live(r).then(|| li(r)),
                        );
                        if !cur.failed() {
                            scratch.rank_staged_into(l, out);
                            self.access.record_join(out.len() - start);
                            self.access.record_fast_probe();
                            return;
                        }
                        // Fail closed: a read error mid-scan discards the
                        // partial prefix (serving it as-if-complete would
                        // silently drop rows) and the heap path — always
                        // correct, hash-index-backed — takes over.
                        scratch.staged.clear();
                    }
                }
            }
        }
        self.access.record_heap_probe();
        // Bounded top-l selection — O(g log l) over a group of g rows
        // instead of sorting the whole group (ROADMAP hot path).
        if col == t.schema.pk {
            scratch.select_into(
                t.by_pk(key).into_iter().filter_map(|r| {
                    let s = li(r);
                    (s > largest_l).then_some((s, r))
                }),
                l,
                out,
            );
        } else {
            scratch.select_into(
                t.rows_where_eq(col, key).iter().filter_map(|&r| {
                    let s = li(r);
                    (s > largest_l).then_some((s, r))
                }),
                l,
                out,
            );
        }
        self.access.record_join(out.len() - start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::Value;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("Year")
                .pk("id")
                .column("year", crate::ValueType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("Paper")
                .pk("id")
                .searchable_text("title")
                .fk("year_id", "Year")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("Year", vec![Value::Int(1), Value::Int(1999)]).unwrap();
        db.insert("Paper", vec![Value::Int(10), "p1".into(), Value::Int(1)]).unwrap();
        db.insert("Paper", vec![Value::Int(11), "p2".into(), Value::Int(1)]).unwrap();
        db
    }

    #[test]
    fn catalog_roundtrip() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        assert_eq!(db.table(paper).schema.name, "Paper");
        assert_eq!(db.total_tuples(), 3);
        assert!(db.table_id("Nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = tiny_db();
        let e = db.create_table(TableSchema::builder("Year").pk("id").build().unwrap());
        assert!(matches!(e, Err(StorageError::BadSchema(_))));
    }

    #[test]
    fn fk_validation_passes_then_catches_dangling() {
        let mut db = tiny_db();
        assert_eq!(db.validate_foreign_keys().unwrap(), 2);
        db.insert("Paper", vec![Value::Int(12), "bad".into(), Value::Int(99)]).unwrap();
        assert!(matches!(
            db.validate_foreign_keys(),
            Err(StorageError::DanglingForeignKey { key: 99, .. })
        ));
    }

    #[test]
    fn select_eq_counts_accesses() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        let before = db.access().snapshot();
        let rows = db.select_eq(paper, fk_col, 1);
        assert_eq!(rows.len(), 2);
        let delta = db.access().snapshot().since(before);
        assert_eq!(delta.joins, 1);
        assert_eq!(delta.tuples, 2);
        // Empty probe still counts one join.
        db.select_eq(paper, fk_col, 42);
        assert_eq!(db.access().snapshot().since(before).joins, 2);
    }

    #[test]
    fn select_eq_on_pk_column() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let rows = db.select_eq(paper, 0, 11);
        assert_eq!(rows.len(), 1);
        assert_eq!(db.table(paper).pk_of(rows[0]), 11);
    }

    #[test]
    fn select_top_l_filters_and_orders() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        // Importance: pk 10 -> 1.0, pk 11 -> 5.0
        let li = |r: RowId| if db.table(paper).pk_of(r) == 10 { 1.0 } else { 5.0 };
        let rows = db.select_eq_top_l(paper, fk_col, 1, 1, 0.0, None, &li);
        assert_eq!(rows.len(), 1);
        assert_eq!(db.table(paper).pk_of(rows[0]), 11, "highest importance first");
        // threshold excludes everything
        let rows = db.select_eq_top_l(paper, fk_col, 1, 10, 100.0, None, &li);
        assert!(rows.is_empty());
    }

    #[test]
    fn fast_path_survives_li_ties_across_distinct_scores() {
        // A monotone non-decreasing `li` may collapse *distinct* installed
        // scores to equal values (in production: 1-ulp score gaps erased
        // by the affinity multiplication). The prefix scan must then agree
        // with the heap path's (li desc, RowId asc) order anyway — the
        // boundary tie run is re-ranked, not trusted.
        let mut db = Database::new();
        db.create_table(TableSchema::builder("Parent").pk("id").build().unwrap()).unwrap();
        db.create_table(
            TableSchema::builder("Child").pk("id").fk("parent_id", "Parent").build().unwrap(),
        )
        .unwrap();
        db.insert("Parent", vec![Value::Int(1)]).unwrap();
        // Scores *ascend* with the RowId, so the sorted postings run in
        // the opposite direction of the heap path's candidate order
        // (RowId asc) — inside a collapsed li-tie the two paths would
        // disagree if the boundary run were not re-ranked.
        for pk in 0i64..10 {
            db.insert("Child", vec![Value::Int(pk), Value::Int(1)]).unwrap();
        }
        let child = db.table_id("Child").unwrap();
        let scores: Vec<f64> = (0..10).map(|i| i as f64 + 1.0).collect();
        let token = db.install_importance_order(&|t, r| {
            if t == child {
                scores[r.index()]
            } else {
                0.0
            }
        });
        // li collapses score pairs: {10,9} -> 5, {8,7} -> 4, ... so every
        // cut position falls inside a tie run of distinct scores.
        let li = |r: RowId| (scores[r.index()] / 2.0).ceil();
        let fk_col = db.table(child).schema.column_index("parent_id").unwrap();
        for l in 0..=10 {
            for threshold in [0.0, 1.0, 2.5, 4.0, 10.0] {
                let fast = db.select_eq_top_l(child, fk_col, 1, l, threshold, Some(token), &li);
                let slow = db.select_eq_top_l(child, fk_col, 1, l, threshold, None, &li);
                assert_eq!(fast, slow, "l={l} threshold={threshold}");
            }
        }
    }

    #[test]
    fn installed_order_serves_prefix_scans() {
        let mut db = tiny_db();
        // Global importance: pk 10 -> 1.0, pk 11 -> 5.0.
        let score = |db: &Database, t: TableId, r: RowId| {
            if db.table(t).schema.name == "Paper" && db.table(t).pk_of(r) == 11 {
                5.0
            } else {
                1.0
            }
        };
        let token = {
            let snapshot: Vec<Vec<f64>> = db
                .tables()
                .map(|(tid, t)| t.iter().map(|(r, _)| score(&db, tid, r)).collect())
                .collect();
            db.install_importance_order(&|t, r| snapshot[t.index()][r.index()])
        };
        assert_eq!(db.fk_order(), Some(token));
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        let li = |r: RowId| 0.5 * if db.table(paper).pk_of(r) == 11 { 5.0 } else { 1.0 };
        // Fast path and heap path agree, including access accounting.
        let before = db.access().snapshot();
        let fast = db.select_eq_top_l(paper, fk_col, 1, 2, 0.0, Some(token), &li);
        let mid = db.access().snapshot();
        let slow = db.select_eq_top_l(paper, fk_col, 1, 2, 0.0, None, &li);
        let after = db.access().snapshot();
        assert_eq!(fast, slow);
        assert_eq!(db.table(paper).pk_of(fast[0]), 11, "best importance first");
        assert_eq!(mid.since(before), after.since(mid), "identical cost accounting");
        // The threshold cuts the scan short.
        let cut = db.select_eq_top_l(paper, fk_col, 1, 2, 2.0, Some(token), &li);
        assert_eq!(cut.len(), 1);
        // A stale token falls back to the heap path (still correct).
        let stale = db.select_eq_top_l(
            paper,
            fk_col,
            1,
            2,
            0.0,
            Some(FkOrderToken::fresh(db.epoch())),
            &li,
        );
        assert_eq!(stale, slow);
    }

    #[test]
    fn insert_invalidates_sorted_postings() {
        let mut db = tiny_db();
        let token = db.install_importance_order(&|_, _| 1.0);
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        assert!(db.table(paper).sorted_fk_index(fk_col).is_some());
        db.insert("Paper", vec![Value::Int(12), "p3".into(), Value::Int(1)]).unwrap();
        assert!(
            db.table(paper).sorted_fk_index(fk_col).is_none(),
            "un-scored insert drops the snapshot postings"
        );
        // The probe still answers correctly via the heap fallback, and the
        // new row is visible.
        let li = |_: RowId| 1.0;
        let rows = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, Some(token), &li);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn epochs_bump_on_every_insert() {
        let mut db = tiny_db();
        let (g0, paper) = (db.epoch(), db.table_id("Paper").unwrap());
        let year = db.table_id("Year").unwrap();
        let (t0, y0) = (db.table(paper).epoch(), db.table(year).epoch());
        assert!(g0 > Epoch::default(), "loading already advanced the global epoch");
        db.insert("Paper", vec![Value::Int(12), "p3".into(), Value::Int(1)]).unwrap();
        assert_eq!(db.epoch(), g0.next());
        assert_eq!(db.table(paper).epoch(), t0.next());
        // Other tables' epochs are untouched.
        assert_eq!(db.table(year).epoch(), y0);
    }

    #[test]
    fn scored_insert_maintains_postings_and_restamps_token() {
        let mut db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        // Importance: pk 10 -> 1.0, pk 11 -> 5.0 (as in the install test).
        let snapshot: Vec<Vec<f64>> = db
            .tables()
            .map(|(_, t)| {
                t.iter()
                    .map(
                        |(r, _)| {
                            if t.schema.name == "Paper" && t.pk_of(r) == 11 {
                                5.0
                            } else {
                                1.0
                            }
                        },
                    )
                    .collect()
            })
            .collect();
        let old = db.install_importance_order(&|t, r| snapshot[t.index()][r.index()]);
        // Insert a row scoring between the two existing ones.
        db.insert_scored("Paper", vec![Value::Int(12), "p3".into(), Value::Int(1)], 3.0).unwrap();
        let token = db.fk_order().expect("order survives the scored insert");
        assert_ne!(token, old, "the token is re-stamped, not reused verbatim");
        assert!(token.same_order(old), "…but it still names the same installed order");
        assert_eq!(token.epoch(), db.epoch());
        let sorted = db.table(paper).sorted_fk_index(fk_col).expect("postings maintained");
        let pks: Vec<i64> = sorted.rows(1).iter().map(|&r| db.table(paper).pk_of(r)).collect();
        assert_eq!(pks, vec![11, 12, 10], "new row binary-inserted by score");
        // The re-stamped token serves the fast path; the superseded one
        // falls back (both correct and byte-identical).
        let li = |r: RowId| db.table(paper).installed_score(r);
        let before = db.access().probes();
        let fast = db.select_eq_top_l(paper, fk_col, 1, 3, 0.0, Some(token), &li);
        let mid = db.access().probes();
        let slow = db.select_eq_top_l(paper, fk_col, 1, 3, 0.0, Some(old), &li);
        let after = db.access().probes();
        assert_eq!(fast, slow);
        assert_eq!(mid.fast - before.fast, 1, "current token prefix-scans");
        assert_eq!(after.heap - mid.heap, 1, "superseded token heap-falls-back");
        assert_eq!(db.table(paper).pk_of(fast[0]), 11);
        assert_eq!(db.table(paper).pk_of(fast[1]), 12);
    }

    #[test]
    fn dangling_junction_target_drops_link_postings_then_heals() {
        // A junction row whose target pk does not (yet) exist must not be
        // silently absent from the sorted link postings while the heap
        // path resolves it live after the target arrives — the orientation
        // is dropped instead, and the missing endpoint is *watched*: its
        // later scored arrival repairs the postings without waiting for
        // the next full install. FK validation is a separate step, so the
        // storage layer has to tolerate this on its own.
        let mut db = Database::new();
        db.create_table(TableSchema::builder("P").pk("id").build().unwrap()).unwrap();
        db.create_table(TableSchema::builder("C").pk("id").build().unwrap()).unwrap();
        db.create_table(
            TableSchema::builder("J")
                .pk("id")
                .fk("p_id", "P")
                .fk("c_id", "C")
                .junction()
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("P", vec![Value::Int(1)]).unwrap();
        db.insert("C", vec![Value::Int(10)]).unwrap();
        db.insert("J", vec![Value::Int(100), Value::Int(1), Value::Int(10)]).unwrap();
        db.install_importance_order(&|_, _| 1.0);
        let j = db.table_id("J").unwrap();
        let (p_col, c_col) = (1, 2);
        assert!(db.table(j).sorted_link_index(p_col).is_some());
        // Scored insert referencing child pk 99, which does not exist.
        db.insert_scored("J", vec![Value::Int(101), Value::Int(1), Value::Int(99)], 0.5).unwrap();
        assert!(
            db.table(j).sorted_link_index(p_col).is_none()
                && db.table(j).sorted_link_index(c_col).is_none(),
            "a dangling target must drop the link postings, not skip the pair"
        );
        // The late-arriving endpoint heals the orientation on the spot —
        // no reinstall needed — and the token is re-stamped at the heal's
        // epoch so synchronized contexts go straight back to prefix scans.
        db.insert_scored("C", vec![Value::Int(99)], 2.0).unwrap();
        let links = db.table(j).sorted_link_index(p_col).expect("healed once resolvable");
        assert_eq!(links.pairs(1).len(), 2, "both junction rows pre-joined after the heal");
        assert_eq!(db.fk_order().unwrap().epoch(), db.epoch(), "heal re-stamps the token");
        // The healed postings are exactly what a reinstall under the same
        // (maintained) scores would build.
        let healed: Vec<_> = links.pairs(1).to_vec();
        let snap: Vec<Vec<f64>> = db
            .tables()
            .map(|(_, t)| t.iter().map(|(r, _)| t.installed_score(r)).collect())
            .collect();
        db.install_importance_order(&|t, r| snap[t.index()][r.index()]);
        assert_eq!(db.table(j).sorted_link_index(p_col).unwrap().pairs(1), healed.as_slice());
        // Install pruned the watch: nothing dangles after the heal.
        assert_eq!(db.dangling_watch_len(), 0, "installs prune stale watch entries");

        // A junction loaded with a dangling row *before* install gets no
        // postings either (build-time poisoning) — but the install
        // registers the missing endpoint, so even this case heals when
        // the endpoint arrives through a scored insert.
        let mut db2 = Database::new();
        db2.create_table(TableSchema::builder("P").pk("id").build().unwrap()).unwrap();
        db2.create_table(TableSchema::builder("C").pk("id").build().unwrap()).unwrap();
        db2.create_table(
            TableSchema::builder("J")
                .pk("id")
                .fk("p_id", "P")
                .fk("c_id", "C")
                .junction()
                .build()
                .unwrap(),
        )
        .unwrap();
        db2.insert("P", vec![Value::Int(1)]).unwrap();
        db2.insert("J", vec![Value::Int(100), Value::Int(1), Value::Int(99)]).unwrap();
        db2.install_importance_order(&|_, _| 1.0);
        let j2 = db2.table_id("J").unwrap();
        assert!(db2.table(j2).sorted_link_index(p_col).is_none());
        assert_eq!(db2.dangling_watch_len(), 1, "install watches the missing endpoint");
        db2.insert_scored("C", vec![Value::Int(99)], 1.0).unwrap();
        assert!(
            db2.table(j2).sorted_link_index(p_col).is_some(),
            "build-time poisoning heals too once the endpoint arrives scored"
        );
        assert_eq!(db2.dangling_watch_len(), 0);
    }

    #[test]
    fn scored_insert_rejects_bad_arity_without_panicking() {
        let mut db = tiny_db();
        db.install_importance_order(&|_, _| 1.0);
        // Junction-free table with short row: clean Arity error.
        assert!(matches!(
            db.insert_scored("Paper", vec![Value::Int(12)], 1.0),
            Err(StorageError::Arity { expected: 3, got: 1, .. })
        ));
        // A junction table with a short row must not panic while
        // resolving link orientations either.
        let mut jdb = Database::new();
        jdb.create_table(TableSchema::builder("A").pk("id").build().unwrap()).unwrap();
        jdb.create_table(
            TableSchema::builder("J")
                .pk("id")
                .fk("x", "A")
                .fk("y", "A")
                .junction()
                .build()
                .unwrap(),
        )
        .unwrap();
        jdb.insert("A", vec![Value::Int(1)]).unwrap();
        jdb.install_importance_order(&|_, _| 1.0);
        assert!(matches!(
            jdb.insert_scored("J", vec![Value::Int(7)], 1.0),
            Err(StorageError::Arity { expected: 3, got: 1, .. })
        ));
    }

    #[test]
    fn scored_insert_without_order_degrades_to_plain_insert() {
        let mut db = tiny_db();
        let row = db
            .insert_scored("Paper", vec![Value::Int(12), "p3".into(), Value::Int(1)], 1.0)
            .unwrap();
        let paper = db.table_id("Paper").unwrap();
        assert_eq!(db.table(paper).pk_of(row), 12);
        assert!(db.fk_order().is_none());
    }

    /// Identical tiny databases with an all-ones importance order
    /// installed — the batch-vs-fold comparisons below start from two of
    /// these.
    fn installed_pair() -> (Database, Database) {
        let build = || {
            let mut db = tiny_db();
            let snapshot: Vec<Vec<f64>> =
                db.tables().map(|(_, t)| t.iter().map(|_| 1.0).collect()).collect();
            db.install_importance_order(&|t, r| snapshot[t.index()][r.index()]);
            db
        };
        (build(), build())
    }

    #[test]
    fn scored_batch_settles_exactly_like_the_fold() {
        let (mut batched, mut folded) = installed_pair();
        let rows: Vec<(i64, f64)> = vec![(20, 3.0), (21, 0.5), (22, 1.0), (23, 7.5)];
        let mut b = batched.begin_scored_batch();
        for &(pk, s) in &rows {
            batched
                .insert_scored_staged(
                    &mut b,
                    "Paper",
                    vec![Value::Int(pk), "t".into(), Value::Int(1)],
                    s,
                )
                .unwrap();
        }
        assert_eq!(b.staged().len(), rows.len());
        batched.finish_scored_batch(b);
        for &(pk, s) in &rows {
            folded
                .insert_scored("Paper", vec![Value::Int(pk), "t".into(), Value::Int(1)], s)
                .unwrap();
        }
        assert_eq!(batched.epoch(), folded.epoch());
        assert_eq!(batched.fk_order().unwrap().epoch(), folded.fk_order().unwrap().epoch());
        let paper = batched.table_id("Paper").unwrap();
        let fk_col = batched.table(paper).schema.column_index("year_id").unwrap();
        assert_eq!(
            batched.table(paper).sorted_fk_index(fk_col).unwrap().rows(1),
            folded.table(paper).sorted_fk_index(fk_col).unwrap().rows(1),
            "settled postings equal the fold's"
        );
    }

    #[test]
    fn mid_batch_heal_does_not_duplicate_later_staged_junction_pairs() {
        // Regression: with a pre-existing watch on endpoint (C, 99), a
        // batch staging [C(99), J(102 -> C 99)] used to fire the heal
        // mid-settlement — the rebuild (reading full current state)
        // already included J(102), whose pair the settle loop then
        // binary-inserted *again*. Heals are now deferred past the settle
        // loop; both paths must end identical to the fold and to a
        // from-scratch install.
        let build = || {
            let mut db = Database::new();
            db.create_table(TableSchema::builder("P").pk("id").build().unwrap()).unwrap();
            db.create_table(TableSchema::builder("C").pk("id").build().unwrap()).unwrap();
            db.create_table(
                TableSchema::builder("J")
                    .pk("id")
                    .fk("p_id", "P")
                    .fk("c_id", "C")
                    .junction()
                    .build()
                    .unwrap(),
            )
            .unwrap();
            db.insert("P", vec![Value::Int(1)]).unwrap();
            db.insert("C", vec![Value::Int(10)]).unwrap();
            db.insert("J", vec![Value::Int(100), Value::Int(1), Value::Int(10)]).unwrap();
            db.install_importance_order(&|_, _| 1.0);
            // The watch: a scored junction insert referencing missing C 99.
            db.insert_scored("J", vec![Value::Int(101), Value::Int(1), Value::Int(99)], 0.5)
                .unwrap();
            assert_eq!(db.dangling_watch_len(), 1);
            db
        };
        let (p_col, c_col) = (1usize, 2usize);

        let mut batched = build();
        let mut b = batched.begin_scored_batch();
        batched.insert_scored_staged(&mut b, "C", vec![Value::Int(99)], 2.0).unwrap();
        batched
            .insert_scored_staged(
                &mut b,
                "J",
                vec![Value::Int(102), Value::Int(1), Value::Int(99)],
                0.25,
            )
            .unwrap();
        batched.finish_scored_batch(b);

        let mut folded = build();
        folded.insert_scored("C", vec![Value::Int(99)], 2.0).unwrap();
        folded
            .insert_scored("J", vec![Value::Int(102), Value::Int(1), Value::Int(99)], 0.25)
            .unwrap();

        let j = batched.table_id("J").unwrap();
        for col in [p_col, c_col] {
            let a = batched.table(j).sorted_link_index(col).expect("healed");
            let f = folded.table(j).sorted_link_index(col).expect("healed");
            for key in [1i64, 10, 99] {
                assert_eq!(a.pairs(key), f.pairs(key), "col {col} key {key}");
                assert_eq!(a.raw_group_len(key), f.raw_group_len(key));
            }
        }
        // Each junction row appears exactly once per orientation.
        let pairs = batched.table(j).sorted_link_index(p_col).unwrap().pairs(1);
        let mut seen: Vec<RowId> = pairs.iter().map(|&(jr, _)| jr).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), pairs.len(), "no duplicated pairs: {pairs:?}");
        assert_eq!(pairs.len(), 3, "all three junction rows pre-joined");
        assert_eq!(batched.dangling_watch_len(), 0);
    }

    #[test]
    fn batch_token_stamp_matches_the_fold_under_plain_fallback_tails() {
        // A batch whose *last* row falls back to the plain insert (its
        // table's snapshot is dead) must stamp the token at the last
        // maintained insert's epoch — exactly where the fold leaves it —
        // not at the batch's final epoch.
        let (mut batched, mut folded) = installed_pair();
        // Kill Year's snapshot in both databases.
        batched.insert("Year", vec![Value::Int(50), Value::Int(2001)]).unwrap();
        folded.insert("Year", vec![Value::Int(50), Value::Int(2001)]).unwrap();

        let mut b = batched.begin_scored_batch();
        batched
            .insert_scored_staged(
                &mut b,
                "Paper",
                vec![Value::Int(20), "t".into(), Value::Int(1)],
                2.0,
            )
            .unwrap();
        batched
            .insert_scored_staged(&mut b, "Year", vec![Value::Int(51), Value::Int(2002)], 1.0)
            .unwrap();
        batched.finish_scored_batch(b);

        folded
            .insert_scored("Paper", vec![Value::Int(20), "t".into(), Value::Int(1)], 2.0)
            .unwrap();
        folded.insert_scored("Year", vec![Value::Int(51), Value::Int(2002)], 1.0).unwrap();

        assert_eq!(batched.epoch(), folded.epoch());
        assert_eq!(
            batched.fk_order().unwrap().epoch(),
            folded.fk_order().unwrap().epoch(),
            "the stamp sits at the last maintained insert, as in the fold"
        );
        assert!(
            batched.fk_order().unwrap().epoch() < batched.epoch(),
            "the trailing fallback bumped the epoch past the stamp"
        );
    }

    #[test]
    fn scored_batch_suspends_postings_while_open() {
        let (mut db, _) = installed_pair();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        let token = db.fk_order().unwrap();
        let mut b = db.begin_scored_batch();
        db.insert_scored_staged(
            &mut b,
            "Paper",
            vec![Value::Int(20), "t".into(), Value::Int(1)],
            9.0,
        )
        .unwrap();
        // Mid-batch, the staged row is hash-visible but the sorted
        // postings are unreachable: a probe heap-falls-back and still
        // sees the new row.
        assert!(db.table(paper).sorted_fk_index(fk_col).is_none(), "postings suspended");
        let before = db.access().probes();
        let li = |_: RowId| 1.0;
        let rows = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, Some(token), &li);
        assert_eq!(rows.len(), 3, "staged row visible through the heap path");
        assert_eq!(db.access().probes().heap - before.heap, 1);
        db.finish_scored_batch(b);
        assert!(db.table(paper).sorted_fk_index(fk_col).is_some(), "postings settled");
    }

    #[test]
    fn scored_batch_resorts_at_most_once_per_table() {
        // Threshold 2 with 8 staged rows: the fold re-sorts repeatedly
        // mid-stream; the batch settles with exactly one re-sort pass and
        // zero binary inserts for that table.
        let (mut batched, mut folded) = installed_pair();
        batched.set_churn_threshold(2);
        folded.set_churn_threshold(2);
        let before = batched.access().maint();
        let mut b = batched.begin_scored_batch();
        for pk in 20..28 {
            let s = (pk % 5) as f64;
            batched
                .insert_scored_staged(
                    &mut b,
                    "Paper",
                    vec![Value::Int(pk), "t".into(), Value::Int(1)],
                    s,
                )
                .unwrap();
        }
        batched.finish_scored_batch(b);
        let batch_work = batched.access().maint().since(before);
        assert_eq!(batch_work.posting_resorts, 1, "one settlement re-sort for the whole batch");
        assert_eq!(batch_work.binary_inserts, 0, "re-sorting tables skip binary insertion");

        let before = folded.access().maint();
        for pk in 20..28 {
            let s = (pk % 5) as f64;
            folded
                .insert_scored("Paper", vec![Value::Int(pk), "t".into(), Value::Int(1)], s)
                .unwrap();
        }
        let fold_work = folded.access().maint().since(before);
        assert!(
            fold_work.posting_resorts > 1,
            "the fold re-sorts mid-stream at this threshold: {fold_work:?}"
        );
        // Both end byte-identical regardless.
        let paper = batched.table_id("Paper").unwrap();
        let fk_col = batched.table(paper).schema.column_index("year_id").unwrap();
        assert_eq!(
            batched.table(paper).sorted_fk_index(fk_col).unwrap().rows(1),
            folded.table(paper).sorted_fk_index(fk_col).unwrap().rows(1),
        );
    }

    #[test]
    fn scored_update_repositions_postings_at_the_fresh_install_position() {
        let (mut db, _) = installed_pair();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        // Both rows score 1.0, so the install order is [row0, row1].
        assert_eq!(db.table(paper).sorted_fk_index(fk_col).unwrap().rows(1), &[RowId(0), RowId(1)]);
        let old = db.fk_order().unwrap();
        db.update_scored("Paper", 11, vec![Value::Int(11), "p2'".into(), Value::Int(1)], 5.0)
            .unwrap();
        // Row 1 moved to the front — exactly where a fresh sort puts it.
        assert_eq!(db.table(paper).sorted_fk_index(fk_col).unwrap().rows(1), &[RowId(1), RowId(0)]);
        assert_eq!(db.table(paper).value(RowId(1), 1).as_str(), Some("p2'"));
        let token = db.fk_order().unwrap();
        assert!(token.same_order(old) && token != old, "update re-stamps the token");
        assert_eq!(token.epoch(), db.epoch());
        // Fast path and heap path agree, including accounting.
        let li = |r: RowId| db.table(paper).installed_score(r);
        let before = db.access().snapshot();
        let fast = db.select_eq_top_l(paper, fk_col, 1, 2, 0.0, Some(token), &li);
        let mid = db.access().snapshot();
        let slow = db.select_eq_top_l(paper, fk_col, 1, 2, 0.0, None, &li);
        let after = db.access().snapshot();
        assert_eq!(fast, slow);
        assert_eq!(mid.since(before), after.since(mid));
        // An update that ties an existing score must respect the RowId
        // tie-break: row 1 back at 1.0 ties row 0 and lands *after* it.
        db.update_scored("Paper", 11, vec![Value::Int(11), "p2".into(), Value::Int(1)], 1.0)
            .unwrap();
        assert_eq!(db.table(paper).sorted_fk_index(fk_col).unwrap().rows(1), &[RowId(0), RowId(1)]);
    }

    #[test]
    fn scored_delete_tombstones_then_compacts_at_the_threshold() {
        let (mut db, _) = installed_pair();
        db.set_compaction_threshold(1);
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        for (pk, s) in [(20i64, 3.0), (21, 0.5)] {
            db.insert_scored("Paper", vec![Value::Int(pk), "t".into(), Value::Int(1)], s).unwrap();
        }
        // First delete: one tombstone, below the threshold — the dead
        // entry lingers in the postings but is invisible to probes.
        db.delete_scored("Paper", 10).unwrap();
        assert_eq!(db.table(paper).fk_tombstones(), 1);
        assert_eq!(db.table(paper).sorted_fk_index(fk_col).unwrap().rows(1).len(), 4);
        let token = db.fk_order().unwrap();
        let li = |r: RowId| db.table(paper).installed_score(r);
        let before = db.access().snapshot();
        let fast = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, Some(token), &li);
        let mid = db.access().snapshot();
        let slow = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, None, &li);
        let after = db.access().snapshot();
        assert_eq!(fast.len(), 3, "tombstone skipped");
        assert_eq!(fast, slow);
        assert_eq!(mid.since(before), after.since(mid), "tombstones invisible to accounting");
        // Second delete crosses the threshold: the settlement ends with
        // one compaction pass purging the dead entries.
        let maint = db.access().maint();
        db.delete_scored("Paper", 20).unwrap();
        let work = db.access().maint().since(maint);
        assert_eq!(work.compactions, 1, "one compaction pass");
        assert_eq!(db.table(paper).fk_tombstones(), 0, "debt paid off");
        assert_eq!(db.table(paper).sorted_fk_index(fk_col).unwrap().rows(1), &[RowId(1), RowId(3)]);
        // MissingRow on dead/absent pks.
        assert!(matches!(
            db.delete_scored("Paper", 10),
            Err(StorageError::MissingRow { key: 10, .. })
        ));
    }

    #[test]
    fn mixed_batch_settles_exactly_like_the_fold() {
        let (mut batched, mut folded) = installed_pair();
        let script = |db: &mut Database, b: Option<&mut ScoredBatch>| {
            // A mixed run: two inserts, an update repositioning a row that
            // one of the inserts just tied, a delete, and an update of a
            // row inserted earlier in the same run.
            match b {
                Some(b) => {
                    db.insert_scored_staged(
                        b,
                        "Paper",
                        vec![Value::Int(20), "a".into(), Value::Int(1)],
                        2.0,
                    )
                    .unwrap();
                    db.update_scored_staged(
                        b,
                        "Paper",
                        10,
                        vec![Value::Int(10), "p1'".into(), Value::Int(1)],
                        2.0,
                    )
                    .unwrap();
                    db.delete_scored_staged(b, "Paper", 11).unwrap();
                    db.update_scored_staged(
                        b,
                        "Paper",
                        20,
                        vec![Value::Int(20), "a'".into(), Value::Int(1)],
                        0.25,
                    )
                    .unwrap();
                    db.insert_scored_staged(
                        b,
                        "Paper",
                        vec![Value::Int(21), "b".into(), Value::Int(1)],
                        2.0,
                    )
                    .unwrap();
                }
                None => {
                    db.insert_scored("Paper", vec![Value::Int(20), "a".into(), Value::Int(1)], 2.0)
                        .unwrap();
                    db.update_scored(
                        "Paper",
                        10,
                        vec![Value::Int(10), "p1'".into(), Value::Int(1)],
                        2.0,
                    )
                    .unwrap();
                    db.delete_scored("Paper", 11).unwrap();
                    db.update_scored(
                        "Paper",
                        20,
                        vec![Value::Int(20), "a'".into(), Value::Int(1)],
                        0.25,
                    )
                    .unwrap();
                    db.insert_scored("Paper", vec![Value::Int(21), "b".into(), Value::Int(1)], 2.0)
                        .unwrap();
                }
            }
        };
        let mut b = batched.begin_scored_batch();
        script(&mut batched, Some(&mut b));
        batched.finish_scored_batch(b);
        script(&mut folded, None);
        assert_eq!(batched.epoch(), folded.epoch());
        assert_eq!(batched.fk_order().unwrap().epoch(), folded.fk_order().unwrap().epoch());
        let paper = batched.table_id("Paper").unwrap();
        let fk_col = batched.table(paper).schema.column_index("year_id").unwrap();
        assert_eq!(
            batched.table(paper).sorted_fk_index(fk_col).unwrap().rows(1),
            folded.table(paper).sorted_fk_index(fk_col).unwrap().rows(1),
            "settled postings equal the fold's, tombstones included"
        );
        assert_eq!(batched.table(paper).fk_tombstones(), folded.table(paper).fk_tombstones());
        // And both equal a fresh install over the surviving rows, after
        // filtering tombstones.
        let live: Vec<RowId> = batched
            .table(paper)
            .sorted_fk_index(fk_col)
            .unwrap()
            .rows(1)
            .iter()
            .copied()
            .filter(|&r| batched.table(paper).is_live(r))
            .collect();
        let snap: Vec<Vec<f64>> = batched
            .tables()
            .map(|(_, t)| (0..t.len()).map(|i| t.installed_score(RowId(i as u32))).collect())
            .collect();
        let mut reinstalled = std::mem::replace(&mut batched, Database::new());
        reinstalled.install_importance_order(&|t, r| snap[t.index()][r.index()]);
        assert_eq!(reinstalled.table(paper).sorted_fk_index(fk_col).unwrap().rows(1), live);
    }

    #[test]
    fn deleting_a_link_target_drops_the_orientation_then_heals_on_reinsert() {
        // The dangling watch run in reverse: a *delete* creates the
        // missing endpoint instead of a not-yet-inserted reference.
        let mut db = Database::new();
        db.create_table(TableSchema::builder("P").pk("id").build().unwrap()).unwrap();
        db.create_table(TableSchema::builder("C").pk("id").build().unwrap()).unwrap();
        db.create_table(
            TableSchema::builder("J")
                .pk("id")
                .fk("p_id", "P")
                .fk("c_id", "C")
                .junction()
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("P", vec![Value::Int(1)]).unwrap();
        db.insert("C", vec![Value::Int(10)]).unwrap();
        db.insert("C", vec![Value::Int(11)]).unwrap();
        db.insert("J", vec![Value::Int(100), Value::Int(1), Value::Int(10)]).unwrap();
        db.insert("J", vec![Value::Int(101), Value::Int(1), Value::Int(11)]).unwrap();
        db.install_importance_order(&|_, _| 1.0);
        let j = db.table_id("J").unwrap();
        let p_col = 1usize;
        assert_eq!(db.table(j).sorted_link_index(p_col).unwrap().pairs(1).len(), 2);
        // Deleting C 10 leaves J 100 dangling: the rebuild trips over the
        // dead target, drops the orientation, and watches the endpoint.
        db.delete_scored("C", 10).unwrap();
        assert!(db.table(j).sorted_link_index(p_col).is_none(), "stale orientation dropped");
        assert_eq!(db.dangling_watch_len(), 1, "dead endpoint watched");
        // The heap fallback still serves correct (live-target) results in
        // the meantime; re-inserting the pk heals the fast path.
        db.insert_scored("C", vec![Value::Int(10)], 2.0).unwrap();
        let links = db.table(j).sorted_link_index(p_col).expect("healed");
        assert_eq!(links.pairs(1).len(), 2, "both pairs re-joined to the new row");
        assert_eq!(db.dangling_watch_len(), 0);
        // The healed pair targets the *new* RowId of pk 10.
        let new_row = db.table(db.table_id("C").unwrap()).by_pk(10).unwrap();
        assert!(links.pairs(1).iter().any(|&(_, t)| t == new_row));
        // An update of a link target re-sorts the pairs by the new score.
        db.update_scored("C", 11, vec![Value::Int(11)], 9.0).unwrap();
        let links = db.table(j).sorted_link_index(p_col).expect("rebuilt, not dropped");
        assert_eq!(links.pairs(1)[0].0, RowId(1), "J 101's target now outranks");
    }

    #[test]
    fn junction_own_mutations_tombstone_and_compact_without_wholesale_rebuilds() {
        let mut db = Database::new();
        db.create_table(TableSchema::builder("P").pk("id").build().unwrap()).unwrap();
        db.create_table(TableSchema::builder("C").pk("id").build().unwrap()).unwrap();
        db.create_table(
            TableSchema::builder("J")
                .pk("id")
                .fk("p_id", "P")
                .fk("c_id", "C")
                .junction()
                .build()
                .unwrap(),
        )
        .unwrap();
        db.set_compaction_threshold(2);
        for p in [1, 2] {
            db.insert("P", vec![Value::Int(p)]).unwrap();
        }
        db.insert("C", vec![Value::Int(10)]).unwrap();
        for (pk, p) in [(100, 1), (101, 1), (102, 1)] {
            db.insert("J", vec![Value::Int(pk), Value::Int(p), Value::Int(10)]).unwrap();
        }
        db.install_importance_order(&|_, r| 1.0 + r.index() as f64);
        let j = db.table_id("J").unwrap();
        let p_col = 1usize;

        // A junction-own delete leaves a tombstoned pair per orientation
        // (no wholesale rebuild): raw length drops, the pair stays.
        db.delete_scored("J", 101).unwrap();
        let links = db.table(j).sorted_link_index(p_col).expect("orientation kept");
        assert_eq!(links.raw_group_len(1), 2, "raw length tracks the live group");
        assert_eq!(links.pairs(1).len(), 3, "the dead pair lingers as a tombstone");
        assert_eq!(db.table(j).link_tombstones(), 2, "one tombstone per orientation");
        assert!(!db.table(j).is_live(RowId(1)), "J 101 occupied the second slot");
        assert!(links.pairs(1).iter().any(|&(jr, _)| jr == RowId(1)));

        // A junction-own update physically re-homes the pair under the
        // new source key — no tombstone, identical to a fresh build.
        db.update_scored("J", 102, vec![Value::Int(102), Value::Int(2), Value::Int(10)], 0.0)
            .unwrap();
        let links = db.table(j).sorted_link_index(p_col).expect("orientation kept");
        assert_eq!(links.raw_group_len(1), 1);
        assert_eq!(links.raw_group_len(2), 1);
        assert_eq!(links.pairs(2).len(), 1, "re-homed under the new key");
        assert!(links.pairs(1).iter().all(|&(jr, _)| jr != RowId(2)), "old-key pair removed");

        // Crossing the threshold compacts: tombstones purge wholesale.
        // (This delete adds one tombstone — its p-side group empties and
        // drops its key outright, which costs no debt.)
        db.delete_scored("J", 102).unwrap();
        assert_eq!(db.table(j).link_tombstones(), 0, "debt crossed 2: compacted");
        let links = db.table(j).sorted_link_index(p_col).expect("rebuilt");
        assert_eq!(links.pairs(1).len(), 1, "only the live pair survives");
        // An emptied raw group drops its key outright (rebuild indexes
        // only non-empty live groups).
        assert_eq!(links.pairs(2).len(), 0);
        assert_eq!(links.key_count(), 1);

        // The maintained postings equal a from-scratch install over the
        // same live rows (both replicas lay out identical RowId slots, so
        // the slot-indexed score function transfers).
        let mut fresh = Database::new();
        for (_, t) in db.tables() {
            fresh.create_table(t.schema.clone()).unwrap();
        }
        fresh.insert("P", vec![Value::Int(1)]).unwrap();
        fresh.insert("P", vec![Value::Int(2)]).unwrap();
        fresh.insert("C", vec![Value::Int(10)]).unwrap();
        fresh.insert("J", vec![Value::Int(100), Value::Int(1), Value::Int(10)]).unwrap();
        fresh.insert("J", vec![Value::Int(777), Value::Int(2), Value::Int(10)]).unwrap();
        fresh.delete("J", 777).unwrap();
        fresh.install_importance_order(&|_, r| 1.0 + r.index() as f64);
        let a = db.table(j).sorted_link_index(p_col).unwrap();
        let b = fresh.table(fresh.table_id("J").unwrap()).sorted_link_index(p_col).unwrap();
        assert_eq!(a.pairs(1), b.pairs(1));
        assert_eq!(a.key_count(), b.key_count());
    }

    #[test]
    fn churn_threshold_triggers_batched_resort() {
        let mut db = tiny_db();
        db.set_churn_threshold(2);
        let snapshot: Vec<Vec<f64>> =
            db.tables().map(|(_, t)| t.iter().map(|_| 1.0).collect()).collect();
        db.install_importance_order(&|t, r| snapshot[t.index()][r.index()]);
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        for (i, pk) in (20..26).enumerate() {
            let score = (i + 2) as f64;
            db.insert_scored("Paper", vec![Value::Int(pk), "t".into(), Value::Int(1)], score)
                .unwrap();
        }
        // 6 scored inserts with threshold 2: at least one batched re-sort
        // happened, so the churn counter wrapped below the insert count.
        assert!(db.table(paper).churn() <= 2, "re-sort resets the churn counter");
        // The postings are still exactly the install-from-scratch order.
        let li = |r: RowId| db.table(paper).installed_score(r);
        let token = db.fk_order().unwrap();
        let fast = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, Some(token), &li);
        let slow = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, None, &li);
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 8);
    }
}
