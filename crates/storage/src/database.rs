//! The catalog: named tables, FK validation, and the query forms used by
//! the OS-generation algorithms.

use std::collections::HashMap;

use crate::access::AccessCounter;
use crate::error::StorageError;
use crate::schema::TableSchema;
use crate::table::{RowId, Table};
use crate::value::Value;
use crate::Result;

/// A table identifier (dense index into the catalog).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

impl TableId {
    /// The table index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to one tuple anywhere in the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleRef {
    /// The containing table.
    pub table: TableId,
    /// The row within that table.
    pub row: RowId,
}

impl TupleRef {
    /// Convenience constructor.
    pub fn new(table: TableId, row: RowId) -> Self {
        TupleRef { table, row }
    }
}

/// An in-memory relational database: a catalog of [`Table`]s plus an
/// [`AccessCounter`] shared by all query paths.
#[derive(Debug, Default)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    access: AccessCounter,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers a table; names must be unique.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableId> {
        if self.by_name.contains_key(&schema.name) {
            return Err(StorageError::BadSchema(format!("table `{}` already exists", schema.name)));
        }
        let id = TableId(self.tables.len() as u16);
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(Table::new(schema));
        Ok(id)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Mutable access to a table (used by generators).
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.index()]
    }

    /// Looks a table up by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name.get(name).copied().ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Iterates `(TableId, &Table)` over the catalog.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables.iter().enumerate().map(|(i, t)| (TableId(i as u16), t))
    }

    /// Inserts a row into a named table.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<RowId> {
        let id = self.table_id(table)?;
        self.tables[id.index()].insert(values)
    }

    /// Total number of tuples across all tables (the paper reports
    /// 2,959,511 for DBLP and 8,661,245 for TPC-H SF-1).
    pub fn total_tuples(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// The shared access counter.
    pub fn access(&self) -> &AccessCounter {
        &self.access
    }

    /// The value of a tuple's column.
    pub fn value(&self, t: TupleRef, col: usize) -> &Value {
        self.table(t.table).value(t.row, col)
    }

    /// Validates that every non-NULL FK value references an existing row.
    /// Returns the number of FK values checked.
    pub fn validate_foreign_keys(&self) -> Result<usize> {
        let mut checked = 0;
        for table in &self.tables {
            for fk in &table.schema.fks {
                let target_id = self.table_id(&fk.ref_table)?;
                let target = self.table(target_id);
                for (_, row) in table.iter() {
                    match row[fk.column] {
                        Value::Null => {}
                        Value::Int(k) => {
                            checked += 1;
                            if target.by_pk(k).is_none() {
                                return Err(StorageError::DanglingForeignKey {
                                    table: table.schema.name.clone(),
                                    column: table.schema.columns[fk.column].name.clone(),
                                    key: k,
                                });
                            }
                        }
                        _ => {
                            return Err(StorageError::TypeMismatch {
                                table: table.schema.name.clone(),
                                column: table.schema.columns[fk.column].name.clone(),
                            })
                        }
                    }
                }
            }
        }
        Ok(checked)
    }

    /// `SELECT * FROM Ri WHERE Ri.col = key` — Algorithm 4 line 12 /
    /// Algorithm 5 line 6. One counted join access.
    pub fn select_eq(&self, table: TableId, col: usize, key: i64) -> Vec<RowId> {
        let t = self.table(table);
        let rows: Vec<RowId> = if col == t.schema.pk {
            t.by_pk(key).into_iter().collect()
        } else {
            t.rows_where_eq(col, key).to_vec()
        };
        self.access.record_join(rows.len());
        rows
    }

    /// `SELECT * TOP l FROM Ri WHERE Ri.col = key AND li(ti) > largest_l
    /// ORDER BY li DESC` — Algorithm 4 line 10 (Avoidance Condition 2).
    /// `li` maps a row of `table` to its local importance. One counted join
    /// access even when the result is empty, matching the paper's cost
    /// accounting.
    pub fn select_eq_top_l(
        &self,
        table: TableId,
        col: usize,
        key: i64,
        l: usize,
        largest_l: f64,
        li: &dyn Fn(RowId) -> f64,
    ) -> Vec<RowId> {
        let t = self.table(table);
        let candidates: Vec<RowId> = if col == t.schema.pk {
            t.by_pk(key).into_iter().collect()
        } else {
            t.rows_where_eq(col, key).to_vec()
        };
        // Bounded top-l selection — O(g log l) over a group of g rows
        // instead of sorting the whole group (ROADMAP hot path).
        let scored = crate::topl::top_l(
            candidates.into_iter().filter_map(|r| {
                let s = li(r);
                (s > largest_l).then_some((s, r))
            }),
            l,
        );
        let rows: Vec<RowId> = scored.into_iter().map(|(_, r)| r).collect();
        self.access.record_join(rows.len());
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::Value;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("Year")
                .pk("id")
                .column("year", crate::ValueType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("Paper")
                .pk("id")
                .searchable_text("title")
                .fk("year_id", "Year")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("Year", vec![Value::Int(1), Value::Int(1999)]).unwrap();
        db.insert("Paper", vec![Value::Int(10), "p1".into(), Value::Int(1)]).unwrap();
        db.insert("Paper", vec![Value::Int(11), "p2".into(), Value::Int(1)]).unwrap();
        db
    }

    #[test]
    fn catalog_roundtrip() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        assert_eq!(db.table(paper).schema.name, "Paper");
        assert_eq!(db.total_tuples(), 3);
        assert!(db.table_id("Nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = tiny_db();
        let e = db.create_table(TableSchema::builder("Year").pk("id").build().unwrap());
        assert!(matches!(e, Err(StorageError::BadSchema(_))));
    }

    #[test]
    fn fk_validation_passes_then_catches_dangling() {
        let mut db = tiny_db();
        assert_eq!(db.validate_foreign_keys().unwrap(), 2);
        db.insert("Paper", vec![Value::Int(12), "bad".into(), Value::Int(99)]).unwrap();
        assert!(matches!(
            db.validate_foreign_keys(),
            Err(StorageError::DanglingForeignKey { key: 99, .. })
        ));
    }

    #[test]
    fn select_eq_counts_accesses() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        let before = db.access().snapshot();
        let rows = db.select_eq(paper, fk_col, 1);
        assert_eq!(rows.len(), 2);
        let delta = db.access().snapshot().since(before);
        assert_eq!(delta.joins, 1);
        assert_eq!(delta.tuples, 2);
        // Empty probe still counts one join.
        db.select_eq(paper, fk_col, 42);
        assert_eq!(db.access().snapshot().since(before).joins, 2);
    }

    #[test]
    fn select_eq_on_pk_column() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let rows = db.select_eq(paper, 0, 11);
        assert_eq!(rows.len(), 1);
        assert_eq!(db.table(paper).pk_of(rows[0]), 11);
    }

    #[test]
    fn select_top_l_filters_and_orders() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        // Importance: pk 10 -> 1.0, pk 11 -> 5.0
        let li = |r: RowId| if db.table(paper).pk_of(r) == 10 { 1.0 } else { 5.0 };
        let rows = db.select_eq_top_l(paper, fk_col, 1, 1, 0.0, &li);
        assert_eq!(rows.len(), 1);
        assert_eq!(db.table(paper).pk_of(rows[0]), 11, "highest importance first");
        // threshold excludes everything
        let rows = db.select_eq_top_l(paper, fk_col, 1, 10, 100.0, &li);
        assert!(rows.is_empty());
    }
}
