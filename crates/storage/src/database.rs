//! The catalog: named tables, FK validation, and the query forms used by
//! the OS-generation algorithms.

use std::collections::HashMap;

use crate::access::AccessCounter;
use crate::epoch::Epoch;
use crate::error::StorageError;
use crate::fk_index::{FkOrderToken, LinkTarget, SortedLinkIndex};
use crate::schema::TableSchema;
use crate::table::{RowId, Table};
use crate::value::Value;
use crate::Result;

/// Incremental scored inserts a table absorbs before the maintenance
/// switches to an epoch-batched full re-sort of its postings (see
/// [`Database::set_churn_threshold`]).
pub const DEFAULT_CHURN_THRESHOLD: usize = 4096;

/// A table identifier (dense index into the catalog).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

impl TableId {
    /// The table index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to one tuple anywhere in the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleRef {
    /// The containing table.
    pub table: TableId,
    /// The row within that table.
    pub row: RowId,
}

impl TupleRef {
    /// Convenience constructor.
    pub fn new(table: TableId, row: RowId) -> Self {
        TupleRef { table, row }
    }
}

/// A handle staging several scored inserts whose sorted-posting
/// maintenance is settled in **one** pass
/// ([`Database::finish_scored_batch`]): per affected table, either every
/// staged row binary-inserts, or — above the churn threshold — one
/// re-sort absorbs the whole batch, instead of potentially several
/// mid-stream re-sorts when the same rows arrive one
/// [`Database::insert_scored`] at a time. While the batch is open the
/// affected tables' postings are suspended, so probes conservatively
/// heap-fall-back rather than scan prefixes missing the staged rows.
///
/// The settled end state is byte-identical to folding
/// [`Database::insert_scored`] over the same rows in the same order
/// (property-tested at every churn threshold).
#[derive(Debug)]
#[must_use = "settle with Database::finish_scored_batch or staged rows never re-join the sorted postings"]
pub struct ScoredBatch {
    /// Rows that took the maintained path, in insertion order
    /// (plain-insert fallbacks need no settlement).
    staged: Vec<(TableId, RowId)>,
    /// Tables whose postings were suspended at first touch.
    touched: Vec<TableId>,
    /// Epoch of the last staged (maintained) insert — the stamp the
    /// settled [`FkOrderToken`] carries, exactly as the fold would leave
    /// it.
    last_scored_epoch: Option<Epoch>,
}

impl ScoredBatch {
    /// Rows staged so far (maintained path only), in insertion order.
    pub fn staged(&self) -> &[(TableId, RowId)] {
        &self.staged
    }
}

/// An in-memory relational database: a catalog of [`Table`]s plus an
/// [`AccessCounter`] shared by all query paths.
#[derive(Debug)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    access: AccessCounter,
    /// The currently installed importance order, if any (see
    /// [`crate::fk_index`]).
    fk_order: Option<FkOrderToken>,
    /// Global mutation epoch: bumped on every insert into any table.
    epoch: Epoch,
    /// Per-table churn bound before the epoch-batched posting re-sort.
    churn_threshold: usize,
    /// Missing junction-link endpoints: `(target table, pk)` → the
    /// junction tables whose link postings were dropped because a scored
    /// insert referenced that not-yet-existing row. When the endpoint
    /// later arrives through a scored insert, the waiting junctions'
    /// postings are rebuilt (healed) instead of staying on the heap
    /// fallback until the next full install.
    dangling_watch: HashMap<(TableId, i64), Vec<TableId>>,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            tables: Vec::new(),
            by_name: HashMap::new(),
            access: AccessCounter::default(),
            fk_order: None,
            epoch: Epoch::default(),
            churn_threshold: DEFAULT_CHURN_THRESHOLD,
            dangling_watch: HashMap::new(),
        }
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The global mutation epoch (bumped on every insert; see
    /// [`crate::epoch`]).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Sets the per-table churn bound: after this many incremental scored
    /// inserts, the next one triggers a full re-sort of the table's
    /// postings instead of another binary insert. Both strategies are
    /// byte-identical; the threshold only trades insert latency
    /// (`O(g)` memmove per posting) against a periodic `O(Σ g log g)`
    /// batch.
    pub fn set_churn_threshold(&mut self, threshold: usize) {
        self.churn_threshold = threshold.max(1);
    }

    /// The current churn bound.
    pub fn churn_threshold(&self) -> usize {
        self.churn_threshold
    }

    /// Registers a table; names must be unique.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableId> {
        if self.by_name.contains_key(&schema.name) {
            return Err(StorageError::BadSchema(format!("table `{}` already exists", schema.name)));
        }
        let id = TableId(self.tables.len() as u16);
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(Table::new(schema));
        Ok(id)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Mutable access to a table (used by generators).
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.index()]
    }

    /// Looks a table up by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name.get(name).copied().ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Iterates `(TableId, &Table)` over the catalog.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables.iter().enumerate().map(|(i, t)| (TableId(i as u16), t))
    }

    /// Inserts a row into a named table (the legacy *un-scored* path: any
    /// installed sorted postings of that table are dropped and the heap
    /// path takes over for it — see [`Database::insert_scored`] for the
    /// maintenance path). Bumps the table's and the global epoch.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<RowId> {
        let id = self.table_id(table)?;
        let row = self.tables[id.index()].insert(values)?;
        self.epoch = self.epoch.next();
        Ok(row)
    }

    /// Inserts a row whose installed global importance is `score`,
    /// *maintaining* the importance order instead of invalidating it: the
    /// row is binary-inserted into every affected sorted FK posting list
    /// (and, for junction tables, into both orientations' sorted link
    /// postings), and the installed [`FkOrderToken`] is re-stamped with
    /// the new epoch. Holders of the superseded token heap-fall-back;
    /// contexts synchronized to the new token keep the prefix-scan fast
    /// path. Above the churn threshold the table's postings are re-sorted
    /// in one epoch-batched pass instead (byte-identical either way). A
    /// batch of one: see [`Database::begin_scored_batch`] for amortizing
    /// the settlement across many inserts.
    ///
    /// Falls back to the plain [`Database::insert`] when no live
    /// importance order covers the table (nothing to maintain).
    pub fn insert_scored(&mut self, table: &str, values: Vec<Value>, score: f64) -> Result<RowId> {
        let mut batch = self.begin_scored_batch();
        let row = self.insert_scored_staged(&mut batch, table, values, score);
        self.finish_scored_batch(batch);
        row
    }

    /// Opens a scored-insert batch (see [`ScoredBatch`]). Stage rows with
    /// [`Database::insert_scored_staged`], settle with
    /// [`Database::finish_scored_batch`].
    pub fn begin_scored_batch(&self) -> ScoredBatch {
        ScoredBatch { staged: Vec::new(), touched: Vec::new(), last_scored_epoch: None }
    }

    /// Stages one scored insert into an open batch: the row (and its
    /// score) lands in the table — visible to hash-index and PK reads,
    /// epoch bumped — but sorted-posting maintenance is deferred to
    /// [`Database::finish_scored_batch`]. The affected table's postings
    /// are suspended for the batch's duration (probes heap-fall-back).
    /// Falls back to the plain [`Database::insert`] exactly like
    /// [`Database::insert_scored`] when no live order covers the table.
    pub fn insert_scored_staged(
        &mut self,
        batch: &mut ScoredBatch,
        table: &str,
        values: Vec<Value>,
        score: f64,
    ) -> Result<RowId> {
        let tid = self.table_id(table)?;
        if self.fk_order.is_none() || !self.tables[tid.index()].has_installed_scores() {
            return self.insert(table, values);
        }
        if !batch.touched.contains(&tid) {
            self.tables[tid.index()].suspend_postings();
            batch.touched.push(tid);
        }
        let row = self.tables[tid.index()].insert_scored_staged(values, score)?;
        self.epoch = self.epoch.next();
        batch.staged.push((tid, row));
        batch.last_scored_epoch = Some(self.epoch);
        Ok(row)
    }

    /// Settles an open batch: resumes the suspended postings, then — per
    /// affected table — either binary-inserts every staged row or, above
    /// the churn threshold, runs **one** full re-sort for the whole batch
    /// (where the fold pays one mid-stream re-sort per threshold
    /// crossing). Junction rows join the sorted link postings with
    /// dangling endpoints recorded for healing, endpoint arrivals heal
    /// waiting junctions, and the [`FkOrderToken`] is re-stamped once.
    /// Byte-identical to the fold of single [`Database::insert_scored`]
    /// calls; only internal scheduling state (the churn counter) may
    /// differ, which is content-neutral by the re-sort equivalence.
    pub fn finish_scored_batch(&mut self, batch: ScoredBatch) {
        let ScoredBatch { staged, touched, last_scored_epoch } = batch;
        for &tid in &touched {
            self.tables[tid.index()].resume_postings();
        }
        // Tables whose accumulated churn crosses the threshold settle by
        // one re-sort; their staged rows skip binary insertion.
        let resort: Vec<TableId> = touched
            .iter()
            .copied()
            .filter(|&tid| {
                let t = &self.tables[tid.index()];
                t.has_installed_scores() && t.churn() > self.churn_threshold
            })
            .collect();
        // Heals are *collected* during settlement and run after it: a
        // heal's wholesale rebuild reads the full current state, which
        // already contains rows staged later in this batch — firing it
        // mid-loop would rebuild their pairs and then binary-insert them
        // again when the loop reaches them (duplicate pairs; regression-
        // tested). Deferred, the rebuild subsumes those rows exactly once
        // and ends at the same full-state content as the fold's
        // heal-then-insert sequence.
        let mut heals: Vec<TableId> = Vec::new();
        for &(tid, row) in &staged {
            // A mid-batch un-scored insert may have killed the snapshot;
            // its table's postings are already gone, nothing to settle.
            if !self.tables[tid.index()].has_installed_scores() {
                continue;
            }
            let resorting = resort.contains(&tid);
            if !resorting {
                self.tables[tid.index()].binary_insert_postings(row);
                self.access.record_binary_insert();
            }
            self.settle_junction_links(tid, row, resorting);
            self.collect_heals(tid, row, &mut heals);
        }
        for &tid in &resort {
            if self.tables[tid.index()].has_installed_scores() {
                self.tables[tid.index()].resort_from_snapshot();
                self.access.record_posting_resort();
                self.rebuild_links_for(tid);
            }
        }
        for jid in heals {
            self.rebuild_links_for(jid);
        }
        if let Some(epoch) = last_scored_epoch {
            // The stamp the fold would leave: the epoch of the last
            // *maintained* insert. A trailing plain-insert fallback bumps
            // the epoch further but never restamps in the fold either.
            self.fk_order = self.fk_order.map(|t| t.restamped(epoch));
        }
    }

    /// Joins one freshly inserted junction row into its table's sorted
    /// link postings. A dead target snapshot drops the links; a *dangling*
    /// target FK drops them **and** registers the missing `(table, pk)`
    /// endpoint in the dangling watch, so the endpoint's later arrival
    /// repairs the orientation ([`Database::heal_dangling_refs`]) instead
    /// of leaving the table on the heap fallback until the next full
    /// install. With `skip_pairs` (the table is about to re-sort), only
    /// the drop/watch bookkeeping runs — the rebuild supplies the pairs.
    fn settle_junction_links(&mut self, jid: TableId, row: RowId, skip_pairs: bool) {
        let Some(orientations) = self.junction_orientations(jid) else { return };
        let mut updates: Vec<(usize, i64, Option<RowId>, TableId)> = Vec::new();
        let mut drop_links = false;
        for (s_col, t_col, t_table) in orientations {
            if !self.tables[t_table.index()].has_installed_scores() {
                drop_links = true;
                continue;
            }
            let Some(key) = self.tables[jid.index()].value(row, s_col).as_int() else { continue };
            let target = match self.tables[jid.index()].value(row, t_col).as_int() {
                None => None, // NULL target: counts in raw_len only
                Some(k) => match self.tables[t_table.index()].by_pk(k) {
                    Some(r) => Some(r),
                    None => {
                        drop_links = true;
                        let waiters = self.dangling_watch.entry((t_table, k)).or_default();
                        if !waiters.contains(&jid) {
                            waiters.push(jid);
                        }
                        continue;
                    }
                },
            };
            updates.push((s_col, key, target, t_table));
        }
        if drop_links {
            self.tables[jid.index()].drop_sorted_links();
        } else if !skip_pairs {
            for (s_col, key, target, t_table) in updates {
                // Take the index out so the target table's score snapshot
                // can be borrowed alongside the junction table.
                let Some(mut idx) = self.tables[jid.index()].take_sorted_link(s_col) else {
                    continue;
                };
                idx.insert_scored(
                    key,
                    row,
                    target,
                    self.tables[t_table.index()].installed_scores(),
                );
                self.tables[jid.index()].set_sorted_link(s_col, idx);
            }
        }
    }

    /// If the freshly inserted row is a watched missing endpoint, queues
    /// the waiting junctions for a post-settlement link rebuild (see
    /// [`Database::finish_scored_batch`]). The rebuild resolves every
    /// reference from current state; a junction with *another* endpoint
    /// still missing yields nothing and registers that endpoint, retrying
    /// when its own watch entry fires. Endpoints that arrive through the
    /// un-scored [`Database::insert`] cannot heal (the insert kills the
    /// target table's score snapshot, so there is no order to repair
    /// into).
    fn collect_heals(&mut self, tid: TableId, row: RowId, heals: &mut Vec<TableId>) {
        if self.dangling_watch.is_empty() {
            return;
        }
        let pk = self.tables[tid.index()].pk_of(row);
        let Some(waiters) = self.dangling_watch.remove(&(tid, pk)) else { return };
        for jid in waiters {
            if !heals.contains(&jid) {
                heals.push(jid);
            }
        }
    }

    /// The two (source column, target column, target table) orientations
    /// of a junction table, or `None` for non-junctions.
    fn junction_orientations(&self, jid: TableId) -> Option<[(usize, usize, TableId); 2]> {
        let jt = self.table(jid);
        if !jt.schema.is_junction || jt.schema.fks.len() != 2 {
            return None;
        }
        let (a, b) = (&jt.schema.fks[0], &jt.schema.fks[1]);
        let ta = self.table_id(&a.ref_table).ok()?;
        let tb = self.table_id(&b.ref_table).ok()?;
        Some([(a.column, b.column, tb), (b.column, a.column, ta)])
    }

    /// (Re)builds both orientations' sorted link postings of a junction
    /// table from the current score snapshots. An orientation whose
    /// target snapshot is dead is left absent (heap fallback); one with a
    /// dangling target FK is left absent **and** the missing endpoint is
    /// registered in the dangling watch, so its later scored arrival
    /// heals the orientation (a junction with several missing endpoints
    /// heals progressively: each rebuild attempt registers the next one
    /// it trips over).
    fn rebuild_links_for(&mut self, jid: TableId) {
        let Some(orientations) = self.junction_orientations(jid) else { return };
        self.access.record_link_rebuild();
        let mut built: Vec<(usize, SortedLinkIndex)> = Vec::new();
        let mut dangling: Vec<(TableId, i64)> = Vec::new();
        {
            let jt = self.table(jid);
            for (s_col, t_col, t_table) in orientations {
                let target = self.table(t_table);
                if !target.has_installed_scores() {
                    continue;
                }
                let Some(base) = jt.fk_index_base(s_col) else { continue };
                let idx = SortedLinkIndex::build(
                    base,
                    &|j| match jt.value(j, t_col).as_int() {
                        None => LinkTarget::Null,
                        Some(k) => match target.by_pk(k) {
                            Some(row) => LinkTarget::Row(row),
                            None => LinkTarget::Dangling(k),
                        },
                    },
                    &|t| target.installed_score(t),
                );
                match idx {
                    Ok(idx) => built.push((s_col, idx)),
                    Err(pk) => dangling.push((t_table, pk)),
                }
            }
        }
        self.tables[jid.index()].drop_sorted_links();
        for (col, idx) in built {
            self.tables[jid.index()].set_sorted_link(col, idx);
        }
        for key in dangling {
            let waiters = self.dangling_watch.entry(key).or_default();
            if !waiters.contains(&jid) {
                waiters.push(jid);
            }
        }
    }

    /// Total number of tuples across all tables (the paper reports
    /// 2,959,511 for DBLP and 8,661,245 for TPC-H SF-1).
    pub fn total_tuples(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// The shared access counter.
    pub fn access(&self) -> &AccessCounter {
        &self.access
    }

    /// The value of a tuple's column.
    pub fn value(&self, t: TupleRef, col: usize) -> &Value {
        self.table(t.table).value(t.row, col)
    }

    /// Validates that every non-NULL FK value references an existing row.
    /// Returns the number of FK values checked.
    pub fn validate_foreign_keys(&self) -> Result<usize> {
        let mut checked = 0;
        for table in &self.tables {
            for fk in &table.schema.fks {
                let target_id = self.table_id(&fk.ref_table)?;
                let target = self.table(target_id);
                for (_, row) in table.iter() {
                    match row[fk.column] {
                        Value::Null => {}
                        Value::Int(k) => {
                            checked += 1;
                            if target.by_pk(k).is_none() {
                                return Err(StorageError::DanglingForeignKey {
                                    table: table.schema.name.clone(),
                                    column: table.schema.columns[fk.column].name.clone(),
                                    key: k,
                                });
                            }
                        }
                        _ => {
                            return Err(StorageError::TypeMismatch {
                                table: table.schema.name.clone(),
                                column: table.schema.columns[fk.column].name.clone(),
                            })
                        }
                    }
                }
            }
        }
        Ok(checked)
    }

    /// Sorts every table's FK posting lists by descending `score` (ties:
    /// ascending RowId), pre-joins and sorts every junction table's link
    /// postings by target score, snapshots the per-row scores (so scored
    /// inserts can maintain the order incrementally), and returns the
    /// token identifying this ordering at the current epoch. Query paths
    /// pass the token back in ([`Self::select_eq_top_l`]); a mismatch —
    /// different scores, a later re-install, or a mutation epoch the
    /// holder has not synchronized to — falls back to the heap path.
    ///
    /// Call after loading, before serving. [`Self::insert_scored`] keeps
    /// the order live across inserts; the plain [`Self::insert`] drops the
    /// affected table's sorted postings.
    pub fn install_importance_order(
        &mut self,
        score: &dyn Fn(TableId, RowId) -> f64,
    ) -> FkOrderToken {
        for (i, t) in self.tables.iter_mut().enumerate() {
            let tid = TableId(i as u16);
            t.build_sorted_fk(&|r| score(tid, r));
        }
        // A full install re-derives everything, so stale watch entries
        // (endpoints that since arrived un-scored, or re-registrations
        // below) must not accumulate across installs: start fresh and let
        // the rebuilds register exactly the currently-missing endpoints.
        self.dangling_watch.clear();
        let junctions: Vec<TableId> =
            self.tables().filter(|(_, t)| t.schema.is_junction).map(|(id, _)| id).collect();
        for jid in junctions {
            self.rebuild_links_for(jid);
        }
        let token = FkOrderToken::fresh(self.epoch);
        self.fk_order = Some(token);
        token
    }

    /// The token of the currently installed importance order, if any.
    pub fn fk_order(&self) -> Option<FkOrderToken> {
        self.fk_order
    }

    /// Number of missing junction-link endpoints currently watched for
    /// healing (a diagnostic: bounded by the currently-dangling
    /// references — installs prune stale entries).
    pub fn dangling_watch_len(&self) -> usize {
        self.dangling_watch.len()
    }

    /// `SELECT * FROM Ri WHERE Ri.col = key` — Algorithm 4 line 12 /
    /// Algorithm 5 line 6. One counted join access.
    pub fn select_eq(&self, table: TableId, col: usize, key: i64) -> Vec<RowId> {
        let t = self.table(table);
        let rows: Vec<RowId> = if col == t.schema.pk {
            // O(1): the unique PK hash index.
            t.by_pk(key).into_iter().collect()
        } else {
            t.rows_where_eq(col, key).to_vec()
        };
        self.access.record_join(rows.len());
        rows
    }

    /// `SELECT * TOP l FROM Ri WHERE Ri.col = key AND li(ti) > largest_l
    /// ORDER BY li DESC` — Algorithm 4 line 10 (Avoidance Condition 2).
    /// `li` maps a row of `table` to its local importance. One counted join
    /// access even when the result is empty, matching the paper's cost
    /// accounting.
    ///
    /// When `order` matches the installed importance order (which attests
    /// that `li` is a monotone non-decreasing function of the installed
    /// score — true for `li = global · affinity` with a positive
    /// affinity), the probe is a bounded prefix scan of the pre-sorted
    /// postings: `O(l + t)` rows visited (`t` = the li-tie run straddling
    /// the cut) instead of `O(g log l)` over the whole FK group, and
    /// byte-identical to the heap path even when distinct scores collapse
    /// to equal `li` (the tie run at the boundary is collected in full and
    /// re-ranked by `(li desc, RowId asc)`, exactly [`crate::top_l`]'s
    /// order). Pass `None` (or a stale token) to force the heap path.
    #[allow(clippy::too_many_arguments)] // mirrors the SQL probe's clause list
    pub fn select_eq_top_l(
        &self,
        table: TableId,
        col: usize,
        key: i64,
        l: usize,
        largest_l: f64,
        order: Option<FkOrderToken>,
        li: &dyn Fn(RowId) -> f64,
    ) -> Vec<RowId> {
        let t = self.table(table);
        if l > 0 && order.is_some() && order == self.fk_order && col != t.schema.pk {
            if let Some(sorted) = t.sorted_fk_index(col) {
                let postings = sorted.rows(key);
                let mut kept: Vec<(f64, RowId)> = Vec::with_capacity(l.min(postings.len()));
                for &r in postings {
                    let s = li(r);
                    // li is non-increasing along the scan, so the first
                    // value at or below the threshold ends the probe...
                    if s <= largest_l {
                        break;
                    }
                    // ...and once l rows are kept, the scan only continues
                    // through rows tying the current l-th li (they may
                    // displace it on the RowId tie-break).
                    if kept.len() >= l && s < kept[l - 1].0 {
                        break;
                    }
                    kept.push((s, r));
                }
                // Rank the collected prefix through the same `top_l` the
                // heap path uses, so the two paths share one comparator by
                // construction.
                let rows: Vec<RowId> =
                    crate::topl::top_l(kept, l).into_iter().map(|(_, r)| r).collect();
                self.access.record_join(rows.len());
                self.access.record_fast_probe();
                return rows;
            }
        }
        self.access.record_heap_probe();
        let candidates: Vec<RowId> = if col == t.schema.pk {
            t.by_pk(key).into_iter().collect()
        } else {
            t.rows_where_eq(col, key).to_vec()
        };
        // Bounded top-l selection — O(g log l) over a group of g rows
        // instead of sorting the whole group (ROADMAP hot path).
        let scored = crate::topl::top_l(
            candidates.into_iter().filter_map(|r| {
                let s = li(r);
                (s > largest_l).then_some((s, r))
            }),
            l,
        );
        let rows: Vec<RowId> = scored.into_iter().map(|(_, r)| r).collect();
        self.access.record_join(rows.len());
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::Value;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("Year")
                .pk("id")
                .column("year", crate::ValueType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("Paper")
                .pk("id")
                .searchable_text("title")
                .fk("year_id", "Year")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("Year", vec![Value::Int(1), Value::Int(1999)]).unwrap();
        db.insert("Paper", vec![Value::Int(10), "p1".into(), Value::Int(1)]).unwrap();
        db.insert("Paper", vec![Value::Int(11), "p2".into(), Value::Int(1)]).unwrap();
        db
    }

    #[test]
    fn catalog_roundtrip() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        assert_eq!(db.table(paper).schema.name, "Paper");
        assert_eq!(db.total_tuples(), 3);
        assert!(db.table_id("Nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = tiny_db();
        let e = db.create_table(TableSchema::builder("Year").pk("id").build().unwrap());
        assert!(matches!(e, Err(StorageError::BadSchema(_))));
    }

    #[test]
    fn fk_validation_passes_then_catches_dangling() {
        let mut db = tiny_db();
        assert_eq!(db.validate_foreign_keys().unwrap(), 2);
        db.insert("Paper", vec![Value::Int(12), "bad".into(), Value::Int(99)]).unwrap();
        assert!(matches!(
            db.validate_foreign_keys(),
            Err(StorageError::DanglingForeignKey { key: 99, .. })
        ));
    }

    #[test]
    fn select_eq_counts_accesses() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        let before = db.access().snapshot();
        let rows = db.select_eq(paper, fk_col, 1);
        assert_eq!(rows.len(), 2);
        let delta = db.access().snapshot().since(before);
        assert_eq!(delta.joins, 1);
        assert_eq!(delta.tuples, 2);
        // Empty probe still counts one join.
        db.select_eq(paper, fk_col, 42);
        assert_eq!(db.access().snapshot().since(before).joins, 2);
    }

    #[test]
    fn select_eq_on_pk_column() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let rows = db.select_eq(paper, 0, 11);
        assert_eq!(rows.len(), 1);
        assert_eq!(db.table(paper).pk_of(rows[0]), 11);
    }

    #[test]
    fn select_top_l_filters_and_orders() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        // Importance: pk 10 -> 1.0, pk 11 -> 5.0
        let li = |r: RowId| if db.table(paper).pk_of(r) == 10 { 1.0 } else { 5.0 };
        let rows = db.select_eq_top_l(paper, fk_col, 1, 1, 0.0, None, &li);
        assert_eq!(rows.len(), 1);
        assert_eq!(db.table(paper).pk_of(rows[0]), 11, "highest importance first");
        // threshold excludes everything
        let rows = db.select_eq_top_l(paper, fk_col, 1, 10, 100.0, None, &li);
        assert!(rows.is_empty());
    }

    #[test]
    fn fast_path_survives_li_ties_across_distinct_scores() {
        // A monotone non-decreasing `li` may collapse *distinct* installed
        // scores to equal values (in production: 1-ulp score gaps erased
        // by the affinity multiplication). The prefix scan must then agree
        // with the heap path's (li desc, RowId asc) order anyway — the
        // boundary tie run is re-ranked, not trusted.
        let mut db = Database::new();
        db.create_table(TableSchema::builder("Parent").pk("id").build().unwrap()).unwrap();
        db.create_table(
            TableSchema::builder("Child").pk("id").fk("parent_id", "Parent").build().unwrap(),
        )
        .unwrap();
        db.insert("Parent", vec![Value::Int(1)]).unwrap();
        // Scores *ascend* with the RowId, so the sorted postings run in
        // the opposite direction of the heap path's candidate order
        // (RowId asc) — inside a collapsed li-tie the two paths would
        // disagree if the boundary run were not re-ranked.
        for pk in 0i64..10 {
            db.insert("Child", vec![Value::Int(pk), Value::Int(1)]).unwrap();
        }
        let child = db.table_id("Child").unwrap();
        let scores: Vec<f64> = (0..10).map(|i| i as f64 + 1.0).collect();
        let token = db.install_importance_order(&|t, r| {
            if t == child {
                scores[r.index()]
            } else {
                0.0
            }
        });
        // li collapses score pairs: {10,9} -> 5, {8,7} -> 4, ... so every
        // cut position falls inside a tie run of distinct scores.
        let li = |r: RowId| (scores[r.index()] / 2.0).ceil();
        let fk_col = db.table(child).schema.column_index("parent_id").unwrap();
        for l in 0..=10 {
            for threshold in [0.0, 1.0, 2.5, 4.0, 10.0] {
                let fast = db.select_eq_top_l(child, fk_col, 1, l, threshold, Some(token), &li);
                let slow = db.select_eq_top_l(child, fk_col, 1, l, threshold, None, &li);
                assert_eq!(fast, slow, "l={l} threshold={threshold}");
            }
        }
    }

    #[test]
    fn installed_order_serves_prefix_scans() {
        let mut db = tiny_db();
        // Global importance: pk 10 -> 1.0, pk 11 -> 5.0.
        let score = |db: &Database, t: TableId, r: RowId| {
            if db.table(t).schema.name == "Paper" && db.table(t).pk_of(r) == 11 {
                5.0
            } else {
                1.0
            }
        };
        let token = {
            let snapshot: Vec<Vec<f64>> = db
                .tables()
                .map(|(tid, t)| t.iter().map(|(r, _)| score(&db, tid, r)).collect())
                .collect();
            db.install_importance_order(&|t, r| snapshot[t.index()][r.index()])
        };
        assert_eq!(db.fk_order(), Some(token));
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        let li = |r: RowId| 0.5 * if db.table(paper).pk_of(r) == 11 { 5.0 } else { 1.0 };
        // Fast path and heap path agree, including access accounting.
        let before = db.access().snapshot();
        let fast = db.select_eq_top_l(paper, fk_col, 1, 2, 0.0, Some(token), &li);
        let mid = db.access().snapshot();
        let slow = db.select_eq_top_l(paper, fk_col, 1, 2, 0.0, None, &li);
        let after = db.access().snapshot();
        assert_eq!(fast, slow);
        assert_eq!(db.table(paper).pk_of(fast[0]), 11, "best importance first");
        assert_eq!(mid.since(before), after.since(mid), "identical cost accounting");
        // The threshold cuts the scan short.
        let cut = db.select_eq_top_l(paper, fk_col, 1, 2, 2.0, Some(token), &li);
        assert_eq!(cut.len(), 1);
        // A stale token falls back to the heap path (still correct).
        let stale = db.select_eq_top_l(
            paper,
            fk_col,
            1,
            2,
            0.0,
            Some(FkOrderToken::fresh(db.epoch())),
            &li,
        );
        assert_eq!(stale, slow);
    }

    #[test]
    fn insert_invalidates_sorted_postings() {
        let mut db = tiny_db();
        let token = db.install_importance_order(&|_, _| 1.0);
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        assert!(db.table(paper).sorted_fk_index(fk_col).is_some());
        db.insert("Paper", vec![Value::Int(12), "p3".into(), Value::Int(1)]).unwrap();
        assert!(
            db.table(paper).sorted_fk_index(fk_col).is_none(),
            "un-scored insert drops the snapshot postings"
        );
        // The probe still answers correctly via the heap fallback, and the
        // new row is visible.
        let li = |_: RowId| 1.0;
        let rows = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, Some(token), &li);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn epochs_bump_on_every_insert() {
        let mut db = tiny_db();
        let (g0, paper) = (db.epoch(), db.table_id("Paper").unwrap());
        let year = db.table_id("Year").unwrap();
        let (t0, y0) = (db.table(paper).epoch(), db.table(year).epoch());
        assert!(g0 > Epoch::default(), "loading already advanced the global epoch");
        db.insert("Paper", vec![Value::Int(12), "p3".into(), Value::Int(1)]).unwrap();
        assert_eq!(db.epoch(), g0.next());
        assert_eq!(db.table(paper).epoch(), t0.next());
        // Other tables' epochs are untouched.
        assert_eq!(db.table(year).epoch(), y0);
    }

    #[test]
    fn scored_insert_maintains_postings_and_restamps_token() {
        let mut db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        // Importance: pk 10 -> 1.0, pk 11 -> 5.0 (as in the install test).
        let snapshot: Vec<Vec<f64>> = db
            .tables()
            .map(|(_, t)| {
                t.iter()
                    .map(
                        |(r, _)| {
                            if t.schema.name == "Paper" && t.pk_of(r) == 11 {
                                5.0
                            } else {
                                1.0
                            }
                        },
                    )
                    .collect()
            })
            .collect();
        let old = db.install_importance_order(&|t, r| snapshot[t.index()][r.index()]);
        // Insert a row scoring between the two existing ones.
        db.insert_scored("Paper", vec![Value::Int(12), "p3".into(), Value::Int(1)], 3.0).unwrap();
        let token = db.fk_order().expect("order survives the scored insert");
        assert_ne!(token, old, "the token is re-stamped, not reused verbatim");
        assert!(token.same_order(old), "…but it still names the same installed order");
        assert_eq!(token.epoch(), db.epoch());
        let sorted = db.table(paper).sorted_fk_index(fk_col).expect("postings maintained");
        let pks: Vec<i64> = sorted.rows(1).iter().map(|&r| db.table(paper).pk_of(r)).collect();
        assert_eq!(pks, vec![11, 12, 10], "new row binary-inserted by score");
        // The re-stamped token serves the fast path; the superseded one
        // falls back (both correct and byte-identical).
        let li = |r: RowId| db.table(paper).installed_score(r);
        let before = db.access().probes();
        let fast = db.select_eq_top_l(paper, fk_col, 1, 3, 0.0, Some(token), &li);
        let mid = db.access().probes();
        let slow = db.select_eq_top_l(paper, fk_col, 1, 3, 0.0, Some(old), &li);
        let after = db.access().probes();
        assert_eq!(fast, slow);
        assert_eq!(mid.fast - before.fast, 1, "current token prefix-scans");
        assert_eq!(after.heap - mid.heap, 1, "superseded token heap-falls-back");
        assert_eq!(db.table(paper).pk_of(fast[0]), 11);
        assert_eq!(db.table(paper).pk_of(fast[1]), 12);
    }

    #[test]
    fn dangling_junction_target_drops_link_postings_then_heals() {
        // A junction row whose target pk does not (yet) exist must not be
        // silently absent from the sorted link postings while the heap
        // path resolves it live after the target arrives — the orientation
        // is dropped instead, and the missing endpoint is *watched*: its
        // later scored arrival repairs the postings without waiting for
        // the next full install. FK validation is a separate step, so the
        // storage layer has to tolerate this on its own.
        let mut db = Database::new();
        db.create_table(TableSchema::builder("P").pk("id").build().unwrap()).unwrap();
        db.create_table(TableSchema::builder("C").pk("id").build().unwrap()).unwrap();
        db.create_table(
            TableSchema::builder("J")
                .pk("id")
                .fk("p_id", "P")
                .fk("c_id", "C")
                .junction()
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("P", vec![Value::Int(1)]).unwrap();
        db.insert("C", vec![Value::Int(10)]).unwrap();
        db.insert("J", vec![Value::Int(100), Value::Int(1), Value::Int(10)]).unwrap();
        db.install_importance_order(&|_, _| 1.0);
        let j = db.table_id("J").unwrap();
        let (p_col, c_col) = (1, 2);
        assert!(db.table(j).sorted_link_index(p_col).is_some());
        // Scored insert referencing child pk 99, which does not exist.
        db.insert_scored("J", vec![Value::Int(101), Value::Int(1), Value::Int(99)], 0.5).unwrap();
        assert!(
            db.table(j).sorted_link_index(p_col).is_none()
                && db.table(j).sorted_link_index(c_col).is_none(),
            "a dangling target must drop the link postings, not skip the pair"
        );
        // The late-arriving endpoint heals the orientation on the spot —
        // no reinstall needed — and the token is re-stamped at the heal's
        // epoch so synchronized contexts go straight back to prefix scans.
        db.insert_scored("C", vec![Value::Int(99)], 2.0).unwrap();
        let links = db.table(j).sorted_link_index(p_col).expect("healed once resolvable");
        assert_eq!(links.pairs(1).len(), 2, "both junction rows pre-joined after the heal");
        assert_eq!(db.fk_order().unwrap().epoch(), db.epoch(), "heal re-stamps the token");
        // The healed postings are exactly what a reinstall under the same
        // (maintained) scores would build.
        let healed: Vec<_> = links.pairs(1).to_vec();
        let snap: Vec<Vec<f64>> = db
            .tables()
            .map(|(_, t)| t.iter().map(|(r, _)| t.installed_score(r)).collect())
            .collect();
        db.install_importance_order(&|t, r| snap[t.index()][r.index()]);
        assert_eq!(db.table(j).sorted_link_index(p_col).unwrap().pairs(1), healed.as_slice());
        // Install pruned the watch: nothing dangles after the heal.
        assert_eq!(db.dangling_watch_len(), 0, "installs prune stale watch entries");

        // A junction loaded with a dangling row *before* install gets no
        // postings either (build-time poisoning) — but the install
        // registers the missing endpoint, so even this case heals when
        // the endpoint arrives through a scored insert.
        let mut db2 = Database::new();
        db2.create_table(TableSchema::builder("P").pk("id").build().unwrap()).unwrap();
        db2.create_table(TableSchema::builder("C").pk("id").build().unwrap()).unwrap();
        db2.create_table(
            TableSchema::builder("J")
                .pk("id")
                .fk("p_id", "P")
                .fk("c_id", "C")
                .junction()
                .build()
                .unwrap(),
        )
        .unwrap();
        db2.insert("P", vec![Value::Int(1)]).unwrap();
        db2.insert("J", vec![Value::Int(100), Value::Int(1), Value::Int(99)]).unwrap();
        db2.install_importance_order(&|_, _| 1.0);
        let j2 = db2.table_id("J").unwrap();
        assert!(db2.table(j2).sorted_link_index(p_col).is_none());
        assert_eq!(db2.dangling_watch_len(), 1, "install watches the missing endpoint");
        db2.insert_scored("C", vec![Value::Int(99)], 1.0).unwrap();
        assert!(
            db2.table(j2).sorted_link_index(p_col).is_some(),
            "build-time poisoning heals too once the endpoint arrives scored"
        );
        assert_eq!(db2.dangling_watch_len(), 0);
    }

    #[test]
    fn scored_insert_rejects_bad_arity_without_panicking() {
        let mut db = tiny_db();
        db.install_importance_order(&|_, _| 1.0);
        // Junction-free table with short row: clean Arity error.
        assert!(matches!(
            db.insert_scored("Paper", vec![Value::Int(12)], 1.0),
            Err(StorageError::Arity { expected: 3, got: 1, .. })
        ));
        // A junction table with a short row must not panic while
        // resolving link orientations either.
        let mut jdb = Database::new();
        jdb.create_table(TableSchema::builder("A").pk("id").build().unwrap()).unwrap();
        jdb.create_table(
            TableSchema::builder("J")
                .pk("id")
                .fk("x", "A")
                .fk("y", "A")
                .junction()
                .build()
                .unwrap(),
        )
        .unwrap();
        jdb.insert("A", vec![Value::Int(1)]).unwrap();
        jdb.install_importance_order(&|_, _| 1.0);
        assert!(matches!(
            jdb.insert_scored("J", vec![Value::Int(7)], 1.0),
            Err(StorageError::Arity { expected: 3, got: 1, .. })
        ));
    }

    #[test]
    fn scored_insert_without_order_degrades_to_plain_insert() {
        let mut db = tiny_db();
        let row = db
            .insert_scored("Paper", vec![Value::Int(12), "p3".into(), Value::Int(1)], 1.0)
            .unwrap();
        let paper = db.table_id("Paper").unwrap();
        assert_eq!(db.table(paper).pk_of(row), 12);
        assert!(db.fk_order().is_none());
    }

    /// Identical tiny databases with an all-ones importance order
    /// installed — the batch-vs-fold comparisons below start from two of
    /// these.
    fn installed_pair() -> (Database, Database) {
        let build = || {
            let mut db = tiny_db();
            let snapshot: Vec<Vec<f64>> =
                db.tables().map(|(_, t)| t.iter().map(|_| 1.0).collect()).collect();
            db.install_importance_order(&|t, r| snapshot[t.index()][r.index()]);
            db
        };
        (build(), build())
    }

    #[test]
    fn scored_batch_settles_exactly_like_the_fold() {
        let (mut batched, mut folded) = installed_pair();
        let rows: Vec<(i64, f64)> = vec![(20, 3.0), (21, 0.5), (22, 1.0), (23, 7.5)];
        let mut b = batched.begin_scored_batch();
        for &(pk, s) in &rows {
            batched
                .insert_scored_staged(
                    &mut b,
                    "Paper",
                    vec![Value::Int(pk), "t".into(), Value::Int(1)],
                    s,
                )
                .unwrap();
        }
        assert_eq!(b.staged().len(), rows.len());
        batched.finish_scored_batch(b);
        for &(pk, s) in &rows {
            folded
                .insert_scored("Paper", vec![Value::Int(pk), "t".into(), Value::Int(1)], s)
                .unwrap();
        }
        assert_eq!(batched.epoch(), folded.epoch());
        assert_eq!(batched.fk_order().unwrap().epoch(), folded.fk_order().unwrap().epoch());
        let paper = batched.table_id("Paper").unwrap();
        let fk_col = batched.table(paper).schema.column_index("year_id").unwrap();
        assert_eq!(
            batched.table(paper).sorted_fk_index(fk_col).unwrap().rows(1),
            folded.table(paper).sorted_fk_index(fk_col).unwrap().rows(1),
            "settled postings equal the fold's"
        );
    }

    #[test]
    fn mid_batch_heal_does_not_duplicate_later_staged_junction_pairs() {
        // Regression: with a pre-existing watch on endpoint (C, 99), a
        // batch staging [C(99), J(102 -> C 99)] used to fire the heal
        // mid-settlement — the rebuild (reading full current state)
        // already included J(102), whose pair the settle loop then
        // binary-inserted *again*. Heals are now deferred past the settle
        // loop; both paths must end identical to the fold and to a
        // from-scratch install.
        let build = || {
            let mut db = Database::new();
            db.create_table(TableSchema::builder("P").pk("id").build().unwrap()).unwrap();
            db.create_table(TableSchema::builder("C").pk("id").build().unwrap()).unwrap();
            db.create_table(
                TableSchema::builder("J")
                    .pk("id")
                    .fk("p_id", "P")
                    .fk("c_id", "C")
                    .junction()
                    .build()
                    .unwrap(),
            )
            .unwrap();
            db.insert("P", vec![Value::Int(1)]).unwrap();
            db.insert("C", vec![Value::Int(10)]).unwrap();
            db.insert("J", vec![Value::Int(100), Value::Int(1), Value::Int(10)]).unwrap();
            db.install_importance_order(&|_, _| 1.0);
            // The watch: a scored junction insert referencing missing C 99.
            db.insert_scored("J", vec![Value::Int(101), Value::Int(1), Value::Int(99)], 0.5)
                .unwrap();
            assert_eq!(db.dangling_watch_len(), 1);
            db
        };
        let (p_col, c_col) = (1usize, 2usize);

        let mut batched = build();
        let mut b = batched.begin_scored_batch();
        batched.insert_scored_staged(&mut b, "C", vec![Value::Int(99)], 2.0).unwrap();
        batched
            .insert_scored_staged(
                &mut b,
                "J",
                vec![Value::Int(102), Value::Int(1), Value::Int(99)],
                0.25,
            )
            .unwrap();
        batched.finish_scored_batch(b);

        let mut folded = build();
        folded.insert_scored("C", vec![Value::Int(99)], 2.0).unwrap();
        folded
            .insert_scored("J", vec![Value::Int(102), Value::Int(1), Value::Int(99)], 0.25)
            .unwrap();

        let j = batched.table_id("J").unwrap();
        for col in [p_col, c_col] {
            let a = batched.table(j).sorted_link_index(col).expect("healed");
            let f = folded.table(j).sorted_link_index(col).expect("healed");
            for key in [1i64, 10, 99] {
                assert_eq!(a.pairs(key), f.pairs(key), "col {col} key {key}");
                assert_eq!(a.raw_group_len(key), f.raw_group_len(key));
            }
        }
        // Each junction row appears exactly once per orientation.
        let pairs = batched.table(j).sorted_link_index(p_col).unwrap().pairs(1);
        let mut seen: Vec<RowId> = pairs.iter().map(|&(jr, _)| jr).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), pairs.len(), "no duplicated pairs: {pairs:?}");
        assert_eq!(pairs.len(), 3, "all three junction rows pre-joined");
        assert_eq!(batched.dangling_watch_len(), 0);
    }

    #[test]
    fn batch_token_stamp_matches_the_fold_under_plain_fallback_tails() {
        // A batch whose *last* row falls back to the plain insert (its
        // table's snapshot is dead) must stamp the token at the last
        // maintained insert's epoch — exactly where the fold leaves it —
        // not at the batch's final epoch.
        let (mut batched, mut folded) = installed_pair();
        // Kill Year's snapshot in both databases.
        batched.insert("Year", vec![Value::Int(50), Value::Int(2001)]).unwrap();
        folded.insert("Year", vec![Value::Int(50), Value::Int(2001)]).unwrap();

        let mut b = batched.begin_scored_batch();
        batched
            .insert_scored_staged(
                &mut b,
                "Paper",
                vec![Value::Int(20), "t".into(), Value::Int(1)],
                2.0,
            )
            .unwrap();
        batched
            .insert_scored_staged(&mut b, "Year", vec![Value::Int(51), Value::Int(2002)], 1.0)
            .unwrap();
        batched.finish_scored_batch(b);

        folded
            .insert_scored("Paper", vec![Value::Int(20), "t".into(), Value::Int(1)], 2.0)
            .unwrap();
        folded.insert_scored("Year", vec![Value::Int(51), Value::Int(2002)], 1.0).unwrap();

        assert_eq!(batched.epoch(), folded.epoch());
        assert_eq!(
            batched.fk_order().unwrap().epoch(),
            folded.fk_order().unwrap().epoch(),
            "the stamp sits at the last maintained insert, as in the fold"
        );
        assert!(
            batched.fk_order().unwrap().epoch() < batched.epoch(),
            "the trailing fallback bumped the epoch past the stamp"
        );
    }

    #[test]
    fn scored_batch_suspends_postings_while_open() {
        let (mut db, _) = installed_pair();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        let token = db.fk_order().unwrap();
        let mut b = db.begin_scored_batch();
        db.insert_scored_staged(
            &mut b,
            "Paper",
            vec![Value::Int(20), "t".into(), Value::Int(1)],
            9.0,
        )
        .unwrap();
        // Mid-batch, the staged row is hash-visible but the sorted
        // postings are unreachable: a probe heap-falls-back and still
        // sees the new row.
        assert!(db.table(paper).sorted_fk_index(fk_col).is_none(), "postings suspended");
        let before = db.access().probes();
        let li = |_: RowId| 1.0;
        let rows = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, Some(token), &li);
        assert_eq!(rows.len(), 3, "staged row visible through the heap path");
        assert_eq!(db.access().probes().heap - before.heap, 1);
        db.finish_scored_batch(b);
        assert!(db.table(paper).sorted_fk_index(fk_col).is_some(), "postings settled");
    }

    #[test]
    fn scored_batch_resorts_at_most_once_per_table() {
        // Threshold 2 with 8 staged rows: the fold re-sorts repeatedly
        // mid-stream; the batch settles with exactly one re-sort pass and
        // zero binary inserts for that table.
        let (mut batched, mut folded) = installed_pair();
        batched.set_churn_threshold(2);
        folded.set_churn_threshold(2);
        let before = batched.access().maint();
        let mut b = batched.begin_scored_batch();
        for pk in 20..28 {
            let s = (pk % 5) as f64;
            batched
                .insert_scored_staged(
                    &mut b,
                    "Paper",
                    vec![Value::Int(pk), "t".into(), Value::Int(1)],
                    s,
                )
                .unwrap();
        }
        batched.finish_scored_batch(b);
        let batch_work = batched.access().maint().since(before);
        assert_eq!(batch_work.posting_resorts, 1, "one settlement re-sort for the whole batch");
        assert_eq!(batch_work.binary_inserts, 0, "re-sorting tables skip binary insertion");

        let before = folded.access().maint();
        for pk in 20..28 {
            let s = (pk % 5) as f64;
            folded
                .insert_scored("Paper", vec![Value::Int(pk), "t".into(), Value::Int(1)], s)
                .unwrap();
        }
        let fold_work = folded.access().maint().since(before);
        assert!(
            fold_work.posting_resorts > 1,
            "the fold re-sorts mid-stream at this threshold: {fold_work:?}"
        );
        // Both end byte-identical regardless.
        let paper = batched.table_id("Paper").unwrap();
        let fk_col = batched.table(paper).schema.column_index("year_id").unwrap();
        assert_eq!(
            batched.table(paper).sorted_fk_index(fk_col).unwrap().rows(1),
            folded.table(paper).sorted_fk_index(fk_col).unwrap().rows(1),
        );
    }

    #[test]
    fn churn_threshold_triggers_batched_resort() {
        let mut db = tiny_db();
        db.set_churn_threshold(2);
        let snapshot: Vec<Vec<f64>> =
            db.tables().map(|(_, t)| t.iter().map(|_| 1.0).collect()).collect();
        db.install_importance_order(&|t, r| snapshot[t.index()][r.index()]);
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        for (i, pk) in (20..26).enumerate() {
            let score = (i + 2) as f64;
            db.insert_scored("Paper", vec![Value::Int(pk), "t".into(), Value::Int(1)], score)
                .unwrap();
        }
        // 6 scored inserts with threshold 2: at least one batched re-sort
        // happened, so the churn counter wrapped below the insert count.
        assert!(db.table(paper).churn() <= 2, "re-sort resets the churn counter");
        // The postings are still exactly the install-from-scratch order.
        let li = |r: RowId| db.table(paper).installed_score(r);
        let token = db.fk_order().unwrap();
        let fast = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, Some(token), &li);
        let slow = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, None, &li);
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 8);
    }
}
