//! The catalog: named tables, FK validation, and the query forms used by
//! the OS-generation algorithms.

use std::collections::HashMap;

use crate::access::AccessCounter;
use crate::error::StorageError;
use crate::fk_index::FkOrderToken;
use crate::schema::TableSchema;
use crate::table::{RowId, Table};
use crate::value::Value;
use crate::Result;

/// A table identifier (dense index into the catalog).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

impl TableId {
    /// The table index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to one tuple anywhere in the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleRef {
    /// The containing table.
    pub table: TableId,
    /// The row within that table.
    pub row: RowId,
}

impl TupleRef {
    /// Convenience constructor.
    pub fn new(table: TableId, row: RowId) -> Self {
        TupleRef { table, row }
    }
}

/// An in-memory relational database: a catalog of [`Table`]s plus an
/// [`AccessCounter`] shared by all query paths.
#[derive(Debug, Default)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    access: AccessCounter,
    /// The currently installed importance order, if any (see
    /// [`crate::fk_index`]).
    fk_order: Option<FkOrderToken>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers a table; names must be unique.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableId> {
        if self.by_name.contains_key(&schema.name) {
            return Err(StorageError::BadSchema(format!("table `{}` already exists", schema.name)));
        }
        let id = TableId(self.tables.len() as u16);
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(Table::new(schema));
        Ok(id)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Mutable access to a table (used by generators).
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.index()]
    }

    /// Looks a table up by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name.get(name).copied().ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Iterates `(TableId, &Table)` over the catalog.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables.iter().enumerate().map(|(i, t)| (TableId(i as u16), t))
    }

    /// Inserts a row into a named table.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<RowId> {
        let id = self.table_id(table)?;
        self.tables[id.index()].insert(values)
    }

    /// Total number of tuples across all tables (the paper reports
    /// 2,959,511 for DBLP and 8,661,245 for TPC-H SF-1).
    pub fn total_tuples(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// The shared access counter.
    pub fn access(&self) -> &AccessCounter {
        &self.access
    }

    /// The value of a tuple's column.
    pub fn value(&self, t: TupleRef, col: usize) -> &Value {
        self.table(t.table).value(t.row, col)
    }

    /// Validates that every non-NULL FK value references an existing row.
    /// Returns the number of FK values checked.
    pub fn validate_foreign_keys(&self) -> Result<usize> {
        let mut checked = 0;
        for table in &self.tables {
            for fk in &table.schema.fks {
                let target_id = self.table_id(&fk.ref_table)?;
                let target = self.table(target_id);
                for (_, row) in table.iter() {
                    match row[fk.column] {
                        Value::Null => {}
                        Value::Int(k) => {
                            checked += 1;
                            if target.by_pk(k).is_none() {
                                return Err(StorageError::DanglingForeignKey {
                                    table: table.schema.name.clone(),
                                    column: table.schema.columns[fk.column].name.clone(),
                                    key: k,
                                });
                            }
                        }
                        _ => {
                            return Err(StorageError::TypeMismatch {
                                table: table.schema.name.clone(),
                                column: table.schema.columns[fk.column].name.clone(),
                            })
                        }
                    }
                }
            }
        }
        Ok(checked)
    }

    /// Sorts every table's FK posting lists by descending `score` (ties:
    /// ascending RowId) and returns the token identifying this ordering.
    /// Query paths pass the token back in ([`Self::select_eq_top_l`]); a
    /// mismatch — different scores, or a later re-install — falls back to
    /// the heap path. Finalization step: call after loading, before
    /// serving; any later insert drops the affected table's sorted
    /// postings.
    pub fn install_importance_order(
        &mut self,
        score: &dyn Fn(TableId, RowId) -> f64,
    ) -> FkOrderToken {
        for (i, t) in self.tables.iter_mut().enumerate() {
            let tid = TableId(i as u16);
            t.build_sorted_fk(&|r| score(tid, r));
        }
        let token = FkOrderToken::fresh();
        self.fk_order = Some(token);
        token
    }

    /// The token of the currently installed importance order, if any.
    pub fn fk_order(&self) -> Option<FkOrderToken> {
        self.fk_order
    }

    /// `SELECT * FROM Ri WHERE Ri.col = key` — Algorithm 4 line 12 /
    /// Algorithm 5 line 6. One counted join access.
    pub fn select_eq(&self, table: TableId, col: usize, key: i64) -> Vec<RowId> {
        let t = self.table(table);
        let rows: Vec<RowId> = if col == t.schema.pk {
            // O(1): the unique PK hash index.
            t.by_pk(key).into_iter().collect()
        } else {
            t.rows_where_eq(col, key).to_vec()
        };
        self.access.record_join(rows.len());
        rows
    }

    /// `SELECT * TOP l FROM Ri WHERE Ri.col = key AND li(ti) > largest_l
    /// ORDER BY li DESC` — Algorithm 4 line 10 (Avoidance Condition 2).
    /// `li` maps a row of `table` to its local importance. One counted join
    /// access even when the result is empty, matching the paper's cost
    /// accounting.
    ///
    /// When `order` matches the installed importance order (which attests
    /// that `li` is a monotone non-decreasing function of the installed
    /// score — true for `li = global · affinity` with a positive
    /// affinity), the probe is a bounded prefix scan of the pre-sorted
    /// postings: `O(l + t)` rows visited (`t` = the li-tie run straddling
    /// the cut) instead of `O(g log l)` over the whole FK group, and
    /// byte-identical to the heap path even when distinct scores collapse
    /// to equal `li` (the tie run at the boundary is collected in full and
    /// re-ranked by `(li desc, RowId asc)`, exactly [`crate::top_l`]'s
    /// order). Pass `None` (or a stale token) to force the heap path.
    #[allow(clippy::too_many_arguments)] // mirrors the SQL probe's clause list
    pub fn select_eq_top_l(
        &self,
        table: TableId,
        col: usize,
        key: i64,
        l: usize,
        largest_l: f64,
        order: Option<FkOrderToken>,
        li: &dyn Fn(RowId) -> f64,
    ) -> Vec<RowId> {
        let t = self.table(table);
        if l > 0 && order.is_some() && order == self.fk_order && col != t.schema.pk {
            if let Some(sorted) = t.sorted_fk_index(col) {
                let postings = sorted.rows(key);
                let mut kept: Vec<(f64, RowId)> = Vec::with_capacity(l.min(postings.len()));
                for &r in postings {
                    let s = li(r);
                    // li is non-increasing along the scan, so the first
                    // value at or below the threshold ends the probe...
                    if s <= largest_l {
                        break;
                    }
                    // ...and once l rows are kept, the scan only continues
                    // through rows tying the current l-th li (they may
                    // displace it on the RowId tie-break).
                    if kept.len() >= l && s < kept[l - 1].0 {
                        break;
                    }
                    kept.push((s, r));
                }
                // Rank the collected prefix through the same `top_l` the
                // heap path uses, so the two paths share one comparator by
                // construction.
                let rows: Vec<RowId> =
                    crate::topl::top_l(kept, l).into_iter().map(|(_, r)| r).collect();
                self.access.record_join(rows.len());
                return rows;
            }
        }
        let candidates: Vec<RowId> = if col == t.schema.pk {
            t.by_pk(key).into_iter().collect()
        } else {
            t.rows_where_eq(col, key).to_vec()
        };
        // Bounded top-l selection — O(g log l) over a group of g rows
        // instead of sorting the whole group (ROADMAP hot path).
        let scored = crate::topl::top_l(
            candidates.into_iter().filter_map(|r| {
                let s = li(r);
                (s > largest_l).then_some((s, r))
            }),
            l,
        );
        let rows: Vec<RowId> = scored.into_iter().map(|(_, r)| r).collect();
        self.access.record_join(rows.len());
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::Value;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("Year")
                .pk("id")
                .column("year", crate::ValueType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("Paper")
                .pk("id")
                .searchable_text("title")
                .fk("year_id", "Year")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("Year", vec![Value::Int(1), Value::Int(1999)]).unwrap();
        db.insert("Paper", vec![Value::Int(10), "p1".into(), Value::Int(1)]).unwrap();
        db.insert("Paper", vec![Value::Int(11), "p2".into(), Value::Int(1)]).unwrap();
        db
    }

    #[test]
    fn catalog_roundtrip() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        assert_eq!(db.table(paper).schema.name, "Paper");
        assert_eq!(db.total_tuples(), 3);
        assert!(db.table_id("Nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = tiny_db();
        let e = db.create_table(TableSchema::builder("Year").pk("id").build().unwrap());
        assert!(matches!(e, Err(StorageError::BadSchema(_))));
    }

    #[test]
    fn fk_validation_passes_then_catches_dangling() {
        let mut db = tiny_db();
        assert_eq!(db.validate_foreign_keys().unwrap(), 2);
        db.insert("Paper", vec![Value::Int(12), "bad".into(), Value::Int(99)]).unwrap();
        assert!(matches!(
            db.validate_foreign_keys(),
            Err(StorageError::DanglingForeignKey { key: 99, .. })
        ));
    }

    #[test]
    fn select_eq_counts_accesses() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        let before = db.access().snapshot();
        let rows = db.select_eq(paper, fk_col, 1);
        assert_eq!(rows.len(), 2);
        let delta = db.access().snapshot().since(before);
        assert_eq!(delta.joins, 1);
        assert_eq!(delta.tuples, 2);
        // Empty probe still counts one join.
        db.select_eq(paper, fk_col, 42);
        assert_eq!(db.access().snapshot().since(before).joins, 2);
    }

    #[test]
    fn select_eq_on_pk_column() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let rows = db.select_eq(paper, 0, 11);
        assert_eq!(rows.len(), 1);
        assert_eq!(db.table(paper).pk_of(rows[0]), 11);
    }

    #[test]
    fn select_top_l_filters_and_orders() {
        let db = tiny_db();
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        // Importance: pk 10 -> 1.0, pk 11 -> 5.0
        let li = |r: RowId| if db.table(paper).pk_of(r) == 10 { 1.0 } else { 5.0 };
        let rows = db.select_eq_top_l(paper, fk_col, 1, 1, 0.0, None, &li);
        assert_eq!(rows.len(), 1);
        assert_eq!(db.table(paper).pk_of(rows[0]), 11, "highest importance first");
        // threshold excludes everything
        let rows = db.select_eq_top_l(paper, fk_col, 1, 10, 100.0, None, &li);
        assert!(rows.is_empty());
    }

    #[test]
    fn fast_path_survives_li_ties_across_distinct_scores() {
        // A monotone non-decreasing `li` may collapse *distinct* installed
        // scores to equal values (in production: 1-ulp score gaps erased
        // by the affinity multiplication). The prefix scan must then agree
        // with the heap path's (li desc, RowId asc) order anyway — the
        // boundary tie run is re-ranked, not trusted.
        let mut db = Database::new();
        db.create_table(TableSchema::builder("Parent").pk("id").build().unwrap()).unwrap();
        db.create_table(
            TableSchema::builder("Child").pk("id").fk("parent_id", "Parent").build().unwrap(),
        )
        .unwrap();
        db.insert("Parent", vec![Value::Int(1)]).unwrap();
        // Scores *ascend* with the RowId, so the sorted postings run in
        // the opposite direction of the heap path's candidate order
        // (RowId asc) — inside a collapsed li-tie the two paths would
        // disagree if the boundary run were not re-ranked.
        for pk in 0i64..10 {
            db.insert("Child", vec![Value::Int(pk), Value::Int(1)]).unwrap();
        }
        let child = db.table_id("Child").unwrap();
        let scores: Vec<f64> = (0..10).map(|i| i as f64 + 1.0).collect();
        let token = db.install_importance_order(&|t, r| {
            if t == child {
                scores[r.index()]
            } else {
                0.0
            }
        });
        // li collapses score pairs: {10,9} -> 5, {8,7} -> 4, ... so every
        // cut position falls inside a tie run of distinct scores.
        let li = |r: RowId| (scores[r.index()] / 2.0).ceil();
        let fk_col = db.table(child).schema.column_index("parent_id").unwrap();
        for l in 0..=10 {
            for threshold in [0.0, 1.0, 2.5, 4.0, 10.0] {
                let fast = db.select_eq_top_l(child, fk_col, 1, l, threshold, Some(token), &li);
                let slow = db.select_eq_top_l(child, fk_col, 1, l, threshold, None, &li);
                assert_eq!(fast, slow, "l={l} threshold={threshold}");
            }
        }
    }

    #[test]
    fn installed_order_serves_prefix_scans() {
        let mut db = tiny_db();
        // Global importance: pk 10 -> 1.0, pk 11 -> 5.0.
        let score = |db: &Database, t: TableId, r: RowId| {
            if db.table(t).schema.name == "Paper" && db.table(t).pk_of(r) == 11 {
                5.0
            } else {
                1.0
            }
        };
        let token = {
            let snapshot: Vec<Vec<f64>> = db
                .tables()
                .map(|(tid, t)| t.iter().map(|(r, _)| score(&db, tid, r)).collect())
                .collect();
            db.install_importance_order(&|t, r| snapshot[t.index()][r.index()])
        };
        assert_eq!(db.fk_order(), Some(token));
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        let li = |r: RowId| 0.5 * if db.table(paper).pk_of(r) == 11 { 5.0 } else { 1.0 };
        // Fast path and heap path agree, including access accounting.
        let before = db.access().snapshot();
        let fast = db.select_eq_top_l(paper, fk_col, 1, 2, 0.0, Some(token), &li);
        let mid = db.access().snapshot();
        let slow = db.select_eq_top_l(paper, fk_col, 1, 2, 0.0, None, &li);
        let after = db.access().snapshot();
        assert_eq!(fast, slow);
        assert_eq!(db.table(paper).pk_of(fast[0]), 11, "best importance first");
        assert_eq!(mid.since(before), after.since(mid), "identical cost accounting");
        // The threshold cuts the scan short.
        let cut = db.select_eq_top_l(paper, fk_col, 1, 2, 2.0, Some(token), &li);
        assert_eq!(cut.len(), 1);
        // A stale token falls back to the heap path (still correct).
        let stale = db.select_eq_top_l(paper, fk_col, 1, 2, 0.0, Some(FkOrderToken::fresh()), &li);
        assert_eq!(stale, slow);
    }

    #[test]
    fn insert_invalidates_sorted_postings() {
        let mut db = tiny_db();
        let token = db.install_importance_order(&|_, _| 1.0);
        let paper = db.table_id("Paper").unwrap();
        let fk_col = db.table(paper).schema.column_index("year_id").unwrap();
        assert!(db.table(paper).sorted_fk_index(fk_col).is_some());
        db.insert("Paper", vec![Value::Int(12), "p3".into(), Value::Int(1)]).unwrap();
        assert!(
            db.table(paper).sorted_fk_index(fk_col).is_none(),
            "insert drops the snapshot postings"
        );
        // The probe still answers correctly via the heap fallback, and the
        // new row is visible.
        let li = |_: RowId| 1.0;
        let rows = db.select_eq_top_l(paper, fk_col, 1, 10, 0.0, Some(token), &li);
        assert_eq!(rows.len(), 3);
    }
}
