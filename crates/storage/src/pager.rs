//! The posting-pager seam: how a disk tier serves sorted postings.
//!
//! The TOP-l fast path ([`crate::Database::select_eq_top_l`] and the
//! junction-link probe) scans a *prefix* of an importance-sorted posting
//! list. [`PostingCursor`] abstracts that scan — "next entry, best
//! importance first" — so the prefix-cut loop
//! ([`crate::TopLScratch::stage_prefix`]) is written once and consumed by
//! two backends: the in-RAM slices ([`SlicePostingCursor`],
//! [`SliceLinkCursor`]) and a paged on-disk reader supplied by an
//! attached [`PostingPager`] (the `sizel-disk` crate's block-cached
//! segment store). Byte-identical results and access accounting across
//! the backends follow by construction and are property-pinned by the
//! disk crate's equivalence suite.
//!
//! Fail-closed contract: a paged cursor that hits a read error
//! (checksum mismatch, short read) stops yielding and raises
//! [`PostingCursor::failed`]. The caller must then *discard* the partial
//! scan and fall back to the always-correct heap path — a truncated
//! prefix served as-if-complete would silently drop result rows, which
//! is exactly the garbage the checksums exist to catch.
//!
//! Staleness contract: segments snapshot one [`FkOrderToken`]
//! (order id + epoch). [`PostingPager::stamp`] exposes it, and the
//! database only routes a probe to the pager when the stamp equals both
//! the live installed token *and* the querying context's token — any
//! mutation re-stamps the installed token, so stale segments silently
//! stop serving until the next checkpoint rewrites them.

use crate::fk_index::FkOrderToken;
use crate::table::RowId;
use crate::TableId;

/// A positioned scan over one FK posting list, best importance first.
pub trait PostingCursor {
    /// The next posted row, or `None` when the list (or a failed read —
    /// check [`PostingCursor::failed`]) ends the scan.
    fn next_row(&mut self) -> Option<RowId>;

    /// True when the scan ended because of a read error rather than list
    /// exhaustion. The caller must discard the partial scan (fail closed).
    fn failed(&self) -> bool {
        false
    }
}

/// A positioned scan over one link posting group: `(junction row, target
/// row)` pairs, best target importance first.
pub trait LinkCursor {
    /// The next pair, or `None` at end-of-group / read failure.
    fn next_pair(&mut self) -> Option<(RowId, RowId)>;

    /// True when the scan ended because of a read error (fail closed).
    fn failed(&self) -> bool {
        false
    }
}

/// The in-RAM backend: a cursor over a sorted posting slice
/// ([`crate::SortedFkIndex::rows`]). Infallible.
#[derive(Debug)]
pub struct SlicePostingCursor<'a> {
    rows: &'a [RowId],
    at: usize,
}

impl<'a> SlicePostingCursor<'a> {
    /// A cursor positioned at the best-importance end of `rows`.
    pub fn new(rows: &'a [RowId]) -> SlicePostingCursor<'a> {
        SlicePostingCursor { rows, at: 0 }
    }
}

impl PostingCursor for SlicePostingCursor<'_> {
    fn next_row(&mut self) -> Option<RowId> {
        let r = self.rows.get(self.at).copied();
        self.at += r.is_some() as usize;
        r
    }
}

/// The in-RAM backend for link groups ([`crate::SortedLinkIndex::pairs`]).
/// Infallible; yields tombstoned pairs too (consumers liveness-filter).
#[derive(Debug)]
pub struct SliceLinkCursor<'a> {
    pairs: &'a [(RowId, RowId)],
    at: usize,
}

impl<'a> SliceLinkCursor<'a> {
    /// A cursor positioned at the best-target end of `pairs`.
    pub fn new(pairs: &'a [(RowId, RowId)]) -> SliceLinkCursor<'a> {
        SliceLinkCursor { pairs, at: 0 }
    }
}

impl LinkCursor for SliceLinkCursor<'_> {
    fn next_pair(&mut self) -> Option<(RowId, RowId)> {
        let p = self.pairs.get(self.at).copied();
        self.at += p.is_some() as usize;
        p
    }
}

/// A paged posting store attachable to a [`crate::Database`]: serves
/// sorted FK and link postings for tables whose in-RAM postings have been
/// evicted. Implemented by the `sizel-disk` crate's block-cached segment
/// store; the trait lives here so storage stays dependency-free.
pub trait PostingPager: std::fmt::Debug + Send + Sync {
    /// The [`FkOrderToken`] the current segment generation snapshots, or
    /// `None` when no generation is loaded. Probes only route here while
    /// this equals the database's live installed token.
    fn stamp(&self) -> Option<FkOrderToken>;

    /// A cursor over the FK posting list of `(table, col, key)`, or
    /// `None` when the segment generation doesn't cover that list (the
    /// caller falls back to the heap path). An *empty* covered list
    /// yields a cursor that immediately ends. Read errors surface through
    /// [`PostingCursor::failed`], never as truncated-but-ok scans.
    fn fk_cursor(
        &self,
        table: TableId,
        col: usize,
        key: i64,
    ) -> Option<Box<dyn PostingCursor + '_>>;

    /// A cursor over the link posting group of `(junction, source col,
    /// key)`, with the same coverage and fail-closed semantics as
    /// [`PostingPager::fk_cursor`].
    fn link_cursor(&self, table: TableId, col: usize, key: i64)
        -> Option<Box<dyn LinkCursor + '_>>;

    /// The raw junction FK group size of `(junction, source col, key)`
    /// — what the heap path would report as the probe's tuple count —
    /// or `None` when not covered.
    fn link_raw_len(&self, table: TableId, col: usize, key: i64) -> Option<usize>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_cursors_walk_their_slices_in_order_and_never_fail() {
        let rows = [RowId(3), RowId(1), RowId(2)];
        let mut c = SlicePostingCursor::new(&rows);
        assert_eq!(c.next_row(), Some(RowId(3)));
        assert_eq!(c.next_row(), Some(RowId(1)));
        assert_eq!(c.next_row(), Some(RowId(2)));
        assert_eq!(c.next_row(), None);
        assert_eq!(c.next_row(), None, "exhausted cursors stay exhausted");
        assert!(!c.failed());

        let pairs = [(RowId(0), RowId(9)), (RowId(1), RowId(8))];
        let mut lc = SliceLinkCursor::new(&pairs);
        assert_eq!(lc.next_pair(), Some((RowId(0), RowId(9))));
        assert_eq!(lc.next_pair(), Some((RowId(1), RowId(8))));
        assert_eq!(lc.next_pair(), None);
        assert!(!lc.failed());
    }
}
