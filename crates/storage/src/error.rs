//! Storage-layer errors.

use std::fmt;

/// Errors raised by the relational substrate.
#[derive(Clone, Debug, PartialEq)]
pub enum StorageError {
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A column name was not found in a table.
    UnknownColumn { table: String, column: String },
    /// A row had the wrong number of values for its schema.
    Arity { table: String, expected: usize, got: usize },
    /// A value's type did not match its column's declared type.
    TypeMismatch { table: String, column: String },
    /// Primary-key uniqueness violation.
    DuplicateKey { table: String, key: i64 },
    /// Primary-key value was NULL or non-integer.
    BadPrimaryKey { table: String },
    /// A foreign key referenced a missing row.
    DanglingForeignKey { table: String, column: String, key: i64 },
    /// Schema construction error (e.g. FK declared on a non-Int column).
    BadSchema(String),
    /// An update/delete targeted a primary key with no live row.
    MissingRow { table: String, key: i64 },
    /// A delete would strand live rows still referencing the target
    /// (the mutation model is RESTRICT, not CASCADE).
    RestrictedDelete { table: String, key: i64, referencing_table: String },
    /// An update attempted to change a row's primary key.
    ImmutablePrimaryKey { table: String, key: i64 },
    /// A durability hook (write-ahead log, segment checkpoint) failed
    /// before the mutation settled; nothing was mutated. Carries the
    /// disk-layer error rendered as text so the storage crate stays
    /// independent of the disk crate.
    Durability(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StorageError::Arity { table, expected, got } => {
                write!(f, "row for `{table}` has {got} values, schema expects {expected}")
            }
            StorageError::TypeMismatch { table, column } => {
                write!(f, "type mismatch for `{table}.{column}`")
            }
            StorageError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in `{table}`")
            }
            StorageError::BadPrimaryKey { table } => {
                write!(f, "primary key of `{table}` must be a non-null Int")
            }
            StorageError::DanglingForeignKey { table, column, key } => {
                write!(f, "`{table}.{column}` = {key} references a missing row")
            }
            StorageError::BadSchema(msg) => write!(f, "bad schema: {msg}"),
            StorageError::MissingRow { table, key } => {
                write!(f, "no live row with primary key {key} in `{table}`")
            }
            StorageError::RestrictedDelete { table, key, referencing_table } => {
                write!(
                    f,
                    "cannot delete `{table}` pk {key}: still referenced by `{referencing_table}`"
                )
            }
            StorageError::ImmutablePrimaryKey { table, key } => {
                write!(f, "primary key {key} of `{table}` is immutable under update")
            }
            StorageError::Durability(msg) => write!(f, "durability failure: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = StorageError::DanglingForeignKey {
            table: "Paper".into(),
            column: "year_id".into(),
            key: 99,
        };
        let msg = e.to_string();
        assert!(msg.contains("Paper.year_id"));
        assert!(msg.contains("99"));
    }
}
