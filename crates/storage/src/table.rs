//! Tables: row storage plus hash indexes on the PK and on FK columns.

use std::collections::HashMap;

use crate::epoch::Epoch;
use crate::error::StorageError;
use crate::fk_index::{SortedFkIndex, SortedLinkIndex};
use crate::schema::TableSchema;
use crate::value::Value;
use crate::Result;

/// A row identifier within one table (dense, insertion-ordered).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

impl RowId {
    /// The row index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One stored row. `Box<[Value]>` keeps the per-row footprint at two words.
pub type Row = Box<[Value]>;

/// A table: schema, rows, and hash indexes.
///
/// Indexes are maintained incrementally on insert:
/// * a unique index on the primary key,
/// * a multi-index on every foreign-key column (these serve the
///   `WHERE tj.ID = Ri.ID` joins of Algorithms 4 and 5).
#[derive(Debug)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Vec<Row>,
    /// Liveness bitmap parallel to `rows`. Deletes are *logical*: the row
    /// slot (and its `RowId`) survives so every derived structure keyed by
    /// dense row ids — installed scores, data-graph node ids — stays
    /// valid. Dead rows are invisible to `iter`, the hash indexes, and
    /// `by_pk`; they linger only as tombstones in the sorted FK postings
    /// until compaction.
    dead: Vec<bool>,
    /// Number of `true` bits in `dead`.
    n_dead: usize,
    /// Dead rows still present in the sorted FK postings (the compaction
    /// debt). Reset by every full posting (re)build.
    posting_tombstones: usize,
    /// Dead junction pairs still present in the sorted link postings
    /// (junction tables only): deleted junction rows leave their pairs
    /// behind as tombstones, skipped by consumers via dual-endpoint
    /// liveness checks. Reset by every full link (re)build.
    link_tombstones: usize,
    pk_index: HashMap<i64, RowId>,
    /// column index -> (key -> row ids)
    fk_indexes: HashMap<usize, HashMap<i64, Vec<RowId>>>,
    /// column index -> importance-sorted postings. Installed at
    /// finalization, *maintained* under scored inserts, dropped by the
    /// legacy un-scored insert — see [`crate::fk_index`].
    sorted_fk: HashMap<usize, SortedFkIndex>,
    /// Source column index -> importance-sorted junction link postings
    /// (junction tables only; same lifecycle as `sorted_fk`).
    sorted_links: HashMap<usize, SortedLinkIndex>,
    /// Per-row installed importance snapshot (parallel to `rows`; empty
    /// when no order is installed or the snapshot was killed by an
    /// un-scored insert). Scored inserts append to it, which is what lets
    /// binary insertion find the right posting slot.
    installed_scores: Vec<f64>,
    /// True while `installed_scores` mirrors `rows` (set by
    /// [`Table::build_sorted_fk`], cleared by the un-scored insert).
    scores_live: bool,
    /// Postings parked by an open scored batch: staged rows are not yet
    /// placed in them, so they must be unreachable (probes heap-fall-back
    /// on the missing index) until `resume_postings` restores them for
    /// settlement. A batch abandoned without settlement therefore degrades
    /// to the conservative heap path instead of serving wrong prefixes.
    suspended: Option<(HashMap<usize, SortedFkIndex>, HashMap<usize, SortedLinkIndex>)>,
    /// Mutation epoch of this table (bumped on every insert).
    epoch: Epoch,
    /// Scored inserts absorbed incrementally since the last full (re)sort
    /// of the postings. Above the database's churn threshold the next
    /// scored insert triggers an epoch-batched re-sort instead.
    churn: usize,
}

impl Table {
    /// Creates an empty table for the schema.
    pub fn new(schema: TableSchema) -> Self {
        let fk_indexes = schema.fks.iter().map(|fk| (fk.column, HashMap::new())).collect();
        Table {
            schema,
            rows: Vec::new(),
            dead: Vec::new(),
            n_dead: 0,
            posting_tombstones: 0,
            link_tombstones: 0,
            pk_index: HashMap::new(),
            fk_indexes,
            sorted_fk: HashMap::new(),
            sorted_links: HashMap::new(),
            installed_scores: Vec::new(),
            scores_live: false,
            suspended: None,
            epoch: Epoch::default(),
            churn: 0,
        }
    }

    /// Number of row *slots*, dead ones included. Derived structures
    /// indexed by dense `RowId` (installed scores, data-graph node ids)
    /// are sized by this.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Number of live rows.
    pub fn live_len(&self) -> usize {
        self.rows.len() - self.n_dead
    }

    /// Number of tombstoned (logically deleted) row slots.
    pub fn n_dead(&self) -> usize {
        self.n_dead
    }

    /// True when the row slot has not been deleted.
    pub fn is_live(&self, id: RowId) -> bool {
        !self.dead[id.index()]
    }

    /// True when the table has no row slots.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row, validating arity, types, and PK uniqueness.
    /// FK existence is validated at the database level (see
    /// [`crate::Database::validate_foreign_keys`]), since it needs the
    /// catalog.
    ///
    /// This is the *un-scored* path: it carries no importance for the new
    /// row, so any installed sorted postings (and the score snapshot that
    /// places rows in them) are dropped and the heap path takes over for
    /// this table. Use [`crate::Database::insert_scored`] to keep the
    /// prefix-scan fast path live across inserts.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId> {
        let id = self.insert_validated(values)?;
        // The sorted postings were placed under a per-row score snapshot;
        // a row without a score cannot join them, so both die together —
        // including any copy parked by an open scored batch.
        self.drop_derived_state();
        self.epoch = self.epoch.next();
        Ok(id)
    }

    /// The shared validate-and-append core of both insert paths: checks
    /// arity, types, and PK uniqueness, maintains the hash indexes, and
    /// appends the row. Does not touch sorted postings or the epoch.
    fn insert_validated(&mut self, values: Vec<Value>) -> Result<RowId> {
        if values.len() != self.schema.arity() {
            return Err(StorageError::Arity {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            if !v.matches(self.schema.columns[i].ty) {
                return Err(StorageError::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: self.schema.columns[i].name.clone(),
                });
            }
        }
        let pk = values[self.schema.pk]
            .as_int()
            .ok_or_else(|| StorageError::BadPrimaryKey { table: self.schema.name.clone() })?;
        let id = RowId(self.rows.len() as u32);
        if let Some(old) = self.pk_index.insert(pk, id) {
            self.pk_index.insert(pk, old);
            return Err(StorageError::DuplicateKey { table: self.schema.name.clone(), key: pk });
        }
        for (&col, index) in self.fk_indexes.iter_mut() {
            if let Some(k) = values[col].as_int() {
                hash_index_insert(index.entry(k).or_default(), id);
            }
        }
        self.rows.push(values.into_boxed_slice());
        self.dead.push(false);
        Ok(id)
    }

    /// The shared tombstone core of both delete paths: resolves the pk to
    /// a live row, removes it from the pk and FK hash indexes, and marks
    /// the slot dead. Does not touch sorted postings or the epoch — the
    /// dead row lingers in them as a tombstone until compaction.
    fn delete_validated(&mut self, pk: i64) -> Result<RowId> {
        let id = self
            .pk_index
            .remove(&pk)
            .ok_or_else(|| StorageError::MissingRow { table: self.schema.name.clone(), key: pk })?;
        for (&col, index) in self.fk_indexes.iter_mut() {
            if let Some(k) = self.rows[id.index()][col].as_int() {
                hash_index_remove(index, k, id);
            }
        }
        self.dead[id.index()] = true;
        self.n_dead += 1;
        Ok(id)
    }

    /// The shared in-place-rewrite core of both update paths: validates
    /// arity/types, requires the pk to stay put, and re-homes the row in
    /// any FK hash index whose key changed. Does not touch sorted postings
    /// or the epoch.
    fn update_validated(&mut self, pk: i64, values: Vec<Value>) -> Result<RowId> {
        if values.len() != self.schema.arity() {
            return Err(StorageError::Arity {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            if !v.matches(self.schema.columns[i].ty) {
                return Err(StorageError::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: self.schema.columns[i].name.clone(),
                });
            }
        }
        let id = *self
            .pk_index
            .get(&pk)
            .ok_or_else(|| StorageError::MissingRow { table: self.schema.name.clone(), key: pk })?;
        if values[self.schema.pk].as_int() != Some(pk) {
            return Err(StorageError::ImmutablePrimaryKey {
                table: self.schema.name.clone(),
                key: pk,
            });
        }
        for (&col, index) in self.fk_indexes.iter_mut() {
            let old = self.rows[id.index()][col].as_int();
            let new = values[col].as_int();
            if old != new {
                if let Some(k) = old {
                    hash_index_remove(index, k, id);
                }
                if let Some(k) = new {
                    hash_index_insert(index.entry(k).or_default(), id);
                }
            }
        }
        self.rows[id.index()] = values.into_boxed_slice();
        Ok(id)
    }

    /// Deletes the live row with primary key `pk`.
    ///
    /// Like [`Table::insert`], this is the *un-scored* path: sorted
    /// postings and the score snapshot are dropped and the heap path takes
    /// over. Use [`crate::Database::delete_scored`] to keep the fast path
    /// live (tombstone-then-compact).
    pub fn delete(&mut self, pk: i64) -> Result<RowId> {
        let id = self.delete_validated(pk)?;
        self.drop_derived_state();
        self.epoch = self.epoch.next();
        Ok(id)
    }

    /// Rewrites the live row with primary key `pk` in place (the pk itself
    /// is immutable). Un-scored path — see [`Table::delete`].
    pub fn update(&mut self, pk: i64, values: Vec<Value>) -> Result<RowId> {
        let id = self.update_validated(pk, values)?;
        self.drop_derived_state();
        self.epoch = self.epoch.next();
        Ok(id)
    }

    /// Drops everything derived from the importance order (the un-scored
    /// mutation paths' common tail).
    fn drop_derived_state(&mut self) {
        self.sorted_fk.clear();
        self.sorted_links.clear();
        self.suspended = None;
        self.installed_scores.clear();
        self.scores_live = false;
        self.posting_tombstones = 0;
        self.link_tombstones = 0;
    }

    /// Evicts the in-RAM sorted FK and link postings (the disk tier's
    /// residency policy: a paged table serves prefix scans from segments
    /// instead). The score snapshot survives, so staged mutations and
    /// later re-sorts keep working — the postings simply stop being
    /// RAM-resident until something rebuilds them. Tombstone debt goes
    /// with the postings it was counted against.
    pub(crate) fn evict_sorted_postings(&mut self) {
        self.sorted_fk.clear();
        self.sorted_links.clear();
        self.posting_tombstones = 0;
        self.link_tombstones = 0;
    }

    /// Appends a row whose installed importance is `score` *without*
    /// touching the sorted postings — the staged half of a scored insert.
    /// The caller ([`crate::Database`]'s batch machinery) settles the
    /// posting maintenance afterwards, either by per-row binary insertion
    /// ([`Self::binary_insert_postings`]) or by one batched re-sort.
    /// Requires a live score snapshot ([`Self::has_installed_scores`]).
    /// Bumps the epoch and the churn counter.
    pub(crate) fn insert_scored_staged(&mut self, values: Vec<Value>, score: f64) -> Result<RowId> {
        debug_assert!(self.has_installed_scores(), "caller checks the snapshot is live");
        let id = self.insert_validated(values)?;
        self.installed_scores.push(score);
        self.epoch = self.epoch.next();
        self.churn += 1;
        Ok(id)
    }

    /// The staged half of a scored update: rewrites the row but leaves the
    /// (suspended) sorted postings and the score snapshot untouched — the
    /// batch settlement repositions the row once, at its *net* score, after
    /// all in-batch removals. Bumps the epoch and the churn counter.
    pub(crate) fn update_scored_staged(&mut self, pk: i64, values: Vec<Value>) -> Result<RowId> {
        debug_assert!(self.has_installed_scores(), "caller checks the snapshot is live");
        let id = self.update_validated(pk, values)?;
        self.epoch = self.epoch.next();
        self.churn += 1;
        Ok(id)
    }

    /// The staged half of a scored delete: tombstones the row. Its stale
    /// installed score is deliberately *kept* so the sorted postings —
    /// where the dead entry lingers until compaction — remain consistent
    /// with the snapshot that binary insertion searches by. Bumps the
    /// epoch and the churn counter.
    pub(crate) fn delete_scored_staged(&mut self, pk: i64) -> Result<RowId> {
        debug_assert!(self.has_installed_scores(), "caller checks the snapshot is live");
        let id = self.delete_validated(pk)?;
        self.epoch = self.epoch.next();
        self.churn += 1;
        Ok(id)
    }

    /// Overwrites one slot of the installed-score snapshot (settlement of
    /// a scored update: called *after* the row's old posting entries were
    /// removed, *before* it is re-inserted at the new score, so the
    /// postings' sort keys never disagree with the snapshot).
    pub(crate) fn set_installed_score(&mut self, id: RowId, score: f64) {
        self.installed_scores[id.index()] = score;
    }

    /// The FK-column keys of a row that carry hash/posting entries —
    /// captured by the batch machinery *before* a staged update rewrites
    /// the row, so settlement can find the old sorted-posting entries.
    pub(crate) fn fk_keys_of(&self, id: RowId) -> Vec<(usize, i64)> {
        let mut keys: Vec<(usize, i64)> = self
            .fk_indexes
            .keys()
            .filter_map(|&col| self.rows[id.index()][col].as_int().map(|k| (col, k)))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Removes a row's entries from the sorted FK postings under its *old*
    /// keys (settlement removal phase for net-updated rows).
    pub(crate) fn remove_from_postings(&mut self, id: RowId, old_keys: &[(usize, i64)]) {
        for &(col, key) in old_keys {
            if let Some(sorted) = self.sorted_fk.get_mut(&col) {
                sorted.remove(key, id);
            }
        }
    }

    /// Records dead rows left behind in the sorted FK postings (the
    /// settlement of net deletes). The database compacts once the debt
    /// crosses its threshold.
    pub(crate) fn add_posting_tombstones(&mut self, n: usize) {
        self.posting_tombstones += n;
    }

    /// Dead rows currently lingering in the sorted FK postings.
    pub fn fk_tombstones(&self) -> usize {
        self.posting_tombstones
    }

    /// Records dead pairs left behind in the sorted link postings (the
    /// settlement of junction-row deletes). The database rebuilds the
    /// junction's links once the debt crosses its compaction threshold.
    pub(crate) fn add_link_tombstones(&mut self, n: usize) {
        self.link_tombstones += n;
    }

    /// Dead pairs currently lingering in the sorted link postings.
    pub fn link_tombstones(&self) -> usize {
        self.link_tombstones
    }

    /// Pays off the link-tombstone debt (a full link rebuild sources live
    /// pairs only).
    pub(crate) fn reset_link_tombstones(&mut self) {
        self.link_tombstones = 0;
    }

    /// Binary-inserts a staged row into the sorted FK postings under the
    /// given `(fk column, key)` entries — captured at staging time, since
    /// a later in-batch update may have moved the row's current values —
    /// at its exact `(score desc, RowId asc)` position. Junction link
    /// postings are maintained by the caller
    /// ([`crate::Database::finish_scored_batch`]), which owns the
    /// cross-table target lookups.
    pub(crate) fn insert_into_postings(&mut self, id: RowId, keys: &[(usize, i64)]) {
        let score = self.installed_scores[id.index()];
        for &(col, key) in keys {
            if let Some(sorted) = self.sorted_fk.get_mut(&col) {
                sorted.insert_scored(key, id, score, &self.installed_scores);
            }
        }
    }

    /// The row with the given id. Panics on out-of-range ids (they can only
    /// be produced by this table).
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id.index()]
    }

    /// A single value of a row.
    pub fn value(&self, id: RowId, col: usize) -> &Value {
        &self.rows[id.index()][col]
    }

    /// The primary-key value of a row.
    pub fn pk_of(&self, id: RowId) -> i64 {
        self.rows[id.index()][self.schema.pk]
            .as_int()
            .expect("primary keys are validated on insert")
    }

    /// Point lookup by primary key.
    pub fn by_pk(&self, key: i64) -> Option<RowId> {
        self.pk_index.get(&key).copied()
    }

    /// Rows whose indexed column `col` equals `key`. Only FK columns are
    /// indexed; calling this on a non-indexed column is a logic error.
    pub fn rows_where_eq(&self, col: usize, key: i64) -> &[RowId] {
        static EMPTY: [RowId; 0] = [];
        match self.fk_indexes.get(&col) {
            Some(idx) => idx.get(&key).map(|v| v.as_slice()).unwrap_or(&EMPTY),
            None => panic!(
                "column {} of `{}` is not FK-indexed",
                self.schema.columns[col].name, self.schema.name
            ),
        }
    }

    /// True when `col` carries an FK index.
    pub fn is_indexed(&self, col: usize) -> bool {
        self.fk_indexes.contains_key(&col)
    }

    /// The base (unsorted) hash index of an FK column, if any — the input
    /// the sorted link postings are built from.
    pub(crate) fn fk_index_base(&self, col: usize) -> Option<&HashMap<i64, Vec<RowId>>> {
        self.fk_indexes.get(&col)
    }

    /// Rebuilds every FK column's importance-sorted postings under
    /// `score`, snapshotting the per-row scores so later scored inserts
    /// can binary-insert (called by
    /// [`crate::Database::install_importance_order`] and by the
    /// epoch-batched re-sort). Resets the churn counter.
    pub(crate) fn build_sorted_fk(&mut self, score: &dyn Fn(RowId) -> f64) {
        self.installed_scores = (0..self.rows.len()).map(|i| score(RowId(i as u32))).collect();
        self.scores_live = true;
        self.sorted_fk = self
            .fk_indexes
            .iter()
            .map(|(&col, base)| (col, SortedFkIndex::build(base, score)))
            .collect();
        self.churn = 0;
        // A full build sources from the (live-only) hash indexes, so any
        // tombstone debt is paid off wholesale.
        self.posting_tombstones = 0;
    }

    /// Re-sorts the postings from the retained score snapshot (the
    /// epoch-batched fallback above the churn threshold). Byte-identical
    /// to the incremental maintenance it replaces.
    pub(crate) fn resort_from_snapshot(&mut self) {
        debug_assert!(self.has_installed_scores());
        let scores = std::mem::take(&mut self.installed_scores);
        self.build_sorted_fk(&|r| scores[r.index()]);
        self.installed_scores = scores;
    }

    /// The importance-sorted postings of `col`, if an order is installed
    /// and no un-scored insert has invalidated it since.
    pub fn sorted_fk_index(&self, col: usize) -> Option<&SortedFkIndex> {
        self.sorted_fk.get(&col)
    }

    /// The importance-sorted junction link postings whose *source* FK is
    /// `col` (junction tables under a live installed order only).
    pub fn sorted_link_index(&self, col: usize) -> Option<&SortedLinkIndex> {
        self.sorted_links.get(&col)
    }

    /// Every installed sorted FK index — `(column, index)` — for segment
    /// writers snapshotting this table's postings to disk.
    pub fn sorted_fk_indexes(&self) -> impl Iterator<Item = (usize, &SortedFkIndex)> {
        self.sorted_fk.iter().map(|(&col, idx)| (col, idx))
    }

    /// Every installed sorted link index — `(source column, index)`.
    pub fn sorted_link_indexes(&self) -> impl Iterator<Item = (usize, &SortedLinkIndex)> {
        self.sorted_links.iter().map(|(&col, idx)| (col, idx))
    }

    /// Parks the sorted FK and link postings while a scored batch stages
    /// rows (see the `suspended` field docs). Idempotent within a batch.
    pub(crate) fn suspend_postings(&mut self) {
        if self.suspended.is_none() {
            self.suspended =
                Some((std::mem::take(&mut self.sorted_fk), std::mem::take(&mut self.sorted_links)));
        }
    }

    /// Restores postings parked by [`Self::suspend_postings`] for
    /// settlement (a no-op when nothing is parked — e.g. an un-scored
    /// insert killed the snapshot mid-batch).
    pub(crate) fn resume_postings(&mut self) {
        if let Some((fk, links)) = self.suspended.take() {
            self.sorted_fk = fk;
            self.sorted_links = links;
        }
    }

    pub(crate) fn set_sorted_link(&mut self, col: usize, index: SortedLinkIndex) {
        self.sorted_links.insert(col, index);
    }

    pub(crate) fn take_sorted_link(&mut self, col: usize) -> Option<SortedLinkIndex> {
        self.sorted_links.remove(&col)
    }

    pub(crate) fn drop_sorted_links(&mut self) {
        self.sorted_links.clear();
    }

    /// True when the per-row installed-score snapshot covers every row
    /// (i.e. an order is installed and no un-scored insert killed it).
    pub fn has_installed_scores(&self) -> bool {
        self.scores_live
    }

    /// The installed importance of a row (panics without a live snapshot).
    pub fn installed_score(&self, id: RowId) -> f64 {
        self.installed_scores[id.index()]
    }

    pub(crate) fn installed_scores(&self) -> &[f64] {
        &self.installed_scores
    }

    /// This table's mutation epoch (bumped on every insert).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Scored inserts absorbed incrementally since the last full sort.
    pub fn churn(&self) -> usize {
        self.churn
    }

    /// Iterates over live `(RowId, &Row)` in insertion order (tombstoned
    /// slots are skipped).
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.dead[i])
            .map(|(i, r)| (RowId(i as u32), r))
    }

    /// Average fan-out of the FK index on `col`: rows / distinct keys.
    /// Used by the computed affinity model's cardinality metric.
    pub fn avg_fanout(&self, col: usize) -> f64 {
        match self.fk_indexes.get(&col) {
            Some(idx) if !idx.is_empty() => {
                let referencing: usize = idx.values().map(|v| v.len()).sum();
                referencing as f64 / idx.len() as f64
            }
            _ => 0.0,
        }
    }
}

/// Inserts `id` into a hash-index posting vec at its `RowId`-ascending
/// position. The vecs are kept sorted so that, for any live row set, the
/// maintained index is byte-identical to one built by inserting the live
/// rows in insertion order — appends (the common case: `id` is the
/// largest) cost O(1) amortized.
fn hash_index_insert(vec: &mut Vec<RowId>, id: RowId) {
    if vec.last().is_none_or(|&last| last < id) {
        vec.push(id);
    } else {
        let pos = vec.partition_point(|&r| r < id);
        vec.insert(pos, id);
    }
}

/// Removes `id` from a hash index's posting vec for `key`, dropping the
/// entry entirely when it empties (so key counts and fan-out statistics
/// match a fresh build over the live rows).
fn hash_index_remove(index: &mut HashMap<i64, Vec<RowId>>, key: i64, id: RowId) {
    if let Some(vec) = index.get_mut(&key) {
        if let Some(pos) = vec.iter().position(|&r| r == id) {
            vec.remove(pos);
        }
        if vec.is_empty() {
            index.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::Value;

    fn make_table() -> Table {
        let schema = TableSchema::builder("Paper")
            .pk("id")
            .searchable_text("title")
            .fk("year_id", "Year")
            .build()
            .unwrap();
        Table::new(schema)
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = make_table();
        let r0 = t.insert(vec![Value::Int(10), "a title".into(), Value::Int(5)]).unwrap();
        let r1 = t.insert(vec![Value::Int(11), "another".into(), Value::Int(5)]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.by_pk(10), Some(r0));
        assert_eq!(t.by_pk(11), Some(r1));
        assert_eq!(t.by_pk(12), None);
        assert_eq!(t.pk_of(r0), 10);
        assert_eq!(t.value(r1, 1).as_str(), Some("another"));
    }

    #[test]
    fn fk_index_groups_rows() {
        let mut t = make_table();
        for (pk, y) in [(1, 5), (2, 5), (3, 6)] {
            t.insert(vec![Value::Int(pk), "t".into(), Value::Int(y)]).unwrap();
        }
        assert_eq!(t.rows_where_eq(2, 5).len(), 2);
        assert_eq!(t.rows_where_eq(2, 6).len(), 1);
        assert_eq!(t.rows_where_eq(2, 7).len(), 0);
        assert!(t.is_indexed(2));
        assert!(!t.is_indexed(1));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = make_table();
        t.insert(vec![Value::Int(1), "x".into(), Value::Int(1)]).unwrap();
        let e = t.insert(vec![Value::Int(1), "y".into(), Value::Int(2)]);
        assert!(matches!(e, Err(StorageError::DuplicateKey { key: 1, .. })));
        // The failed insert must not have left a phantom row.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_and_type_validation() {
        let mut t = make_table();
        assert!(matches!(
            t.insert(vec![Value::Int(1)]),
            Err(StorageError::Arity { expected: 3, got: 1, .. })
        ));
        assert!(matches!(
            t.insert(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.insert(vec![Value::from("k"), "x".into(), Value::Int(1)]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn null_fk_is_allowed_and_unindexed() {
        let mut t = make_table();
        t.insert(vec![Value::Int(1), "x".into(), Value::Null]).unwrap();
        assert_eq!(t.rows_where_eq(2, 0).len(), 0);
    }

    #[test]
    fn avg_fanout() {
        let mut t = make_table();
        for (pk, y) in [(1, 5), (2, 5), (3, 5), (4, 6)] {
            t.insert(vec![Value::Int(pk), "t".into(), Value::Int(y)]).unwrap();
        }
        assert!((t.avg_fanout(2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn delete_tombstones_and_cleans_indexes() {
        let mut t = make_table();
        for (pk, y) in [(1, 5), (2, 5), (3, 6)] {
            t.insert(vec![Value::Int(pk), "t".into(), Value::Int(y)]).unwrap();
        }
        let id = t.delete(2).unwrap();
        assert_eq!(id, RowId(1));
        // The slot survives; the row is invisible everywhere else.
        assert_eq!(t.len(), 3);
        assert_eq!(t.live_len(), 2);
        assert_eq!(t.n_dead(), 1);
        assert!(!t.is_live(id));
        assert_eq!(t.by_pk(2), None);
        assert_eq!(t.rows_where_eq(2, 5), &[RowId(0)]);
        assert_eq!(t.iter().count(), 2);
        // Fan-out reflects live rows only.
        assert!((t.avg_fanout(2) - 1.0).abs() < 1e-12);
        // Deleting a missing or already-dead pk fails cleanly.
        assert!(matches!(t.delete(2), Err(StorageError::MissingRow { key: 2, .. })));
        assert!(matches!(t.delete(99), Err(StorageError::MissingRow { key: 99, .. })));
        // The pk can be reused after the delete.
        let id2 = t.insert(vec![Value::Int(2), "again".into(), Value::Int(5)]).unwrap();
        assert_eq!(t.by_pk(2), Some(id2));
        assert_eq!(t.rows_where_eq(2, 5), &[RowId(0), id2]);
    }

    #[test]
    fn update_rehomes_fk_index_in_row_id_order() {
        let mut t = make_table();
        for (pk, y) in [(1, 5), (2, 6), (3, 5)] {
            t.insert(vec![Value::Int(pk), "t".into(), Value::Int(y)]).unwrap();
        }
        // Move pk 2 from year 6 to year 5: it must land *between* rows 0
        // and 2 in the posting vec, exactly as a fresh build would place it.
        t.update(2, vec![Value::Int(2), "moved".into(), Value::Int(5)]).unwrap();
        assert_eq!(t.rows_where_eq(2, 5), &[RowId(0), RowId(1), RowId(2)]);
        assert_eq!(t.rows_where_eq(2, 6).len(), 0);
        assert_eq!(t.value(RowId(1), 1).as_str(), Some("moved"));
        // Pk is immutable under update.
        assert!(matches!(
            t.update(2, vec![Value::Int(9), "x".into(), Value::Int(5)]),
            Err(StorageError::ImmutablePrimaryKey { key: 2, .. })
        ));
        // Updating a missing row fails cleanly.
        assert!(matches!(
            t.update(42, vec![Value::Int(42), "x".into(), Value::Int(5)]),
            Err(StorageError::MissingRow { key: 42, .. })
        ));
        // Validation errors leave the row untouched.
        assert!(t.update(2, vec![Value::Int(2)]).is_err());
        assert_eq!(t.value(RowId(1), 1).as_str(), Some("moved"));
    }
}
