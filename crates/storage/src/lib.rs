//! In-memory relational engine substrate.
//!
//! The paper runs on MySQL; under the offline-crate constraint we implement
//! the small relational core its algorithms actually exercise:
//!
//! * typed tuples ([`value::Value`]) and table schemas with single-column
//!   integer primary keys and foreign keys ([`schema`]),
//! * tables with hash indexes on the primary key and on every foreign-key
//!   column ([`table::Table`]), built incrementally on insert,
//! * a catalog ([`database::Database`]) with foreign-key validation and the
//!   two query forms Algorithm 4 issues as SQL
//!   (`SELECT * FROM Ri WHERE tj.ID = Ri.ID` and
//!   `SELECT * TOP l FROM Ri WHERE tj.ID = Ri.ID AND Ri.li > largest-l`),
//! * an access counter ([`access::AccessCounter`]) that counts join probes
//!   and tuples read, the cost unit of the paper's Section 5.3/6.3
//!   discussion ("Avoidance Condition 2 still requires an I/O access even
//!   when it returns no results"),
//! * importance-sorted FK and junction-link postings ([`fk_index`])
//!   installed as a finalization step and *maintained* under scored
//!   inserts, updates, and deletes (tombstone-then-compact), which turn
//!   the `TOP l` probe into a bounded prefix scan that survives full
//!   mutation workloads,
//! * mutation epochs ([`epoch`]) versioning the catalog (global and per
//!   table) so derived structures — sorted postings, rank scores, serve
//!   caches — can detect and synchronize to data changes.

pub mod access;
pub mod database;
pub mod epoch;
pub mod error;
pub mod fk_index;
pub mod pager;
pub mod schema;
pub mod table;
pub mod text;
pub mod topl;
pub mod value;

pub use access::{AccessCounter, AccessStats, MaintStats, ProbeStats};
pub use database::{
    Database, ScoredBatch, StagedOp, TableId, TupleRef, DEFAULT_CHURN_THRESHOLD,
    DEFAULT_COMPACTION_THRESHOLD,
};
pub use epoch::Epoch;
pub use error::StorageError;
pub use fk_index::{FkOrderToken, SortedFkIndex, SortedLinkIndex};
pub use pager::{LinkCursor, PostingCursor, PostingPager, SliceLinkCursor, SlicePostingCursor};
pub use schema::{Column, ForeignKey, SchemaBuilder, TableSchema};
pub use table::{RowId, Table};
pub use topl::{top_l, TopLScratch};
pub use value::{Value, ValueType};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, StorageError>;
