//! Table schemas: columns, primary keys, foreign keys.

use crate::error::StorageError;
use crate::value::ValueType;
use crate::Result;

/// A column definition.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column name, unique within its table.
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
    /// Whether the keyword index should cover this column (attribute-level
    /// affinity: the paper's θ' selects which attributes participate; we
    /// expose that choice as schema flags).
    pub searchable: bool,
    /// Whether the column appears when a tuple is rendered inside an OS.
    pub display: bool,
}

/// A foreign-key constraint: `column` of this table references the primary
/// key of `ref_table`. Keys are always single-column `Int`s.
#[derive(Clone, Debug)]
pub struct ForeignKey {
    /// Index of the referencing column in this table.
    pub column: usize,
    /// Name of the referenced table (resolved against the catalog).
    pub ref_table: String,
}

/// A table schema.
#[derive(Clone, Debug)]
pub struct TableSchema {
    /// Table name, unique within the database.
    pub name: String,
    /// Column definitions in declaration order.
    pub columns: Vec<Column>,
    /// Index of the primary-key column (must be `Int`).
    pub pk: usize,
    /// Foreign keys declared on this table.
    pub fks: Vec<ForeignKey>,
    /// True for pure junction tables (two FKs realizing an M:N link). The
    /// GDS treealization collapses junctions into single M:N steps, exactly
    /// as the paper's Author—Paper and Paper—Paper(citation) links.
    pub is_junction: bool,
}

impl TableSchema {
    /// Starts a builder for a table with the given name.
    pub fn builder(name: &str) -> SchemaBuilder {
        SchemaBuilder {
            name: name.to_owned(),
            columns: Vec::new(),
            pk: None,
            fks: Vec::new(),
            is_junction: false,
        }
    }

    /// Looks up a column index by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns.iter().position(|c| c.name == name).ok_or_else(|| {
            StorageError::UnknownColumn { table: self.name.clone(), column: name.to_owned() }
        })
    }

    /// The column definition at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Indices of columns flagged `searchable`.
    pub fn searchable_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.columns.iter().enumerate().filter(|(_, c)| c.searchable).map(|(i, _)| i)
    }

    /// Indices of columns flagged `display`.
    pub fn display_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.columns.iter().enumerate().filter(|(_, c)| c.display).map(|(i, _)| i)
    }
}

/// Fluent builder for [`TableSchema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    name: String,
    columns: Vec<Column>,
    pk: Option<usize>,
    fks: Vec<ForeignKey>,
    is_junction: bool,
}

impl SchemaBuilder {
    /// Adds the integer primary-key column (conventionally first).
    pub fn pk(mut self, name: &str) -> Self {
        assert!(self.pk.is_none(), "primary key declared twice on {}", self.name);
        self.pk = Some(self.columns.len());
        self.columns.push(Column {
            name: name.to_owned(),
            ty: ValueType::Int,
            searchable: false,
            display: false,
        });
        self
    }

    /// Adds a plain column.
    pub fn column(mut self, name: &str, ty: ValueType) -> Self {
        self.columns.push(Column { name: name.to_owned(), ty, searchable: false, display: true });
        self
    }

    /// Adds a text column included in the keyword index and in rendering.
    pub fn searchable_text(mut self, name: &str) -> Self {
        self.columns.push(Column {
            name: name.to_owned(),
            ty: ValueType::Text,
            searchable: true,
            display: true,
        });
        self
    }

    /// Adds a column excluded from rendering (the paper's θ' exclusion, e.g.
    /// `Partsupp.comment` in a Customer OS).
    pub fn hidden_column(mut self, name: &str, ty: ValueType) -> Self {
        self.columns.push(Column { name: name.to_owned(), ty, searchable: false, display: false });
        self
    }

    /// Adds an integer foreign-key column referencing `ref_table`'s PK.
    pub fn fk(mut self, name: &str, ref_table: &str) -> Self {
        let column = self.columns.len();
        self.columns.push(Column {
            name: name.to_owned(),
            ty: ValueType::Int,
            searchable: false,
            display: false,
        });
        self.fks.push(ForeignKey { column, ref_table: ref_table.to_owned() });
        self
    }

    /// Marks the table as a pure M:N junction.
    pub fn junction(mut self) -> Self {
        self.is_junction = true;
        self
    }

    /// Finalizes the schema, validating structural invariants.
    pub fn build(self) -> Result<TableSchema> {
        let pk = self.pk.ok_or_else(|| {
            StorageError::BadSchema(format!("table {} has no primary key", self.name))
        })?;
        let mut seen = std::collections::HashSet::new();
        for c in &self.columns {
            if !seen.insert(c.name.as_str()) {
                return Err(StorageError::BadSchema(format!(
                    "duplicate column `{}` in table {}",
                    c.name, self.name
                )));
            }
        }
        for fk in &self.fks {
            if self.columns[fk.column].ty != ValueType::Int {
                return Err(StorageError::BadSchema(format!(
                    "foreign key `{}.{}` must be Int",
                    self.name, self.columns[fk.column].name
                )));
            }
        }
        if self.is_junction && self.fks.len() != 2 {
            return Err(StorageError::BadSchema(format!(
                "junction table {} must have exactly 2 foreign keys, has {}",
                self.name,
                self.fks.len()
            )));
        }
        Ok(TableSchema {
            name: self.name,
            columns: self.columns,
            pk,
            fks: self.fks,
            is_junction: self.is_junction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_schema() -> TableSchema {
        TableSchema::builder("Paper")
            .pk("id")
            .searchable_text("title")
            .fk("year_id", "Year")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_layout() {
        let s = paper_schema();
        assert_eq!(s.name, "Paper");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.pk, 0);
        assert_eq!(s.fks.len(), 1);
        assert_eq!(s.fks[0].column, 2);
        assert_eq!(s.fks[0].ref_table, "Year");
    }

    #[test]
    fn column_lookup() {
        let s = paper_schema();
        assert_eq!(s.column_index("title").unwrap(), 1);
        assert!(matches!(s.column_index("nope"), Err(StorageError::UnknownColumn { .. })));
    }

    #[test]
    fn searchable_and_display_flags() {
        let s = paper_schema();
        assert_eq!(s.searchable_columns().collect::<Vec<_>>(), vec![1]);
        // pk and fk columns are not displayed; title is.
        assert_eq!(s.display_columns().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn missing_pk_is_rejected() {
        let e = TableSchema::builder("X").column("a", ValueType::Int).build();
        assert!(matches!(e, Err(StorageError::BadSchema(_))));
    }

    #[test]
    fn duplicate_column_is_rejected() {
        let e = TableSchema::builder("X").pk("id").column("id", ValueType::Int).build();
        assert!(matches!(e, Err(StorageError::BadSchema(_))));
    }

    #[test]
    fn junction_requires_two_fks() {
        let e = TableSchema::builder("J").pk("id").fk("a", "A").junction().build();
        assert!(matches!(e, Err(StorageError::BadSchema(_))));
        let ok = TableSchema::builder("J").pk("id").fk("a", "A").fk("b", "B").junction().build();
        assert!(ok.is_ok());
    }
}
