//! Join/tuple access instrumentation.
//!
//! The paper's cost discussion (Sections 5.3 and 6.3) counts *I/O accesses*:
//! one per `Ri(tj)` join probe, "even when it returns no results". The
//! counters are atomics so read-only query paths (`&Database`) can record
//! accesses and fixtures can be shared across test threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counts join probes and tuples materialized by the query layer.
#[derive(Debug, Default)]
pub struct AccessCounter {
    joins: AtomicU64,
    tuples: AtomicU64,
}

/// An immutable snapshot of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Number of `Ri(tj)` join probes issued.
    pub joins: u64,
    /// Number of tuples returned by those probes.
    pub tuples: u64,
}

impl AccessStats {
    /// Component-wise difference (`self` must be the later snapshot).
    pub fn since(self, earlier: AccessStats) -> AccessStats {
        AccessStats { joins: self.joins - earlier.joins, tuples: self.tuples - earlier.tuples }
    }
}

impl AccessCounter {
    /// Records one join probe returning `tuples` rows.
    pub fn record_join(&self, tuples: usize) {
        self.joins.fetch_add(1, Ordering::Relaxed);
        self.tuples.fetch_add(tuples as u64, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> AccessStats {
        AccessStats {
            joins: self.joins.load(Ordering::Relaxed),
            tuples: self.tuples.load(Ordering::Relaxed),
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.joins.store(0, Ordering::Relaxed);
        self.tuples.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let c = AccessCounter::default();
        c.record_join(5);
        c.record_join(0); // empty result still counts as one access
        let s = c.snapshot();
        assert_eq!(s, AccessStats { joins: 2, tuples: 5 });
    }

    #[test]
    fn since_computes_delta() {
        let c = AccessCounter::default();
        c.record_join(3);
        let before = c.snapshot();
        c.record_join(4);
        c.record_join(1);
        let delta = c.snapshot().since(before);
        assert_eq!(delta, AccessStats { joins: 2, tuples: 5 });
    }

    #[test]
    fn reset_zeroes() {
        let c = AccessCounter::default();
        c.record_join(3);
        c.reset();
        assert_eq!(c.snapshot(), AccessStats::default());
    }

    #[test]
    fn counter_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<AccessCounter>();
    }
}
