//! Join/tuple access instrumentation.
//!
//! The paper's cost discussion (Sections 5.3 and 6.3) counts *I/O accesses*:
//! one per `Ri(tj)` join probe, "even when it returns no results". The
//! counters are atomics so read-only query paths (`&Database`) can record
//! accesses and fixtures can be shared across test threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counts join probes and tuples materialized by the query layer.
///
/// Besides the paper's cost unit, the counter tracks the *probe mix* of
/// the TOP-l paths — how many probes ran as importance-sorted prefix
/// scans versus the bounded-heap fallback. The mix is deliberately **not**
/// part of [`AccessStats`]: the two paths are byte-identical in results
/// and in paper-cost accounting (property-tested by comparing
/// `AccessStats` deltas), so the mix is reported separately
/// ([`AccessCounter::probes`]) for benchmarks tracking fast-path
/// retention under update churn.
#[derive(Debug, Default)]
pub struct AccessCounter {
    joins: AtomicU64,
    tuples: AtomicU64,
    fast_probes: AtomicU64,
    heap_probes: AtomicU64,
    graph_builds: AtomicU64,
    posting_resorts: AtomicU64,
    link_rebuilds: AtomicU64,
    binary_inserts: AtomicU64,
    compactions: AtomicU64,
}

/// A snapshot of the TOP-l probe mix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// TOP-l probes served as sorted-posting prefix scans.
    pub fast: u64,
    /// TOP-l probes served by the bounded-heap fallback.
    pub heap: u64,
}

impl ProbeStats {
    /// Fraction of TOP-l probes that took the prefix-scan fast path
    /// (0 when no probe ran).
    pub fn fast_ratio(self) -> f64 {
        let total = self.fast + self.heap;
        if total == 0 {
            0.0
        } else {
            self.fast as f64 / total as f64
        }
    }
}

/// A snapshot of the *derived-structure maintenance* work performed by
/// the update paths. Like [`ProbeStats`], deliberately not part of
/// [`AccessStats`] (it is engine-maintenance cost, not the paper's query
/// I/O unit). The batched-apply subsystem asserts its amortization claims
/// against these counters: a `B`-mutation batch performs exactly **one**
/// data-graph rebuild and at most **one** posting re-sort per affected
/// table, where folding single applies pays `B` rebuilds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintStats {
    /// Full data-graph rebuilds (recorded by the graph layer's `build`;
    /// the `O(|E|)` linear step of an incremental apply).
    pub graph_builds: u64,
    /// Full per-table posting re-sort passes (the epoch-batched churn
    /// fallback re-sorting every posting list of one table at once).
    pub posting_resorts: u64,
    /// Junction link-posting rebuild passes (installs, churn re-sorts,
    /// and dangling-reference heals).
    pub link_rebuilds: u64,
    /// Rows absorbed by per-posting binary insertion (the incremental
    /// maintenance path below the churn threshold).
    pub binary_inserts: u64,
    /// Tombstone-compaction passes: full per-table posting rebuilds
    /// triggered by the dead-entry debt crossing the compaction
    /// threshold (deletes/updates only; at most one per table per
    /// settled batch).
    pub compactions: u64,
}

impl MaintStats {
    /// Component-wise difference (`self` must be the later snapshot).
    pub fn since(self, earlier: MaintStats) -> MaintStats {
        MaintStats {
            graph_builds: self.graph_builds - earlier.graph_builds,
            posting_resorts: self.posting_resorts - earlier.posting_resorts,
            link_rebuilds: self.link_rebuilds - earlier.link_rebuilds,
            binary_inserts: self.binary_inserts - earlier.binary_inserts,
            compactions: self.compactions - earlier.compactions,
        }
    }
}

/// An immutable snapshot of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Number of `Ri(tj)` join probes issued.
    pub joins: u64,
    /// Number of tuples returned by those probes.
    pub tuples: u64,
}

impl AccessStats {
    /// Component-wise difference (`self` must be the later snapshot).
    pub fn since(self, earlier: AccessStats) -> AccessStats {
        AccessStats { joins: self.joins - earlier.joins, tuples: self.tuples - earlier.tuples }
    }
}

impl AccessCounter {
    /// Records one join probe returning `tuples` rows.
    pub fn record_join(&self, tuples: usize) {
        self.joins.fetch_add(1, Ordering::Relaxed);
        self.tuples.fetch_add(tuples as u64, Ordering::Relaxed);
    }

    /// Records one TOP-l probe served as a prefix scan.
    pub fn record_fast_probe(&self) {
        self.fast_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one TOP-l probe served by the heap fallback.
    pub fn record_heap_probe(&self) {
        self.heap_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Current probe-mix values.
    pub fn probes(&self) -> ProbeStats {
        ProbeStats {
            fast: self.fast_probes.load(Ordering::Relaxed),
            heap: self.heap_probes.load(Ordering::Relaxed),
        }
    }

    /// Records one full data-graph rebuild.
    pub fn record_graph_build(&self) {
        self.graph_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one full per-table posting re-sort pass.
    pub fn record_posting_resort(&self) {
        self.posting_resorts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one junction link-posting rebuild pass.
    pub fn record_link_rebuild(&self) {
        self.link_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one row absorbed by binary posting insertion.
    pub fn record_binary_insert(&self) {
        self.binary_inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one tombstone-compaction pass.
    pub fn record_compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Current maintenance-work values.
    pub fn maint(&self) -> MaintStats {
        MaintStats {
            graph_builds: self.graph_builds.load(Ordering::Relaxed),
            posting_resorts: self.posting_resorts.load(Ordering::Relaxed),
            link_rebuilds: self.link_rebuilds.load(Ordering::Relaxed),
            binary_inserts: self.binary_inserts.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> AccessStats {
        AccessStats {
            joins: self.joins.load(Ordering::Relaxed),
            tuples: self.tuples.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.joins.store(0, Ordering::Relaxed);
        self.tuples.store(0, Ordering::Relaxed);
        self.fast_probes.store(0, Ordering::Relaxed);
        self.heap_probes.store(0, Ordering::Relaxed);
        self.graph_builds.store(0, Ordering::Relaxed);
        self.posting_resorts.store(0, Ordering::Relaxed);
        self.link_rebuilds.store(0, Ordering::Relaxed);
        self.binary_inserts.store(0, Ordering::Relaxed);
        self.compactions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let c = AccessCounter::default();
        c.record_join(5);
        c.record_join(0); // empty result still counts as one access
        let s = c.snapshot();
        assert_eq!(s, AccessStats { joins: 2, tuples: 5 });
    }

    #[test]
    fn since_computes_delta() {
        let c = AccessCounter::default();
        c.record_join(3);
        let before = c.snapshot();
        c.record_join(4);
        c.record_join(1);
        let delta = c.snapshot().since(before);
        assert_eq!(delta, AccessStats { joins: 2, tuples: 5 });
    }

    #[test]
    fn reset_zeroes() {
        let c = AccessCounter::default();
        c.record_join(3);
        c.reset();
        assert_eq!(c.snapshot(), AccessStats::default());
    }

    #[test]
    fn counter_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<AccessCounter>();
    }

    #[test]
    fn maint_counters_record_and_diff() {
        let c = AccessCounter::default();
        c.record_graph_build();
        let before = c.maint();
        c.record_graph_build();
        c.record_posting_resort();
        c.record_link_rebuild();
        c.record_binary_insert();
        c.record_binary_insert();
        c.record_compaction();
        let delta = c.maint().since(before);
        assert_eq!(
            delta,
            MaintStats {
                graph_builds: 1,
                posting_resorts: 1,
                link_rebuilds: 1,
                binary_inserts: 2,
                compactions: 1
            }
        );
        // Maintenance work is not the paper's I/O cost unit.
        assert_eq!(c.snapshot(), AccessStats::default());
        c.reset();
        assert_eq!(c.maint(), MaintStats::default());
    }
}
