//! Mutation epochs: the version counter behind the update subsystem.
//!
//! The paper's OSs are computed over a *live* database; the continual
//! top-k line of work assumes the data keeps changing under the query
//! stream. Every derived structure in this stack (sorted FK postings,
//! rank scores, serve-cache entries) is therefore versioned by an
//! [`Epoch`]: a monotonically increasing counter bumped on every
//! mutation. The database carries one global epoch plus one per table, so
//! consumers can reason both about "has *anything* changed" (cache
//! keying) and "has *this table* changed" (posting maintenance).
//!
//! Epochs are plain data, deliberately not process-unique: two databases
//! both start at epoch 0. Identity is provided by the
//! [`crate::FkOrderToken`]'s order id; the epoch rides on the token to
//! distinguish *versions* of one installed order (see
//! [`crate::fk_index`]).

/// A monotonically increasing mutation counter. `Epoch(0)` is the
/// freshly-created (or freshly-finalized) state; every insert bumps it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The successor epoch.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// The raw counter value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_order_and_advance() {
        let e = Epoch::default();
        assert_eq!(e, Epoch(0));
        assert!(e.next() > e);
        assert_eq!(e.next().get(), 1);
        assert_eq!(format!("{}", Epoch(7)), "e7");
    }
}
