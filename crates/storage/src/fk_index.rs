//! Importance-sorted foreign-key indexes.
//!
//! The Avoidance-Condition-2 probe (`SELECT * TOP l FROM Ri WHERE
//! tj.ID = Ri.ID AND Ri.li > largest-l ORDER BY li DESC`, Algorithm 4
//! line 10) asks for a *prefix* of an FK group under a fixed ordering:
//! local importance `li(t) = Im(t) · Af(Ri)` is the per-tuple global
//! importance scaled by a per-relation constant, so *one* global-importance
//! order per table serves every GDS node reading it. Pre-sorting each FK
//! posting list by descending global importance turns the probe from a
//! heap pass over the whole group (`O(g log l)`) into a bounded prefix
//! scan (`O(l)`), the ROADMAP's remaining Database-source hot path.
//!
//! Ordering contract: postings are sorted by `(score descending, RowId
//! ascending)`, and the prefix scan is valid for any `li` that is a
//! *monotone non-decreasing* function of the installed score — `li =
//! global · affinity` qualifies because IEEE multiplication by a positive
//! constant is monotone. Monotone maps can still collapse distinct scores
//! to equal `li` (a 1-ulp score gap erased by the multiplication), where
//! the raw posting order (score desc) and the heap path's tie order
//! (`RowId` asc, per [`crate::top_l`]) differ; the scan therefore collects
//! the li-tie run straddling the cut in full and re-ranks it by `(li
//! desc, RowId asc)`, keeping the two paths byte-identical
//! unconditionally (unit- and property-tested).
//!
//! Because the sort key is external (global importance is computed by the
//! ranking layer *after* the database is loaded), installation is a
//! finalization step: [`crate::Database::install_importance_order`] sorts
//! every posting list and returns an opaque [`FkOrderToken`]. Query paths
//! pass the token they expect back in; the fast path only fires when it
//! matches the installed one, so a context carrying scores from a
//! *different* ranking setting silently falls back to the heap path
//! instead of scanning postings in the wrong order. Any subsequent insert
//! drops the affected table's sorted postings (and the heap path takes
//! over) — the order is a snapshot, not an incrementally maintained index.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::table::RowId;

/// Identifies one installed importance ordering. Tokens are unique per
/// process ([`crate::Database::install_importance_order`] mints a fresh one
/// on every call), so a token can never validate against an ordering it
/// was not minted for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FkOrderToken(u64);

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

impl FkOrderToken {
    /// Mints a process-unique token.
    pub(crate) fn fresh() -> FkOrderToken {
        FkOrderToken(NEXT_TOKEN.fetch_add(1, Ordering::Relaxed))
    }
}

/// The importance-sorted postings of one FK column: the same keys and row
/// sets as the base hash index, with every posting list pre-sorted by
/// `(score descending, RowId ascending)`.
#[derive(Clone, Debug, Default)]
pub struct SortedFkIndex {
    postings: HashMap<i64, Vec<RowId>>,
}

impl SortedFkIndex {
    /// Builds the sorted copy of a base FK index under `score`.
    pub(crate) fn build(
        base: &HashMap<i64, Vec<RowId>>,
        score: &dyn Fn(RowId) -> f64,
    ) -> SortedFkIndex {
        let postings = base
            .iter()
            .map(|(&key, rows)| {
                let mut scored: Vec<(f64, RowId)> = rows.iter().map(|&r| (score(r), r)).collect();
                scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                (key, scored.into_iter().map(|(_, r)| r).collect())
            })
            .collect();
        SortedFkIndex { postings }
    }

    /// The rows whose FK equals `key`, best-importance first.
    pub fn rows(&self, key: i64) -> &[RowId] {
        static EMPTY: [RowId; 0] = [];
        self.postings.get(&key).map(|v| v.as_slice()).unwrap_or(&EMPTY)
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_unique() {
        let a = FkOrderToken::fresh();
        let b = FkOrderToken::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn build_sorts_by_score_desc_then_row_asc() {
        let mut base: HashMap<i64, Vec<RowId>> = HashMap::new();
        base.insert(7, vec![RowId(0), RowId(1), RowId(2), RowId(3)]);
        let scores = [1.0, 3.0, 3.0, 2.0];
        let idx = SortedFkIndex::build(&base, &|r: RowId| scores[r.index()]);
        assert_eq!(idx.rows(7), &[RowId(1), RowId(2), RowId(3), RowId(0)]);
        assert!(idx.rows(99).is_empty());
        assert_eq!(idx.key_count(), 1);
    }
}
