//! Importance-sorted foreign-key and junction-link indexes.
//!
//! The Avoidance-Condition-2 probe (`SELECT * TOP l FROM Ri WHERE
//! tj.ID = Ri.ID AND Ri.li > largest-l ORDER BY li DESC`, Algorithm 4
//! line 10) asks for a *prefix* of an FK group under a fixed ordering:
//! local importance `li(t) = Im(t) · Af(Ri)` is the per-tuple global
//! importance scaled by a per-relation constant, so *one* global-importance
//! order per table serves every GDS node reading it. Pre-sorting each FK
//! posting list by descending global importance turns the probe from a
//! heap pass over the whole group (`O(g log l)`) into a bounded prefix
//! scan (`O(l)`).
//!
//! Ordering contract: postings are sorted by `(score descending, RowId
//! ascending)`, and the prefix scan is valid for any `li` that is a
//! *monotone non-decreasing* function of the installed score — `li =
//! global · affinity` qualifies because IEEE multiplication by a positive
//! constant is monotone. Monotone maps can still collapse distinct scores
//! to equal `li` (a 1-ulp score gap erased by the multiplication), where
//! the raw posting order (score desc) and the heap path's tie order
//! (`RowId` asc, per [`crate::top_l`]) differ; the scan therefore collects
//! the li-tie run straddling the cut in full and re-ranks it by `(li
//! desc, RowId asc)`, keeping the two paths byte-identical
//! unconditionally (unit- and property-tested).
//!
//! Because the sort key is external (global importance is computed by the
//! ranking layer *after* the database is loaded), installation is a
//! finalization step: [`crate::Database::install_importance_order`] sorts
//! every posting list and returns an opaque [`FkOrderToken`]. Query paths
//! pass the token they expect back in; the fast path only fires when it
//! matches the installed one, so a context carrying scores from a
//! *different* ranking setting silently falls back to the heap path
//! instead of scanning postings in the wrong order.
//!
//! **Updates.** The installed order is *maintained*, not torn down, under
//! scored inserts ([`crate::Database::insert_scored`]): the new row is
//! binary-inserted into every affected posting list and the token is
//! **re-stamped** with the database's new [`Epoch`] — contexts built
//! after the mutation (whose scores carry the re-stamped token) keep the
//! prefix-scan fast path, while contexts holding the superseded token
//! fall back to the heap path. Only the legacy un-scored
//! [`crate::Database::insert`] still drops the affected table's sorted
//! postings (it has no score to place the row with). Above a churn
//! threshold the per-table maintenance switches to an epoch-batched full
//! re-sort, amortizing the `O(g)` memmove of many binary inserts into one
//! `O(Σ g log g)` pass; both strategies are byte-identical to a
//! from-scratch install (property-tested).
//!
//! [`SortedLinkIndex`] extends the same idea to junction tables: per
//! (junction, orientation), the junction rows of each source key are
//! pre-joined to their target rows and sorted by descending *target*
//! importance, so junction-source TOP-l probes (CoAuthor, citations)
//! become prefix scans too — mirroring the data graph's collapsed
//! `MnLink`, but with counted accesses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::epoch::Epoch;
use crate::table::RowId;

/// Identifies one installed importance ordering at one mutation epoch.
///
/// The `order` id is process-unique
/// ([`crate::Database::install_importance_order`] mints a fresh one on
/// every call), so a token can never validate against an ordering it was
/// not minted for. The `epoch` distinguishes *versions* of one order:
/// scored inserts re-stamp the installed token with the new epoch instead
/// of invalidating it, so holders of the superseded token (score sets
/// that predate the mutation) heap-fall-back while freshly synchronized
/// contexts keep the fast path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FkOrderToken {
    order: u64,
    epoch: Epoch,
}

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

impl FkOrderToken {
    /// Mints a token with a process-unique order id at `epoch`.
    pub(crate) fn fresh(epoch: Epoch) -> FkOrderToken {
        FkOrderToken { order: NEXT_TOKEN.fetch_add(1, Ordering::Relaxed), epoch }
    }

    /// The same order, re-stamped at a later epoch (maintenance, not
    /// re-installation).
    #[must_use]
    pub(crate) fn restamped(self, epoch: Epoch) -> FkOrderToken {
        FkOrderToken { order: self.order, epoch }
    }

    /// The mutation epoch this token was (re-)stamped at.
    pub fn epoch(self) -> Epoch {
        self.epoch
    }

    /// True when `other` is the same installed order, at any epoch.
    pub fn same_order(self, other: FkOrderToken) -> bool {
        self.order == other.order
    }
}

/// The importance-sorted postings of one FK column: the same keys and row
/// sets as the base hash index, with every posting list pre-sorted by
/// `(score descending, RowId ascending)`.
#[derive(Clone, Debug, Default)]
pub struct SortedFkIndex {
    postings: HashMap<i64, Vec<RowId>>,
}

impl SortedFkIndex {
    /// Builds the sorted copy of a base FK index under `score`.
    pub(crate) fn build(
        base: &HashMap<i64, Vec<RowId>>,
        score: &dyn Fn(RowId) -> f64,
    ) -> SortedFkIndex {
        let postings = base
            .iter()
            .map(|(&key, rows)| {
                let mut scored: Vec<(f64, RowId)> = rows.iter().map(|&r| (score(r), r)).collect();
                scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                (key, scored.into_iter().map(|(_, r)| r).collect())
            })
            .collect();
        SortedFkIndex { postings }
    }

    /// Binary-inserts a row into `key`'s posting list at its exact
    /// `(score desc, RowId asc)` position — where a full re-sort would put
    /// it. `scores[r]` must give the installed score of every
    /// already-posted row (tombstoned entries keep their stale score, so
    /// the comparisons stay consistent). Serves both freshly appended rows
    /// (always the largest RowId) and *re*-insertions of updated mid-table
    /// rows, where the RowId tie-break is load-bearing.
    pub(crate) fn insert_scored(&mut self, key: i64, row: RowId, score: f64, scores: &[f64]) {
        let list = self.postings.entry(key).or_default();
        let pos = list.partition_point(|&r| match scores[r.index()].total_cmp(&score) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => r < row,
            std::cmp::Ordering::Less => false,
        });
        list.insert(pos, row);
    }

    /// Removes a row from `key`'s posting list by identity scan (the
    /// settlement removal phase for updated rows, whose installed score is
    /// about to change — a binary search by the *new* score would look in
    /// the wrong place). Drops the key when the list empties, matching a
    /// fresh build. No-op if the row is not posted.
    pub(crate) fn remove(&mut self, key: i64, row: RowId) {
        if let Some(list) = self.postings.get_mut(&key) {
            if let Some(pos) = list.iter().position(|&r| r == row) {
                list.remove(pos);
            }
            if list.is_empty() {
                self.postings.remove(&key);
            }
        }
    }

    /// The rows whose FK equals `key`, best-importance first.
    pub fn rows(&self, key: i64) -> &[RowId] {
        static EMPTY: [RowId; 0] = [];
        self.postings.get(&key).map(|v| v.as_slice()).unwrap_or(&EMPTY)
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.postings.len()
    }

    /// Every posting list, in hash order (segment writers sort the keys
    /// themselves for a deterministic on-disk layout).
    pub fn posting_lists(&self) -> impl Iterator<Item = (i64, &[RowId])> {
        self.postings.iter().map(|(&k, v)| (k, v.as_slice()))
    }
}

/// One source key's pre-joined postings in a [`SortedLinkIndex`].
#[derive(Clone, Debug, Default)]
struct LinkPostings {
    /// `(junction row, target row)` pairs, sorted by `(target score desc,
    /// target RowId asc, junction RowId asc)`.
    pairs: Vec<(RowId, RowId)>,
    /// Size of the raw junction FK group for this key (includes junction
    /// rows whose target FK is NULL or unresolvable). The prefix-scan
    /// probe reports this as the junction-probe tuple count so its access
    /// accounting is identical to the heap path's.
    raw_len: u32,
}

/// Per-(junction, orientation) link postings sorted by target importance:
/// for each source key, the junction rows joined to their target rows,
/// best target first. Lives on the *junction* table, keyed by the source
/// FK column; maintained under scored inserts exactly like
/// [`SortedFkIndex`].
#[derive(Clone, Debug, Default)]
pub struct SortedLinkIndex {
    postings: HashMap<i64, LinkPostings>,
}

/// How one junction row's target FK resolves while building a
/// [`SortedLinkIndex`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum LinkTarget {
    /// NULL target FK: no pair, but the row counts toward the raw group.
    Null,
    /// Non-NULL target FK (carrying the referenced pk) with no matching
    /// row. The referenced row could be inserted later — at which point
    /// the postings would silently miss it while a live heap probe finds
    /// it — so a dangling target poisons the whole orientation
    /// ([`SortedLinkIndex::build`] returns it as the error; the heap
    /// fallback serves the orientation, and the caller watches the
    /// missing endpoint so its arrival can heal).
    Dangling(i64),
    /// Resolved target row.
    Row(RowId),
}

impl SortedLinkIndex {
    /// Builds the index for one orientation of a junction table, or the
    /// first dangling target pk when any junction row's target FK dangles
    /// (see [`LinkTarget::Dangling`]).
    ///
    /// `base` is the junction's hash FK index on the *source* column;
    /// `target_of` resolves a junction row's target; `target_score` gives
    /// the installed importance of a target row.
    pub(crate) fn build(
        base: &HashMap<i64, Vec<RowId>>,
        target_of: &dyn Fn(RowId) -> LinkTarget,
        target_score: &dyn Fn(RowId) -> f64,
    ) -> Result<SortedLinkIndex, i64> {
        let mut postings = HashMap::with_capacity(base.len());
        for (&key, jrows) in base {
            let mut scored: Vec<(f64, RowId, RowId)> = Vec::with_capacity(jrows.len());
            for &j in jrows {
                match target_of(j) {
                    LinkTarget::Null => {}
                    LinkTarget::Dangling(pk) => return Err(pk),
                    LinkTarget::Row(t) => scored.push((target_score(t), t, j)),
                }
            }
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
            let pairs = scored.into_iter().map(|(_, t, j)| (j, t)).collect();
            postings.insert(key, LinkPostings { pairs, raw_len: jrows.len() as u32 });
        }
        Ok(SortedLinkIndex { postings })
    }

    /// Binary-inserts a junction row at its exact `(target score desc,
    /// target RowId asc, junction RowId asc)` position — where a rebuild
    /// would put it. `target` is `None` when the row's target FK is
    /// NULL/unresolvable (it still counts in `raw_len`). `target_scores[t]`
    /// must give the installed score of target rows. Serves both freshly
    /// appended junction rows (always the largest RowId of their table)
    /// and *re*-insertions of updated mid-table junction rows, where the
    /// junction-RowId tie-break is load-bearing.
    pub(crate) fn insert_scored(
        &mut self,
        key: i64,
        junction_row: RowId,
        target: Option<RowId>,
        target_scores: &[f64],
    ) {
        let entry = self.postings.entry(key).or_default();
        entry.raw_len += 1;
        if let Some(t) = target {
            let s = target_scores[t.index()];
            // An existing pair precedes the new one iff its target scores
            // higher, ties with a smaller target RowId, or matches the
            // target exactly with a smaller junction RowId.
            let pos = entry.pairs.partition_point(|&(pj, pt)| {
                match target_scores[pt.index()].total_cmp(&s) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => pt < t || (pt == t && pj < junction_row),
                    std::cmp::Ordering::Less => false,
                }
            });
            entry.pairs.insert(pos, (junction_row, t));
        }
    }

    /// Un-posts one junction row from `key`'s group: the raw group count
    /// drops by one, and the row's pair (if any) is physically removed
    /// when `remove_pair` is set (an updated row about to be re-inserted)
    /// or left in place as a *tombstone* otherwise (a deleted row —
    /// consumers skip it via the dual-endpoint liveness check, and
    /// compaction purges it later). Returns `true` when a pair stayed
    /// behind as a tombstone, so the caller can count compaction debt.
    /// No-op (returns `false`) if the key has no postings.
    pub(crate) fn unpost(&mut self, key: i64, junction_row: RowId, remove_pair: bool) -> bool {
        let Some(entry) = self.postings.get_mut(&key) else { return false };
        entry.raw_len = entry.raw_len.saturating_sub(1);
        let posted = entry.pairs.iter().position(|&(pj, _)| pj == junction_row);
        if let Some(pos) = posted {
            if remove_pair {
                entry.pairs.remove(pos);
            }
        }
        if entry.raw_len == 0 {
            // An emptied raw group matches a fresh build exactly: the
            // hash index drops empty groups, so the postings drop the
            // key — any pairs still in it are tombstones serving nobody.
            self.postings.remove(&key);
            return false;
        }
        posted.is_some() && !remove_pair
    }

    /// The `(junction row, target row)` pairs of `key`, best target first.
    ///
    /// May contain *tombstoned* pairs whose junction row has since been
    /// deleted ([`SortedLinkIndex::unpost`]); consumers must skip pairs
    /// with a dead endpoint (junction-row or target-row liveness).
    pub fn pairs(&self, key: i64) -> &[(RowId, RowId)] {
        static EMPTY: [(RowId, RowId); 0] = [];
        self.postings.get(&key).map(|p| p.pairs.as_slice()).unwrap_or(&EMPTY)
    }

    /// The raw junction FK group size of `key` (what a heap-path junction
    /// probe reports as its tuple count).
    pub fn raw_group_len(&self, key: i64) -> usize {
        self.postings.get(&key).map(|p| p.raw_len as usize).unwrap_or(0)
    }

    /// Number of distinct source keys.
    pub fn key_count(&self) -> usize {
        self.postings.len()
    }

    /// Every source key's group — `(key, pairs, raw_len)` — in hash order
    /// (segment writers sort the keys themselves for a deterministic
    /// on-disk layout). Pairs may include tombstones (see
    /// [`SortedLinkIndex::pairs`]).
    pub fn groups(&self) -> impl Iterator<Item = (i64, &[(RowId, RowId)], usize)> {
        self.postings.iter().map(|(&k, p)| (k, p.pairs.as_slice(), p.raw_len as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_unique_and_restamp_preserves_order_identity() {
        let a = FkOrderToken::fresh(Epoch(0));
        let b = FkOrderToken::fresh(Epoch(0));
        assert_ne!(a, b);
        let a2 = a.restamped(Epoch(3));
        assert_ne!(a, a2, "a re-stamped token no longer equals the superseded one");
        assert!(a.same_order(a2), "re-stamping preserves the order identity");
        assert!(!a.same_order(b));
        assert_eq!(a2.epoch(), Epoch(3));
    }

    #[test]
    fn build_sorts_by_score_desc_then_row_asc() {
        let mut base: HashMap<i64, Vec<RowId>> = HashMap::new();
        base.insert(7, vec![RowId(0), RowId(1), RowId(2), RowId(3)]);
        let scores = [1.0, 3.0, 3.0, 2.0];
        let idx = SortedFkIndex::build(&base, &|r: RowId| scores[r.index()]);
        assert_eq!(idx.rows(7), &[RowId(1), RowId(2), RowId(3), RowId(0)]);
        assert!(idx.rows(99).is_empty());
        assert_eq!(idx.key_count(), 1);
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        let mut base: HashMap<i64, Vec<RowId>> = HashMap::new();
        base.insert(7, vec![RowId(0), RowId(1), RowId(2)]);
        let mut scores = vec![1.0, 3.0, 2.0];
        let mut idx = SortedFkIndex::build(&base, &|r: RowId| scores[r.index()]);
        // Append rows with a fresh-max, a middle, and a tying score.
        for (row, s) in [(RowId(3), 5.0), (RowId(4), 2.5), (RowId(5), 3.0)] {
            scores.push(s);
            base.get_mut(&7).unwrap().push(row);
            idx.insert_scored(7, row, s, &scores);
            let rebuilt = SortedFkIndex::build(&base, &|r: RowId| scores[r.index()]);
            assert_eq!(idx.rows(7), rebuilt.rows(7), "after appending {row:?}");
        }
        assert_eq!(
            idx.rows(7),
            &[RowId(3), RowId(1), RowId(5), RowId(4), RowId(2), RowId(0)],
            "ties resolved by ascending RowId"
        );
    }

    #[test]
    fn remove_then_reinsert_matches_rebuild_for_mid_table_rows() {
        let mut base: HashMap<i64, Vec<RowId>> = HashMap::new();
        base.insert(7, vec![RowId(0), RowId(1), RowId(2), RowId(3)]);
        let mut scores = vec![1.0, 3.0, 3.0, 2.0];
        let mut idx = SortedFkIndex::build(&base, &|r: RowId| scores[r.index()]);
        // Reposition row 0 (a mid-table RowId) to score 3.0: it ties rows
        // 1 and 2 and must land *before* both, as a fresh sort would.
        idx.remove(7, RowId(0));
        scores[0] = 3.0;
        idx.insert_scored(7, RowId(0), 3.0, &scores);
        let rebuilt = SortedFkIndex::build(&base, &|r: RowId| scores[r.index()]);
        assert_eq!(idx.rows(7), rebuilt.rows(7));
        assert_eq!(idx.rows(7), &[RowId(0), RowId(1), RowId(2), RowId(3)]);
        // Removing the last row of a key drops the key entirely.
        let mut solo: HashMap<i64, Vec<RowId>> = HashMap::new();
        solo.insert(9, vec![RowId(5)]);
        let mut idx2 = SortedFkIndex::build(&solo, &|_| 1.0);
        idx2.remove(9, RowId(5));
        assert_eq!(idx2.key_count(), 0);
        // Removing an unposted row is a no-op.
        idx2.remove(9, RowId(6));
    }

    #[test]
    fn link_index_build_and_incremental_insert_match() {
        // Junction rows 0..4 map source key 7 to targets with varying
        // scores; row 4 has a NULL target (counts in raw_len, no pair).
        let mut base: HashMap<i64, Vec<RowId>> = HashMap::new();
        base.insert(7, vec![RowId(0), RowId(1), RowId(2), RowId(3), RowId(4)]);
        let targets = [Some(RowId(0)), Some(RowId(1)), Some(RowId(2)), Some(RowId(1)), None];
        let as_link = |t: Option<RowId>| t.map_or(LinkTarget::Null, LinkTarget::Row);
        let mut tscores = vec![2.0, 3.0, 1.0];
        let mut idx =
            SortedLinkIndex::build(&base, &|j: RowId| as_link(targets[j.index()]), &|t: RowId| {
                tscores[t.index()]
            })
            .expect("no dangling targets");
        assert_eq!(idx.raw_group_len(7), 5);
        assert_eq!(
            idx.pairs(7),
            &[
                (RowId(1), RowId(1)),
                (RowId(3), RowId(1)),
                (RowId(0), RowId(0)),
                (RowId(2), RowId(2))
            ]
        );
        // Append a new target row (score 2.5) and a junction row to it,
        // plus one tying an existing (score, target) pair.
        tscores.push(2.5);
        idx.insert_scored(7, RowId(5), Some(RowId(3)), &tscores);
        idx.insert_scored(7, RowId(6), Some(RowId(1)), &tscores);
        base.get_mut(&7).unwrap().extend([RowId(5), RowId(6)]);
        let targets2 = {
            let mut t = targets.to_vec();
            t.extend([Some(RowId(3)), Some(RowId(1))]);
            t
        };
        let rebuilt =
            SortedLinkIndex::build(&base, &|j: RowId| as_link(targets2[j.index()]), &|t: RowId| {
                tscores[t.index()]
            })
            .expect("no dangling targets");
        assert_eq!(idx.pairs(7), rebuilt.pairs(7));
        assert_eq!(idx.raw_group_len(7), rebuilt.raw_group_len(7));

        // A dangling (non-NULL, unresolvable) target poisons the build:
        // the orientation is withheld (the missing pk is reported so the
        // caller can watch it) and the heap path serves it.
        let mut dangle: HashMap<i64, Vec<RowId>> = HashMap::new();
        dangle.insert(1, vec![RowId(0)]);
        let poisoned =
            SortedLinkIndex::build(&dangle, &|_: RowId| LinkTarget::Dangling(42), &|t| {
                tscores[t.index()]
            });
        assert_eq!(poisoned.err(), Some(42));
    }
}
