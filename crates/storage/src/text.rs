//! Text tokenization shared by the keyword index and the generators.

/// Tokenizes text for keyword matching: lowercased maximal runs of
/// alphanumeric characters. `"Power-law (Internet)"` becomes
/// `["power", "law", "internet"]`.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// True when every query keyword appears as a token of `text`.
/// This is the per-tuple conjunctive semantics of the paper's queries
/// (e.g. Q: "Christos Faloutsos" matches the Author tuple containing both).
pub fn contains_all_keywords(text: &str, keywords: &[String]) -> bool {
    let tokens = tokenize(text);
    keywords.iter().all(|k| tokens.iter().any(|t| t == k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_on_non_alnum() {
        assert_eq!(
            tokenize("On Power-law Relationships"),
            vec!["on", "power", "law", "relationships"]
        );
    }

    #[test]
    fn tokenize_lowercases_and_keeps_digits() {
        assert_eq!(tokenize("SIGCOMM 1999"), vec!["sigcomm", "1999"]);
    }

    #[test]
    fn tokenize_empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- !!").is_empty());
    }

    #[test]
    fn conjunctive_match() {
        let kws = vec!["christos".to_owned(), "faloutsos".to_owned()];
        assert!(contains_all_keywords("Christos Faloutsos", &kws));
        assert!(!contains_all_keywords("Michalis Faloutsos", &kws));
        // substring is not a token match
        assert!(!contains_all_keywords("Christosfaloutsos", &kws));
    }
}
