//! Typed attribute values.

use std::fmt;

/// The type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer (also the type of all keys).
    Int,
    /// 64-bit float (prices, rates).
    Float,
    /// UTF-8 text (names, titles, comments).
    Text,
}

/// A single attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Text value.
    Text(String),
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Text(_) => Some(ValueType::Text),
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric content: `Int` widened to `f64`, or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Text content, if this is a `Text`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is compatible with the given column type
    /// (NULL is compatible with every type).
    pub fn matches(&self, ty: ValueType) -> bool {
        match self.value_type() {
            None => true,
            Some(t) => t == ty,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:.2}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_values() {
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
        assert_eq!(Value::Float(1.0).value_type(), Some(ValueType::Float));
        assert_eq!(Value::from("x").value_type(), Some(ValueType::Text));
        assert_eq!(Value::Null.value_type(), None);
    }

    #[test]
    fn null_matches_every_type() {
        for ty in [ValueType::Int, ValueType::Float, ValueType::Text] {
            assert!(Value::Null.matches(ty));
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from("hi").as_int(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(1.5).to_string(), "1.50");
    }
}
