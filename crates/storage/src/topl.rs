//! Bounded top-l selection.
//!
//! The `SELECT * TOP l ... ORDER BY li DESC` probe of Algorithm 4 line 10
//! only ever keeps `l` rows, yet the original implementation sorted the
//! *entire* FK group before truncating — `O(g log g)` per probe on groups
//! of size `g`, the dominant cost of Database-source OS generation on
//! high-fan-out groups (ROADMAP hot path). [`top_l`] instead maintains a
//! bounded min-heap of the best `l` candidates seen so far: `O(g log l)`,
//! with the common case (candidate worse than the current floor) a single
//! comparison and no heap traffic.
//!
//! Output order is exactly the sorted-prefix contract: descending score
//! with ascending tie-break on the payload (`T`'s `Ord`), bit-identical to
//! `sort_by(score desc, item asc); truncate(l)` — the storage property
//! suite asserts this against the full-sort oracle.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A scored candidate ordered by "goodness": higher score first, then
/// smaller payload. Wrapped in [`Reverse`] inside the heap so the *worst
/// kept* candidate sits at the top, ready to be displaced.
#[derive(Debug)]
struct Entry<T>(f64, T);

impl<T: Ord> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T: Ord> Eq for Entry<T> {}
impl<T: Ord> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Greater = better: higher score, then *smaller* payload.
        self.0.total_cmp(&other.0).then_with(|| other.1.cmp(&self.1))
    }
}

/// Selects the `l` best `(score, item)` pairs — descending score,
/// ascending item on ties — without sorting the full input.
///
/// Items must be distinct (database rows are); equal `(score, item)`
/// duplicates would tie-break arbitrarily.
pub fn top_l<T: Ord>(scored: impl IntoIterator<Item = (f64, T)>, l: usize) -> Vec<(f64, T)> {
    if l == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Reverse<Entry<T>>> = BinaryHeap::with_capacity(l + 1);
    for (score, item) in scored {
        if heap.len() < l {
            heap.push(Reverse(Entry(score, item)));
        } else {
            let candidate = Entry(score, item);
            // `peek` is the worst kept entry; strict improvement displaces.
            if candidate > heap.peek().expect("heap is at capacity").0 {
                heap.pop();
                heap.push(Reverse(candidate));
            }
        }
    }
    let mut kept: Vec<Entry<T>> = heap.into_iter().map(|Reverse(e)| e).collect();
    // Best first — same order the full sort produced.
    kept.sort_by(|a, b| b.cmp(a));
    kept.into_iter().map(|Entry(s, t)| (s, t)).collect()
}

/// Reusable working memory for [`top_l`]-shaped selection on hot serving
/// paths. [`top_l`] allocates its heap (and the caller a result `Vec`) on
/// every probe; a warm scratch makes the whole selection allocation-free
/// — the buffers grow to the workload's high-water mark once and are
/// reused across probes (`tests/alloc_guard.rs` in the core crate pins
/// this for the end-to-end query path).
#[derive(Debug)]
pub struct TopLScratch<T> {
    /// The bounded min-heap's backing storage, recycled between probes.
    heap: Vec<Reverse<Entry<T>>>,
    /// Staging buffer for prefix-scan fast paths that collect a bounded
    /// candidate run before ranking it ([`TopLScratch::rank_staged_into`]).
    pub staged: Vec<(f64, T)>,
}

impl<T> Default for TopLScratch<T> {
    fn default() -> Self {
        TopLScratch { heap: Vec::new(), staged: Vec::new() }
    }
}

impl<T: Ord> TopLScratch<T> {
    /// An empty scratch; buffers warm up on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`top_l`] appending only the selected items (scores dropped, order
    /// preserved: descending score, ascending item on ties) to `out`,
    /// drawing all working memory from the scratch.
    pub fn select_into(
        &mut self,
        scored: impl IntoIterator<Item = (f64, T)>,
        l: usize,
        out: &mut Vec<T>,
    ) {
        if l == 0 {
            return;
        }
        self.heap.clear();
        let mut heap = BinaryHeap::from(std::mem::take(&mut self.heap));
        for (score, item) in scored {
            if heap.len() < l {
                heap.push(Reverse(Entry(score, item)));
            } else {
                let candidate = Entry(score, item);
                if candidate > heap.peek().expect("heap is at capacity").0 {
                    heap.pop();
                    heap.push(Reverse(candidate));
                }
            }
        }
        let mut kept = heap.into_vec();
        // Ascending `Reverse<Entry>` = best entry first — the exact order
        // [`top_l`] returns. Items are distinct (database rows are), so
        // the unstable sort has no equal keys to reorder.
        kept.sort_unstable();
        out.extend(kept.drain(..).map(|Reverse(Entry(_, t))| t));
        self.heap = kept;
    }

    /// Ranks the candidates accumulated in [`TopLScratch::staged`]
    /// (drained, capacity kept) and appends the selected items to `out`.
    pub fn rank_staged_into(&mut self, l: usize, out: &mut Vec<T>) {
        let mut staged = std::mem::take(&mut self.staged);
        self.select_into(staged.drain(..), l, out);
        self.staged = staged;
    }

    /// Stages the Avoidance-Condition-2 prefix of a descending-importance
    /// posting scan: pulls items from `next` (best importance first),
    /// scores each with `score` (`None` skips the item — a tombstoned
    /// row), and stops at the paper's two cut conditions — the first
    /// score at or below `largest_l`, or, once `l` candidates are staged,
    /// the first score strictly below the current l-th (only ties can
    /// still displace it on the item tie-break). Rank the staged run with
    /// [`TopLScratch::rank_staged_into`].
    ///
    /// This is the one copy of the prefix-cut logic every sorted-posting
    /// backend shares — the in-RAM slices and the paged on-disk reader
    /// consume it through the same loop, which is what makes their
    /// results and join accounting byte-identical by construction.
    pub fn stage_prefix(
        &mut self,
        l: usize,
        largest_l: f64,
        mut next: impl FnMut() -> Option<T>,
        mut score: impl FnMut(&T) -> Option<f64>,
    ) {
        self.staged.clear();
        while let Some(item) = next() {
            let Some(s) = score(&item) else { continue };
            // Importance is non-increasing along the scan, so the first
            // value at or below the threshold ends the probe...
            if s <= largest_l {
                break;
            }
            // ...and once l candidates are staged, the scan only continues
            // through items tying the current l-th score (they may
            // displace it on the item tie-break).
            if self.staged.len() >= l && s < self.staged[l - 1].0 {
                break;
            }
            self.staged.push((s, item));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(mut scored: Vec<(f64, u32)>, l: usize) -> Vec<(f64, u32)> {
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(l);
        scored
    }

    #[test]
    fn matches_sort_truncate_oracle() {
        let scored = vec![(3.0, 1u32), (5.0, 2), (1.0, 3), (5.0, 4), (2.0, 5)];
        for l in 0..=6 {
            assert_eq!(top_l(scored.clone(), l), oracle(scored.clone(), l), "l={l}");
        }
    }

    #[test]
    fn ties_break_by_ascending_item() {
        let scored = vec![(1.0, 9u32), (1.0, 3), (1.0, 7), (1.0, 1)];
        assert_eq!(top_l(scored, 2), vec![(1.0, 1), (1.0, 3)]);
    }

    #[test]
    fn short_input_returns_everything_sorted() {
        let scored = vec![(1.0, 2u32), (4.0, 1)];
        assert_eq!(top_l(scored, 10), vec![(4.0, 1), (1.0, 2)]);
    }

    #[test]
    fn scratch_select_matches_top_l_and_recycles_capacity() {
        let scored = vec![(3.0, 1u32), (5.0, 2), (1.0, 3), (5.0, 4), (2.0, 5), (5.0, 0)];
        let mut scratch = TopLScratch::new();
        for l in 0..=7 {
            let mut out = vec![99u32]; // appends, never clears
            scratch.select_into(scored.clone(), l, &mut out);
            let expect: Vec<u32> = std::iter::once(99)
                .chain(top_l(scored.clone(), l).into_iter().map(|(_, t)| t))
                .collect();
            assert_eq!(out, expect, "l={l}");
        }
        // Staged ranking goes through the same comparator.
        scratch.staged.extend(scored.iter().copied());
        let mut out = Vec::new();
        scratch.rank_staged_into(3, &mut out);
        assert_eq!(out, vec![0, 2, 4]);
        assert!(scratch.staged.is_empty(), "staging buffer drains on rank");
    }

    #[test]
    fn handles_negative_and_extreme_scores() {
        let scored =
            vec![(-1.0, 1u32), (f64::MAX, 2), (f64::MIN_POSITIVE, 3), (-f64::MAX, 4), (0.0, 5)];
        assert_eq!(top_l(scored.clone(), 3), oracle(scored, 3));
    }
}
