//! Property tests for the relational substrate: index consistency under
//! arbitrary insert sequences.

use proptest::prelude::*;

use sizel_storage::{Database, StorageError, TableSchema, Value, ValueType};

fn fresh_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("Parent").pk("id").searchable_text("name").build().unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("Child")
            .pk("id")
            .column("payload", ValueType::Float)
            .fk("parent_id", "Parent")
            .build()
            .unwrap(),
    )
    .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PK index and FK multi-index agree with a full scan after any insert
    /// sequence (duplicate PKs rejected without corrupting state).
    #[test]
    fn indexes_match_full_scan(
        parent_keys in proptest::collection::vec(0i64..20, 1..30),
        child_rows in proptest::collection::vec((0i64..50, 0i64..20, -1e6..1e6f64), 0..60),
    ) {
        let mut db = fresh_db();
        let mut inserted_parents = std::collections::HashSet::new();
        for &k in &parent_keys {
            let r = db.insert("Parent", vec![Value::Int(k), format!("p{k}").into()]);
            if inserted_parents.insert(k) {
                prop_assert!(r.is_ok());
            } else {
                let dup = matches!(r, Err(StorageError::DuplicateKey { .. }));
                prop_assert!(dup);
            }
        }
        let mut inserted_children = std::collections::HashSet::new();
        let mut accepted: Vec<(i64, i64)> = Vec::new();
        for &(ck, pk, payload) in &child_rows {
            let r = db.insert(
                "Child",
                vec![Value::Int(ck), Value::Float(payload), Value::Int(pk)],
            );
            if inserted_children.insert(ck) {
                prop_assert!(r.is_ok());
                accepted.push((ck, pk));
            } else {
                prop_assert!(r.is_err());
            }
        }
        let child = db.table_id("Child").unwrap();
        let fk_col = db.table(child).schema.column_index("parent_id").unwrap();
        // The FK index groups exactly the accepted rows.
        for pk in 0i64..20 {
            let via_index = db.table(child).rows_where_eq(fk_col, pk).len();
            let via_scan = accepted.iter().filter(|&&(_, p)| p == pk).count();
            prop_assert_eq!(via_index, via_scan, "fk group for parent {}", pk);
        }
        // Every accepted child is found by PK lookup.
        for &(ck, _) in &accepted {
            prop_assert!(db.table(child).by_pk(ck).is_some());
        }
        // FK validation: succeeds iff every referenced parent exists.
        let all_parents_exist =
            accepted.iter().all(|&(_, p)| inserted_parents.contains(&p));
        prop_assert_eq!(db.validate_foreign_keys().is_ok(), all_parents_exist);
    }

    /// select_eq_top_l returns a sorted prefix of the filtered group.
    #[test]
    fn top_l_select_is_sorted_prefix(
        rows in proptest::collection::vec(0.0..100.0f64, 1..40),
        l in 1usize..10,
        threshold in 0.0..100.0f64,
    ) {
        let mut db = fresh_db();
        db.insert("Parent", vec![Value::Int(1), "p".into()]).unwrap();
        for (i, &w) in rows.iter().enumerate() {
            db.insert("Child", vec![Value::Int(i as i64), Value::Float(w), Value::Int(1)])
                .unwrap();
        }
        let child = db.table_id("Child").unwrap();
        let fk_col = db.table(child).schema.column_index("parent_id").unwrap();
        let payload = db.table(child).schema.column_index("payload").unwrap();
        let li = |r: sizel_storage::RowId| db.table(child).value(r, payload).as_f64().unwrap();
        let got = db.select_eq_top_l(child, fk_col, 1, l, threshold, None, &li);
        prop_assert!(got.len() <= l);
        // Sorted descending, all above threshold.
        let scores: Vec<f64> = got.iter().map(|&r| li(r)).collect();
        for w in scores.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(scores.iter().all(|&s| s > threshold));
        // It is a true top-l: no excluded row beats the smallest included.
        if got.len() == l {
            let floor = scores.last().copied().unwrap();
            let better = rows.iter().filter(|&&w| w > floor).count();
            prop_assert!(better < l + 1, "more than l rows strictly above the floor");
        } else {
            // Fewer than l returned: everything above threshold is included.
            let above = rows.iter().filter(|&&w| w > threshold).count();
            prop_assert_eq!(got.len(), above);
        }
    }

    /// The bounded-heap `select_eq_top_l` is *exactly* the sorted-prefix
    /// oracle: full sort (score desc, RowId asc), filter by threshold,
    /// truncate to l — same rows, same order, for random groups,
    /// thresholds, and l. Scores include duplicates (narrow value range)
    /// so tie-breaking is exercised.
    #[test]
    fn heap_top_l_equals_sorted_prefix_oracle(
        // Scores quantized to 0.5 steps so duplicate scores (tie-breaking)
        // are common.
        groups in proptest::collection::vec(
            (0i64..8, (0.0..16.0f64).prop_map(|w| (w * 2.0).floor() / 2.0)), 0..120),
        l in 0usize..12,
        threshold in 0.0..12.0f64,
    ) {
        let mut db = fresh_db();
        for pk in 0i64..8 {
            db.insert("Parent", vec![Value::Int(pk), format!("p{pk}").into()]).unwrap();
        }
        for (i, &(parent, w)) in groups.iter().enumerate() {
            db.insert("Child", vec![Value::Int(i as i64), Value::Float(w), Value::Int(parent)])
                .unwrap();
        }
        let child = db.table_id("Child").unwrap();
        let fk_col = db.table(child).schema.column_index("parent_id").unwrap();
        let payload = db.table(child).schema.column_index("payload").unwrap();
        let li = |r: sizel_storage::RowId| db.table(child).value(r, payload).as_f64().unwrap();
        for parent in 0i64..8 {
            let got = db.select_eq_top_l(child, fk_col, parent, l, threshold, None, &li);
            // Oracle: the full-sort prefix over the same group.
            let mut oracle: Vec<(f64, sizel_storage::RowId)> = db
                .table(child)
                .rows_where_eq(fk_col, parent)
                .iter()
                .filter_map(|&r| {
                    let s = li(r);
                    (s > threshold).then_some((s, r))
                })
                .collect();
            oracle.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            oracle.truncate(l);
            let oracle_rows: Vec<sizel_storage::RowId> =
                oracle.into_iter().map(|(_, r)| r).collect();
            prop_assert_eq!(&got, &oracle_rows, "group {} (l={}, θ={})", parent, l, threshold);
        }
    }

    /// The importance-sorted postings hold exactly the `select_eq` result
    /// set (same rows, reordered by descending score with ascending RowId
    /// ties), for arbitrary insert sequences and score assignments.
    #[test]
    fn sorted_fk_postings_equal_select_eq_result_set(
        groups in proptest::collection::vec(
            (0i64..8, (0.0..16.0f64).prop_map(|w| (w * 2.0).floor() / 2.0)), 0..120),
    ) {
        let mut db = fresh_db();
        for pk in 0i64..8 {
            db.insert("Parent", vec![Value::Int(pk), format!("p{pk}").into()]).unwrap();
        }
        for (i, &(parent, w)) in groups.iter().enumerate() {
            db.insert("Child", vec![Value::Int(i as i64), Value::Float(w), Value::Int(parent)])
                .unwrap();
        }
        let child = db.table_id("Child").unwrap();
        let fk_col = db.table(child).schema.column_index("parent_id").unwrap();
        let payload = db.table(child).schema.column_index("payload").unwrap();
        let snapshot: Vec<f64> = db
            .table(child)
            .iter()
            .map(|(r, _)| db.table(child).value(r, payload).as_f64().unwrap())
            .collect();
        // Parents score 0 (no FK postings reference them anyway).
        db.install_importance_order(&|t, r| if t == child { snapshot[r.index()] } else { 0.0 });
        let sorted = db.table(child).sorted_fk_index(fk_col).unwrap();
        for parent in 0i64..9 {
            let postings = sorted.rows(parent);
            // Same row set as the unsorted probe.
            let mut a: Vec<_> = postings.to_vec();
            a.sort();
            let mut b = db.select_eq(child, fk_col, parent);
            b.sort();
            prop_assert_eq!(a, b, "row set for parent {}", parent);
            // Ordered by (score desc, RowId asc).
            for w in postings.windows(2) {
                let (s0, s1) = (snapshot[w[0].index()], snapshot[w[1].index()]);
                prop_assert!(s0 > s1 || (s0 == s1 && w[0] < w[1]));
            }
        }
    }

    /// The prefix-scan fast path of `select_eq_top_l` is byte-identical to
    /// the heap fallback whenever `li` is a positive multiple of the
    /// installed score — the exact contract OS generation relies on
    /// (`li = global · affinity`).
    #[test]
    fn sorted_fast_path_equals_heap_path(
        groups in proptest::collection::vec(
            (0i64..8, (0.0..16.0f64).prop_map(|w| (w * 2.0).floor() / 2.0)), 0..120),
        l in 0usize..12,
        threshold in 0.0..12.0f64,
        affinity in 0.25..1.0f64,
    ) {
        let mut db = fresh_db();
        for pk in 0i64..8 {
            db.insert("Parent", vec![Value::Int(pk), format!("p{pk}").into()]).unwrap();
        }
        for (i, &(parent, w)) in groups.iter().enumerate() {
            db.insert("Child", vec![Value::Int(i as i64), Value::Float(w), Value::Int(parent)])
                .unwrap();
        }
        let child = db.table_id("Child").unwrap();
        let fk_col = db.table(child).schema.column_index("parent_id").unwrap();
        let payload = db.table(child).schema.column_index("payload").unwrap();
        let snapshot: Vec<f64> = db
            .table(child)
            .iter()
            .map(|(r, _)| db.table(child).value(r, payload).as_f64().unwrap())
            .collect();
        let token = db.install_importance_order(&|t, r| {
            if t.index() == 1 { snapshot[r.index()] } else { 0.0 }
        });
        let li = |r: sizel_storage::RowId| affinity * snapshot[r.index()];
        for parent in 0i64..8 {
            let before = db.access().snapshot();
            let fast = db.select_eq_top_l(child, fk_col, parent, l, threshold, Some(token), &li);
            let mid = db.access().snapshot();
            let slow = db.select_eq_top_l(child, fk_col, parent, l, threshold, None, &li);
            let after = db.access().snapshot();
            prop_assert_eq!(&fast, &slow, "group {} (l={}, θ={})", parent, l, threshold);
            prop_assert_eq!(mid.since(before), after.since(mid), "cost accounting differs");
        }
    }

    /// The standalone helper agrees with the oracle on arbitrary scored
    /// lists (including NaN-free extreme floats and heavy ties).
    #[test]
    fn top_l_helper_equals_oracle(
        scored in proptest::collection::vec((0.0..4.0f64, 0u32..1000), 0..80),
        l in 0usize..20,
    ) {
        // Deduplicate items: rows are unique in the real call sites.
        let mut seen = std::collections::HashSet::new();
        let scored: Vec<(f64, u32)> =
            scored.into_iter().filter(|&(_, t)| seen.insert(t)).collect();
        let mut oracle = scored.clone();
        oracle.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        oracle.truncate(l);
        prop_assert_eq!(sizel_storage::top_l(scored, l), oracle);
    }
}
