//! Property suite for the epoch subsystem (ISSUE 4, extended by ISSUE 6
//! to the full mutation model): incremental sorted-posting maintenance
//! under arbitrary **insert/update/delete** interleavings must be
//! **byte-identical** to a from-scratch `install_importance_order` over a
//! plainly-replayed database — for FK postings (live-filtered across
//! tombstones) and junction link postings alike, at every churn *and*
//! compaction threshold — and the prefix-scan fast path must keep the
//! heap path's answers *and* its paper-cost accounting.

use proptest::prelude::*;

use sizel_storage::{Database, Epoch, RowId, TableId, TableSchema, Value, ValueType};

/// Parent (link target) / Child (FK postings) / Rel (junction between
/// Parent and Child, exercising both link orientations).
fn fresh_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("Parent").pk("id").searchable_text("name").build().unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("Child")
            .pk("id")
            .column("payload", ValueType::Float)
            .fk("parent_id", "Parent")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("Rel")
            .pk("id")
            .fk("parent_id", "Parent")
            .fk("child_id", "Child")
            .junction()
            .build()
            .unwrap(),
    )
    .unwrap();
    db
}

const N_PARENTS: i64 = 6;

/// One step of the mutation stream.
#[derive(Clone, Debug)]
enum Op {
    /// Insert: (child pk, parent key, installed score)
    Child(i64, i64, f64),
    /// Insert: (rel pk, parent key, child pk candidate, installed score)
    Rel(i64, i64, i64, f64),
    /// Update: (child pk, new parent key, new installed score) — re-homes
    /// the row's FK posting and repositions it by the new score.
    UpdateChild(i64, i64, f64),
    /// Delete: (child pk) — tombstones the FK posting entry; when live
    /// Rel rows still reference the child, the link orientation drops and
    /// the dangling watch arms (the repair machinery under test).
    DeleteChild(i64),
    /// Delete: (rel pk) — junction rows are never referenced, so this is
    /// always legal; the link postings rebuild without the pair.
    DeleteRel(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // (kind, pk, parent key, child pk, raw score); scores quantized to
    // 0.5 steps so tie-breaking is exercised constantly.
    (0u8..5, 0i64..64, 0i64..N_PARENTS, 0i64..64, 0.0..8.0f64).prop_map(
        |(kind, pk, parent, child, w)| {
            let s = (w * 2.0).floor() / 2.0;
            match kind {
                0 => Op::Child(pk, parent, s),
                1 => Op::Rel(pk, parent, child, s),
                2 => Op::UpdateChild(pk, parent, s),
                3 => Op::DeleteChild(pk),
                _ => Op::DeleteRel(pk),
            }
        },
    )
}

/// The accepted plain-op form of one stream step, for the oracle replay
/// (same insertion order ⇒ same RowId space as the scored stream).
#[derive(Clone, Debug)]
enum PlainOp {
    Insert(&'static str, Vec<Value>),
    Update(&'static str, i64, Vec<Value>),
    Delete(&'static str, i64),
}

/// Seeds the database, installs an order, then drives the op stream
/// through the scored mutation API. Returns the per-table score log (the
/// oracle's install input — updated rows overwrite, deleted rows keep a
/// stale entry no install reads) and the accepted plain-op log (the
/// oracle's replay input).
fn run_stream(
    db: &mut Database,
    ops: &[Op],
    churn_threshold: usize,
    compaction_threshold: usize,
) -> (Vec<Vec<f64>>, Vec<PlainOp>) {
    db.set_churn_threshold(churn_threshold);
    db.set_compaction_threshold(compaction_threshold);
    for p in 0..N_PARENTS {
        db.insert("Parent", vec![Value::Int(p), format!("p{p}").into()]).unwrap();
    }
    // Two seed children so the install covers non-trivial postings.
    db.insert("Child", vec![Value::Int(100), Value::Float(1.0), Value::Int(0)]).unwrap();
    db.insert("Child", vec![Value::Int(101), Value::Float(2.0), Value::Int(1)]).unwrap();
    db.insert("Rel", vec![Value::Int(100), Value::Int(0), Value::Int(100)]).unwrap();

    let mut scores: Vec<Vec<f64>> = vec![
        (0..N_PARENTS).map(|p| 1.0 + p as f64).collect(), // Parent
        vec![3.0, 1.5],                                   // Child seeds
        vec![0.25],                                       // Rel seed
    ];
    {
        let snapshot = scores.clone();
        db.install_importance_order(&|t: TableId, r: RowId| snapshot[t.index()][r.index()]);
    }

    let child = db.table_id("Child").unwrap();
    let rel = db.table_id("Rel").unwrap();
    let mut accepted = Vec::new();
    for op in ops {
        match *op {
            Op::Child(pk, parent, s) => {
                let dup = db.table(child).by_pk(pk).is_some();
                let values = vec![Value::Int(pk), Value::Float(s), Value::Int(parent)];
                let r = db.insert_scored("Child", values.clone(), s);
                if dup {
                    assert!(r.is_err(), "duplicate child pk must be rejected");
                } else {
                    r.unwrap();
                    scores[1].push(s);
                    accepted.push(PlainOp::Insert("Child", values));
                }
            }
            Op::Rel(pk, parent, child_pk, s) => {
                let dup = db.table(rel).by_pk(pk).is_some();
                if db.table(child).by_pk(child_pk).is_none() {
                    continue; // dead or absent endpoint: plain insert would reject
                }
                let values = vec![Value::Int(pk), Value::Int(parent), Value::Int(child_pk)];
                let r = db.insert_scored("Rel", values.clone(), s);
                if dup {
                    assert!(r.is_err(), "duplicate rel pk must be rejected");
                } else {
                    r.unwrap();
                    scores[2].push(s);
                    accepted.push(PlainOp::Insert("Rel", values));
                }
            }
            Op::UpdateChild(pk, parent, s) => {
                let Some(row) = db.table(child).by_pk(pk) else {
                    assert!(
                        db.update_scored("Child", pk, vec![Value::Int(pk)], s).is_err(),
                        "updating a missing row must be rejected"
                    );
                    continue;
                };
                let values = vec![Value::Int(pk), Value::Float(s), Value::Int(parent)];
                db.update_scored("Child", pk, values.clone(), s).unwrap();
                scores[1][row.index()] = s;
                accepted.push(PlainOp::Update("Child", pk, values));
            }
            Op::DeleteChild(pk) => {
                if db.table(child).by_pk(pk).is_none() {
                    assert!(db.delete_scored("Child", pk).is_err());
                    continue;
                }
                // Deleting a still-referenced target is legal at the
                // storage layer (the engine enforces RESTRICT above it):
                // it drops the link orientation and arms the dangling
                // watch, which is exactly the repair path under test.
                db.delete_scored("Child", pk).unwrap();
                accepted.push(PlainOp::Delete("Child", pk));
            }
            Op::DeleteRel(pk) => {
                if db.table(rel).by_pk(pk).is_none() {
                    assert!(db.delete_scored("Rel", pk).is_err());
                    continue;
                }
                db.delete_scored("Rel", pk).unwrap();
                accepted.push(PlainOp::Delete("Rel", pk));
            }
        }
    }
    (scores, accepted)
}

/// The oracle: replays the accepted stream through the *plain* mutation
/// API — same insertion order, hence the same RowId space, including
/// tombstoned slots — then performs one from-scratch install over the
/// final scores. Fresh installs index live rows only, so its postings
/// are the live-filtered ground truth.
fn oracle_replay(accepted: &[PlainOp], scores: &[Vec<f64>]) -> Database {
    let mut db = fresh_db();
    for p in 0..N_PARENTS {
        db.insert("Parent", vec![Value::Int(p), format!("p{p}").into()]).unwrap();
    }
    db.insert("Child", vec![Value::Int(100), Value::Float(1.0), Value::Int(0)]).unwrap();
    db.insert("Child", vec![Value::Int(101), Value::Float(2.0), Value::Int(1)]).unwrap();
    db.insert("Rel", vec![Value::Int(100), Value::Int(0), Value::Int(100)]).unwrap();
    for op in accepted {
        match op {
            PlainOp::Insert(t, values) => {
                db.insert(t, values.clone()).unwrap();
            }
            PlainOp::Update(t, pk, values) => {
                db.update(t, *pk, values.clone()).unwrap();
            }
            PlainOp::Delete(t, pk) => {
                db.delete(t, *pk).unwrap();
            }
        }
    }
    let snapshot: Vec<Vec<f64>> = scores.to_vec();
    db.install_importance_order(&|t: TableId, r: RowId| snapshot[t.index()][r.index()]);
    db
}

/// Live-filtered posting view: the rows a reader actually receives.
fn live_rows(db: &Database, tid: TableId, col: usize, key: i64) -> Vec<RowId> {
    let t = db.table(tid);
    match t.sorted_fk_index(col) {
        Some(idx) => idx.rows(key).iter().copied().filter(|&r| t.is_live(r)).collect(),
        None => Vec::new(),
    }
}

/// Live-filtered link view: the pairs that survive the dual-endpoint
/// liveness check (junction row AND target row alive) readers apply.
fn live_pairs(
    db: &Database,
    jid: TableId,
    target: TableId,
    col: usize,
    key: i64,
) -> Vec<(RowId, RowId)> {
    let jt = db.table(jid);
    let tt = db.table(target);
    match jt.sorted_link_index(col) {
        Some(idx) => idx
            .pairs(key)
            .iter()
            .copied()
            .filter(|&(j, t)| jt.is_live(j) && tt.is_live(t))
            .collect(),
        None => Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Incremental posting maintenance is byte-identical (after
    /// live-filtering the maintained side's tombstones) to a from-scratch
    /// install over a plainly-replayed database, after arbitrary mixed
    /// interleavings — FK postings and both junction link orientations —
    /// across churn thresholds forcing pure binary maintenance, a mix,
    /// and pure batched re-sorts, and compaction thresholds forcing
    /// eager, occasional, and no compaction.
    #[test]
    fn incremental_maintenance_equals_from_scratch_install(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        churn_threshold in (0u8..3).prop_map(|i| [1usize, 7, 1_000_000][i as usize]),
        compaction_threshold in (0u8..3).prop_map(|i| [0usize, 3, 1_000_000][i as usize]),
    ) {
        let mut live = fresh_db();
        let (scores, accepted) = run_stream(&mut live, &ops, churn_threshold, compaction_threshold);
        let oracle = oracle_replay(&accepted, &scores);

        let child = live.table_id("Child").unwrap();
        let child_fk = live.table(child).schema.column_index("parent_id").unwrap();
        let rel = live.table_id("Rel").unwrap();
        let rel_parent = live.table(rel).schema.column_index("parent_id").unwrap();
        let rel_child = live.table(rel).schema.column_index("child_id").unwrap();

        // FK postings, live-filtered on both sides (the oracle's fresh
        // install indexes live rows only; the maintained side may carry
        // uncompacted tombstones readers skip).
        for (tid, col) in [(child, child_fk), (rel, rel_parent), (rel, rel_child)] {
            prop_assert!(live.table(tid).sorted_fk_index(col).is_some(), "order torn down");
            for key in -1..128i64 {
                prop_assert_eq!(
                    live_rows(&live, tid, col, key),
                    live_rows(&oracle, tid, col, key),
                    "fk postings diverge: table {:?} col {} key {}", tid, col, key
                );
            }
        }
        // Tombstone debt is bounded by the compaction threshold after
        // every settlement.
        for tid in [child, rel] {
            prop_assert!(
                live.table(tid).fk_tombstones() <= compaction_threshold,
                "table {:?}: {} tombstones exceed the threshold {}",
                tid, live.table(tid).fk_tombstones(), compaction_threshold
            );
        }
        // Link postings: both orientations. A dangling child delete drops
        // the orientation (and a later re-insert heals it) — the two
        // replays must agree on presence AND on the live pair view:
        // junction-own deletes leave tombstoned pairs the dual-endpoint
        // liveness check skips, so raw pair equality only holds under
        // eager compaction. Raw group lengths (the paper-cost probe size)
        // must match regardless.
        let parent = live.table_id("Parent").unwrap();
        for (col, target) in [(rel_parent, child), (rel_child, parent)] {
            let a = live.table(rel).sorted_link_index(col);
            let b = oracle.table(rel).sorted_link_index(col);
            prop_assert_eq!(a.is_some(), b.is_some(), "orientation presence diverges: col {}", col);
            if let (Some(a), Some(b)) = (a, b) {
                prop_assert_eq!(a.key_count(), b.key_count());
                for key in -1..128i64 {
                    prop_assert_eq!(
                        live_pairs(&live, rel, target, col, key),
                        live_pairs(&oracle, rel, target, col, key),
                        "live link pairs diverge: col {} key {}", col, key
                    );
                    prop_assert_eq!(a.raw_group_len(key), b.raw_group_len(key));
                    if compaction_threshold == 0 {
                        prop_assert_eq!(
                            a.pairs(key), b.pairs(key),
                            "eagerly-compacted raw pairs diverge: col {} key {}", col, key
                        );
                    }
                }
            }
        }
        // Link-tombstone debt is bounded by the compaction threshold too.
        prop_assert!(
            live.table(rel).link_tombstones() <= compaction_threshold,
            "{} link tombstones exceed the threshold {}",
            live.table(rel).link_tombstones(), compaction_threshold
        );
        // The token survived the whole stream, re-stamped to the live
        // epoch — never torn down.
        let token = live.fk_order().expect("order survives the stream");
        prop_assert_eq!(token.epoch(), live.epoch());
    }

    /// (b) Staged scored batches settle byte-identically to the fold of
    /// single scored calls — same live-filtered postings, link pairs,
    /// token stamp, and epoch — across batch sizes, churn thresholds, and
    /// compaction thresholds (with eager or disabled compaction the raw
    /// postings, tombstones included, must match too).
    #[test]
    fn scored_batches_settle_identically_to_the_fold(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        batch_size in 1usize..9,
        churn_threshold in (0u8..3).prop_map(|i| [1usize, 7, 1_000_000][i as usize]),
        compaction_threshold in (0u8..3).prop_map(|i| [0usize, 3, 1_000_000][i as usize]),
    ) {
        // Pre-resolve the accepted stream so both paths stage exactly the
        // same mutations in the same order.
        let mut child_live: std::collections::HashSet<i64> = [100, 101].into_iter().collect();
        let mut rel_live: std::collections::HashSet<i64> = [100].into_iter().collect();
        #[derive(Clone)]
        enum Staged {
            Insert(&'static str, Vec<Value>, f64),
            Update(&'static str, i64, Vec<Value>, f64),
            Delete(&'static str, i64),
        }
        let mut accepted: Vec<Staged> = Vec::new();
        for op in &ops {
            match *op {
                Op::Child(pk, parent, s) => {
                    if child_live.insert(pk) {
                        accepted.push(Staged::Insert(
                            "Child",
                            vec![Value::Int(pk), Value::Float(s), Value::Int(parent)],
                            s,
                        ));
                    }
                }
                Op::Rel(pk, parent, child_pk, s) => {
                    if child_live.contains(&child_pk) && rel_live.insert(pk) {
                        accepted.push(Staged::Insert(
                            "Rel",
                            vec![Value::Int(pk), Value::Int(parent), Value::Int(child_pk)],
                            s,
                        ));
                    }
                }
                Op::UpdateChild(pk, parent, s) => {
                    if child_live.contains(&pk) {
                        accepted.push(Staged::Update(
                            "Child",
                            pk,
                            vec![Value::Int(pk), Value::Float(s), Value::Int(parent)],
                            s,
                        ));
                    }
                }
                Op::DeleteChild(pk) => {
                    if child_live.remove(&pk) {
                        accepted.push(Staged::Delete("Child", pk));
                    }
                }
                Op::DeleteRel(pk) => {
                    if rel_live.remove(&pk) {
                        accepted.push(Staged::Delete("Rel", pk));
                    }
                }
            }
        }

        let mut folded = fresh_db();
        run_stream(&mut folded, &[], churn_threshold, compaction_threshold);
        for staged in &accepted {
            match staged {
                Staged::Insert(t, values, s) => {
                    folded.insert_scored(t, values.clone(), *s).unwrap();
                }
                Staged::Update(t, pk, values, s) => {
                    folded.update_scored(t, *pk, values.clone(), *s).unwrap();
                }
                Staged::Delete(t, pk) => {
                    folded.delete_scored(t, *pk).unwrap();
                }
            }
        }

        let mut batched = fresh_db();
        run_stream(&mut batched, &[], churn_threshold, compaction_threshold);
        for chunk in accepted.chunks(batch_size) {
            let mut b = batched.begin_scored_batch();
            for staged in chunk {
                match staged {
                    Staged::Insert(t, values, s) => {
                        batched.insert_scored_staged(&mut b, t, values.clone(), *s).unwrap();
                    }
                    Staged::Update(t, pk, values, s) => {
                        batched.update_scored_staged(&mut b, t, *pk, values.clone(), *s).unwrap();
                    }
                    Staged::Delete(t, pk) => {
                        batched.delete_scored_staged(&mut b, t, *pk).unwrap();
                    }
                }
            }
            batched.finish_scored_batch(b);
        }

        prop_assert_eq!(batched.epoch(), folded.epoch());
        prop_assert_eq!(
            batched.fk_order().unwrap().epoch(),
            folded.fk_order().unwrap().epoch(),
            "token stamps diverge"
        );
        let child = folded.table_id("Child").unwrap();
        let child_fk = folded.table(child).schema.column_index("parent_id").unwrap();
        let rel = folded.table_id("Rel").unwrap();
        let rel_parent = folded.table(rel).schema.column_index("parent_id").unwrap();
        let rel_child = folded.table(rel).schema.column_index("child_id").unwrap();
        // The fold settles (and may compact) after every op, the batch
        // once per chunk — so at a mid-range compaction threshold their
        // *raw* tombstone content can legitimately differ. What must
        // always match is the live view; with compaction eager (0) or
        // disabled (huge) the raw postings coincide too.
        let raw_must_match = compaction_threshold == 0 || compaction_threshold >= 1_000_000;
        for (tid, col) in [(child, child_fk), (rel, rel_parent), (rel, rel_child)] {
            for key in -1..128i64 {
                prop_assert_eq!(
                    live_rows(&batched, tid, col, key),
                    live_rows(&folded, tid, col, key),
                    "live postings diverge: table {:?} col {} key {}", tid, col, key
                );
                if raw_must_match {
                    let a = batched.table(tid).sorted_fk_index(col).expect("settled");
                    let b = folded.table(tid).sorted_fk_index(col).expect("maintained");
                    prop_assert_eq!(
                        a.rows(key), b.rows(key),
                        "raw postings diverge: table {:?} col {} key {}", tid, col, key
                    );
                }
            }
        }
        let parent = folded.table_id("Parent").unwrap();
        for (col, target) in [(rel_parent, child), (rel_child, parent)] {
            let a = batched.table(rel).sorted_link_index(col);
            let b = folded.table(rel).sorted_link_index(col);
            prop_assert_eq!(a.is_some(), b.is_some(), "orientation presence diverges: col {}", col);
            if let (Some(a), Some(b)) = (a, b) {
                for key in -1..128i64 {
                    prop_assert_eq!(
                        live_pairs(&batched, rel, target, col, key),
                        live_pairs(&folded, rel, target, col, key),
                        "live link pairs diverge: col {} key {}", col, key
                    );
                    prop_assert_eq!(a.raw_group_len(key), b.raw_group_len(key));
                    if raw_must_match {
                        prop_assert_eq!(
                            a.pairs(key), b.pairs(key),
                            "raw link pairs diverge: col {} key {}", col, key
                        );
                    }
                }
            }
        }
    }

    /// (c) After any mixed interleaving, the prefix-scan fast path and
    /// the heap fallback return identical rows with identical paper-cost
    /// accounting — including across uncompacted tombstones — and the
    /// fast path actually fires (probe mix).
    #[test]
    fn fast_path_is_byte_identical_with_identical_accounting_after_churn(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        l in 1usize..8,
        threshold in 0.0..6.0f64,
        affinity in 0.25..1.0f64,
        compaction_threshold in (0u8..3).prop_map(|i| [0usize, 3, 1_000_000][i as usize]),
    ) {
        let mut db = fresh_db();
        run_stream(&mut db, &ops, 9, compaction_threshold);
        let token = db.fk_order().unwrap();
        let child = db.table_id("Child").unwrap();
        let fk = db.table(child).schema.column_index("parent_id").unwrap();
        let li = |r: RowId| affinity * db.table(child).installed_score(r);
        for parent in 0..N_PARENTS {
            let s0 = db.access().snapshot();
            let p0 = db.access().probes();
            let fast = db.select_eq_top_l(child, fk, parent, l, threshold, Some(token), &li);
            let s1 = db.access().snapshot();
            let p1 = db.access().probes();
            let slow = db.select_eq_top_l(child, fk, parent, l, threshold, None, &li);
            let s2 = db.access().snapshot();
            prop_assert_eq!(&fast, &slow, "rows diverge for parent {}", parent);
            prop_assert_eq!(s1.since(s0), s2.since(s1), "accounting diverges");
            prop_assert_eq!(p1.fast - p0.fast, 1, "the maintained order must prefix-scan");
            // Fast-path results never leak a tombstoned row.
            for r in &fast {
                prop_assert!(db.table(child).is_live(*r), "a dead row surfaced");
            }
        }
    }

    /// The global epoch advances by exactly one per accepted mutation of
    /// any kind: after any stream it equals the sum of the per-table
    /// epochs (each of which counts that table's mutations), which also
    /// forces strict monotonicity step by step.
    #[test]
    fn epochs_count_every_mutation(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut db = fresh_db();
        prop_assert_eq!(db.epoch(), Epoch::default());
        run_stream(&mut db, &ops, 9, 3);
        prop_assert!(db.epoch() > Epoch::default());
        let total: u64 = db.tables().map(|(_, t)| t.epoch().get()).sum();
        prop_assert_eq!(db.epoch().get(), total, "global epoch counts every table's mutations");
    }
}
