//! Property suite for the epoch subsystem (ISSUE 4): incremental
//! sorted-posting maintenance under arbitrary insert interleavings must
//! be **byte-identical** to a from-scratch `install_importance_order`
//! over the final database — for FK postings and junction link postings
//! alike, at every churn threshold (binary insert and epoch-batched
//! re-sort are the same function) — and the prefix-scan fast path must
//! keep the heap path's answers *and* its paper-cost accounting.

use proptest::prelude::*;

use sizel_storage::{Database, Epoch, RowId, TableId, TableSchema, Value, ValueType};

/// Parent (link target) / Child (FK postings) / Rel (junction between
/// Parent and Child, exercising both link orientations).
fn fresh_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("Parent").pk("id").searchable_text("name").build().unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("Child")
            .pk("id")
            .column("payload", ValueType::Float)
            .fk("parent_id", "Parent")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("Rel")
            .pk("id")
            .fk("parent_id", "Parent")
            .fk("child_id", "Child")
            .junction()
            .build()
            .unwrap(),
    )
    .unwrap();
    db
}

const N_PARENTS: i64 = 6;

/// One step of the mutation stream.
#[derive(Clone, Debug)]
enum Op {
    /// (child pk, parent key, installed score)
    Child(i64, i64, f64),
    /// (rel pk, parent key, child pk candidate, installed score)
    Rel(i64, i64, i64, f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // (kind, pk, parent key, child pk, raw score); scores quantized to
    // 0.5 steps so tie-breaking is exercised constantly.
    (0u8..2, 0i64..64, 0i64..N_PARENTS, 0i64..64, 0.0..8.0f64).prop_map(
        |(kind, pk, parent, child, w)| {
            let s = (w * 2.0).floor() / 2.0;
            if kind == 0 {
                Op::Child(pk, parent, s)
            } else {
                Op::Rel(pk, parent, child, s)
            }
        },
    )
}

/// Seeds the database, installs an order, then drives the op stream
/// through `insert_scored`. Returns the per-table score log (the oracle's
/// install input).
fn run_stream(db: &mut Database, ops: &[Op], churn_threshold: usize) -> Vec<Vec<f64>> {
    db.set_churn_threshold(churn_threshold);
    for p in 0..N_PARENTS {
        db.insert("Parent", vec![Value::Int(p), format!("p{p}").into()]).unwrap();
    }
    // Two seed children so the install covers non-trivial postings.
    db.insert("Child", vec![Value::Int(100), Value::Float(1.0), Value::Int(0)]).unwrap();
    db.insert("Child", vec![Value::Int(101), Value::Float(2.0), Value::Int(1)]).unwrap();
    db.insert("Rel", vec![Value::Int(100), Value::Int(0), Value::Int(100)]).unwrap();

    let mut scores: Vec<Vec<f64>> = vec![
        (0..N_PARENTS).map(|p| 1.0 + p as f64).collect(), // Parent
        vec![3.0, 1.5],                                   // Child seeds
        vec![0.25],                                       // Rel seed
    ];
    {
        let snapshot = scores.clone();
        db.install_importance_order(&|t: TableId, r: RowId| snapshot[t.index()][r.index()]);
    }

    for op in ops {
        match *op {
            Op::Child(pk, parent, s) => {
                let dup = {
                    let child = db.table_id("Child").unwrap();
                    db.table(child).by_pk(pk).is_some()
                };
                let r = db.insert_scored(
                    "Child",
                    vec![Value::Int(pk), Value::Float(s), Value::Int(parent)],
                    s,
                );
                if dup {
                    assert!(r.is_err(), "duplicate child pk must be rejected");
                } else {
                    r.unwrap();
                    scores[1].push(s);
                }
            }
            Op::Rel(pk, parent, child_pk, s) => {
                let (dup, child_exists) = {
                    let rel = db.table_id("Rel").unwrap();
                    let child = db.table_id("Child").unwrap();
                    (db.table(rel).by_pk(pk).is_some(), db.table(child).by_pk(child_pk).is_some())
                };
                if !child_exists {
                    continue; // keep the database FK-consistent
                }
                let r = db.insert_scored(
                    "Rel",
                    vec![Value::Int(pk), Value::Int(parent), Value::Int(child_pk)],
                    s,
                );
                if dup {
                    assert!(r.is_err(), "duplicate rel pk must be rejected");
                } else {
                    r.unwrap();
                    scores[2].push(s);
                }
            }
        }
    }
    scores
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Incremental posting maintenance is byte-identical to a
    /// from-scratch install after arbitrary insert interleavings — FK
    /// postings and both junction link orientations — for churn
    /// thresholds that force pure binary insertion, a mix, and pure
    /// batched re-sorts.
    #[test]
    fn incremental_maintenance_equals_from_scratch_install(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        // 1 forces batched re-sorts almost every insert, 7 mixes the two
        // strategies, the large value keeps maintenance purely
        // incremental.
        churn_threshold in (0u8..3).prop_map(|i| [1usize, 7, 1_000_000][i as usize]),
    ) {
        let mut live = fresh_db();
        let scores = run_stream(&mut live, &ops, churn_threshold);

        // Oracle: the same final rows, plainly inserted, with one
        // from-scratch install over the recorded scores.
        let mut oracle = fresh_db();
        for (tid, t) in live.tables() {
            let name = t.schema.name.clone();
            for (_, row) in t.iter() {
                oracle.insert(&name, row.to_vec()).unwrap();
            }
            prop_assert_eq!(oracle.table(tid).len(), t.len());
        }
        oracle.install_importance_order(&|t: TableId, r: RowId| scores[t.index()][r.index()]);

        let child = live.table_id("Child").unwrap();
        let child_fk = live.table(child).schema.column_index("parent_id").unwrap();
        let rel = live.table_id("Rel").unwrap();
        let rel_parent = live.table(rel).schema.column_index("parent_id").unwrap();
        let rel_child = live.table(rel).schema.column_index("child_id").unwrap();

        // FK postings: Child.parent_id and both junction FK columns.
        for (tid, col) in [(child, child_fk), (rel, rel_parent), (rel, rel_child)] {
            let a = live.table(tid).sorted_fk_index(col).expect("maintained");
            let b = oracle.table(tid).sorted_fk_index(col).expect("installed");
            prop_assert_eq!(a.key_count(), b.key_count());
            for key in -1..128i64 {
                prop_assert_eq!(
                    a.rows(key), b.rows(key),
                    "fk postings diverge: table {:?} col {} key {}", tid, col, key
                );
            }
        }
        // Link postings: both orientations of the junction.
        for col in [rel_parent, rel_child] {
            let a = live.table(rel).sorted_link_index(col).expect("maintained");
            let b = oracle.table(rel).sorted_link_index(col).expect("installed");
            prop_assert_eq!(a.key_count(), b.key_count());
            for key in -1..128i64 {
                prop_assert_eq!(
                    a.pairs(key), b.pairs(key),
                    "link pairs diverge: col {} key {}", col, key
                );
                prop_assert_eq!(a.raw_group_len(key), b.raw_group_len(key));
            }
        }
        // The token survived the whole stream, re-stamped to the live
        // epoch — never torn down.
        let token = live.fk_order().expect("order survives the stream");
        prop_assert_eq!(token.epoch(), live.epoch());
    }

    /// (b) Staged scored batches ([`Database::begin_scored_batch`])
    /// settle byte-identically to the fold of single `insert_scored`
    /// calls — same postings, link pairs, token stamp, and epoch — across
    /// batch sizes and churn thresholds (including intra-batch junction
    /// rows referencing children staged earlier in the same batch).
    #[test]
    fn scored_batches_settle_identically_to_the_fold(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        batch_size in 1usize..9,
        churn_threshold in (0u8..3).prop_map(|i| [1usize, 7, 1_000_000][i as usize]),
    ) {
        // Pre-resolve the accepted stream so both paths stage exactly the
        // same rows in the same order.
        let mut child_pks: std::collections::HashSet<i64> = [100, 101].into_iter().collect();
        let mut rel_pks: std::collections::HashSet<i64> = [100].into_iter().collect();
        let mut accepted: Vec<(&str, Vec<Value>, f64)> = Vec::new();
        for op in &ops {
            match *op {
                Op::Child(pk, parent, s) => {
                    if child_pks.insert(pk) {
                        accepted.push((
                            "Child",
                            vec![Value::Int(pk), Value::Float(s), Value::Int(parent)],
                            s,
                        ));
                    }
                }
                Op::Rel(pk, parent, child_pk, s) => {
                    if child_pks.contains(&child_pk) && rel_pks.insert(pk) {
                        accepted.push((
                            "Rel",
                            vec![Value::Int(pk), Value::Int(parent), Value::Int(child_pk)],
                            s,
                        ));
                    }
                }
            }
        }

        let mut folded = fresh_db();
        run_stream(&mut folded, &[], churn_threshold);
        for (table, values, s) in &accepted {
            folded.insert_scored(table, values.clone(), *s).unwrap();
        }

        let mut batched = fresh_db();
        run_stream(&mut batched, &[], churn_threshold);
        for chunk in accepted.chunks(batch_size) {
            let mut b = batched.begin_scored_batch();
            for (table, values, s) in chunk {
                batched.insert_scored_staged(&mut b, table, values.clone(), *s).unwrap();
            }
            batched.finish_scored_batch(b);
        }

        prop_assert_eq!(batched.epoch(), folded.epoch());
        prop_assert_eq!(
            batched.fk_order().unwrap().epoch(),
            folded.fk_order().unwrap().epoch(),
            "token stamps diverge"
        );
        let child = folded.table_id("Child").unwrap();
        let child_fk = folded.table(child).schema.column_index("parent_id").unwrap();
        let rel = folded.table_id("Rel").unwrap();
        let rel_parent = folded.table(rel).schema.column_index("parent_id").unwrap();
        let rel_child = folded.table(rel).schema.column_index("child_id").unwrap();
        for (tid, col) in [(child, child_fk), (rel, rel_parent), (rel, rel_child)] {
            let a = batched.table(tid).sorted_fk_index(col).expect("settled");
            let b = folded.table(tid).sorted_fk_index(col).expect("maintained");
            for key in -1..128i64 {
                prop_assert_eq!(
                    a.rows(key), b.rows(key),
                    "fk postings diverge: table {:?} col {} key {}", tid, col, key
                );
            }
        }
        for col in [rel_parent, rel_child] {
            let a = batched.table(rel).sorted_link_index(col).expect("settled");
            let b = folded.table(rel).sorted_link_index(col).expect("maintained");
            for key in -1..128i64 {
                prop_assert_eq!(
                    a.pairs(key), b.pairs(key),
                    "link pairs diverge: col {} key {}", col, key
                );
                prop_assert_eq!(a.raw_group_len(key), b.raw_group_len(key));
            }
        }
    }

    /// (c) After any interleaving, the prefix-scan fast path and the heap
    /// fallback return identical rows with identical paper-cost
    /// accounting — and the fast path actually fires (probe mix).
    #[test]
    fn fast_path_is_byte_identical_with_identical_accounting_after_churn(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        l in 1usize..8,
        threshold in 0.0..6.0f64,
        affinity in 0.25..1.0f64,
    ) {
        let mut db = fresh_db();
        run_stream(&mut db, &ops, 9);
        let token = db.fk_order().unwrap();
        let child = db.table_id("Child").unwrap();
        let fk = db.table(child).schema.column_index("parent_id").unwrap();
        let li = |r: RowId| affinity * db.table(child).installed_score(r);
        for parent in 0..N_PARENTS {
            let s0 = db.access().snapshot();
            let p0 = db.access().probes();
            let fast = db.select_eq_top_l(child, fk, parent, l, threshold, Some(token), &li);
            let s1 = db.access().snapshot();
            let p1 = db.access().probes();
            let slow = db.select_eq_top_l(child, fk, parent, l, threshold, None, &li);
            let s2 = db.access().snapshot();
            prop_assert_eq!(&fast, &slow, "rows diverge for parent {}", parent);
            prop_assert_eq!(s1.since(s0), s2.since(s1), "accounting diverges");
            prop_assert_eq!(p1.fast - p0.fast, 1, "the maintained order must prefix-scan");
        }
    }

    /// The global epoch advances by exactly one per accepted insert:
    /// after any stream it equals the sum of the per-table epochs (each
    /// of which counts that table's inserts), which also forces strict
    /// monotonicity step by step.
    #[test]
    fn epochs_count_every_insert(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut db = fresh_db();
        prop_assert_eq!(db.epoch(), Epoch::default());
        run_stream(&mut db, &ops, 9);
        prop_assert!(db.epoch() > Epoch::default());
        let total: u64 = db.tables().map(|(_, t)| t.epoch().get()).sum();
        prop_assert_eq!(db.epoch().get(), total, "global epoch counts every table's inserts");
    }
}
