//! Backend-equivalence property suite: a database whose postings were
//! evicted to a paged segment store must answer every TOP-l probe
//! byte-identically to its fully-RAM twin — same rows, same paper-cost
//! accounting, same probe-kind mix — across arbitrary mutation
//! histories. The link cursors are held to the same standard pair for
//! pair, and the coverage/absent-key distinction is pinned: a covered
//! key missing from the segment is a *fast* empty probe, an uncovered
//! column is a heap fallback.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use sizel_disk::PagedStore;
use sizel_storage::{
    Database, LinkCursor, PostingPager, RowId, SliceLinkCursor, TableId, TableSchema, Value,
    ValueType,
};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sizel-disk-eq-{}-{}-{}", std::process::id(), tag, n))
}

fn fresh_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("Parent").pk("id").searchable_text("name").build().unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("Child")
            .pk("id")
            .column("payload", ValueType::Float)
            .fk("parent_id", "Parent")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("Rel")
            .pk("id")
            .fk("parent_id", "Parent")
            .fk("child_id", "Child")
            .junction()
            .build()
            .unwrap(),
    )
    .unwrap();
    db
}

const N_PARENTS: i64 = 6;

#[derive(Clone, Debug)]
enum Op {
    Child(i64, i64, f64),
    Rel(i64, i64, i64, f64),
    UpdateChild(i64, i64, f64),
    DeleteChild(i64),
    DeleteRel(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..5, 0i64..48, 0i64..N_PARENTS, 0i64..48, 0.0..8.0f64).prop_map(
        |(kind, pk, parent, child, w)| {
            let s = (w * 2.0).floor() / 2.0;
            match kind {
                0 => Op::Child(pk, parent, s),
                1 => Op::Rel(pk, parent, child, s),
                2 => Op::UpdateChild(pk, parent, s),
                3 => Op::DeleteChild(pk),
                _ => Op::DeleteRel(pk),
            }
        },
    )
}

/// Seeds and mutates `db` through the scored API (same stream ⇒ same
/// final state on every replica).
fn run_stream(db: &mut Database, ops: &[Op], compaction_threshold: usize) {
    db.set_compaction_threshold(compaction_threshold);
    for p in 0..N_PARENTS {
        db.insert("Parent", vec![Value::Int(p), format!("p{p}").into()]).unwrap();
    }
    db.insert("Child", vec![Value::Int(100), Value::Float(1.0), Value::Int(0)]).unwrap();
    db.insert("Child", vec![Value::Int(101), Value::Float(2.0), Value::Int(1)]).unwrap();
    db.insert("Rel", vec![Value::Int(100), Value::Int(0), Value::Int(100)]).unwrap();
    let seed: Vec<Vec<f64>> =
        vec![(0..N_PARENTS).map(|p| 1.0 + p as f64).collect(), vec![3.0, 1.5], vec![0.25]];
    db.install_importance_order(&|t: TableId, r: RowId| seed[t.index()][r.index()]);

    let child = db.table_id("Child").unwrap();
    let rel = db.table_id("Rel").unwrap();
    for op in ops {
        match *op {
            Op::Child(pk, parent, s) => {
                if db.table(child).by_pk(pk).is_none() {
                    db.insert_scored(
                        "Child",
                        vec![Value::Int(pk), Value::Float(s), Value::Int(parent)],
                        s,
                    )
                    .unwrap();
                }
            }
            Op::Rel(pk, parent, child_pk, s) => {
                if db.table(rel).by_pk(pk).is_none() && db.table(child).by_pk(child_pk).is_some() {
                    db.insert_scored(
                        "Rel",
                        vec![Value::Int(pk), Value::Int(parent), Value::Int(child_pk)],
                        s,
                    )
                    .unwrap();
                }
            }
            Op::UpdateChild(pk, parent, s) => {
                if db.table(child).by_pk(pk).is_some() {
                    db.update_scored(
                        "Child",
                        pk,
                        vec![Value::Int(pk), Value::Float(s), Value::Int(parent)],
                        s,
                    )
                    .unwrap();
                }
            }
            Op::DeleteChild(pk) => {
                if db.table(child).by_pk(pk).is_some() {
                    db.delete_scored("Child", pk).unwrap();
                }
            }
            Op::DeleteRel(pk) => {
                if db.table(rel).by_pk(pk).is_some() {
                    db.delete_scored("Rel", pk).unwrap();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole equivalence property: paged and RAM backends answer
    /// identically with identical accounting, across mutation histories
    /// and compaction thresholds (so segments carry tombstones too).
    #[test]
    fn paged_probes_equal_ram_probes_with_identical_accounting(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        l in 1usize..6,
        threshold in 0.0..5.0f64,
        compaction_threshold in (0u8..3).prop_map(|i| [0usize, 3, 1_000_000][i as usize]),
    ) {
        let mut ram = fresh_db();
        run_stream(&mut ram, &ops, compaction_threshold);
        let mut paged = fresh_db();
        run_stream(&mut paged, &ops, compaction_threshold);

        let child = ram.table_id("Child").unwrap();
        let rel = ram.table_id("Rel").unwrap();
        let fk = ram.table(child).schema.column_index("parent_id").unwrap();

        let dir = temp_dir("prop");
        let store = Arc::new(PagedStore::new(&dir, 8).unwrap());
        store.checkpoint_from(&paged, &[child, rel]).unwrap();
        paged.evict_table_postings(child);
        paged.evict_table_postings(rel);
        paged.set_pager(Arc::<PagedStore>::clone(&store));
        prop_assert_eq!(store.stamp(), paged.fk_order(), "fresh checkpoint matches the token");

        // Each replica installed its own (process-unique) token.
        let ram_token = ram.fk_order().unwrap();
        let paged_token = paged.fk_order().unwrap();
        for parent in -1..N_PARENTS + 1 {
            let ram_li = |r: RowId| 0.5 * ram.table(child).installed_score(r);
            let paged_li = |r: RowId| 0.5 * paged.table(child).installed_score(r);
            let r0 = ram.access().snapshot();
            let rp0 = ram.access().probes();
            let from_ram =
                ram.select_eq_top_l(child, fk, parent, l, threshold, Some(ram_token), &ram_li);
            let r1 = ram.access().snapshot();
            let rp1 = ram.access().probes();
            let p0 = paged.access().snapshot();
            let pp0 = paged.access().probes();
            let from_disk =
                paged.select_eq_top_l(child, fk, parent, l, threshold, Some(paged_token), &paged_li);
            let p1 = paged.access().snapshot();
            let pp1 = paged.access().probes();
            prop_assert_eq!(&from_ram, &from_disk, "rows diverge for parent {}", parent);
            prop_assert_eq!(r1.since(r0), p1.since(p0), "accounting diverges for parent {}", parent);
            prop_assert_eq!(rp1.fast - rp0.fast, 1, "ram probe must prefix-scan");
            prop_assert_eq!(pp1.fast - pp0.fast, 1, "paged probe must prefix-scan");
        }
        // Link posting groups: the paged cursor replays the RAM slices
        // pair for pair (tombstones included), and the raw group length
        // the accounting reports is preserved.
        let rel_t = ram.table(rel);
        for (col, idx) in rel_t.sorted_link_indexes() {
            for key in -1..64i64 {
                let mut slice = SliceLinkCursor::new(idx.pairs(key));
                let mut paged_cur =
                    store.link_cursor(rel, col, key).expect("checkpointed column is covered");
                loop {
                    let a = slice.next_pair();
                    let b = paged_cur.next_pair();
                    prop_assert_eq!(a, b, "link pairs diverge: col {} key {}", col, key);
                    if a.is_none() {
                        break;
                    }
                }
                prop_assert!(!paged_cur.failed());
                prop_assert_eq!(
                    store.link_raw_len(rel, col, key),
                    Some(idx.raw_group_len(key)),
                    "raw group length diverges: col {} key {}", col, key
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn covered_absent_keys_probe_fast_and_uncovered_tables_fall_back() {
    let mut db = fresh_db();
    run_stream(&mut db, &[], 0);
    let child = db.table_id("Child").unwrap();
    let rel = db.table_id("Rel").unwrap();
    let fk = db.table(child).schema.column_index("parent_id").unwrap();
    let rel_fk = db.table(rel).schema.column_index("parent_id").unwrap();

    // Checkpoint ONLY Child: Rel stays uncovered.
    let dir = temp_dir("coverage");
    let store = Arc::new(PagedStore::new(&dir, 4).unwrap());
    store.checkpoint_from(&db, &[child]).unwrap();
    db.evict_table_postings(child);
    db.evict_table_postings(rel);
    db.set_pager(Arc::<PagedStore>::clone(&store));
    let token = db.fk_order().unwrap();

    // Key 5 has no children: covered-but-absent must still be a FAST
    // probe returning empty (the RAM path's empty-slice behavior).
    let li = |r: RowId| db.table(child).installed_score(r);
    let p0 = db.access().probes();
    let empty = db.select_eq_top_l(child, fk, 5, 3, 0.0, Some(token), &li);
    let p1 = db.access().probes();
    assert!(empty.is_empty());
    assert_eq!(p1.fast - p0.fast, 1, "covered absent key is a fast probe");

    // Rel was not checkpointed: its probes are heap fallbacks.
    let rli = |r: RowId| db.table(rel).installed_score(r);
    let h0 = db.access().probes();
    let rows = db.select_eq_top_l(rel, rel_fk, 0, 3, 0.0, Some(token), &rli);
    let h1 = db.access().probes();
    assert_eq!(rows.len(), 1, "the seed Rel row under parent 0");
    assert_eq!(h1.heap - h0.heap, 1, "uncovered table falls back to the heap path");
    assert_eq!(h1.fast, h0.fast);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_mutation_stales_the_segment_and_probes_fall_back_until_recheckpoint() {
    let mut db = fresh_db();
    run_stream(&mut db, &[], 0);
    let child = db.table_id("Child").unwrap();
    let fk = db.table(child).schema.column_index("parent_id").unwrap();
    let dir = temp_dir("stale");
    let store = Arc::new(PagedStore::new(&dir, 4).unwrap());
    store.checkpoint_from(&db, &[child]).unwrap();
    db.evict_table_postings(child);
    db.set_pager(Arc::<PagedStore>::clone(&store));

    // A scored insert re-stamps the installed token: the segment is now
    // stale and must silently stop serving.
    db.insert_scored("Child", vec![Value::Int(7), Value::Float(0.5), Value::Int(0)], 7.0).unwrap();
    assert_ne!(store.stamp(), db.fk_order(), "mutation re-stamped the token");
    let token = db.fk_order().unwrap();
    let li = |r: RowId| db.table(child).installed_score(r);
    let p0 = db.access().probes();
    let rows = db.select_eq_top_l(child, fk, 0, 8, 0.0, Some(token), &li);
    let p1 = db.access().probes();
    assert!(rows.contains(&db.table(child).by_pk(7).unwrap()), "fresh row served");
    assert_eq!(p1.heap - p0.heap, 1, "stale segment falls back to the heap path");

    // Re-materialize the evicted postings from the installed scores,
    // re-checkpoint, and evict again: the fast path re-arms with the
    // fresh row under the rebuilt token.
    let token = db.rebuild_postings_from_installed().expect("scores installed");
    store.checkpoint_from(&db, &[child]).unwrap();
    db.evict_table_postings(child);
    let li = |r: RowId| db.table(child).installed_score(r);
    let p2 = db.access().probes();
    let again = db.select_eq_top_l(child, fk, 0, 8, 0.0, Some(token), &li);
    let p3 = db.access().probes();
    assert_eq!(again, rows, "re-checkpointed answers match the heap answers");
    assert_eq!(p3.fast - p2.fast, 1, "fresh segment serves the prefix scan again");
    std::fs::remove_dir_all(&dir).ok();
}
