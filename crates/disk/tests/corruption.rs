//! Fail-closed corruption tests (satellite of the disk tier): flipped
//! bytes anywhere — segment page, segment directory, WAL record — must
//! surface as typed [`DiskError`]s and NEVER as served garbage. A probe
//! that hits a damaged page discards its partial scan and falls back to
//! the heap path, so answers stay correct while the damage is counted.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sizel_disk::{DiskError, PagedStore, SegmentFile, Wal, PAGE_SIZE};
use sizel_storage::{Database, RowId, TableSchema, Value};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("sizel-disk-corr-{}-{}-{}", std::process::id(), tag, n));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Parent + Child with a handful of scored rows and an installed order.
fn seeded_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::builder("Parent").pk("id").build().unwrap()).unwrap();
    db.create_table(
        TableSchema::builder("Child").pk("id").fk("parent_id", "Parent").build().unwrap(),
    )
    .unwrap();
    db.insert("Parent", vec![Value::Int(1)]).unwrap();
    db.insert("Parent", vec![Value::Int(2)]).unwrap();
    for pk in 0..24 {
        db.insert("Child", vec![Value::Int(pk), Value::Int(1 + pk % 2)]).unwrap();
    }
    db.install_importance_order(&|_, r| 1.0 + r.index() as f64);
    db
}

/// Flips one payload byte in every page of the (single) segment file
/// under `dir`, leaving the directory and trailer intact.
fn corrupt_every_page(dir: &PathBuf) -> PathBuf {
    let seg = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "seg"))
        .expect("checkpoint wrote a segment");
    let mut bytes = std::fs::read(&seg).unwrap();
    let dir_len = u64::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 8].try_into().unwrap());
    let dir_start = bytes.len() - 16 - dir_len as usize;
    let mut at = 50; // inside page 0's payload
    while at < dir_start {
        bytes[at] ^= 0x40;
        at += PAGE_SIZE;
    }
    std::fs::write(&seg, &bytes).unwrap();
    seg
}

#[test]
fn a_flipped_page_byte_fails_closed_and_probes_fall_back_to_the_heap() {
    let mut db = seeded_db();
    let pristine = seeded_db();
    let child = db.table_id("Child").unwrap();
    let fk = db.table(child).schema.column_index("parent_id").unwrap();

    let dir = temp_dir("page");
    let store = Arc::new(PagedStore::new(&dir, 8).unwrap());
    store.checkpoint_from(&db, &[child]).unwrap();
    db.evict_table_postings(child);
    db.set_pager(Arc::<PagedStore>::clone(&store));
    corrupt_every_page(&dir);

    let token = db.fk_order().unwrap();
    let p_token = pristine.fk_order().unwrap();
    for parent in 1..3i64 {
        let li = |r: RowId| db.table(child).installed_score(r);
        let p_li = |r: RowId| pristine.table(child).installed_score(r);
        let b0 = db.access().probes();
        let served = db.select_eq_top_l(child, fk, parent, 5, 0.0, Some(token), &li);
        let b1 = db.access().probes();
        let expect = pristine.select_eq_top_l(child, fk, parent, 5, 0.0, Some(p_token), &p_li);
        assert_eq!(served, expect, "a damaged segment must not change any answer");
        assert!(!served.is_empty(), "the probe actually had rows to lose");
        assert_eq!(b1.heap - b0.heap, 1, "the failed scan fell back to the heap path");
        assert_eq!(b1.fast, b0.fast, "no fast probe was counted for the discarded scan");
    }
    let stats = store.stats();
    assert!(stats.cache.read_errors >= 2, "every damaged read was counted");
    assert_eq!(stats.cache.hits, 0, "damaged pages are never cached");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn page_and_directory_damage_surface_as_typed_errors() {
    let db = seeded_db();
    let child = db.table_id("Child").unwrap();
    let dir = temp_dir("typed");
    let store = PagedStore::new(&dir, 4).unwrap();
    store.checkpoint_from(&db, &[child]).unwrap();
    let seg = corrupt_every_page(&dir);

    // Direct page reads report the checksum, not garbage.
    let file = SegmentFile::open(&seg).expect("directory is still intact");
    let mut buf = [0u8; PAGE_SIZE];
    match file.read_page(0, &mut buf) {
        Err(DiskError::ChecksumMismatch { what, stored, computed }) => {
            assert_eq!(what, "segment page");
            assert_ne!(stored, computed);
        }
        other => panic!("expected a checksum mismatch, got {other:?}"),
    }

    // Directory damage fails the open itself.
    let mut bytes = std::fs::read(&seg).unwrap();
    let len = bytes.len();
    bytes[len - 20] ^= 0x01; // inside the serialized directory
    std::fs::write(&seg, &bytes).unwrap();
    assert!(
        matches!(SegmentFile::open(&seg), Err(DiskError::ChecksumMismatch { .. })),
        "a flipped directory byte must fail the open"
    );
    // Trailer damage is structural corruption.
    let mut bytes = std::fs::read(&seg).unwrap();
    let len = bytes.len();
    bytes[len - 2] ^= 0xFF; // trailer magic
    std::fs::write(&seg, &bytes).unwrap();
    assert!(matches!(SegmentFile::open(&seg), Err(DiskError::Corrupt(_))));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_recovery_stops_at_the_first_damaged_record() {
    let dir = temp_dir("wal");
    let path = dir.join("wal.log");
    {
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        for payload in [b"batch-1".as_slice(), b"batch-2", b"batch-3", b"batch-4"] {
            wal.append(payload).unwrap();
        }
    }
    // Flip a byte inside record 3's payload: records 1-2 stay committed,
    // 3 fails its checksum, 4 is unreachable (and discarded).
    let mut bytes = std::fs::read(&path).unwrap();
    let record = 8 + 7; // header + payload
    bytes[2 * record + 8 + 2] ^= 0x08;
    std::fs::write(&path, &bytes).unwrap();

    let (_, replay) = Wal::open(&path, 1).unwrap();
    assert_eq!(replay.records, vec![b"batch-1".to_vec(), b"batch-2".to_vec()]);
    assert!(matches!(
        replay.tail_error,
        Some(DiskError::ChecksumMismatch { what: "wal record", .. })
    ));
    assert_eq!(replay.truncated_bytes, 2 * record as u64, "records 3 and 4 discarded");
    std::fs::remove_dir_all(&dir).ok();
}
