//! The block cache: a pooled LRU of verified segment pages.
//!
//! Pages are held as `Arc<PageBuf>` so a cursor mid-scan keeps its page
//! alive across an eviction; the eviction merely drops the cache's
//! reference. Evicted buffers land on a free list and are **recycled**
//! when their last outside reference drops — the same
//! allocate-once-reuse-forever discipline as the serving layer's arena
//! pool, so a steady-state scan workload performs no page allocations.
//!
//! Keys carry the segment generation, so a checkpoint that installs a
//! new generation never serves a stale page: old-generation entries age
//! out through normal LRU pressure.
//!
//! All counters are monotonic atomics exported through
//! [`crate::DiskStats`]: hits, misses, evictions, recycled buffers, and
//! read errors (pages that failed verification — which are *never*
//! cached, never served).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::Result;
use crate::page::{PageBuf, PAGE_SIZE};

const NIL: usize = usize::MAX;

/// Monotonic block-cache counters (lock-free reads).
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    recycled: AtomicU64,
    read_errors: AtomicU64,
}

/// One snapshot of the block-cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups served from a resident page.
    pub hits: u64,
    /// Lookups that had to read the page from disk.
    pub misses: u64,
    /// Pages dropped to make room.
    pub evictions: u64,
    /// Page buffers reused from the free pool instead of allocated.
    pub recycled: u64,
    /// Page reads that failed verification (served to nobody).
    pub read_errors: u64,
}

struct Slot {
    key: (u64, u64),
    buf: Option<Arc<PageBuf>>,
    prev: usize,
    next: usize,
}

struct Inner {
    map: HashMap<(u64, u64), usize>,
    slots: Vec<Slot>,
    free_slots: Vec<usize>,
    free_bufs: Vec<Arc<PageBuf>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Inner {
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slots[h].prev = slot,
        }
        self.head = slot;
    }

    fn touch(&mut self, slot: usize) {
        if slot != self.head {
            self.unlink(slot);
            self.link_front(slot);
        }
    }
}

/// A shared LRU cache of verified segment pages.
#[derive(Debug)]
pub struct BlockCache {
    inner: Mutex<Inner>,
    counters: CacheCounters,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Inner({} resident / {} capacity)", self.map.len(), self.capacity)
    }
}

impl BlockCache {
    /// A cache holding at most `capacity` pages (minimum 1).
    pub fn new(capacity: usize) -> BlockCache {
        let capacity = capacity.max(1);
        BlockCache {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(capacity),
                slots: Vec::with_capacity(capacity),
                free_slots: Vec::new(),
                free_bufs: Vec::new(),
                head: NIL,
                tail: NIL,
                capacity,
            }),
            counters: CacheCounters::default(),
        }
    }

    /// The page under `key`, loading (and verifying) it through `load` on
    /// a miss. A failed load is counted and propagated — nothing is
    /// cached, so a later retry re-reads the disk.
    pub fn get_or_load(
        &self,
        key: (u64, u64),
        load: impl FnOnce(&mut [u8; PAGE_SIZE]) -> Result<()>,
    ) -> Result<Arc<PageBuf>> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(&slot) = inner.map.get(&key) {
            inner.touch(slot);
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(
                inner.slots[slot].buf.as_ref().expect("resident slot has a page"),
            ));
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);

        // Make room first so the free buffer can be recycled immediately.
        if inner.map.len() >= inner.capacity {
            let victim = inner.tail;
            inner.unlink(victim);
            let k = inner.slots[victim].key;
            inner.map.remove(&k);
            if let Some(buf) = inner.slots[victim].buf.take() {
                inner.free_bufs.push(buf);
            }
            inner.free_slots.push(victim);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }

        // A pooled buffer is reusable once every cursor holding it let
        // go; still-shared buffers stay parked for a later pass.
        let mut buf = None;
        let mut parked = Vec::new();
        while let Some(candidate) = inner.free_bufs.pop() {
            match Arc::strong_count(&candidate) {
                1 => {
                    buf = Some(candidate);
                    break;
                }
                _ => parked.push(candidate),
            }
        }
        inner.free_bufs.append(&mut parked);
        let mut buf = match buf {
            Some(b) => {
                self.counters.recycled.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => Arc::new(PageBuf::zeroed()),
        };

        {
            let page = &mut Arc::get_mut(&mut buf).expect("pooled buffer is unshared").0;
            if let Err(e) = load(page) {
                self.counters.read_errors.fetch_add(1, Ordering::Relaxed);
                inner.free_bufs.push(buf);
                return Err(e);
            }
        }

        let slot = match inner.free_slots.pop() {
            Some(s) => {
                inner.slots[s].key = key;
                inner.slots[s].buf = Some(Arc::clone(&buf));
                s
            }
            None => {
                inner.slots.push(Slot { key, buf: Some(Arc::clone(&buf)), prev: NIL, next: NIL });
                inner.slots.len() - 1
            }
        };
        inner.map.insert(key, slot);
        inner.link_front(slot);
        Ok(buf)
    }

    /// A counter snapshot.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            recycled: self.counters.recycled.load(Ordering::Relaxed),
            read_errors: self.counters.read_errors.load(Ordering::Relaxed),
        }
    }

    /// Resident pages right now.
    pub fn resident(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(v: u8) -> impl FnOnce(&mut [u8; PAGE_SIZE]) -> Result<()> {
        move |page| {
            page.fill(v);
            Ok(())
        }
    }

    #[test]
    fn hits_misses_and_lru_eviction() {
        let cache = BlockCache::new(2);
        let a = cache.get_or_load((0, 1), fill(1)).unwrap();
        assert_eq!(a.0[0], 1);
        drop(a);
        let _ = cache.get_or_load((0, 2), fill(2)).unwrap();
        // Hit on 1 makes 2 the LRU victim when 3 arrives.
        let _ = cache.get_or_load((0, 1), fill(9)).unwrap();
        let _ = cache.get_or_load((0, 3), fill(3)).unwrap();
        let again = cache.get_or_load((0, 2), fill(2)).unwrap();
        assert_eq!(again.0[0], 2, "2 was evicted and reloaded");
        let s = cache.snapshot();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 4, 2));
        assert_eq!(cache.resident(), 2);
    }

    #[test]
    fn evicted_buffers_are_recycled_once_released() {
        let cache = BlockCache::new(1);
        let held = cache.get_or_load((0, 1), fill(1)).unwrap();
        // Evicting while `held` is alive must not recycle its buffer.
        let _ = cache.get_or_load((0, 2), fill(2)).unwrap();
        assert_eq!(held.0[0], 1, "a held page survives its eviction intact");
        let s = cache.snapshot();
        assert_eq!(s.recycled, 0, "a shared buffer is not reused");
        drop(held);
        // Now the freed buffer is reusable.
        let _ = cache.get_or_load((0, 3), fill(3)).unwrap();
        assert_eq!(cache.snapshot().recycled, 1);
    }

    #[test]
    fn failed_loads_propagate_and_cache_nothing() {
        let cache = BlockCache::new(2);
        let r = cache.get_or_load((0, 1), |_| Err(crate::error::DiskError::Corrupt("test")));
        assert!(r.is_err());
        assert_eq!(cache.resident(), 0);
        assert_eq!(cache.snapshot().read_errors, 1);
        // The key is retried, not poisoned.
        assert!(cache.get_or_load((0, 1), fill(1)).is_ok());
    }
}
