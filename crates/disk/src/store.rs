//! The paged posting store: segments + block cache behind the
//! [`PostingPager`] seam.
//!
//! A [`PagedStore`] owns a directory of segment generations and one
//! shared [`BlockCache`]. [`PagedStore::checkpoint_from`] snapshots the
//! database's in-RAM sorted postings for a chosen table set into a fresh
//! `segments-<gen>.seg` file stamped with the installed
//! [`FkOrderToken`]; installing the generation atomically swaps what
//! probes see. The storage layer routes a prefix scan here only while
//! the stamp still equals the live token — any mutation re-stamps the
//! token, so stale segments silently stop serving until the next
//! checkpoint (the RAM/heap paths keep answering in between).
//!
//! Cursors hold `Arc`s to the generation and to their current page, so a
//! concurrent checkpoint or cache eviction never invalidates an
//! in-flight scan. Every page read is CRC-verified and header-checked
//! (right table, column, key, and sequence) before a single entry is
//! served; any failure marks the cursor failed and the caller falls back
//! (fail closed).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use sizel_storage::{
    Database, FkOrderToken, LinkCursor, PostingCursor, PostingPager, RowId, TableId,
};

use crate::cache::{BlockCache, CacheSnapshot};
use crate::error::{DiskError, Result};
use crate::page::{fk_entry, link_entry, PageBuf, PageKind, FK_PER_PAGE, LINK_PER_PAGE};
use crate::segment::{DirEntry, SegmentFile, SegmentWriter};

/// One immutable segment generation: the opened file, its stamp, and the
/// path (kept for cleanup when superseded).
#[derive(Debug)]
struct SegGeneration {
    id: u64,
    file: SegmentFile,
    stamp: FkOrderToken,
    path: PathBuf,
}

/// A point-in-time view of the store for metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Block-cache counters.
    pub cache: CacheSnapshot,
    /// Pages resident in the cache right now.
    pub resident_pages: u64,
    /// The installed generation id (0 = none yet).
    pub generation: u64,
    /// Posting lists in the installed generation.
    pub lists: u64,
    /// Checkpoints taken over the store's lifetime.
    pub checkpoints: u64,
}

/// Paged posting segments + block cache, attachable to a `Database`.
#[derive(Debug)]
pub struct PagedStore {
    dir: PathBuf,
    cache: Arc<BlockCache>,
    generation: RwLock<Option<Arc<SegGeneration>>>,
    next_gen: AtomicU64,
    checkpoints: AtomicU64,
}

impl PagedStore {
    /// A store rooted at `dir` (created if absent) caching at most
    /// `cache_pages` pages.
    pub fn new(dir: &Path, cache_pages: usize) -> Result<PagedStore> {
        std::fs::create_dir_all(dir)?;
        Ok(PagedStore {
            dir: dir.to_path_buf(),
            cache: Arc::new(BlockCache::new(cache_pages)),
            generation: RwLock::new(None),
            next_gen: AtomicU64::new(1),
            checkpoints: AtomicU64::new(0),
        })
    }

    /// Snapshots the sorted postings of `tables` into a fresh segment
    /// generation stamped with the database's installed order, installs
    /// it, and removes the superseded generation's file. Returns the new
    /// generation id.
    ///
    /// The raw in-RAM arrays are written verbatim (tombstones included),
    /// so a paged scan replays the RAM scan byte for byte.
    pub fn checkpoint_from(&self, db: &Database, tables: &[TableId]) -> Result<u64> {
        let stamp = db
            .fk_order()
            .ok_or(DiskError::Corrupt("checkpoint requires an installed importance order"))?;
        let gen_id = self.next_gen.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("segments-{gen_id}.seg"));
        let mut w = SegmentWriter::create(&path)?;
        let mut keys: Vec<i64> = Vec::new();
        for &tid in tables {
            let t = db.table(tid);
            for (col, idx) in t.sorted_fk_indexes() {
                w.cover(PageKind::Fk, tid.0, col as u16);
                keys.clear();
                keys.extend(idx.posting_lists().map(|(k, _)| k));
                keys.sort_unstable();
                for &key in &keys {
                    let rows = idx.rows(key);
                    // RowId is a u32 newtype: reuse one scratch per list.
                    let raw: Vec<u32> = rows.iter().map(|r| r.0).collect();
                    w.write_fk_list(tid.0, col as u16, key, &raw)?;
                }
            }
            for (col, idx) in t.sorted_link_indexes() {
                w.cover(PageKind::Link, tid.0, col as u16);
                keys.clear();
                keys.extend(idx.groups().map(|(k, _, _)| k));
                keys.sort_unstable();
                for &key in &keys {
                    let pairs = idx.pairs(key);
                    let raw: Vec<(u32, u32)> = pairs.iter().map(|&(j, t)| (j.0, t.0)).collect();
                    w.write_link_list(tid.0, col as u16, key, &raw, idx.raw_group_len(key))?;
                }
            }
        }
        w.finish()?;

        let file = SegmentFile::open(&path)?;
        let fresh = Arc::new(SegGeneration { id: gen_id, file, stamp, path });
        let old = {
            let mut slot = self.generation.write().unwrap_or_else(|p| p.into_inner());
            slot.replace(fresh)
        };
        if let Some(old) = old {
            std::fs::remove_file(&old.path).ok();
        }
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(gen_id)
    }

    /// Store + cache statistics.
    pub fn stats(&self) -> StoreStats {
        let (generation, lists) = match self.current() {
            Some(g) => (g.id, g.file.len() as u64),
            None => (0, 0),
        };
        StoreStats {
            cache: self.cache.snapshot(),
            resident_pages: self.cache.resident() as u64,
            generation,
            lists,
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
        }
    }

    fn current(&self) -> Option<Arc<SegGeneration>> {
        self.generation.read().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

/// A paged scan over one posting list: walks the page run through the
/// cache, verifying every page's identity before serving entries.
struct PagedScan {
    gen: Arc<SegGeneration>,
    cache: Arc<BlockCache>,
    entry: DirEntry,
    kind: PageKind,
    table: u16,
    col: u16,
    key: i64,
    yielded: u32,
    current: Option<(u32, Arc<PageBuf>)>,
    failed: bool,
}

impl PagedScan {
    fn new(
        gen: Arc<SegGeneration>,
        cache: Arc<BlockCache>,
        kind: PageKind,
        table: u16,
        col: u16,
        key: i64,
        entry: DirEntry,
    ) -> PagedScan {
        PagedScan {
            gen,
            cache,
            entry,
            kind,
            table,
            col,
            key,
            yielded: 0,
            current: None,
            failed: false,
        }
    }

    /// An empty covered list: yields nothing, never fails.
    fn empty(gen: Arc<SegGeneration>, cache: Arc<BlockCache>, kind: PageKind) -> PagedScan {
        PagedScan::new(
            gen,
            cache,
            kind,
            0,
            0,
            0,
            DirEntry { first_page: 0, n_pages: 0, n_entries: 0, raw_len: 0 },
        )
    }

    /// The page holding entry `yielded`, loading and verifying on demand.
    fn page_for_next(&mut self) -> Option<&PageBuf> {
        let per_page = match self.kind {
            PageKind::Fk => FK_PER_PAGE,
            PageKind::Link => LINK_PER_PAGE,
        } as u32;
        let run_idx = self.yielded / per_page;
        let page_no = self.entry.first_page + run_idx;
        if self.current.as_ref().map(|&(no, _)| no) != Some(page_no) {
            let expected_entries = (self.entry.n_entries - run_idx * per_page).min(per_page) as u16;
            let gen = &self.gen;
            let (kind, table, col, key) = (self.kind, self.table, self.col, self.key);
            let loaded = self.cache.get_or_load((gen.id, u64::from(page_no)), |buf| {
                let h = gen.file.read_page(page_no, buf)?;
                if h.kind != kind
                    || h.table != table
                    || h.col != col
                    || h.key != key
                    || h.seq != run_idx
                    || h.entry_count != expected_entries
                {
                    return Err(DiskError::Corrupt("segment page does not match its directory"));
                }
                Ok(())
            });
            match loaded {
                Ok(buf) => self.current = Some((page_no, buf)),
                Err(_) => {
                    self.failed = true;
                    return None;
                }
            }
        }
        self.current.as_ref().map(|(_, buf)| buf.as_ref())
    }
}

struct PagedFkCursor(PagedScan);

impl PostingCursor for PagedFkCursor {
    fn next_row(&mut self) -> Option<RowId> {
        let scan = &mut self.0;
        if scan.failed || scan.yielded >= scan.entry.n_entries {
            return None;
        }
        let idx = (scan.yielded as usize) % FK_PER_PAGE;
        let buf = scan.page_for_next()?;
        let row = fk_entry(&buf.0, idx);
        scan.yielded += 1;
        Some(RowId(row))
    }

    fn failed(&self) -> bool {
        self.0.failed
    }
}

struct PagedLinkCursor(PagedScan);

impl LinkCursor for PagedLinkCursor {
    fn next_pair(&mut self) -> Option<(RowId, RowId)> {
        let scan = &mut self.0;
        if scan.failed || scan.yielded >= scan.entry.n_entries {
            return None;
        }
        let idx = (scan.yielded as usize) % LINK_PER_PAGE;
        let buf = scan.page_for_next()?;
        let (j, t) = link_entry(&buf.0, idx);
        scan.yielded += 1;
        Some((RowId(j), RowId(t)))
    }

    fn failed(&self) -> bool {
        self.0.failed
    }
}

impl PostingPager for PagedStore {
    fn stamp(&self) -> Option<FkOrderToken> {
        self.current().map(|g| g.stamp)
    }

    fn fk_cursor(
        &self,
        table: TableId,
        col: usize,
        key: i64,
    ) -> Option<Box<dyn PostingCursor + '_>> {
        let gen = self.current()?;
        if !gen.file.covers(PageKind::Fk, table.0, col as u16) {
            return None;
        }
        let cache = Arc::clone(&self.cache);
        let scan = match gen.file.lookup(PageKind::Fk, table.0, col as u16, key) {
            Some(entry) => {
                PagedScan::new(gen, cache, PageKind::Fk, table.0, col as u16, key, entry)
            }
            None => PagedScan::empty(gen, cache, PageKind::Fk),
        };
        Some(Box::new(PagedFkCursor(scan)))
    }

    fn link_cursor(
        &self,
        table: TableId,
        col: usize,
        key: i64,
    ) -> Option<Box<dyn LinkCursor + '_>> {
        let gen = self.current()?;
        if !gen.file.covers(PageKind::Link, table.0, col as u16) {
            return None;
        }
        let cache = Arc::clone(&self.cache);
        let scan = match gen.file.lookup(PageKind::Link, table.0, col as u16, key) {
            Some(entry) => {
                PagedScan::new(gen, cache, PageKind::Link, table.0, col as u16, key, entry)
            }
            None => PagedScan::empty(gen, cache, PageKind::Link),
        };
        Some(Box::new(PagedLinkCursor(scan)))
    }

    fn link_raw_len(&self, table: TableId, col: usize, key: i64) -> Option<usize> {
        let gen = self.current()?;
        if !gen.file.covers(PageKind::Link, table.0, col as u16) {
            return None;
        }
        Some(
            gen.file
                .lookup(PageKind::Link, table.0, col as u16, key)
                .map_or(0, |e| e.raw_len as usize),
        )
    }
}
