//! Write-ahead batch durability.
//!
//! One WAL file per engine (per shard under clustering), append-only,
//! with self-delimiting checksummed records:
//!
//! ```text
//! [payload_len u32][payload_crc32 u32][payload bytes]
//! ```
//!
//! The engine appends the encoded mutation batch *before* touching any
//! postings (redo semantics): a crash between the append and settlement
//! recovers the batch by replaying the WAL, so a batch is durable the
//! moment its record is synced. Appends batch their fsyncs — every
//! `fsync_every` records (1 = sync every append) — trading a bounded
//! window of recent batches for throughput; checkpoints sync
//! unconditionally before truncating.
//!
//! Replay stops at the FIRST damaged record: a torn tail (partial header
//! or short payload — the signature of a crash mid-append) or a checksum
//! mismatch. Everything before it is the committed prefix; everything
//! from it on is discarded and the file is truncated back to the good
//! prefix, so the log never serves bytes after a record it cannot
//! verify.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::crc::crc32;
use crate::error::{DiskError, Result};

const RECORD_HEADER_LEN: u64 = 8;
/// Upper bound on one record's payload; anything larger is corruption,
/// not data (a batch of staged mutations is nowhere near this).
const MAX_RECORD_LEN: u32 = 1 << 30;

/// The outcome of replaying a WAL on open.
#[derive(Debug)]
pub struct WalReplay {
    /// The committed record payloads, oldest first.
    pub records: Vec<Vec<u8>>,
    /// Why replay stopped early, if it did: the error found at the first
    /// unverifiable record. The file was truncated back to the verified
    /// prefix.
    pub tail_error: Option<DiskError>,
    /// Bytes discarded past the verified prefix.
    pub truncated_bytes: u64,
}

/// An open write-ahead log positioned at its committed tail.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Verified length — appends start here.
    len: u64,
    fsync_every: usize,
    appends_since_sync: usize,
}

impl Wal {
    /// Opens (creating if absent) the WAL at `path`, replays every
    /// committed record, and truncates any unverifiable tail. Returns the
    /// log positioned for appending plus the replay outcome.
    pub fn open(path: &Path, fsync_every: usize) -> Result<(Wal, WalReplay)> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let file_len = file.metadata()?.len();
        let mut bytes = Vec::with_capacity(file_len as usize);
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut at = 0u64;
        let mut tail_error = None;
        while at < file_len {
            if at + RECORD_HEADER_LEN > file_len {
                tail_error = Some(DiskError::TornRecord { offset: at });
                break;
            }
            let h = &bytes[at as usize..(at + RECORD_HEADER_LEN) as usize];
            let len = u32::from_le_bytes(h[0..4].try_into().unwrap());
            let stored = u32::from_le_bytes(h[4..8].try_into().unwrap());
            if len > MAX_RECORD_LEN {
                tail_error = Some(DiskError::Corrupt("wal record length"));
                break;
            }
            let start = at + RECORD_HEADER_LEN;
            let end = start + u64::from(len);
            if end > file_len {
                tail_error = Some(DiskError::TornRecord { offset: at });
                break;
            }
            let payload = &bytes[start as usize..end as usize];
            let computed = crc32(payload);
            if stored != computed {
                tail_error =
                    Some(DiskError::ChecksumMismatch { what: "wal record", stored, computed });
                break;
            }
            records.push(payload.to_vec());
            at = end;
        }

        let truncated_bytes = file_len - at;
        if truncated_bytes > 0 {
            file.set_len(at)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(at))?;
        Ok((
            Wal { file, len: at, fsync_every: fsync_every.max(1), appends_since_sync: 0 },
            WalReplay { records, tail_error, truncated_bytes },
        ))
    }

    /// Appends one record and syncs if the fsync batch filled. Returns
    /// whether this append synced.
    pub fn append(&mut self, payload: &[u8]) -> Result<bool> {
        let mut header = [0u8; RECORD_HEADER_LEN as usize];
        header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&crc32(payload).to_le_bytes());
        self.file.write_all(&header)?;
        self.file.write_all(payload)?;
        self.len += RECORD_HEADER_LEN + payload.len() as u64;
        self.appends_since_sync += 1;
        if self.appends_since_sync >= self.fsync_every {
            self.sync()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Empties the log after a checkpoint made its records redundant.
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.len = 0;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// The verified log length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("sizel-wal-{}-{}-{}", std::process::id(), tag, n))
    }

    #[test]
    fn append_replay_roundtrip_and_truncate() {
        let path = temp_wal("roundtrip");
        {
            let (mut wal, replay) = Wal::open(&path, 2).unwrap();
            assert!(replay.records.is_empty());
            assert!(!wal.append(b"one").unwrap(), "first append below the fsync batch");
            assert!(wal.append(b"two").unwrap(), "second append completes the batch");
            wal.append(b"three").unwrap();
            wal.sync().unwrap();
        }
        let (mut wal, replay) = Wal::open(&path, 1).unwrap();
        assert_eq!(replay.records, vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        assert!(replay.tail_error.is_none());
        wal.truncate().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, 1).unwrap();
        assert!(replay.records.is_empty(), "checkpoint truncation empties the log");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_and_the_file_healed() {
        let path = temp_wal("torn");
        {
            let (mut wal, _) = Wal::open(&path, 1).unwrap();
            wal.append(b"committed").unwrap();
        }
        // Simulate a crash mid-append: a header promising more bytes than
        // the file holds.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(b"short").unwrap();
        }
        let (wal, replay) = Wal::open(&path, 1).unwrap();
        assert_eq!(replay.records, vec![b"committed".to_vec()]);
        assert!(matches!(replay.tail_error, Some(DiskError::TornRecord { .. })));
        assert_eq!(replay.truncated_bytes, 13);
        // The file was truncated back to the committed prefix, so a
        // reopen is clean.
        drop(wal);
        let (_, replay) = Wal::open(&path, 1).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.tail_error.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_stops_replay_at_the_first_bad_record() {
        let path = temp_wal("corrupt");
        {
            let (mut wal, _) = Wal::open(&path, 1).unwrap();
            wal.append(b"alpha").unwrap();
            wal.append(b"beta").unwrap();
            wal.append(b"gamma").unwrap();
        }
        // Flip one payload byte of "beta" (record 2's payload starts
        // after record 1 [8 + 5] plus record 2's header [8]).
        {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[8 + 5 + 8] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
        }
        let (_, replay) = Wal::open(&path, 1).unwrap();
        assert_eq!(replay.records, vec![b"alpha".to_vec()], "replay stops before the damage");
        assert!(matches!(replay.tail_error, Some(DiskError::ChecksumMismatch { .. })));
        assert!(replay.truncated_bytes > 0, "the bad suffix is discarded");
        std::fs::remove_file(&path).ok();
    }
}
