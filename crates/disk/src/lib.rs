//! Disk tier: paged posting segments, a pooled block cache, and
//! write-ahead batch durability.
//!
//! The paper's cost model counts *accesses*; everything above this crate
//! works over in-RAM postings where an access is a pointer chase. This
//! crate gives the same sorted postings a disk-resident form so cold or
//! huge tables can page instead of pinning RAM, without changing a
//! single answer or a single counted access:
//!
//! * [`segment`] — immutable, checksummed segment files paging each
//!   importance-sorted posting list into fixed 4 KiB pages
//!   ([`page`]), with a directory distinguishing *covered-but-empty*
//!   lists from *not-covered* columns (the accounting-parity pivot),
//! * [`cache`] — a pooled LRU [`BlockCache`] of verified pages
//!   (buffers recycled, hit/miss/evict counters exported),
//! * [`store`] — [`PagedStore`], the [`sizel_storage::PostingPager`]
//!   implementation the database routes prefix scans to while the
//!   segment stamp matches the installed order,
//! * [`wal`] — the write-ahead log giving `apply_batch` redo
//!   durability: append + fsync before settlement, replay on recovery,
//!   truncate at checkpoint.
//!
//! Everything fails closed: a page or record that doesn't verify is a
//! typed [`DiskError`], never a truncated-but-served scan.

pub mod cache;
pub mod crc;
pub mod error;
pub mod page;
pub mod segment;
pub mod store;
pub mod wal;

pub use cache::{BlockCache, CacheSnapshot};
pub use error::{DiskError, Result};
pub use page::{PageBuf, PageKind, PAGE_SIZE};
pub use segment::{SegmentFile, SegmentWriter};
pub use store::{PagedStore, StoreStats};
pub use wal::{Wal, WalReplay};
