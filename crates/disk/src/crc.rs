//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! The same checksum guards segment pages and WAL records. The table is
//! built at compile time, so verification costs one lookup per byte with
//! no startup work. Matches the ubiquitous zlib/`crc32fast` definition
//! (reflected, init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`), so external
//! tooling can verify the files.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard test vectors for the IEEE polynomial.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"size-l object summaries".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} went undetected");
            }
        }
    }
}
