//! The fixed-size segment page.
//!
//! Every posting list in a segment is laid out as a run of 4 KiB pages,
//! each self-describing and self-verifying:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "SLPG"
//!      4     1  kind          (1 = FK postings, 2 = link postings)
//!      5     1  reserved      (zero)
//!      6     2  table         (TableId, little-endian)
//!      8     2  column        (FK column index)
//!     10     2  entry_count   (entries in THIS page)
//!     12     8  key           (the i64 FK key this list serves)
//!     20     4  seq           (page number within the list, 0-based)
//!     24     4  crc32         (over the whole page, crc field zeroed)
//!     28  4068  payload
//! ```
//!
//! FK payload entries are `u32` row ids (1017 per page); link payload
//! entries are `(u32, u32)` junction/target row pairs (508 per page) —
//! both stored in exactly the descending-importance order of the in-RAM
//! sorted postings, so a prefix scan of the pages IS the prefix scan of
//! the list. The checksum covers header and payload alike: any flipped
//! bit fails the page, and a failed page fails the scan (fail closed).

use crate::crc::crc32;
use crate::error::{DiskError, Result};

/// Page size in bytes. Matches the common filesystem block size.
pub const PAGE_SIZE: usize = 4096;
/// Payload start: the byte past the header.
pub const PAGE_HEADER_LEN: usize = 28;
/// FK row-id entries per page.
pub const FK_PER_PAGE: usize = (PAGE_SIZE - PAGE_HEADER_LEN) / 4;
/// Link pair entries per page.
pub const LINK_PER_PAGE: usize = (PAGE_SIZE - PAGE_HEADER_LEN) / 8;

const MAGIC: [u8; 4] = *b"SLPG";
const CRC_OFFSET: usize = 24;

/// One pooled, page-sized buffer. Held behind `Arc` by the block cache
/// so cursors can outlive evictions; recycled through the cache's free
/// list when the last reference drops.
#[derive(Clone)]
pub struct PageBuf(pub [u8; PAGE_SIZE]);

impl PageBuf {
    /// A zeroed page buffer.
    pub fn zeroed() -> PageBuf {
        PageBuf([0; PAGE_SIZE])
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageBuf({} bytes)", PAGE_SIZE)
    }
}

/// What a page stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageKind {
    /// FK posting rows (`u32` each).
    Fk = 1,
    /// Link posting pairs (`(u32, u32)` each).
    Link = 2,
}

/// The decoded page header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageHeader {
    /// Payload kind.
    pub kind: PageKind,
    /// Owning table.
    pub table: u16,
    /// FK column index within the table.
    pub col: u16,
    /// Entries stored in this page.
    pub entry_count: u16,
    /// The FK key whose list this page belongs to.
    pub key: i64,
    /// 0-based page number within the list.
    pub seq: u32,
}

/// Encodes `header` into `buf` and seals the page: computes the CRC over
/// the whole page with the CRC field zeroed, then stores it.
pub fn seal_page(buf: &mut [u8; PAGE_SIZE], header: PageHeader) {
    buf[0..4].copy_from_slice(&MAGIC);
    buf[4] = header.kind as u8;
    buf[5] = 0;
    buf[6..8].copy_from_slice(&header.table.to_le_bytes());
    buf[8..10].copy_from_slice(&header.col.to_le_bytes());
    buf[10..12].copy_from_slice(&header.entry_count.to_le_bytes());
    buf[12..20].copy_from_slice(&header.key.to_le_bytes());
    buf[20..24].copy_from_slice(&header.seq.to_le_bytes());
    buf[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&[0; 4]);
    let crc = crc32(buf);
    buf[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
}

/// Verifies `buf`'s magic and checksum and decodes its header. Any
/// mismatch is a typed error — the page must not be used.
pub fn verify_page(buf: &[u8; PAGE_SIZE]) -> Result<PageHeader> {
    if buf[0..4] != MAGIC {
        return Err(DiskError::Corrupt("segment page magic"));
    }
    let stored = u32::from_le_bytes(buf[CRC_OFFSET..CRC_OFFSET + 4].try_into().unwrap());
    let mut shadow = *buf;
    shadow[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&[0; 4]);
    let computed = crc32(&shadow);
    if stored != computed {
        return Err(DiskError::ChecksumMismatch { what: "segment page", stored, computed });
    }
    let kind = match buf[4] {
        1 => PageKind::Fk,
        2 => PageKind::Link,
        _ => return Err(DiskError::Corrupt("segment page kind")),
    };
    let entry_count = u16::from_le_bytes(buf[10..12].try_into().unwrap());
    let per_page = match kind {
        PageKind::Fk => FK_PER_PAGE,
        PageKind::Link => LINK_PER_PAGE,
    };
    if entry_count as usize > per_page {
        return Err(DiskError::Corrupt("segment page entry count"));
    }
    Ok(PageHeader {
        kind,
        table: u16::from_le_bytes(buf[6..8].try_into().unwrap()),
        col: u16::from_le_bytes(buf[8..10].try_into().unwrap()),
        entry_count,
        key: i64::from_le_bytes(buf[12..20].try_into().unwrap()),
        seq: u32::from_le_bytes(buf[20..24].try_into().unwrap()),
    })
}

/// Reads FK entry `i` of a verified page.
pub fn fk_entry(buf: &[u8; PAGE_SIZE], i: usize) -> u32 {
    let at = PAGE_HEADER_LEN + i * 4;
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

/// Writes FK entry `i` (before sealing).
pub fn put_fk_entry(buf: &mut [u8; PAGE_SIZE], i: usize, row: u32) {
    let at = PAGE_HEADER_LEN + i * 4;
    buf[at..at + 4].copy_from_slice(&row.to_le_bytes());
}

/// Reads link entry `i` of a verified page.
pub fn link_entry(buf: &[u8; PAGE_SIZE], i: usize) -> (u32, u32) {
    let at = PAGE_HEADER_LEN + i * 8;
    (
        u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()),
        u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap()),
    )
}

/// Writes link entry `i` (before sealing).
pub fn put_link_entry(buf: &mut [u8; PAGE_SIZE], i: usize, pair: (u32, u32)) {
    let at = PAGE_HEADER_LEN + i * 8;
    buf[at..at + 4].copy_from_slice(&pair.0.to_le_bytes());
    buf[at + 4..at + 8].copy_from_slice(&pair.1.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_verify_roundtrip() {
        let mut buf = PageBuf::zeroed();
        for i in 0..FK_PER_PAGE {
            put_fk_entry(&mut buf.0, i, i as u32 * 3);
        }
        let header = PageHeader {
            kind: PageKind::Fk,
            table: 7,
            col: 2,
            entry_count: FK_PER_PAGE as u16,
            key: -42,
            seq: 9,
        };
        seal_page(&mut buf.0, header);
        assert_eq!(verify_page(&buf.0).unwrap(), header);
        assert_eq!(fk_entry(&buf.0, 5), 15);
    }

    #[test]
    fn any_flipped_bit_fails_verification() {
        let mut buf = PageBuf::zeroed();
        put_link_entry(&mut buf.0, 0, (3, 4));
        seal_page(
            &mut buf.0,
            PageHeader { kind: PageKind::Link, table: 1, col: 1, entry_count: 1, key: 0, seq: 0 },
        );
        // A payload flip, a header flip, and a CRC flip all fail.
        for at in [PAGE_HEADER_LEN, 12, CRC_OFFSET] {
            let mut bad = buf.clone();
            bad.0[at] ^= 0x10;
            assert!(verify_page(&bad.0).is_err(), "flip at {at} went undetected");
        }
    }

    #[test]
    fn capacity_constants_fill_the_page_exactly() {
        assert_eq!(FK_PER_PAGE, 1017);
        assert_eq!(LINK_PER_PAGE, 508);
        const { assert!(PAGE_HEADER_LEN + FK_PER_PAGE * 4 <= PAGE_SIZE) };
        const { assert!(PAGE_HEADER_LEN + LINK_PER_PAGE * 8 <= PAGE_SIZE) };
    }
}
