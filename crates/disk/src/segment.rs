//! Posting segments: immutable, checksummed, directory-addressed files.
//!
//! A segment snapshots every sorted posting list of a set of tables at
//! one installed-order stamp, each list paged into fixed 4 KiB pages
//! ([`crate::page`]) stored in exactly the in-RAM descending-importance
//! order — the raw arrays, tombstones included, so a paged scan is
//! byte-for-byte the RAM scan. The file layout:
//!
//! ```text
//! [page 0][page 1]...[page N-1][directory][dir_len u64][dir_crc u32][magic u32]
//! ```
//!
//! The directory maps `(kind, table, col, key)` to the list's page run
//! and carries explicit **coverage records** per `(kind, table, col)`:
//! a covered column with no entry for a key is a *known-empty* list
//! (served as an empty cursor, same as the RAM path's fast empty probe),
//! while an uncovered column is *not in this segment* (the caller falls
//! back to the heap path). Conflating the two would silently change the
//! paper-cost accounting, so the distinction is stored, not inferred.
//!
//! Directory serialization (little-endian):
//!
//! ```text
//! n_coverage u32, then per record: kind u8, table u16, col u16
//! n_entries  u32, then per entry:  kind u8, table u16, col u16,
//!                                  key i64, first_page u32, n_pages u32,
//!                                  n_entries u32, raw_len u32
//! ```

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;

use crate::crc::crc32;
use crate::error::{DiskError, Result};
use crate::page::{
    put_fk_entry, put_link_entry, seal_page, verify_page, PageBuf, PageHeader, PageKind,
    FK_PER_PAGE, LINK_PER_PAGE, PAGE_SIZE,
};

const TRAILER_MAGIC: [u8; 4] = *b"SLSG";
const TRAILER_LEN: u64 = 16;
const COVERAGE_RECORD_LEN: usize = 5;
const DIR_ENTRY_LEN: usize = 29;

/// Directory key: (kind, table, col, key).
type DirKey = (u8, u16, u16, i64);

/// One posting list's location within the segment.
#[derive(Clone, Copy, Debug)]
pub struct DirEntry {
    /// First page of the run.
    pub first_page: u32,
    /// Pages in the run.
    pub n_pages: u32,
    /// Total entries across the run.
    pub n_entries: u32,
    /// The raw FK group size (the heap path's probe cost) — for link
    /// lists this is the live group size the accounting reports; for FK
    /// lists it equals `n_entries`.
    pub raw_len: u32,
}

/// Streams pages then a directory into a new segment file.
pub struct SegmentWriter {
    out: BufWriter<File>,
    next_page: u32,
    buf: PageBuf,
    coverage: Vec<(u8, u16, u16)>,
    entries: Vec<(DirKey, DirEntry)>,
}

impl SegmentWriter {
    /// Creates `path` (truncating any previous file) and positions the
    /// writer at page 0.
    pub fn create(path: &Path) -> Result<SegmentWriter> {
        let file = File::create(path)?;
        Ok(SegmentWriter {
            out: BufWriter::new(file),
            next_page: 0,
            buf: PageBuf::zeroed(),
            coverage: Vec::new(),
            entries: Vec::new(),
        })
    }

    /// Records that `(kind, table, col)` is fully covered by this
    /// segment: keys without a written list are known-empty.
    pub fn cover(&mut self, kind: PageKind, table: u16, col: u16) {
        self.coverage.push((kind as u8, table, col));
    }

    /// Writes one FK posting list (raw row ids, descending importance).
    pub fn write_fk_list(&mut self, table: u16, col: u16, key: i64, rows: &[u32]) -> Result<()> {
        let first_page = self.next_page;
        for (seq, chunk) in rows.chunks(FK_PER_PAGE).enumerate() {
            self.buf.0 = [0; PAGE_SIZE];
            for (i, &row) in chunk.iter().enumerate() {
                put_fk_entry(&mut self.buf.0, i, row);
            }
            seal_page(
                &mut self.buf.0,
                PageHeader {
                    kind: PageKind::Fk,
                    table,
                    col,
                    entry_count: chunk.len() as u16,
                    key,
                    seq: seq as u32,
                },
            );
            self.out.write_all(&self.buf.0)?;
            self.next_page += 1;
        }
        if !rows.is_empty() {
            self.entries.push((
                (PageKind::Fk as u8, table, col, key),
                DirEntry {
                    first_page,
                    n_pages: self.next_page - first_page,
                    n_entries: rows.len() as u32,
                    raw_len: rows.len() as u32,
                },
            ));
        }
        Ok(())
    }

    /// Writes one link posting group (raw pairs, descending target
    /// importance) with its raw group length.
    pub fn write_link_list(
        &mut self,
        table: u16,
        col: u16,
        key: i64,
        pairs: &[(u32, u32)],
        raw_len: usize,
    ) -> Result<()> {
        let first_page = self.next_page;
        for (seq, chunk) in pairs.chunks(LINK_PER_PAGE).enumerate() {
            self.buf.0 = [0; PAGE_SIZE];
            for (i, &pair) in chunk.iter().enumerate() {
                put_link_entry(&mut self.buf.0, i, pair);
            }
            seal_page(
                &mut self.buf.0,
                PageHeader {
                    kind: PageKind::Link,
                    table,
                    col,
                    entry_count: chunk.len() as u16,
                    key,
                    seq: seq as u32,
                },
            );
            self.out.write_all(&self.buf.0)?;
            self.next_page += 1;
        }
        if !pairs.is_empty() || raw_len > 0 {
            self.entries.push((
                (PageKind::Link as u8, table, col, key),
                DirEntry {
                    first_page,
                    n_pages: self.next_page - first_page,
                    n_entries: pairs.len() as u32,
                    raw_len: raw_len as u32,
                },
            ));
        }
        Ok(())
    }

    /// Writes the directory and trailer, flushes, and fsyncs.
    pub fn finish(mut self) -> Result<()> {
        let mut dir = Vec::with_capacity(
            8 + self.coverage.len() * COVERAGE_RECORD_LEN + self.entries.len() * DIR_ENTRY_LEN,
        );
        dir.extend_from_slice(&(self.coverage.len() as u32).to_le_bytes());
        for &(kind, table, col) in &self.coverage {
            dir.push(kind);
            dir.extend_from_slice(&table.to_le_bytes());
            dir.extend_from_slice(&col.to_le_bytes());
        }
        dir.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for &((kind, table, col, key), e) in &self.entries {
            dir.push(kind);
            dir.extend_from_slice(&table.to_le_bytes());
            dir.extend_from_slice(&col.to_le_bytes());
            dir.extend_from_slice(&key.to_le_bytes());
            dir.extend_from_slice(&e.first_page.to_le_bytes());
            dir.extend_from_slice(&e.n_pages.to_le_bytes());
            dir.extend_from_slice(&e.n_entries.to_le_bytes());
            dir.extend_from_slice(&e.raw_len.to_le_bytes());
        }
        self.out.write_all(&dir)?;
        self.out.write_all(&(dir.len() as u64).to_le_bytes())?;
        self.out.write_all(&crc32(&dir).to_le_bytes())?;
        self.out.write_all(&TRAILER_MAGIC)?;
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        Ok(())
    }
}

/// An opened segment: verified directory plus positioned page reads.
#[derive(Debug)]
pub struct SegmentFile {
    file: File,
    dir: HashMap<DirKey, DirEntry>,
    coverage: HashSet<(u8, u16, u16)>,
}

impl SegmentFile {
    /// Opens `path`, verifies the trailer and directory checksum, and
    /// loads the directory. Fails closed on any structural damage.
    pub fn open(path: &Path) -> Result<SegmentFile> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < TRAILER_LEN {
            return Err(DiskError::Corrupt("segment shorter than its trailer"));
        }
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact_at(&mut trailer, len - TRAILER_LEN)?;
        if trailer[12..16] != TRAILER_MAGIC {
            return Err(DiskError::Corrupt("segment trailer magic"));
        }
        let dir_len = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let stored = u32::from_le_bytes(trailer[8..12].try_into().unwrap());
        if dir_len > len - TRAILER_LEN {
            return Err(DiskError::Corrupt("segment directory length"));
        }
        let dir_start = len - TRAILER_LEN - dir_len;
        if dir_start % PAGE_SIZE as u64 != 0 {
            return Err(DiskError::Corrupt("segment directory offset"));
        }
        let mut dir = vec![0u8; dir_len as usize];
        file.seek(SeekFrom::Start(dir_start))?;
        file.read_exact(&mut dir)?;
        let computed = crc32(&dir);
        if stored != computed {
            return Err(DiskError::ChecksumMismatch {
                what: "segment directory",
                stored,
                computed,
            });
        }

        let n_pages = (dir_start / PAGE_SIZE as u64) as u32;
        let mut at = 0usize;
        let take_u32 = |dir: &[u8], at: &mut usize| -> Result<u32> {
            let end = *at + 4;
            if end > dir.len() {
                return Err(DiskError::Corrupt("segment directory truncated"));
            }
            let v = u32::from_le_bytes(dir[*at..end].try_into().unwrap());
            *at = end;
            Ok(v)
        };
        let n_cov = take_u32(&dir, &mut at)? as usize;
        let mut coverage = HashSet::with_capacity(n_cov);
        for _ in 0..n_cov {
            if at + COVERAGE_RECORD_LEN > dir.len() {
                return Err(DiskError::Corrupt("segment directory truncated"));
            }
            coverage.insert((
                dir[at],
                u16::from_le_bytes(dir[at + 1..at + 3].try_into().unwrap()),
                u16::from_le_bytes(dir[at + 3..at + 5].try_into().unwrap()),
            ));
            at += COVERAGE_RECORD_LEN;
        }
        let n_entries = take_u32(&dir, &mut at)? as usize;
        let mut map = HashMap::with_capacity(n_entries);
        for _ in 0..n_entries {
            if at + DIR_ENTRY_LEN > dir.len() {
                return Err(DiskError::Corrupt("segment directory truncated"));
            }
            let kind = dir[at];
            let table = u16::from_le_bytes(dir[at + 1..at + 3].try_into().unwrap());
            let col = u16::from_le_bytes(dir[at + 3..at + 5].try_into().unwrap());
            let key = i64::from_le_bytes(dir[at + 5..at + 13].try_into().unwrap());
            let e = DirEntry {
                first_page: u32::from_le_bytes(dir[at + 13..at + 17].try_into().unwrap()),
                n_pages: u32::from_le_bytes(dir[at + 17..at + 21].try_into().unwrap()),
                n_entries: u32::from_le_bytes(dir[at + 21..at + 25].try_into().unwrap()),
                raw_len: u32::from_le_bytes(dir[at + 25..at + 29].try_into().unwrap()),
            };
            if u64::from(e.first_page) + u64::from(e.n_pages) > u64::from(n_pages) {
                return Err(DiskError::Corrupt("segment directory entry out of range"));
            }
            map.insert((kind, table, col, key), e);
            at += DIR_ENTRY_LEN;
        }
        Ok(SegmentFile { file, dir: map, coverage })
    }

    /// Whether `(kind, table, col)` is covered by this segment.
    pub fn covers(&self, kind: PageKind, table: u16, col: u16) -> bool {
        self.coverage.contains(&(kind as u8, table, col))
    }

    /// The directory entry of `(kind, table, col, key)`, if the list is
    /// non-empty.
    pub fn lookup(&self, kind: PageKind, table: u16, col: u16, key: i64) -> Option<DirEntry> {
        self.dir.get(&(kind as u8, table, col, key)).copied()
    }

    /// Reads and verifies page `page_no` into `buf`.
    pub fn read_page(&self, page_no: u32, buf: &mut [u8; PAGE_SIZE]) -> Result<PageHeader> {
        self.file.read_exact_at(buf, u64::from(page_no) * PAGE_SIZE as u64)?;
        verify_page(buf)
    }

    /// Directory entries in this segment (for stats/tests).
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// True when the segment has no posting lists.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }
}
