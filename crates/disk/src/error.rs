//! Typed disk-tier errors.
//!
//! Every failure a segment or WAL read can hit maps to a variant here, so
//! callers can distinguish "the OS failed us" ([`DiskError::Io`]) from
//! "the bytes are lying" ([`DiskError::ChecksumMismatch`],
//! [`DiskError::Corrupt`]) — the latter is the fail-closed trigger: a
//! page that doesn't verify is *never* served, partially or otherwise.

use std::fmt;

/// A disk-tier failure. All reads fail closed on any variant.
#[derive(Debug)]
pub enum DiskError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// Stored and recomputed checksums disagree: the page or record bytes
    /// are damaged and must not be served.
    ChecksumMismatch {
        /// What was being verified ("segment page", "wal record", ...).
        what: &'static str,
        /// The checksum stored on disk.
        stored: u32,
        /// The checksum recomputed over the bytes read.
        computed: u32,
    },
    /// Structurally invalid bytes: bad magic, impossible lengths, a
    /// directory pointing past the end of the file.
    Corrupt(&'static str),
    /// A WAL tail ended mid-record (a torn final append). Recovery treats
    /// everything before it as committed and discards the tail.
    TornRecord {
        /// File offset of the first byte of the torn record.
        offset: u64,
    },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "disk i/o error: {e}"),
            DiskError::ChecksumMismatch { what, stored, computed } => write!(
                f,
                "checksum mismatch on {what}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            DiskError::Corrupt(what) => write!(f, "corrupt disk structure: {what}"),
            DiskError::TornRecord { offset } => {
                write!(f, "torn wal record at offset {offset}")
            }
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> DiskError {
        DiskError::Io(e)
    }
}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, DiskError>;
