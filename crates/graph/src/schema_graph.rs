//! The database schema as a bidirectionally-traversable graph.

use sizel_storage::{Database, TableId};

/// Identifies one foreign-key edge of the schema graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchemaEdgeId(pub u16);

impl SchemaEdgeId {
    /// The edge index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Traversal direction over a foreign-key edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Along the FK: from the referencing table to the referenced table
    /// (N:1 — at most one target per tuple).
    Forward,
    /// Against the FK: from the referenced table to its referencing tuples
    /// (1:N).
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// One foreign-key edge: `from.fk_col` references `to`'s primary key.
#[derive(Clone, Debug)]
pub struct SchemaEdge {
    /// This edge's id.
    pub id: SchemaEdgeId,
    /// Referencing table (holds the FK column).
    pub from: TableId,
    /// The FK column index within `from`.
    pub fk_col: usize,
    /// Referenced table.
    pub to: TableId,
}

impl SchemaEdge {
    /// The table a step over this edge in `dir` arrives at.
    pub fn target(&self, dir: Direction) -> TableId {
        match dir {
            Direction::Forward => self.to,
            Direction::Backward => self.from,
        }
    }

    /// The table a step over this edge in `dir` departs from.
    pub fn source(&self, dir: Direction) -> TableId {
        match dir {
            Direction::Forward => self.from,
            Direction::Backward => self.to,
        }
    }
}

/// The schema graph: relations as nodes, FKs as edges, with per-table
/// adjacency lists of `(edge, direction)` steps.
#[derive(Debug)]
pub struct SchemaGraph {
    edges: Vec<SchemaEdge>,
    /// `steps[t]` = traversal steps available from table `t`.
    steps: Vec<Vec<(SchemaEdgeId, Direction)>>,
}

impl SchemaGraph {
    /// Derives the schema graph from a database's FK declarations.
    pub fn from_database(db: &Database) -> Self {
        let n = db.table_count();
        let mut edges = Vec::new();
        let mut steps = vec![Vec::new(); n];
        for (tid, table) in db.tables() {
            for fk in &table.schema.fks {
                let to = db
                    .table_id(&fk.ref_table)
                    .expect("FK targets are validated when tables are created");
                let id = SchemaEdgeId(edges.len() as u16);
                edges.push(SchemaEdge { id, from: tid, fk_col: fk.column, to });
                steps[tid.index()].push((id, Direction::Forward));
                steps[to.index()].push((id, Direction::Backward));
            }
        }
        SchemaGraph { edges, steps }
    }

    /// The edge with the given id.
    pub fn edge(&self, id: SchemaEdgeId) -> &SchemaEdge {
        &self.edges[id.index()]
    }

    /// All edges.
    pub fn edges(&self) -> &[SchemaEdge] {
        &self.edges
    }

    /// Steps available from `table`.
    pub fn steps_from(&self, table: TableId) -> &[(SchemaEdgeId, Direction)] {
        &self.steps[table.index()]
    }

    /// Schema-graph degree of a table (number of incident FK endpoints).
    pub fn degree(&self, table: TableId) -> usize {
        self.steps[table.index()].len()
    }

    /// FK edges *of* a junction table (its outgoing FKs), in declaration
    /// order. Junctions have exactly two by schema validation.
    pub fn junction_edges(&self, junction: TableId) -> Vec<SchemaEdgeId> {
        self.edges.iter().filter(|e| e.from == junction).map(|e| e.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizel_datagen::dblp::{generate, DblpConfig};

    #[test]
    fn dblp_schema_graph_shape() {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        // FK edges: Year->Conference, Paper->Year, AuthorPaper->{Author,Paper},
        // Citation->{Paper,Paper} = 6 edges.
        assert_eq!(sg.edges().len(), 6);
        // Paper is referenced by AuthorPaper and Citation (twice) and
        // references Year: degree 5 (1 fwd + 4 bwd... AuthorPaper.paper_id,
        // Citation.citing_id, Citation.cited_id, plus its own FK to Year).
        assert_eq!(sg.degree(d.paper), 4);
        assert_eq!(sg.degree(d.conference), 1);
    }

    #[test]
    fn steps_are_consistent_with_edges() {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        for (eid, dir) in sg.steps_from(d.paper) {
            let e = sg.edge(*eid);
            assert_eq!(e.source(*dir), d.paper);
            // Target must differ from source except for self-referencing
            // tables (none among direct FKs here: citation is a junction).
            assert_ne!(e.target(*dir), d.paper);
        }
    }

    #[test]
    fn junction_edges_found_in_order() {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let je = sg.junction_edges(d.author_paper);
        assert_eq!(je.len(), 2);
        assert_eq!(sg.edge(je[0]).to, d.author, "author_id declared first");
        assert_eq!(sg.edge(je[1]).to, d.paper);
        let jc = sg.junction_edges(d.citation);
        assert_eq!(jc.len(), 2);
        assert_eq!(sg.edge(jc[0]).to, d.paper);
        assert_eq!(sg.edge(jc[1]).to, d.paper);
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Backward);
        assert_eq!(Direction::Backward.flip(), Direction::Forward);
    }
}
