//! The tuple-level data graph: an in-memory index over all FK relationships.
//!
//! Section 6.3 of the paper: "our data-graph nodes correspond to the
//! database tuples and edges to tuples relationships (through their primary
//! and foreign keys). Note that the data-graph is only an index and does not
//! contain actual data as nodes capture only keys and global importance."
//!
//! Representation:
//! * every tuple gets a dense [`NodeId`] (`starts[table] + row`),
//! * every FK edge gets forward (`Vec<u32>`, one slot per referencing row)
//!   and backward (CSR) adjacency,
//! * every junction table is additionally *collapsed* into two directed
//!   [`MnLink`]s with precomputed CSR (Author -> Papers, Paper -> CoAuthors,
//!   citing -> cited, cited -> citing), so OS generation and ObjectRank can
//!   step across M:N relationships without touching junction tuples.

use sizel_storage::{Database, RowId, TableId, TupleRef};

use crate::schema_graph::{SchemaEdgeId, SchemaGraph};

/// Dense id of a tuple in the data graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel for "no forward target" (NULL FK).
const NO_TARGET: u32 = u32::MAX;

/// Adjacency for one FK edge.
#[derive(Debug)]
struct DirectAdj {
    /// `fwd[row_of_from_table]` = global node id of the referenced tuple,
    /// or `NO_TARGET` for NULL FKs.
    fwd: Vec<u32>,
    /// CSR over rows of the referenced table; targets are global node ids
    /// of referencing tuples.
    bwd_index: Vec<u32>,
    bwd_targets: Vec<u32>,
}

/// Identifies a collapsed M:N link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MnLinkId(pub u16);

impl MnLinkId {
    /// The link index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A collapsed M:N link through a junction table: rows of `from_table`
/// (the table referenced by `e_from`) map to tuples of `to_table` (the
/// table referenced by `e_to`) whenever a junction row connects them.
#[derive(Debug)]
pub struct MnLink {
    /// The junction table realizing the link.
    pub junction: TableId,
    /// Junction FK edge on the *source* side.
    pub e_from: SchemaEdgeId,
    /// Junction FK edge on the *target* side.
    pub e_to: SchemaEdgeId,
    /// Source table (`e_from`'s referenced table).
    pub from_table: TableId,
    /// Target table (`e_to`'s referenced table).
    pub to_table: TableId,
    index: Vec<u32>,
    targets: Vec<u32>,
}

impl MnLink {
    /// Target node ids reachable from `row` of the source table.
    pub fn targets(&self, row: RowId) -> &[u32] {
        let lo = self.index[row.index()] as usize;
        let hi = self.index[row.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Total number of link pairs.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when the link has no pairs.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// The data graph (see module docs).
#[derive(Debug)]
pub struct DataGraph {
    starts: Vec<u32>,
    direct: Vec<DirectAdj>,
    links: Vec<MnLink>,
}

impl DataGraph {
    /// Builds the graph from a database and its schema graph. Panics on
    /// dangling FKs — run [`Database::validate_foreign_keys`] first when
    /// the input is untrusted. Records one maintenance graph-build
    /// (`db.access().maint()`), the counter the batched-apply subsystem
    /// asserts its one-rebuild-per-batch amortization against.
    pub fn build(db: &Database, sg: &SchemaGraph) -> Self {
        db.access().record_graph_build();
        let n_tables = db.table_count();
        let mut starts = Vec::with_capacity(n_tables + 1);
        let mut acc = 0u32;
        for (_, t) in db.tables() {
            starts.push(acc);
            acc += t.len() as u32;
        }
        starts.push(acc);

        // Direct adjacency per FK edge.
        let mut direct = Vec::with_capacity(sg.edges().len());
        for e in sg.edges() {
            let from = db.table(e.from);
            let to = db.table(e.to);
            let mut fwd = vec![NO_TARGET; from.len()];
            let mut counts = vec![0u32; to.len()];
            for (rid, row) in from.iter() {
                if let Some(k) = row[e.fk_col].as_int() {
                    let target = to
                        .by_pk(k)
                        .unwrap_or_else(|| panic!("dangling FK while building data graph"));
                    fwd[rid.index()] = starts[e.to.index()] + target.0;
                    counts[target.index()] += 1;
                }
            }
            let mut bwd_index = Vec::with_capacity(to.len() + 1);
            let mut running = 0u32;
            for &c in &counts {
                bwd_index.push(running);
                running += c;
            }
            bwd_index.push(running);
            let mut cursor: Vec<u32> = bwd_index[..to.len()].to_vec();
            let mut bwd_targets = vec![0u32; running as usize];
            for (rid, _) in from.iter() {
                let t = fwd[rid.index()];
                if t != NO_TARGET {
                    let local = (t - starts[e.to.index()]) as usize;
                    bwd_targets[cursor[local] as usize] = starts[e.from.index()] + rid.0;
                    cursor[local] += 1;
                }
            }
            direct.push(DirectAdj { fwd, bwd_index, bwd_targets });
        }

        // Collapsed M:N links for every junction table.
        let mut links = Vec::new();
        for (jid, jt) in db.tables() {
            if !jt.schema.is_junction {
                continue;
            }
            let je = sg.junction_edges(jid);
            debug_assert_eq!(je.len(), 2);
            for (ef, et) in [(je[0], je[1]), (je[1], je[0])] {
                let from_table = sg.edge(ef).to;
                let to_table = sg.edge(et).to;
                let n_from = db.table(from_table).len();
                let adj_f = &direct[ef.index()];
                let adj_t = &direct[et.index()];
                let mut counts = vec![0u32; n_from];
                for j in 0..jt.len() {
                    let a = adj_f.fwd[j];
                    let b = adj_t.fwd[j];
                    if a != NO_TARGET && b != NO_TARGET {
                        counts[(a - starts[from_table.index()]) as usize] += 1;
                    }
                }
                let mut index = Vec::with_capacity(n_from + 1);
                let mut running = 0u32;
                for &c in &counts {
                    index.push(running);
                    running += c;
                }
                index.push(running);
                let mut cursor: Vec<u32> = index[..n_from].to_vec();
                let mut targets = vec![0u32; running as usize];
                for j in 0..jt.len() {
                    let a = adj_f.fwd[j];
                    let b = adj_t.fwd[j];
                    if a != NO_TARGET && b != NO_TARGET {
                        let local = (a - starts[from_table.index()]) as usize;
                        targets[cursor[local] as usize] = b;
                        cursor[local] += 1;
                    }
                }
                links.push(MnLink {
                    junction: jid,
                    e_from: ef,
                    e_to: et,
                    from_table,
                    to_table,
                    index,
                    targets,
                });
            }
        }

        DataGraph { starts, direct, links }
    }

    /// Total number of nodes (tuples).
    pub fn n_nodes(&self) -> usize {
        *self.starts.last().expect("starts always non-empty") as usize
    }

    /// The dense node id of a tuple.
    pub fn node_id(&self, t: TupleRef) -> NodeId {
        NodeId(self.starts[t.table.index()] + t.row.0)
    }

    /// The tuple a node id refers to.
    pub fn tuple_of(&self, n: NodeId) -> TupleRef {
        // partition_point returns the first table whose start exceeds n.
        let idx = self.starts.partition_point(|&s| s <= n.0) - 1;
        TupleRef { table: TableId(idx as u16), row: RowId(n.0 - self.starts[idx]) }
    }

    /// The table a node belongs to.
    pub fn table_of(&self, n: NodeId) -> TableId {
        self.tuple_of(n).table
    }

    /// Base node id of a table.
    pub fn table_start(&self, t: TableId) -> u32 {
        self.starts[t.index()]
    }

    /// Forward neighbor over `edge` from a row of the referencing table.
    pub fn fwd_neighbor(&self, edge: SchemaEdgeId, row: RowId) -> Option<NodeId> {
        let t = self.direct[edge.index()].fwd[row.index()];
        (t != NO_TARGET).then_some(NodeId(t))
    }

    /// Backward neighbors over `edge` from a row of the referenced table
    /// (global node ids of the referencing tuples).
    pub fn bwd_neighbors(&self, edge: SchemaEdgeId, row: RowId) -> &[u32] {
        let adj = &self.direct[edge.index()];
        let lo = adj.bwd_index[row.index()] as usize;
        let hi = adj.bwd_index[row.index() + 1] as usize;
        &adj.bwd_targets[lo..hi]
    }

    /// All collapsed M:N links.
    pub fn links(&self) -> &[MnLink] {
        &self.links
    }

    /// The link with the given id.
    pub fn link(&self, id: MnLinkId) -> &MnLink {
        &self.links[id.index()]
    }

    /// Finds the collapsed link that enters its junction via `e_from` and
    /// leaves via `e_to`.
    pub fn find_link(&self, e_from: SchemaEdgeId, e_to: SchemaEdgeId) -> Option<MnLinkId> {
        self.links
            .iter()
            .position(|l| l.e_from == e_from && l.e_to == e_to)
            .map(|i| MnLinkId(i as u16))
    }

    /// Total number of stored adjacency entries (for the §6.3 size report).
    pub fn n_adjacency_entries(&self) -> usize {
        let d: usize = self.direct.iter().map(|a| a.fwd.len() + a.bwd_targets.len()).sum();
        let l: usize = self.links.iter().map(|l| l.targets.len()).sum();
        d + l
    }

    /// Approximate resident size in bytes (index vectors only, as in the
    /// paper's "150MB / 500MB" data-graph footprint report).
    pub fn approx_bytes(&self) -> usize {
        let mut total = self.starts.len() * 4;
        for a in &self.direct {
            total += (a.fwd.len() + a.bwd_index.len() + a.bwd_targets.len()) * 4;
        }
        for l in &self.links {
            total += (l.index.len() + l.targets.len()) * 4;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizel_datagen::dblp::{generate, DblpConfig};

    fn setup() -> (sizel_datagen::dblp::Dblp, SchemaGraph, DataGraph) {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let dg = DataGraph::build(&d.db, &sg);
        (d, sg, dg)
    }

    #[test]
    fn node_id_roundtrip() {
        let (d, _, dg) = setup();
        assert_eq!(dg.n_nodes(), d.db.total_tuples());
        for (tid, t) in d.db.tables() {
            for (rid, _) in t.iter() {
                let tr = TupleRef::new(tid, rid);
                assert_eq!(dg.tuple_of(dg.node_id(tr)), tr);
            }
        }
    }

    #[test]
    fn fwd_and_bwd_are_inverse() {
        let (d, sg, dg) = setup();
        // Paper -> Year edge.
        let e = sg
            .edges()
            .iter()
            .find(|e| e.from == d.paper && e.to == d.year)
            .expect("paper->year edge")
            .id;
        let papers = d.db.table(d.paper);
        for (rid, _) in papers.iter() {
            let y = dg.fwd_neighbor(e, rid).expect("year FK is NOT NULL");
            let ytuple = dg.tuple_of(y);
            assert_eq!(ytuple.table, d.year);
            let back = dg.bwd_neighbors(e, ytuple.row);
            let me = dg.node_id(TupleRef::new(d.paper, rid));
            assert!(back.contains(&me.0));
        }
    }

    #[test]
    fn bwd_counts_match_fk_index() {
        let (d, sg, dg) = setup();
        let e = sg.edges().iter().find(|e| e.from == d.paper && e.to == d.year).unwrap().id;
        let papers = d.db.table(d.paper);
        let years = d.db.table(d.year);
        let fk_col = papers.schema.column_index("year_id").unwrap();
        for (rid, _) in years.iter() {
            let pk = years.pk_of(rid);
            assert_eq!(dg.bwd_neighbors(e, rid).len(), papers.rows_where_eq(fk_col, pk).len());
        }
    }

    #[test]
    fn collapsed_links_exist_for_both_junctions_and_orientations() {
        let (d, _, dg) = setup();
        // AuthorPaper gives 2 links, Citation gives 2 links.
        assert_eq!(dg.links().len(), 4);
        let ap_links: Vec<&MnLink> =
            dg.links().iter().filter(|l| l.junction == d.author_paper).collect();
        assert_eq!(ap_links.len(), 2);
        assert!(ap_links.iter().any(|l| l.from_table == d.author && l.to_table == d.paper));
        assert!(ap_links.iter().any(|l| l.from_table == d.paper && l.to_table == d.author));
    }

    #[test]
    fn author_paper_link_matches_junction_contents() {
        let (d, _, dg) = setup();
        let link = dg
            .links()
            .iter()
            .find(|l| l.junction == d.author_paper && l.from_table == d.author)
            .unwrap();
        let ap = d.db.table(d.author_paper);
        let author_col = ap.schema.column_index("author_id").unwrap();
        let authors = d.db.table(d.author);
        for (rid, _) in authors.iter() {
            let pk = authors.pk_of(rid);
            let expect = ap.rows_where_eq(author_col, pk).len();
            assert_eq!(link.targets(rid).len(), expect, "author {pk}");
        }
    }

    #[test]
    fn citation_links_are_directional() {
        let (d, _, dg) = setup();
        let cites = dg.links().iter().filter(|l| l.junction == d.citation).collect::<Vec<_>>();
        assert_eq!(cites.len(), 2);
        // Total pairs in each orientation equal the junction size.
        for l in &cites {
            assert_eq!(l.len(), d.db.table(d.citation).len());
        }
    }

    #[test]
    fn find_link_roundtrip() {
        let (_, _, dg) = setup();
        for (i, l) in dg.links().iter().enumerate() {
            let found = dg.find_link(l.e_from, l.e_to).unwrap();
            assert_eq!(found.index(), i);
        }
    }

    #[test]
    fn size_stats_are_positive() {
        let (_, _, dg) = setup();
        assert!(dg.n_adjacency_entries() > 0);
        assert!(dg.approx_bytes() > 0);
    }
}
