//! Data Subject Schema Graphs: treealization of the schema around a DS
//! relation (Section 2.1, Figures 2 and 12).

use std::collections::VecDeque;

use sizel_storage::{Database, TableId};

use crate::affinity::AffinityModel;
use crate::schema_graph::{Direction, SchemaEdgeId, SchemaGraph};

/// Identifies a node of a GDS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GdsNodeId(pub u32);

impl GdsNodeId {
    /// The node index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How tuples of a GDS node are reached from a tuple of its parent node.
#[derive(Clone, Debug, PartialEq)]
pub enum JoinSpec {
    /// The root (the DS tuple itself).
    Root,
    /// A direct FK step.
    Step {
        /// The FK edge.
        edge: SchemaEdgeId,
        /// Traversal direction (`Forward` = N:1, `Backward` = 1:N).
        dir: Direction,
    },
    /// A collapsed M:N step through a junction table: enter the junction
    /// *backward* over `e_in` (junction rows referencing the parent tuple),
    /// leave *forward* over `e_out`.
    ViaJunction {
        /// The junction table.
        junction: TableId,
        /// Junction FK edge referencing the parent relation.
        e_in: SchemaEdgeId,
        /// Junction FK edge referencing this node's relation.
        e_out: SchemaEdgeId,
        /// Exclude the parent's own tuple from the result — the paper's
        /// CoAuthor semantics (a paper's co-authors exclude the author the
        /// OS descended from).
        exclude_parent: bool,
    },
}

/// One node of a GDS: a (possibly replicated) relation with its affinity
/// and the `max(Ri)` / `mmax(Ri)` statistics of Section 5.3.
#[derive(Clone, Debug)]
pub struct GdsNode {
    /// Display label (`Paper`, `CoAuthor`, `PaperCites`, ...).
    pub label: String,
    /// Path of labels from the root, `/`-joined (affinity-preset key).
    pub path: String,
    /// The underlying relation.
    pub relation: TableId,
    /// Parent node (`None` for the root).
    pub parent: Option<GdsNodeId>,
    /// Child nodes, in construction order.
    pub children: Vec<GdsNodeId>,
    /// How to join from a parent tuple to this node's tuples.
    pub join: JoinSpec,
    /// Affinity to the DS relation (Equation 1).
    pub affinity: f64,
    /// Depth (root = 0).
    pub depth: u32,
    /// `max(Ri)`: maximum local importance over tuples of this node
    /// (filled by [`Gds::set_stats`]; 0 before).
    pub max_ri: f64,
    /// `mmax(Ri)`: maximum `max(Rj)` over descendants (0 for leaves).
    pub mmax_ri: f64,
}

/// Configuration for GDS construction.
#[derive(Clone, Debug)]
pub struct GdsConfig {
    /// Affinity threshold θ for [`Gds::restrict`] (paper default 0.7).
    pub theta: f64,
    /// Hard depth cap for treealization.
    pub max_depth: u32,
    /// Expansion stops below this affinity during construction, bounding
    /// the replicated tree. Must be ≤ `theta`.
    pub prune_floor: f64,
    /// The affinity model.
    pub affinity: AffinityModel,
    /// Rename map from default-generated labels to display labels
    /// (e.g. `Paper[citing_id->cited_id]` → `PaperCites`).
    pub labels: Vec<(String, String)>,
}

impl Default for GdsConfig {
    fn default() -> Self {
        GdsConfig {
            theta: 0.7,
            max_depth: 6,
            prune_floor: 0.25,
            affinity: AffinityModel::Computed(crate::affinity::MetricWeights::default()),
            labels: Vec::new(),
        }
    }
}

/// A Data Subject Schema Graph: a tree of [`GdsNode`]s rooted at the DS
/// relation, in BFS order (parents always precede children).
#[derive(Clone, Debug)]
pub struct Gds {
    nodes: Vec<GdsNode>,
    /// The θ this instance was restricted to, if any.
    pub theta: Option<f64>,
}

impl Gds {
    /// Builds the full GDS for `root` (down to the config's `max_depth` /
    /// `prune_floor`). Use [`Gds::restrict`] to obtain GDS(θ).
    pub fn build(db: &Database, sg: &SchemaGraph, cfg: &GdsConfig, root: TableId) -> Gds {
        assert!(!db.table(root).schema.is_junction, "a junction table cannot be a DS relation");
        let root_label = db.table(root).schema.name.clone();
        let mut nodes = vec![GdsNode {
            label: root_label.clone(),
            path: root_label,
            relation: root,
            parent: None,
            children: Vec::new(),
            join: JoinSpec::Root,
            affinity: 1.0,
            depth: 0,
            max_ri: 0.0,
            mmax_ri: 0.0,
        }];
        let mut queue = VecDeque::from([GdsNodeId(0)]);

        while let Some(nid) = queue.pop_front() {
            let (relation, depth, affinity, path, arrival) = {
                let n = &nodes[nid.index()];
                (n.relation, n.depth, n.affinity, n.path.clone(), n.join.clone())
            };
            if depth >= cfg.max_depth {
                continue;
            }
            let mut candidates: Vec<(JoinSpec, TableId)> = Vec::new();
            for &(eid, dir) in sg.steps_from(relation) {
                let edge = sg.edge(eid);
                let other = edge.target(dir);
                if db.table(other).schema.is_junction {
                    // Entering a junction is only meaningful backward (a
                    // junction holds FKs; nothing references it).
                    if dir != Direction::Backward {
                        continue;
                    }
                    for e_out in sg.junction_edges(other) {
                        if e_out == eid {
                            continue; // identity step back to the same tuple
                        }
                        let to_table = sg.edge(e_out).to;
                        // The exact reverse of an M:N arrival is *replicated*
                        // with the parent tuple excluded (CoAuthor), per the
                        // paper's treealization.
                        let exclude_parent = matches!(
                            &arrival,
                            JoinSpec::ViaJunction { junction, e_in, e_out: a_out, .. }
                                if *junction == other && *e_in == e_out && *a_out == eid
                        );
                        candidates.push((
                            JoinSpec::ViaJunction {
                                junction: other,
                                e_in: eid,
                                e_out,
                                exclude_parent,
                            },
                            to_table,
                        ));
                    }
                } else {
                    // Skip the exact reverse of a direct arrival (no point
                    // rejoining the parent's relation through the same FK).
                    let is_reverse = matches!(
                        &arrival,
                        JoinSpec::Step { edge: a_e, dir: a_d }
                            if *a_e == eid && *a_d == dir.flip()
                    );
                    if is_reverse {
                        continue;
                    }
                    candidates.push((JoinSpec::Step { edge: eid, dir }, other));
                }
            }

            for (join, to_table) in candidates {
                let default_label = default_label(db, sg, &join, to_table);
                let label = cfg
                    .labels
                    .iter()
                    .find(|(from, _)| *from == default_label)
                    .map(|(_, to)| to.clone())
                    .unwrap_or(default_label);
                let child_path = format!("{path}/{label}");
                let fanout = join_fanout(db, sg, &join);
                let af = cfg.affinity.affinity(&child_path, affinity, sg.degree(to_table), fanout);
                if af < cfg.prune_floor {
                    continue;
                }
                let cid = GdsNodeId(nodes.len() as u32);
                nodes.push(GdsNode {
                    label,
                    path: child_path,
                    relation: to_table,
                    parent: Some(nid),
                    children: Vec::new(),
                    join,
                    affinity: af,
                    depth: depth + 1,
                    max_ri: 0.0,
                    mmax_ri: 0.0,
                });
                nodes[nid.index()].children.push(cid);
                queue.push_back(cid);
            }
        }
        Gds { nodes, theta: None }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> GdsNodeId {
        GdsNodeId(0)
    }

    /// The DS relation.
    pub fn root_relation(&self) -> TableId {
        self.nodes[0].relation
    }

    /// The node with the given id.
    pub fn node(&self, id: GdsNodeId) -> &GdsNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Iterates `(GdsNodeId, &GdsNode)` in BFS order.
    pub fn iter(&self) -> impl Iterator<Item = (GdsNodeId, &GdsNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (GdsNodeId(i as u32), n))
    }

    /// Finds a node by label (first match in BFS order).
    pub fn find_label(&self, label: &str) -> Option<GdsNodeId> {
        self.nodes.iter().position(|n| n.label == label).map(|i| GdsNodeId(i as u32))
    }

    /// Finds a node by full path.
    pub fn find_path(&self, path: &str) -> Option<GdsNodeId> {
        self.nodes.iter().position(|n| n.path == path).map(|i| GdsNodeId(i as u32))
    }

    /// GDS(θ): the subtree of nodes with affinity ≥ θ (a node survives only
    /// if all its ancestors do).
    pub fn restrict(&self, theta: f64) -> Gds {
        let mut map = vec![u32::MAX; self.nodes.len()];
        let mut nodes: Vec<GdsNode> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let keep = if i == 0 {
                true
            } else {
                n.affinity >= theta
                    && map[n.parent.expect("non-root has parent").index()] != u32::MAX
            };
            if keep {
                map[i] = nodes.len() as u32;
                let mut nn = n.clone();
                nn.parent = n.parent.map(|p| GdsNodeId(map[p.index()]));
                nn.children = Vec::new();
                nodes.push(nn);
            }
        }
        // Rebuild child lists.
        for i in 0..nodes.len() {
            if let Some(p) = nodes[i].parent {
                let id = GdsNodeId(i as u32);
                nodes[p.index()].children.push(id);
            }
        }
        Gds { nodes, theta: Some(theta) }
    }

    /// Fills `max_ri` / `mmax_ri` from per-relation maximum *global*
    /// importance (`max_ri = max_global(relation) · affinity`, Section 5.3).
    pub fn set_stats(&mut self, per_relation_max_global: &[f64]) {
        for n in &mut self.nodes {
            n.max_ri = per_relation_max_global[n.relation.index()] * n.affinity;
        }
        // Children always follow parents in index order, so one reverse
        // sweep computes mmax bottom-up.
        for i in (0..self.nodes.len()).rev() {
            let mmax = self.nodes[i]
                .children
                .clone()
                .into_iter()
                .map(|c| {
                    let ch = &self.nodes[c.index()];
                    ch.max_ri.max(ch.mmax_ri)
                })
                .fold(0.0f64, f64::max);
            self.nodes[i].mmax_ri = mmax;
        }
    }

    /// Renders the GDS in the style of Figures 2 and 12: an indented tree
    /// with `(affinity)`, `max(Ri)` and `mmax(Ri)` annotations.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_rec(self.root(), 0, &mut out);
        out
    }

    fn pretty_rec(&self, id: GdsNodeId, indent: usize, out: &mut String) {
        let n = self.node(id);
        out.push_str(&" ".repeat(indent * 2));
        out.push_str(&format!(
            "{} ({:.2}) max={:.3} mmax={:.3}\n",
            n.label, n.affinity, n.max_ri, n.mmax_ri
        ));
        for &c in &n.children {
            self.pretty_rec(c, indent + 1, out);
        }
    }
}

/// Default display label for a join step.
fn default_label(db: &Database, sg: &SchemaGraph, join: &JoinSpec, to: TableId) -> String {
    let to_name = &db.table(to).schema.name;
    match join {
        JoinSpec::Root => to_name.clone(),
        JoinSpec::Step { .. } => to_name.clone(),
        JoinSpec::ViaJunction { junction, e_in, e_out, exclude_parent } => {
            if *exclude_parent {
                format!("Co{to_name}")
            } else if sg.edge(*e_in).to == sg.edge(*e_out).to {
                // Self M:N: disambiguate the orientation by column names.
                let jt = db.table(*junction);
                let in_col = &jt.schema.columns[sg.edge(*e_in).fk_col].name;
                let out_col = &jt.schema.columns[sg.edge(*e_out).fk_col].name;
                format!("{to_name}[{in_col}->{out_col}]")
            } else {
                to_name.clone()
            }
        }
    }
}

/// Average number of child tuples per parent tuple for a join step (the
/// cardinality input to the computed affinity model).
fn join_fanout(db: &Database, sg: &SchemaGraph, join: &JoinSpec) -> f64 {
    match join {
        JoinSpec::Root => 0.0,
        JoinSpec::Step { edge, dir } => match dir {
            Direction::Forward => 1.0,
            Direction::Backward => {
                let e = sg.edge(*edge);
                db.table(e.from).avg_fanout(e.fk_col)
            }
        },
        JoinSpec::ViaJunction { e_in, .. } => {
            let e = sg.edge(*e_in);
            db.table(e.from).avg_fanout(e.fk_col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::AffinityModel;
    use sizel_datagen::dblp::{generate, DblpConfig};
    use sizel_datagen::tpch::{generate as tpch_generate, TpchConfig};

    fn dblp_author_cfg() -> GdsConfig {
        GdsConfig {
            affinity: AffinityModel::manual(
                &[
                    ("Author/Paper", 0.92),
                    ("Author/Paper/CoAuthor", 0.82),
                    ("Author/Paper/PaperCites", 0.77),
                    ("Author/Paper/PaperCitedBy", 0.77),
                    ("Author/Paper/Year", 0.83),
                    ("Author/Paper/Year/Conference", 0.78),
                ],
                0.5,
            ),
            labels: vec![
                ("Paper[citing_id->cited_id]".into(), "PaperCites".into()),
                ("Paper[cited_id->citing_id]".into(), "PaperCitedBy".into()),
            ],
            ..GdsConfig::default()
        }
    }

    #[test]
    fn dblp_author_gds_matches_figure_2() {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let full = Gds::build(&d.db, &sg, &dblp_author_cfg(), d.author);
        let gds = full.restrict(0.7);
        // Figure 2: Author -> Paper -> {CoAuthor, PaperCites, PaperCitedBy,
        // Year -> Conference}: 7 nodes.
        assert_eq!(gds.len(), 7);
        let root = gds.node(gds.root());
        assert_eq!(root.label, "Author");
        assert_eq!(root.children.len(), 1);
        let paper = gds.node(root.children[0]);
        assert_eq!(paper.label, "Paper");
        assert!((paper.affinity - 0.92).abs() < 1e-12);
        let labels: Vec<&str> =
            paper.children.iter().map(|&c| gds.node(c).label.as_str()).collect();
        assert!(labels.contains(&"CoAuthor"));
        assert!(labels.contains(&"PaperCites"));
        assert!(labels.contains(&"PaperCitedBy"));
        assert!(labels.contains(&"Year"));
        let year = gds.find_label("Year").unwrap();
        let conf = gds.node(year).children.clone();
        assert_eq!(conf.len(), 1);
        assert_eq!(gds.node(conf[0]).label, "Conference");
    }

    #[test]
    fn coauthor_join_excludes_parent() {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let gds = Gds::build(&d.db, &sg, &dblp_author_cfg(), d.author).restrict(0.7);
        let co = gds.node(gds.find_label("CoAuthor").unwrap());
        assert!(matches!(co.join, JoinSpec::ViaJunction { exclude_parent: true, .. }));
        assert_eq!(co.relation, d.author);
        // Paper under Author has exclude_parent = false.
        let paper = gds.node(gds.find_label("Paper").unwrap());
        assert!(matches!(paper.join, JoinSpec::ViaJunction { exclude_parent: false, .. }));
    }

    #[test]
    fn citation_orientations_are_distinct() {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let gds = Gds::build(&d.db, &sg, &dblp_author_cfg(), d.author).restrict(0.7);
        let cites = gds.node(gds.find_label("PaperCites").unwrap());
        let cited = gds.node(gds.find_label("PaperCitedBy").unwrap());
        match (&cites.join, &cited.join) {
            (
                JoinSpec::ViaJunction { e_in: a_in, e_out: a_out, .. },
                JoinSpec::ViaJunction { e_in: b_in, e_out: b_out, .. },
            ) => {
                assert_eq!(a_in, b_out);
                assert_eq!(a_out, b_in);
            }
            other => panic!("unexpected joins: {other:?}"),
        }
    }

    #[test]
    fn tpch_customer_gds_theta_07_matches_section_2_1() {
        let t = tpch_generate(&TpchConfig::tiny());
        let sg = SchemaGraph::from_database(&t.db);
        let cfg = GdsConfig {
            affinity: AffinityModel::manual(
                &[
                    ("Customer/Nation", 0.97),
                    ("Customer/Nation/Region", 0.91),
                    ("Customer/Nation/Supplier", 0.52),
                    ("Customer/Orders", 0.95),
                    ("Customer/Orders/Lineitem", 0.87),
                    ("Customer/Orders/Lineitem/Partsupp", 0.77),
                    ("Customer/Orders/Lineitem/Partsupp/Part", 0.65),
                    ("Customer/Orders/Lineitem/Partsupp/Supplier", 0.65),
                ],
                0.5,
            ),
            ..GdsConfig::default()
        };
        let gds = Gds::build(&t.db, &sg, &cfg, t.customer).restrict(0.7);
        // Section 2.1: "Customer GDS(0.7) includes only Customer, Nation,
        // Region, Order, Lineitem and Partsupp relations".
        let mut labels: Vec<&str> = gds.iter().map(|(_, n)| n.label.as_str()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["Customer", "Lineitem", "Nation", "Orders", "Partsupp", "Region"]);
    }

    #[test]
    fn computed_affinity_monotone_along_paths() {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let cfg = GdsConfig::default();
        let gds = Gds::build(&d.db, &sg, &cfg, d.author);
        for (_, n) in gds.iter() {
            if let Some(p) = n.parent {
                assert!(
                    n.affinity <= gds.node(p).affinity + 1e-12,
                    "affinity must not increase with depth"
                );
            }
        }
    }

    #[test]
    fn set_stats_computes_max_and_mmax() {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let mut gds = Gds::build(&d.db, &sg, &dblp_author_cfg(), d.author).restrict(0.7);
        // Synthetic per-relation max-global: relation index -> value.
        let mut per_rel = vec![0.0; d.db.table_count()];
        per_rel[d.author.index()] = 1.0;
        per_rel[d.paper.index()] = 10.0;
        per_rel[d.year.index()] = 2.0;
        per_rel[d.conference.index()] = 1.5;
        gds.set_stats(&per_rel);
        let paper = gds.node(gds.find_label("Paper").unwrap());
        assert!((paper.max_ri - 10.0 * 0.92).abs() < 1e-12);
        // Root mmax must cover the whole tree's max: Paper's 9.2.
        let root = gds.node(gds.root());
        assert!((root.mmax_ri - 9.2).abs() < 1e-9);
        // Leaves have mmax 0.
        let conf = gds.node(gds.find_label("Conference").unwrap());
        assert_eq!(conf.mmax_ri, 0.0);
        // Year's mmax is Conference's max.
        let year = gds.node(gds.find_label("Year").unwrap());
        assert!((year.mmax_ri - 1.5 * 0.78).abs() < 1e-12);
    }

    #[test]
    fn restrict_keeps_bfs_order_and_tree_shape() {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let gds = Gds::build(&d.db, &sg, &dblp_author_cfg(), d.author).restrict(0.7);
        for (id, n) in gds.iter() {
            if let Some(p) = n.parent {
                assert!(p < id, "parents precede children");
                assert!(gds.node(p).children.contains(&id));
            }
            for &c in &n.children {
                assert_eq!(gds.node(c).parent, Some(id));
            }
        }
    }

    #[test]
    fn pretty_contains_annotations() {
        let d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let gds = Gds::build(&d.db, &sg, &dblp_author_cfg(), d.author).restrict(0.7);
        let s = gds.pretty();
        assert!(s.contains("Author (1.00)"));
        assert!(s.contains("Paper (0.92)"));
    }
}
