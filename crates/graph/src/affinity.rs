//! Relation affinity (Equation 1 of the paper).
//!
//! `Af(Ri) = (Σ_j m_j · w_j) · Af(R_parent)` — a per-hop decay multiplied
//! down the GDS. The metrics `m_j` follow the paper's reference \[8\]:
//! *distance* (the per-hop base), *schema connectivity* (highly connected
//! relations are less specific to the DS) and *data connectivity /
//! cardinality* (steps with huge fan-out dilute the association).
//!
//! Because the paper also allows a domain expert to set affinities manually
//! (Section 3.2: "alternatively, a domain expert can set Af(Ri)s manually"),
//! [`AffinityModel::Manual`] accepts absolute affinities keyed by GDS *path*
//! (e.g. `"Customer/Order/Lineitem/Partsupp"`), which is how the presets
//! carry the exact values printed in Figures 2 and 12.

use std::collections::HashMap;

/// Weights for the computed affinity metrics. They must sum to at most 1 so
/// the per-hop decay never exceeds 1 (affinity is monotone non-increasing
/// with depth, which Section 5 relies on).
#[derive(Clone, Copy, Debug)]
pub struct MetricWeights {
    /// Weight of the constant distance metric (m = 1 per hop).
    pub distance: f64,
    /// Weight of the schema-connectivity metric.
    pub schema_connectivity: f64,
    /// Weight of the data-cardinality metric.
    pub cardinality: f64,
}

impl Default for MetricWeights {
    fn default() -> Self {
        MetricWeights { distance: 0.6, schema_connectivity: 0.2, cardinality: 0.2 }
    }
}

impl MetricWeights {
    /// Validates the weights: non-negative, summing to at most 1.
    pub fn validate(&self) -> Result<(), String> {
        let parts = [self.distance, self.schema_connectivity, self.cardinality];
        if parts.iter().any(|&w| w < 0.0) {
            return Err("affinity metric weights must be non-negative".into());
        }
        let sum: f64 = parts.iter().sum();
        if sum > 1.0 + 1e-9 {
            return Err(format!("affinity metric weights sum to {sum} > 1"));
        }
        Ok(())
    }
}

/// How GDS node affinities are assigned.
#[derive(Clone, Debug)]
pub enum AffinityModel {
    /// Equation 1 with the metric weights.
    Computed(MetricWeights),
    /// Expert-provided absolute affinities keyed by GDS path
    /// (`"Root/Child/Grandchild"` of node labels). Paths not listed fall
    /// back to `parent_affinity * fallback_ratio`.
    Manual {
        /// Path -> absolute affinity.
        values: HashMap<String, f64>,
        /// Decay ratio applied to nodes absent from `values`.
        fallback_ratio: f64,
    },
}

impl AffinityModel {
    /// A manual model from `(path, affinity)` pairs with the given fallback.
    pub fn manual(pairs: &[(&str, f64)], fallback_ratio: f64) -> Self {
        AffinityModel::Manual {
            values: pairs.iter().map(|&(p, a)| (p.to_owned(), a)).collect(),
            fallback_ratio,
        }
    }

    /// Inputs to one affinity evaluation, gathered by the GDS builder.
    /// `schema_degree` is the schema-graph degree of the child relation and
    /// `avg_fanout` the average number of child tuples per parent tuple
    /// along the join step.
    pub fn affinity(
        &self,
        path: &str,
        parent_affinity: f64,
        schema_degree: usize,
        avg_fanout: f64,
    ) -> f64 {
        match self {
            AffinityModel::Manual { values, fallback_ratio } => {
                values.get(path).copied().unwrap_or(parent_affinity * fallback_ratio)
            }
            AffinityModel::Computed(w) => {
                let m_dist = 1.0;
                // Highly connected relations (large schema degree) are hubs
                // shared by many subjects -> lower specificity.
                let m_conn = 1.0 / (1.0 + 0.2 * (schema_degree.saturating_sub(1)) as f64);
                // Large fan-out steps dilute the association with the DS.
                let m_card = 1.0 / (1.0 + 0.2 * (1.0 + avg_fanout).ln());
                let ratio =
                    w.distance * m_dist + w.schema_connectivity * m_conn + w.cardinality * m_card;
                parent_affinity * ratio
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_validate() {
        MetricWeights::default().validate().unwrap();
    }

    #[test]
    fn overweight_rejected() {
        let w = MetricWeights { distance: 0.9, schema_connectivity: 0.2, cardinality: 0.2 };
        assert!(w.validate().is_err());
        let w = MetricWeights { distance: -0.1, schema_connectivity: 0.0, cardinality: 0.0 };
        assert!(w.validate().is_err());
    }

    #[test]
    fn computed_affinity_decreases_with_depth() {
        let m = AffinityModel::Computed(MetricWeights::default());
        let a1 = m.affinity("A/B", 1.0, 2, 3.0);
        let a2 = m.affinity("A/B/C", a1, 2, 3.0);
        assert!(a1 < 1.0);
        assert!(a2 < a1);
        assert!(a2 > 0.0);
    }

    #[test]
    fn computed_affinity_penalizes_fanout_and_degree() {
        let m = AffinityModel::Computed(MetricWeights::default());
        let low_fanout = m.affinity("p", 1.0, 2, 1.0);
        let high_fanout = m.affinity("p", 1.0, 2, 100.0);
        assert!(high_fanout < low_fanout);
        let low_degree = m.affinity("p", 1.0, 1, 1.0);
        let high_degree = m.affinity("p", 1.0, 8, 1.0);
        assert!(high_degree < low_degree);
    }

    #[test]
    fn manual_lookup_and_fallback() {
        let m = AffinityModel::manual(&[("Author/Paper", 0.92)], 0.5);
        assert_eq!(m.affinity("Author/Paper", 1.0, 9, 9.0), 0.92);
        // Unlisted path: parent * fallback.
        assert_eq!(m.affinity("Author/Paper/Unknown", 0.92, 9, 9.0), 0.46);
    }
}
