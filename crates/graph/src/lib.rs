//! Schema graph, Data Subject Schema Graphs (GDS), affinity, and the
//! tuple-level data graph.
//!
//! This crate implements the structural machinery of Section 2.1 of the
//! paper:
//!
//! * [`schema_graph`] — the database schema as a graph: one node per
//!   relation, one edge per foreign key, traversable in both directions.
//! * [`gds`] — the **Data Subject Schema Graph**: a "treealization" of the
//!   schema rooted at the DS relation, with looped and many-to-many
//!   relationships replicated (CoAuthor, PaperCites, PaperCitedBy, ...) and
//!   junction tables collapsed into single M:N steps. Each node carries the
//!   affinity of Equation 1 and, once ranking is known, the `max(Ri)` /
//!   `mmax(Ri)` statistics of Section 5.3 (Figure 2 / Figure 12).
//! * [`affinity`] — Equation 1: computed metric-based affinity, or manual
//!   (domain-expert) affinities keyed by GDS path, which the presets use to
//!   carry the paper's published values.
//! * [`data_graph`] — the in-memory tuple-level graph the paper uses to
//!   generate OSs quickly ("the data-graph is only an index ... nodes
//!   capture only keys and global importance"): CSR adjacency per FK edge
//!   plus precomputed collapsed M:N links.

pub mod affinity;
pub mod data_graph;
pub mod gds;
pub mod presets;
pub mod schema_graph;

pub use affinity::{AffinityModel, MetricWeights};
pub use data_graph::{DataGraph, MnLinkId, NodeId};
pub use gds::{Gds, GdsConfig, GdsNode, GdsNodeId, JoinSpec};
pub use schema_graph::{Direction, SchemaEdge, SchemaEdgeId, SchemaGraph};
