//! GDS configuration presets carrying the paper's published affinities.
//!
//! Figure 2 annotates the DBLP Author GDS and Figure 12 the TPC-H Customer
//! GDS; the Paper and Supplier GDSs are described in Sections 6.2 and 6.3.
//! These presets use [`crate::AffinityModel::Manual`] so experiments weight
//! relations exactly as the paper did; the computed model remains available
//! via [`crate::gds::GdsConfig::default`].

use crate::affinity::AffinityModel;
use crate::gds::GdsConfig;

/// Rename map shared by the DBLP presets: the two citation-junction
/// orientations become the paper's `PaperCites` / `PaperCitedBy`.
fn dblp_labels() -> Vec<(String, String)> {
    vec![
        ("Paper[citing_id->cited_id]".into(), "PaperCites".into()),
        ("Paper[cited_id->citing_id]".into(), "PaperCitedBy".into()),
    ]
}

/// DBLP Author GDS (Figure 2): Author(1) → Paper(.92) →
/// {CoAuthor(.82), PaperCites(.77), PaperCitedBy(.77), Year(.83) →
/// Conference(.78)}.
pub fn dblp_author_gds_config() -> GdsConfig {
    GdsConfig {
        affinity: AffinityModel::manual(
            &[
                ("Author/Paper", 0.92),
                ("Author/Paper/CoAuthor", 0.82),
                ("Author/Paper/PaperCites", 0.77),
                ("Author/Paper/PaperCitedBy", 0.77),
                ("Author/Paper/Year", 0.83),
                ("Author/Paper/Year/Conference", 0.78),
            ],
            0.5,
        ),
        labels: dblp_labels(),
        ..GdsConfig::default()
    }
}

/// DBLP Paper GDS (Section 6.2): "Paper → (Author, PaperCitedBy,
/// PaperCites, Year → (Conference))". Affinities follow the same relative
/// weighting as the Author GDS.
pub fn dblp_paper_gds_config() -> GdsConfig {
    GdsConfig {
        affinity: AffinityModel::manual(
            &[
                ("Paper/Author", 0.92),
                ("Paper/PaperCites", 0.77),
                ("Paper/PaperCitedBy", 0.77),
                ("Paper/Year", 0.83),
                ("Paper/Year/Conference", 0.78),
            ],
            0.5,
        ),
        labels: dblp_labels(),
        ..GdsConfig::default()
    }
}

/// TPC-H Customer GDS (Figure 12), including the sub-θ branch affinities
/// the figure prints (Supplier .52 under Nation etc.); GDS(0.7) keeps
/// exactly {Customer, Nation, Region, Orders, Lineitem, Partsupp}, as
/// Section 2.1 states.
pub fn tpch_customer_gds_config() -> GdsConfig {
    GdsConfig {
        affinity: AffinityModel::manual(
            &[
                ("Customer/Nation", 0.97),
                ("Customer/Nation/Region", 0.91),
                ("Customer/Nation/Supplier", 0.52),
                ("Customer/Nation/Supplier/Partsupp", 0.43),
                ("Customer/Nation/Supplier/Partsupp/Lineitem", 0.34),
                ("Customer/Nation/Supplier/Partsupp/Part", 0.36),
                ("Customer/Orders", 0.95),
                ("Customer/Orders/Lineitem", 0.87),
                ("Customer/Orders/Lineitem/Partsupp", 0.77),
                ("Customer/Orders/Lineitem/Partsupp/Part", 0.65),
                ("Customer/Orders/Lineitem/Partsupp/Supplier", 0.65),
            ],
            0.45,
        ),
        ..GdsConfig::default()
    }
}

/// TPC-H Supplier GDS (used by Figures 8(d), 9(d), 10(d), 10(f)); the paper
/// does not print its affinities, so we mirror the Customer GDS weighting:
/// GDS(0.7) = {Supplier, Nation, Region, Partsupp, Part, Lineitem, Orders}.
pub fn tpch_supplier_gds_config() -> GdsConfig {
    GdsConfig {
        affinity: AffinityModel::manual(
            &[
                ("Supplier/Nation", 0.97),
                ("Supplier/Nation/Region", 0.91),
                ("Supplier/Nation/Customer", 0.52),
                ("Supplier/Partsupp", 0.95),
                ("Supplier/Partsupp/Part", 0.87),
                ("Supplier/Partsupp/Lineitem", 0.85),
                ("Supplier/Partsupp/Lineitem/Orders", 0.75),
                ("Supplier/Partsupp/Lineitem/Orders/Customer", 0.55),
            ],
            0.45,
        ),
        ..GdsConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gds::Gds;
    use crate::schema_graph::SchemaGraph;
    use sizel_datagen::{dblp, tpch};

    #[test]
    fn paper_gds_shape() {
        let d = dblp::generate(&dblp::DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        let gds = Gds::build(&d.db, &sg, &dblp_paper_gds_config(), d.paper).restrict(0.7);
        let mut labels: Vec<&str> = gds.iter().map(|(_, n)| n.label.as_str()).collect();
        labels.sort_unstable();
        assert_eq!(
            labels,
            vec!["Author", "Conference", "Paper", "PaperCitedBy", "PaperCites", "Year"]
        );
    }

    #[test]
    fn supplier_gds_theta_07() {
        let t = tpch::generate(&tpch::TpchConfig::tiny());
        let sg = SchemaGraph::from_database(&t.db);
        let gds = Gds::build(&t.db, &sg, &tpch_supplier_gds_config(), t.supplier).restrict(0.7);
        let mut labels: Vec<&str> = gds.iter().map(|(_, n)| n.label.as_str()).collect();
        labels.sort_unstable();
        assert_eq!(
            labels,
            vec!["Lineitem", "Nation", "Orders", "Part", "Partsupp", "Region", "Supplier"]
        );
    }

    #[test]
    fn customer_full_gds_contains_both_partsupp_replicas() {
        let t = tpch::generate(&tpch::TpchConfig::tiny());
        let sg = SchemaGraph::from_database(&t.db);
        let gds = Gds::build(&t.db, &sg, &tpch_customer_gds_config(), t.customer);
        let ps_paths: Vec<&str> = gds
            .iter()
            .filter(|(_, n)| n.label == "Partsupp")
            .map(|(_, n)| n.path.as_str())
            .collect();
        assert!(ps_paths.contains(&"Customer/Orders/Lineitem/Partsupp"));
        assert!(ps_paths.contains(&"Customer/Nation/Supplier/Partsupp"));
        // Their affinities differ, as Figure 12 annotates.
        let a = gds.find_path("Customer/Orders/Lineitem/Partsupp").unwrap();
        let b = gds.find_path("Customer/Nation/Supplier/Partsupp").unwrap();
        assert!((gds.node(a).affinity - 0.77).abs() < 1e-12);
        assert!((gds.node(b).affinity - 0.43).abs() < 1e-12);
    }
}
