//! Property tests for the graph substrate: the data graph must agree with
//! brute-force joins over randomly generated two-table databases, and GDS
//! construction must be structurally sound for random affinity settings.

use proptest::prelude::*;

use sizel_graph::{DataGraph, Gds, GdsConfig, JoinSpec, SchemaGraph};
use sizel_storage::{Database, RowId, TableSchema, TupleRef, Value};

/// Builds Parent(1..=n_parents) and Child rows with the given FK targets.
fn build_db(n_parents: i64, fk_targets: &[i64]) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::builder("Parent").pk("id").build().unwrap()).unwrap();
    db.create_table(
        TableSchema::builder("Child").pk("id").fk("parent_id", "Parent").build().unwrap(),
    )
    .unwrap();
    for k in 1..=n_parents {
        db.insert("Parent", vec![Value::Int(k)]).unwrap();
    }
    for (i, &t) in fk_targets.iter().enumerate() {
        db.insert("Child", vec![Value::Int(i as i64), Value::Int(t)]).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward/backward adjacency of the data graph equals brute-force
    /// join evaluation.
    #[test]
    fn data_graph_matches_joins(
        n_parents in 1i64..15,
        seeds in proptest::collection::vec(any::<u32>(), 0..60),
    ) {
        let fk_targets: Vec<i64> =
            seeds.iter().map(|&s| 1 + (s as i64 % n_parents)).collect();
        let db = build_db(n_parents, &fk_targets);
        let sg = SchemaGraph::from_database(&db);
        let dg = DataGraph::build(&db, &sg);
        let edge = sg.edges()[0].id;
        let parent = db.table_id("Parent").unwrap();
        let child = db.table_id("Child").unwrap();

        // Forward: child row -> its parent.
        for (i, &t) in fk_targets.iter().enumerate() {
            let fwd = dg.fwd_neighbor(edge, RowId(i as u32)).expect("FK is NOT NULL");
            let tup = dg.tuple_of(fwd);
            prop_assert_eq!(tup.table, parent);
            prop_assert_eq!(db.table(parent).pk_of(tup.row), t);
        }
        // Backward: parent row -> exactly its children.
        for k in 1..=n_parents {
            let prow = db.table(parent).by_pk(k).unwrap();
            let got = dg.bwd_neighbors(edge, prow).len();
            let expect = fk_targets.iter().filter(|&&t| t == k).count();
            prop_assert_eq!(got, expect, "children of parent {}", k);
        }
        // Node id mapping is a bijection.
        for (tid, t) in db.tables() {
            for (rid, _) in t.iter() {
                let tr = TupleRef::new(tid, rid);
                prop_assert_eq!(dg.tuple_of(dg.node_id(tr)), tr);
            }
        }
        let _ = child;
    }

    /// GDS construction is structurally sound for arbitrary thresholds:
    /// BFS order, monotone computed affinity, and executable join specs.
    #[test]
    fn gds_structurally_sound(
        n_parents in 1i64..10,
        seeds in proptest::collection::vec(any::<u32>(), 1..40),
        theta in 0.0..1.0f64,
        max_depth in 1u32..6,
    ) {
        let fk_targets: Vec<i64> =
            seeds.iter().map(|&s| 1 + (s as i64 % n_parents)).collect();
        let db = build_db(n_parents, &fk_targets);
        let sg = SchemaGraph::from_database(&db);
        let cfg = GdsConfig { max_depth, ..GdsConfig::default() };
        let parent = db.table_id("Parent").unwrap();
        let full = Gds::build(&db, &sg, &cfg, parent);
        let gds = full.restrict(theta);
        // Not `!gds.is_empty()`: `Gds::is_empty` means "only the root
        // exists", while this asserts the root itself always survives.
        #[allow(clippy::len_zero)]
        {
            prop_assert!(gds.len() >= 1);
        }
        for (id, node) in gds.iter() {
            prop_assert!(node.depth <= max_depth);
            prop_assert!(node.affinity <= 1.0 + 1e-12);
            if let Some(p) = node.parent {
                prop_assert!(p < id, "BFS order");
                prop_assert!(node.affinity <= gds.node(p).affinity + 1e-12);
                prop_assert!(node.affinity >= theta, "restrict(θ) keeps only qualifying nodes");
            }
            // Join specs reference edges whose endpoint matches the node.
            match &node.join {
                JoinSpec::Root => prop_assert_eq!(id.0, 0),
                JoinSpec::Step { edge, dir } => {
                    prop_assert_eq!(sg.edge(*edge).target(*dir), node.relation);
                }
                JoinSpec::ViaJunction { .. } => {
                    prop_assert!(false, "no junctions in this schema");
                }
            }
        }
    }
}
