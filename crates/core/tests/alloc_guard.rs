//! Allocation-count guard for the flat CSR arena (ISSUE 3 / ROADMAP hot
//! path): once its pool is warm, `generate_os_pooled` must perform **zero
//! heap allocations** on the DBLP fixture — the whole point of replacing
//! the per-node `children: Vec` layout.
//!
//! A counting wrapper around the system allocator is installed for this
//! test binary. Keep this file to a SINGLE `#[test]`: the counter is
//! process-global, and a concurrently running test in the same binary
//! would pollute the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sizel_core::os::OsArenaPool;
use sizel_core::osgen::{generate_os_pooled, OsSource};
use sizel_core::test_fixtures::dblp_fixture;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves is an allocation for our purposes: a warm
        // steady state must not grow any buffer.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn generate_os_steady_state_does_zero_allocations() {
    let f = dblp_fixture();
    let ctx = f.ctx();
    let subjects: Vec<_> = (0..4).map(|i| f.author_tds(i)).collect();
    let cutoffs = [None, Some(9)];
    // Both tuple sources: the data graph reads CSR adjacency, the
    // database source reads hash-index slices / PK point lookups — with
    // the arena pooled, neither touches the allocator.
    let sources = [OsSource::DataGraph, OsSource::Database];

    // Warm the pool: the arena, BFS queue, and fetch buffer grow to the
    // workload's high-water capacity during the first pass.
    let mut pool = OsArenaPool::new();
    let mut warm_nodes = 0usize;
    for &tds in &subjects {
        for cutoff in cutoffs {
            for source in sources {
                let os = generate_os_pooled(&ctx, tds, cutoff, source, &mut pool);
                warm_nodes += os.len();
                pool.release(os);
            }
        }
    }
    assert!(warm_nodes > 100, "fixture too small to make the guard meaningful");

    // Steady state: the same serving loop, measured.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut steady_nodes = 0usize;
    for _ in 0..5 {
        for &tds in &subjects {
            for cutoff in cutoffs {
                for source in sources {
                    let os = generate_os_pooled(&ctx, tds, cutoff, source, &mut pool);
                    steady_nodes += os.len();
                    pool.release(os);
                }
            }
        }
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(steady_nodes, 5 * warm_nodes, "steady state regenerates the same trees");
    assert_eq!(
        delta, 0,
        "generate_os steady state allocated {delta} times over {steady_nodes} nodes \
         (the CSR arena + pool must be allocation-free once warm)"
    );
}
