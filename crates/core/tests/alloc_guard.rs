//! Allocation-count guard for the flat CSR arena (ISSUE 3 / ROADMAP hot
//! path): once its pool is warm, `generate_os_pooled` must perform **zero
//! heap allocations** on the DBLP fixture — the whole point of replacing
//! the per-node `children: Vec` layout. Extended by ISSUE 4 to the query
//! path end-to-end: building an [`OsContext`] through the engine is
//! allocation-free (the per-query `link_of_gds` Vec and O(|GDS|) junction
//! scan are gone — precomputed at engine build), and a warm
//! `SizeLEngine::summarize` costs a *constant* number of allocations per
//! call (only the returned `QueryResult`'s own buffers), independent of
//! how many queries ran before.
//!
//! A counting wrapper around the system allocator is installed for this
//! test binary. Keep this file to a SINGLE `#[test]`: the counter is
//! process-global, and a concurrently running test in the same binary
//! would pollute the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sizel_core::engine::{EngineConfig, QueryOptions, SizeLEngine};
use sizel_core::os::OsArenaPool;
use sizel_core::osgen::{generate_os_pooled, OsSource};
use sizel_core::test_fixtures::dblp_fixture;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves is an allocation for our purposes: a warm
        // steady state must not grow any buffer.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn generate_os_steady_state_does_zero_allocations() {
    let f = dblp_fixture();
    let ctx = f.ctx();
    let subjects: Vec<_> = (0..4).map(|i| f.author_tds(i)).collect();
    let cutoffs = [None, Some(9)];
    // Both tuple sources: the data graph reads CSR adjacency, the
    // database source reads hash-index slices / PK point lookups — with
    // the arena pooled, neither touches the allocator.
    let sources = [OsSource::DataGraph, OsSource::Database];

    // Warm the pool: the arena, BFS queue, and fetch buffer grow to the
    // workload's high-water capacity during the first pass.
    let mut pool = OsArenaPool::new();
    let mut warm_nodes = 0usize;
    for &tds in &subjects {
        for cutoff in cutoffs {
            for source in sources {
                let os = generate_os_pooled(&ctx, tds, cutoff, source, &mut pool);
                warm_nodes += os.len();
                pool.release(os);
            }
        }
    }
    assert!(warm_nodes > 100, "fixture too small to make the guard meaningful");

    // Steady state: the same serving loop, measured.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut steady_nodes = 0usize;
    for _ in 0..5 {
        for &tds in &subjects {
            for cutoff in cutoffs {
                for source in sources {
                    let os = generate_os_pooled(&ctx, tds, cutoff, source, &mut pool);
                    steady_nodes += os.len();
                    pool.release(os);
                }
            }
        }
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(steady_nodes, 5 * warm_nodes, "steady state regenerates the same trees");
    assert_eq!(
        delta, 0,
        "generate_os steady state allocated {delta} times over {steady_nodes} nodes \
         (the CSR arena + pool must be allocation-free once warm)"
    );

    // --- ISSUE 4: the query path end-to-end ------------------------------
    // Context construction through the engine borrows the precomputed
    // link table: zero allocations per query.
    let engine = SizeLEngine::build(
        sizel_datagen::dblp::generate(&sizel_datagen::dblp::DblpConfig::tiny()).db,
        |db, sg, dg| sizel_rank::dblp_ga(sizel_rank::GaPreset::Ga1, db, sg, dg),
        EngineConfig::new(vec![
            ("Author".into(), sizel_graph::presets::dblp_author_gds_config()),
            ("Paper".into(), sizel_graph::presets::dblp_paper_gds_config()),
        ]),
    )
    .expect("engine builds");
    let author = engine.db().table_id("Author").unwrap();
    let tds = sizel_storage::TupleRef::new(author, sizel_storage::RowId(0));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..16 {
        let ctx = engine.context(author);
        std::hint::black_box(&ctx);
    }
    let ctx_delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        ctx_delta, 0,
        "OsContext construction allocated {ctx_delta} times over 16 queries \
         (the link table must be borrowed from the engine, not rebuilt per query)"
    );

    // A warm summarize costs a constant number of allocations per call —
    // only the materialized QueryResult — with no growth across calls.
    let opts = QueryOptions { l: 10, ..QueryOptions::default() };
    for _ in 0..3 {
        std::hint::black_box(engine.summarize(tds, opts)); // warm pool + scratch
    }
    let mut per_call = Vec::new();
    for _ in 0..6 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        std::hint::black_box(engine.summarize(tds, opts));
        per_call.push(ALLOCATIONS.load(Ordering::SeqCst) - before);
    }
    assert!(
        per_call.windows(2).all(|w| w[0] == w[1]),
        "summarize allocation count must be steady, got {per_call:?}"
    );
    eprintln!("alloc_guard: warm summarize allocates {} times per call", per_call[0]);
    // Measured 10/call on this fixture after ISSUE 6's fetch-buffer pass
    // (was 125 when the size-l algorithms allocated their DP/greedy
    // working sets per call, 57 after ISSUE 5's thread-local
    // `AlgoScratch`; pooling the TOP-l probe buffers — `FetchScratch`
    // through `select_eq_top_l_into` and the junction scans — removed the
    // rest). What remains is the returned QueryResult's own buffers. The
    // cap guards against per-call scratch — or a per-query derived-state
    // rebuild — creeping back into the serving path.
    assert!(
        per_call[0] <= 16,
        "summarize allocated {} times per call (measured baseline 10) — per-call scratch \
         crept back into the serving path",
        per_call[0]
    );
}
