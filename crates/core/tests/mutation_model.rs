//! Integration oracle for the full mutation model (ISSUE 6 tentpole):
//! [`SizeLEngine::apply`] / [`apply_batch`] over **insert, update, and
//! delete** mutations must keep every derived layer — keyword index,
//! data graph, rank scores, sorted postings with their tombstones — in
//! lockstep, under both refresh policies, at every churn and compaction
//! threshold.
//!
//! [`apply_batch`]: SizeLEngine::apply_batch

use sizel_core::engine::{EngineConfig, Mutation, QueryOptions, SizeLEngine};
use sizel_core::osgen::OsSource;
use sizel_core::test_fixtures::{max_pk, result_fingerprint as fingerprint};
use sizel_datagen::dblp::{generate, Dblp, DblpConfig};
use sizel_graph::presets;
use sizel_rank::{dblp_ga, GaPreset};
use sizel_storage::{StorageError, Value};

fn fresh_engine(d: Dblp) -> SizeLEngine {
    SizeLEngine::build(
        d.db,
        |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
        EngineConfig::new(vec![
            ("Author".into(), presets::dblp_author_gds_config()),
            ("Paper".into(), presets::dblp_paper_gds_config()),
        ]),
    )
    .expect("engine builds")
}

/// The mixed script: the insert prefix builds two authors sharing a new
/// paper, the suffix renames one author and the paper, then unlinks and
/// deletes the other author — the RESTRICT-legal order (the junction
/// delete must precede the author delete).
fn mixed_script(e: &SizeLEngine) -> Vec<Mutation> {
    let (a, p, j) =
        (max_pk(e.db(), "Author"), max_pk(e.db(), "Paper"), max_pk(e.db(), "AuthorPaper"));
    let year_pk = {
        let t = e.db().table(e.db().table_id("Year").unwrap());
        t.pk_of(sizel_storage::RowId(0))
    };
    vec![
        Mutation::insert("Author", vec![Value::Int(a + 1), "Orla Vexley".into()]),
        Mutation::insert("AuthorPaper", vec![Value::Int(j + 1), Value::Int(a + 1), Value::Int(p)]),
        Mutation::insert(
            "Paper",
            vec![Value::Int(p + 1), "mutable summaries under churn".into(), Value::Int(year_pk)],
        ),
        Mutation::insert(
            "AuthorPaper",
            vec![Value::Int(j + 2), Value::Int(a + 1), Value::Int(p + 1)],
        ),
        Mutation::insert("Author", vec![Value::Int(a + 2), "Tamsin Quell".into()]),
        Mutation::insert(
            "AuthorPaper",
            vec![Value::Int(j + 3), Value::Int(a + 2), Value::Int(p + 1)],
        ),
        Mutation::update("Author", a + 1, vec![Value::Int(a + 1), "Orla Quillwright".into()]),
        Mutation::update(
            "Paper",
            p + 1,
            vec![Value::Int(p + 1), "mutable summaries reiterated".into(), Value::Int(year_pk)],
        ),
        Mutation::delete("AuthorPaper", j + 3),
        Mutation::delete("Author", a + 2),
    ]
}

fn existing_keyword(e: &SizeLEngine) -> String {
    let tid = e.db().table_id("Author").unwrap();
    let name = e.db().table(tid).value(sizel_storage::RowId(0), 1).as_str().unwrap().to_owned();
    name.split(' ').next().unwrap().to_owned()
}

/// Keywords spanning survivors ("Quillwright", "reiterated"), the
/// renamed-away and deleted tokens ("Vexley", "Tamsin", "Quell", "churn"),
/// and a pre-existing DS.
fn probe_keywords(existing: &str) -> Vec<String> {
    ["Orla", "Quillwright", "Vexley", "Tamsin", "Quell", "reiterated", "churn", existing]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

#[test]
fn mixed_batch_is_byte_identical_to_the_fold_across_churn_and_compaction() {
    for churn_threshold in [1usize, usize::MAX] {
        for compaction_threshold in [0usize, usize::MAX] {
            let mut batched = fresh_engine(generate(&DblpConfig::tiny()));
            let mut folded = fresh_engine(generate(&DblpConfig::tiny()));
            for e in [&mut batched, &mut folded] {
                e.set_churn_threshold(churn_threshold);
                e.set_compaction_threshold(compaction_threshold);
            }
            let existing = existing_keyword(&batched);
            let script = mixed_script(&batched);

            let before = batched.db().access().maint();
            let be = batched.apply_batch(script.clone()).unwrap();
            let batch_work = batched.db().access().maint().since(before);
            assert_eq!(
                batch_work.graph_builds, 1,
                "one DataGraph rebuild per mixed batch: {batch_work:?}"
            );
            let mut fe = folded.epoch();
            for m in script {
                fe = folded.apply(m).unwrap();
            }
            assert_eq!(be, fe, "churn {churn_threshold} compaction {compaction_threshold}: epochs");

            for kw in probe_keywords(&existing) {
                for opts in [
                    QueryOptions { l: 8, ..QueryOptions::default() },
                    QueryOptions { l: 10, source: OsSource::Database, ..Default::default() },
                    QueryOptions { l: 6, prelim: false, ..Default::default() },
                ] {
                    let b0 = batched.db().access().snapshot();
                    let b = batched.query_with(&kw, opts);
                    let b_cost = batched.db().access().snapshot().since(b0);
                    let f0 = folded.db().access().snapshot();
                    let f = folded.query_with(&kw, opts);
                    let f_cost = folded.db().access().snapshot().since(f0);
                    assert_eq!(
                        fingerprint(&b),
                        fingerprint(&f),
                        "churn {churn_threshold} compaction {compaction_threshold}: \
                         {kw} {opts:?} diverged from the fold"
                    );
                    assert_eq!(
                        b_cost, f_cost,
                        "churn {churn_threshold} compaction {compaction_threshold}: \
                         {kw} {opts:?} paper-cost accounting diverged"
                    );
                }
            }
            // Both paths keep the Database-source prefix scans live across
            // the tombstones the deletes left behind.
            for e in [&batched, &folded] {
                e.db().access().reset();
                let _ = e.query_with(
                    &existing,
                    QueryOptions { l: 10, source: OsSource::Database, ..Default::default() },
                );
                let probes = e.db().access().probes();
                assert!(
                    probes.fast > 0 && probes.heap == 0,
                    "fast paths survive the mixed batch: {probes:?}"
                );
            }
        }
    }
}

#[test]
fn exact_mixed_stream_is_byte_identical_to_fresh_rebuild_at_every_epoch() {
    let cfg = DblpConfig::tiny();
    let mut live = fresh_engine(generate(&cfg));
    let existing = existing_keyword(&live);
    let script = mixed_script(&live);

    let mut applied: Vec<Mutation> = Vec::new();
    for step in 0..=script.len() {
        // Oracle: replay the applied prefix through the plain storage API
        // and rebuild every derived structure from scratch.
        let mut d = generate(&cfg);
        for m in &applied {
            match &m.op {
                sizel_core::engine::MutationOp::Insert { values } => {
                    d.db.insert(&m.table, values.clone()).unwrap();
                }
                sizel_core::engine::MutationOp::Update { pk, values } => {
                    d.db.update(&m.table, *pk, values.clone()).unwrap();
                }
                sizel_core::engine::MutationOp::Delete { pk } => {
                    d.db.delete(&m.table, *pk).unwrap();
                }
            }
        }
        let rebuilt = fresh_engine(d);

        for kw in probe_keywords(&existing) {
            for opts in [
                QueryOptions { l: 8, ..QueryOptions::default() },
                QueryOptions { l: 10, source: OsSource::Database, ..Default::default() },
            ] {
                assert_eq!(
                    fingerprint(&live.query_with(&kw, opts)),
                    fingerprint(&rebuilt.query_with(&kw, opts)),
                    "step {step}: {kw} {opts:?} diverged from the fresh rebuild"
                );
            }
        }

        if let Some(m) = script.get(step) {
            let before = live.epoch();
            let after = live.apply(m.clone().exact()).unwrap();
            assert!(after > before, "step {step}: apply must advance the epoch");
            applied.push(m.clone());
        }
    }
}

#[test]
fn incremental_mixed_stream_stays_consistent_and_reiterate_refreshes_ranks() {
    let mut live = fresh_engine(generate(&DblpConfig::tiny()));
    let existing = existing_keyword(&live);
    for m in mixed_script(&live) {
        live.apply(m).unwrap();
    }

    // Updated tokens serve; renamed-away and deleted tokens are dark.
    let opts = QueryOptions { l: 8, ..QueryOptions::default() };
    let orla = live.query_with("Quillwright", opts);
    assert_eq!(orla.len(), 1, "the renamed author serves under the new token");
    assert!(orla[0].summary.len() > 1, "junction rows joined the summary");
    orla[0].summary.validate().unwrap();
    for dark in ["Vexley", "Tamsin", "Quell", "churn"] {
        assert!(
            live.query_with(dark, opts).is_empty(),
            "{dark:?} must stop matching after the rename/delete"
        );
    }

    // Both tuple sources agree byte-for-byte after the mixed stream.
    for kw in probe_keywords(&existing) {
        let a = live.query_with(
            &kw,
            QueryOptions { l: 10, source: OsSource::DataGraph, ..Default::default() },
        );
        let b = live.query_with(
            &kw,
            QueryOptions { l: 10, source: OsSource::Database, ..Default::default() },
        );
        assert_eq!(fingerprint(&a), fingerprint(&b), "{kw}: sources diverged post-stream");
    }

    // The prefix-scan fast path survived the tombstones.
    live.db().access().reset();
    let _ = live.query_with(
        &existing,
        QueryOptions { l: 15, source: OsSource::Database, prelim: true, ..Default::default() },
    );
    let probes = live.db().access().probes();
    assert!(probes.fast > 0, "prefix scans survive the mixed stream: {probes:?}");

    // Bounded re-iteration tightens the incremental score estimates in
    // place: it advances the epoch, and the engine keeps serving
    // internally-consistent answers from the refreshed vector.
    let before = live.epoch();
    let after = live.reiterate(3);
    assert!(after > before, "reiterate must advance the epoch");
    assert_eq!(live.epoch(), after);
    let orla = live.query_with("Quillwright", opts);
    assert_eq!(orla.len(), 1);
    orla[0].summary.validate().unwrap();
    for kw in ["Quillwright", existing.as_str()] {
        let a = live.query_with(
            kw,
            QueryOptions { l: 10, source: OsSource::DataGraph, ..Default::default() },
        );
        let b = live.query_with(
            kw,
            QueryOptions { l: 10, source: OsSource::Database, ..Default::default() },
        );
        assert_eq!(fingerprint(&a), fingerprint(&b), "{kw}: sources diverged after reiterate");
    }
    live.db().access().reset();
    let _ = live.query_with(
        &existing,
        QueryOptions { l: 15, source: OsSource::Database, prelim: true, ..Default::default() },
    );
    let probes = live.db().access().probes();
    assert!(probes.fast > 0, "prefix scans survive reiterate: {probes:?}");
}

#[test]
fn rejected_mutations_leave_the_engine_untouched() {
    let mut live = fresh_engine(generate(&DblpConfig::tiny()));
    let existing = existing_keyword(&live);
    let (a, p, j) =
        (max_pk(live.db(), "Author"), max_pk(live.db(), "Paper"), max_pk(live.db(), "AuthorPaper"));
    live.apply(Mutation::insert("Author", vec![Value::Int(a + 1), "Orla Vexley".into()])).unwrap();
    live.apply(Mutation::insert(
        "AuthorPaper",
        vec![Value::Int(j + 1), Value::Int(a + 1), Value::Int(p)],
    ))
    .unwrap();

    let epoch = live.epoch();
    let probe = fingerprint(&live.query_with(&existing, QueryOptions::default()));

    // RESTRICT: a still-referenced author cannot be deleted.
    let err = live.apply(Mutation::delete("Author", a + 1)).unwrap_err();
    assert!(
        matches!(
            &err,
            StorageError::RestrictedDelete { table, referencing_table, .. }
                if table == "Author" && referencing_table == "AuthorPaper"
        ),
        "unexpected error: {err:?}"
    );

    // Missing rows: updates and deletes of absent pks are rejected.
    let absent = a + 999;
    assert!(matches!(
        live.apply(Mutation::update("Author", absent, vec![Value::Int(absent), "Nobody".into()])),
        Err(StorageError::MissingRow { .. })
    ));
    assert!(matches!(
        live.apply(Mutation::delete("Author", absent)),
        Err(StorageError::MissingRow { .. })
    ));

    // The primary key is immutable under update.
    assert!(matches!(
        live.apply(Mutation::update(
            "Author",
            a + 1,
            vec![Value::Int(a + 500), "Renumbered".into()]
        )),
        Err(StorageError::ImmutablePrimaryKey { .. })
    ));

    // Nothing moved: same epoch, same bytes out.
    assert_eq!(live.epoch(), epoch, "rejected mutations must not advance the epoch");
    assert_eq!(
        fingerprint(&live.query_with(&existing, QueryOptions::default())),
        probe,
        "rejected mutations must not perturb served summaries"
    );
}
