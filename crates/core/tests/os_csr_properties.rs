//! Property suite for the flat CSR Object-Summary arena: the CSR layout
//! must be observationally identical to the legacy per-node `children:
//! Vec<OsNodeId>` layout it replaced, and the BFS (grouped-append) builder
//! must additionally keep every child range contiguous.

use std::collections::VecDeque;

use proptest::prelude::*;

use sizel_core::os::{Os, OsNodeId};
use sizel_graph::GdsNodeId;
use sizel_storage::{RowId, TableId, TupleRef};

/// The legacy layout, reconstructed: per-node child lists in insertion
/// order (children were pushed as they were created, i.e. ascending id).
fn legacy_child_lists(parents: &[Option<usize>]) -> Vec<Vec<OsNodeId>> {
    let mut lists: Vec<Vec<OsNodeId>> = vec![Vec::new(); parents.len()];
    for (i, p) in parents.iter().enumerate() {
        if let Some(p) = p {
            lists[*p].push(OsNodeId(i as u32));
        }
    }
    lists
}

/// Turns a raw byte soup into a valid parent array (`parents[i] < i`).
fn parents_from_raw(raw: &[u32]) -> Vec<Option<usize>> {
    let mut parents = vec![None];
    for (i, &r) in raw.iter().enumerate() {
        parents.push(Some((r as usize) % (i + 1)));
    }
    parents
}

/// Builds the same tree through the *grouped append* path a BFS generator
/// uses: nodes are created level by level, all children of a node
/// consecutively. `counts[k]` is the child count of the k-th dequeued
/// node. Returns the arena and the parent array in creation order.
fn bfs_grouped(counts: &[usize]) -> (Os, Vec<Option<usize>>, Vec<f64>) {
    let mut os = Os::new();
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut weights = vec![0.5];
    os.add_root(TupleRef::new(TableId(0), RowId(0)), GdsNodeId(0), 0.5);
    let mut queue = VecDeque::from([OsNodeId(0)]);
    let mut next_count = 0usize;
    while let Some(u) = queue.pop_front() {
        let k = counts.get(next_count).copied().unwrap_or(0);
        next_count += 1;
        for _ in 0..k {
            let i = parents.len();
            let w = (i % 17) as f64 + 0.25;
            let id = os.add_child(u, TupleRef::new(TableId(0), RowId(i as u32)), GdsNodeId(0), w);
            assert_eq!(id.index(), i);
            parents.push(Some(u.index()));
            weights.push(w);
            queue.push_back(id);
        }
    }
    (os, parents, weights)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batch builder (`Os::synthetic`) vs the legacy child-list layout:
    /// same children per node, same order, for arbitrary
    /// parent-before-child insertion orders; BFS-order and linkage
    /// invariants hold (`validate`).
    #[test]
    fn csr_children_equal_legacy_child_lists(
        raw in proptest::collection::vec(0u32..1_000_000, 0..80),
    ) {
        let parents = parents_from_raw(&raw);
        let weights: Vec<f64> = (0..parents.len()).map(|i| i as f64).collect();
        let os = Os::synthetic(&parents, &weights);
        prop_assert!(os.validate().is_ok(), "{:?}", os.validate());
        let legacy = legacy_child_lists(&parents);
        for (i, legacy_children) in legacy.iter().enumerate() {
            let id = OsNodeId(i as u32);
            prop_assert_eq!(os.children(id), legacy_children.as_slice(), "children of {}", i);
            prop_assert_eq!(os.child_count(id), legacy_children.len());
            // Parents always precede children (BFS-order invariant).
            for &c in os.children(id) {
                prop_assert!(c > id);
                prop_assert_eq!(os.node(c).parent, Some(id));
                prop_assert_eq!(os.node(c).depth, os.node(id).depth + 1);
            }
        }
        // Leaves are exactly the nodes with no legacy children.
        let leaves: Vec<OsNodeId> = (0..parents.len())
            .filter(|&i| legacy[i].is_empty())
            .map(|i| OsNodeId(i as u32))
            .collect();
        prop_assert_eq!(os.leaves(), leaves);
    }

    /// Grouped-append builder vs batch builder on the same tree: identical
    /// CSR contents, and — the layout win — every child range is a run of
    /// *consecutive* ids (children are appended together during BFS).
    #[test]
    fn bfs_grouped_ranges_are_contiguous_and_match_batch(
        counts in proptest::collection::vec(0usize..5, 1..60),
    ) {
        let (inc, parents, weights) = bfs_grouped(&counts);
        prop_assert!(inc.validate().is_ok(), "{:?}", inc.validate());
        let batch = Os::synthetic(&parents, &weights);
        prop_assert_eq!(inc.len(), batch.len());
        for i in 0..inc.len() {
            let id = OsNodeId(i as u32);
            prop_assert_eq!(inc.children(id), batch.children(id), "children of {}", i);
            prop_assert_eq!(inc.node(id).parent, batch.node(id).parent);
            prop_assert_eq!(inc.node(id).depth, batch.node(id).depth);
            prop_assert_eq!(inc.node(id).weight, batch.node(id).weight);
            // Contiguity: children of a BFS-built node are consecutive ids.
            for w in inc.children(id).windows(2) {
                prop_assert_eq!(w[1].0, w[0].0 + 1, "range of {} not contiguous", i);
            }
        }
    }

    /// Projection preserves the legacy semantics on the CSR arena: the
    /// projected tree's children are the selected originals in original
    /// BFS order, relabeled densely.
    #[test]
    fn project_matches_legacy_filtering(
        raw in proptest::collection::vec(0u32..1_000_000, 0..50),
        keep_bits in proptest::collection::vec(proptest::prelude::any::<bool>(), 0..50),
    ) {
        let parents = parents_from_raw(&raw);
        let n = parents.len();
        let weights: Vec<f64> = (0..n).map(|i| (i * 3 % 13) as f64).collect();
        let os = Os::synthetic(&parents, &weights);
        // Build a connected, root-containing selection: keep the root and
        // any node whose parent is kept and whose keep bit is set.
        let mut kept = vec![false; n];
        kept[0] = true;
        for i in 1..n {
            let bit = keep_bits.get(i - 1).copied().unwrap_or(false);
            kept[i] = bit && kept[parents[i].unwrap()];
        }
        let selected: Vec<OsNodeId> =
            (0..n).filter(|&i| kept[i]).map(|i| OsNodeId(i as u32)).collect();
        let sub = os.project(&selected);
        prop_assert!(sub.validate().is_ok(), "{:?}", sub.validate());
        prop_assert_eq!(sub.len(), selected.len());
        // Old-id -> new-id map follows the original BFS order.
        let mut new_of = vec![usize::MAX; n];
        for (new, old) in selected.iter().enumerate() {
            new_of[old.index()] = new;
        }
        for (new, old) in selected.iter().enumerate() {
            let id = OsNodeId(new as u32);
            prop_assert_eq!(sub.node(id).weight, os.node(*old).weight);
            prop_assert_eq!(sub.node(id).tuple, os.node(*old).tuple);
            // Children of the projection = kept children of the original,
            // relabeled, same relative order.
            let expect: Vec<OsNodeId> = os
                .children(*old)
                .iter()
                .filter(|c| kept[c.index()])
                .map(|c| OsNodeId(new_of[c.index()] as u32))
                .collect();
            prop_assert_eq!(sub.children(id), expect.as_slice());
        }
    }

    /// `weight_of` / `total_weight` / `is_valid_selection` behave like the
    /// straightforward list implementations.
    #[test]
    fn aggregate_queries_match_naive(
        raw in proptest::collection::vec(0u32..1_000_000, 0..40),
        pick in proptest::collection::vec(proptest::prelude::any::<bool>(), 0..41),
    ) {
        let parents = parents_from_raw(&raw);
        let n = parents.len();
        let weights: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
        let os = Os::synthetic(&parents, &weights);
        let total: f64 = weights.iter().sum();
        prop_assert!((os.total_weight() - total).abs() < 1e-9);
        let sel: Vec<OsNodeId> = (0..n)
            .filter(|&i| pick.get(i).copied().unwrap_or(false))
            .map(|i| OsNodeId(i as u32))
            .collect();
        let sum: f64 = sel.iter().map(|id| weights[id.index()]).sum();
        prop_assert!((os.weight_of(&sel) - sum).abs() < 1e-9);
        // Validity matches the definition checked over the parent array.
        let in_sel = |id: OsNodeId| sel.contains(&id);
        let valid_naive = (sel.is_empty() || in_sel(OsNodeId(0)))
            && sel.iter().all(|id| match parents[id.index()] {
                None => true,
                Some(p) => in_sel(OsNodeId(p as u32)),
            });
        prop_assert_eq!(os.is_valid_selection(&sel), valid_naive);
    }
}
