//! Crash-injection tests for the WAL-backed disk tier (ISSUE 10
//! tentpole): a process that dies between the WAL append and the
//! settlement — or mid-append, leaving a torn final record — must
//! recover, by rebuilding the engine over the same base data and
//! re-attaching the tier, to a state **byte-identical** to the
//! committed-epoch baseline: same query fingerprints, same epochs.
//!
//! "Crash" here is simulated honestly: the first engine is dropped (no
//! graceful checkpoint), and the torn/unsettled records are produced by
//! writing to the WAL file directly — exactly the bytes a dying process
//! would have left.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use sizel_core::durability::{encode_batch, DiskTierConfig};
use sizel_core::engine::{EngineConfig, Mutation, SizeLEngine};
use sizel_core::test_fixtures::{max_pk, result_fingerprint};
use sizel_datagen::dblp::{generate, Dblp, DblpConfig};
use sizel_disk::Wal;
use sizel_graph::presets;
use sizel_rank::{dblp_ga, GaPreset};
use sizel_storage::Value;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("sizel-crash-{}-{}-{}", std::process::id(), tag, n));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fresh_engine(d: Dblp) -> SizeLEngine {
    SizeLEngine::build(
        d.db,
        |db, sg, dg| dblp_ga(GaPreset::Ga1, db, sg, dg),
        EngineConfig::new(vec![
            ("Author".into(), presets::dblp_author_gds_config()),
            ("Paper".into(), presets::dblp_paper_gds_config()),
        ]),
    )
    .expect("engine builds")
}

/// A mixed insert/update/delete script exercising every mutation kind.
fn script(e: &SizeLEngine) -> Vec<Mutation> {
    let (a, p, j) =
        (max_pk(e.db(), "Author"), max_pk(e.db(), "Paper"), max_pk(e.db(), "AuthorPaper"));
    let year_pk = {
        let t = e.db().table(e.db().table_id("Year").unwrap());
        t.pk_of(sizel_storage::RowId(0))
    };
    vec![
        Mutation::insert("Author", vec![Value::Int(a + 1), "Orla Vexley".into()]),
        Mutation::insert("AuthorPaper", vec![Value::Int(j + 1), Value::Int(a + 1), Value::Int(p)]),
        Mutation::insert(
            "Paper",
            vec![Value::Int(p + 1), "durable summaries after crashes".into(), Value::Int(year_pk)],
        ),
        Mutation::insert(
            "AuthorPaper",
            vec![Value::Int(j + 2), Value::Int(a + 1), Value::Int(p + 1)],
        ),
        Mutation::update("Author", a + 1, vec![Value::Int(a + 1), "Orla Quillwright".into()]),
        Mutation::delete("AuthorPaper", j + 2),
    ]
}

/// A state fingerprint: ranked summaries for keywords spanning mutated
/// and pre-existing rows, plus the epoch.
fn fingerprint(e: &SizeLEngine) -> String {
    let mut out = format!("epoch={:?}", e.epoch());
    for kw in ["Orla", "Quillwright", "Vexley", "durable", "crashes"] {
        let results = e.query(kw, 5);
        out.push_str(&format!("|{kw}:{}", result_fingerprint(&results)));
    }
    out
}

fn wal_only(dir: &std::path::Path) -> DiskTierConfig {
    DiskTierConfig { dir: dir.to_path_buf(), cache_pages: 64, fsync_every: 1, paged_tables: vec![] }
}

#[test]
fn recovery_replays_the_wal_into_a_byte_identical_engine() {
    let dir = temp_dir("replay");

    // First life: attach (empty WAL), run the script as one batch, then
    // a batch the validator rejects (duplicate primary key) — its WAL
    // record exists, its settlement never happened.
    let mut first = fresh_engine(generate(&DblpConfig::tiny()));
    let report = first.attach_disk(wal_only(&dir)).unwrap();
    assert_eq!(report, Default::default(), "nothing to replay on a fresh directory");
    let ms = script(&first);
    let n_ok = ms.len();
    let dup = max_pk(first.db(), "Author");
    first.apply_batch(ms).unwrap();
    first
        .apply_batch(vec![Mutation::insert("Author", vec![Value::Int(dup), "Dup".into()])])
        .unwrap_err();
    let committed = fingerprint(&first);
    drop(first); // crash: no checkpoint, no truncate

    // Second life: same base data, same directory.
    let mut second = fresh_engine(generate(&DblpConfig::tiny()));
    let report = second.attach_disk(wal_only(&dir)).unwrap();
    assert_eq!(report.batches_replayed, 2);
    assert_eq!(report.mutations_replayed, n_ok + 1);
    assert_eq!(report.batches_rejected, 1, "the duplicate-pk batch is rejected again");
    assert!(!report.wal_tail_damaged);
    assert_eq!(fingerprint(&second), committed);

    // Third life: the WAL was kept, so recovery is repeatable.
    let mut third = fresh_engine(generate(&DblpConfig::tiny()));
    third.attach_disk(wal_only(&dir)).unwrap();
    assert_eq!(fingerprint(&third), committed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_kill_between_wal_append_and_settlement_still_recovers_the_batch() {
    let dir = temp_dir("unsettled");

    // The victim settles only a prefix of the script...
    let mut victim = fresh_engine(generate(&DblpConfig::tiny()));
    victim.attach_disk(wal_only(&dir)).unwrap();
    let ms = script(&victim);
    let (prefix, suffix) = (ms[..4].to_vec(), ms[4..].to_vec());
    victim.apply_batch(prefix.clone()).unwrap();
    drop(victim);
    // ...and died right after appending the suffix's WAL record, before
    // touching the database: write exactly that record by hand.
    {
        let (mut wal, _) = Wal::open(&dir.join("wal.log"), 1).unwrap();
        wal.append(&encode_batch(0, &suffix)).unwrap();
    }

    // The baseline never crashed and applied both batches.
    let mut baseline = fresh_engine(generate(&DblpConfig::tiny()));
    baseline.apply_batch(prefix).unwrap();
    baseline.apply_batch(suffix).unwrap();

    let mut recovered = fresh_engine(generate(&DblpConfig::tiny()));
    let report = recovered.attach_disk(wal_only(&dir)).unwrap();
    assert_eq!(report.batches_replayed, 2, "the unsettled record replays too");
    assert_eq!(report.batches_rejected, 0);
    assert_eq!(fingerprint(&recovered), fingerprint(&baseline));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_torn_final_record_is_discarded_and_recovery_stops_at_the_committed_prefix() {
    let dir = temp_dir("torn");

    let mut victim = fresh_engine(generate(&DblpConfig::tiny()));
    victim.attach_disk(wal_only(&dir)).unwrap();
    let ms = script(&victim);
    let (prefix, suffix) = (ms[..4].to_vec(), ms[4..].to_vec());
    victim.apply_batch(prefix.clone()).unwrap();
    drop(victim);
    // The crash tore the suffix's record: only half its bytes landed.
    let record = encode_batch(0, &suffix);
    {
        let (mut wal, _) = Wal::open(&dir.join("wal.log"), 1).unwrap();
        wal.append(&record).unwrap();
    }
    let path = dir.join("wal.log");
    let bytes = std::fs::read(&path).unwrap();
    let torn = bytes.len() - record.len() / 2;
    std::fs::write(&path, &bytes[..torn]).unwrap();

    // Baseline: the suffix never committed, so it is not part of the
    // recovered state.
    let mut baseline = fresh_engine(generate(&DblpConfig::tiny()));
    baseline.apply_batch(prefix).unwrap();

    let mut recovered = fresh_engine(generate(&DblpConfig::tiny()));
    let report = recovered.attach_disk(wal_only(&dir)).unwrap();
    assert_eq!(report.batches_replayed, 1, "only the committed prefix replays");
    assert!(report.wal_tail_damaged, "the torn tail was detected");
    assert!(report.wal_truncated_bytes > 0, "and truncated away");
    assert_eq!(fingerprint(&recovered), fingerprint(&baseline));

    // The healed WAL accepts new batches: apply the suffix for real and
    // a fourth life converges to the full-script state.
    recovered.apply_batch(suffix.clone()).unwrap();
    let full = fingerprint(&recovered);
    drop(recovered);
    let mut fourth = fresh_engine(generate(&DblpConfig::tiny()));
    let report = fourth.attach_disk(wal_only(&dir)).unwrap();
    assert_eq!(report.batches_replayed, 2);
    assert!(!report.wal_tail_damaged);
    assert_eq!(fingerprint(&fourth), full);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paged_tables_serve_identical_answers_through_mutations_and_checkpoints() {
    let dir = temp_dir("paged");

    let mut ram = fresh_engine(generate(&DblpConfig::tiny()));
    let mut paged = fresh_engine(generate(&DblpConfig::tiny()));
    let report = paged
        .attach_disk(DiskTierConfig {
            dir: dir.clone(),
            cache_pages: 8,
            fsync_every: 4,
            paged_tables: vec!["Author".into(), "AuthorPaper".into()],
        })
        .unwrap();
    assert!(report.generation > 0, "the attach checkpointed a segment generation");
    assert_eq!(fingerprint(&paged), fingerprint(&ram), "paged probes change no answer");

    // Mutations stale the segment stamp: probes fall back to the heap
    // paths, answers stay equal.
    let ms = script(&ram);
    ram.apply_batch(ms.clone()).unwrap();
    paged.apply_batch(ms).unwrap();
    assert_eq!(fingerprint(&paged), fingerprint(&ram));

    // A checkpoint re-pages the mutated postings and re-routes probes.
    let generation = paged.checkpoint_disk().unwrap();
    assert!(generation > report.generation);
    assert_eq!(fingerprint(&paged), fingerprint(&ram));

    let stats = paged.disk_stats().expect("tier attached");
    assert_eq!(stats.store.generation, generation);
    assert_eq!(stats.store.checkpoints, 2);
    assert_eq!(stats.wal_appends, 1);
    assert!(stats.wal_bytes > 0);

    // WAL truncation after an external base snapshot: nothing replays.
    paged.truncate_wal().unwrap();
    assert_eq!(paged.disk_stats().unwrap().wal_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}
