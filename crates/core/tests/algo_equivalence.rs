//! Cross-algorithm equivalence on real (generated) data: every size-l
//! algorithm is checked against the exhaustive [`BruteForce`] oracle on
//! complete OSs from the small DBLP fixture, for l ∈ {5, 10, 15}.
//!
//! The optimal algorithms (`DpNaive`, `DpKnapsack`) must equal the oracle's
//! optimum importance exactly (mod float tolerance). The heuristics
//! (`BottomUp`, `TopPath`) are *not* optimal in general — Lemma 2 makes
//! Bottom-Up optimal only under depth-monotone weights, and real DBLP OSs
//! are not monotone — so for them the oracle certifies Definition 1
//! validity, dominance (never above the optimum), and the paper's reported
//! near-optimal quality (Figure 8 territory: ≥ 95% here), plus at least one
//! exact hit each across the grid as a canary against wholesale regression.

use sizel_core::algo::{BottomUp, BruteForce, DpKnapsack, DpNaive, SizeLAlgorithm, TopPath};
use sizel_core::osgen::{generate_os, OsSource};
use sizel_core::test_fixtures::dblp_fixture;

/// Brute-force candidate budget: generous, but a hard stop against
/// accidentally enumerating a star-shaped OS too big for the oracle.
const BRUTE_BUDGET: u64 = 50_000_000;

/// Picks fixture authors whose complete OS is big enough to make l = 15
/// interesting yet small enough for exhaustive enumeration.
fn oracle_sized_oss() -> Vec<(usize, sizel_core::os::Os)> {
    let fix = dblp_fixture();
    let ctx = fix.ctx();
    let mut picked = Vec::new();
    for i in 0..fix.authors_by_degree.len() {
        let os = generate_os(&ctx, fix.author_tds(i), None, OsSource::DataGraph);
        if (16..=28).contains(&os.len()) {
            picked.push((i, os));
        }
        if picked.len() == 4 {
            break;
        }
    }
    assert!(!picked.is_empty(), "fixture has no author with an oracle-sized OS");
    picked
}

#[test]
fn optimal_algorithms_match_brute_force_exactly() {
    for (author, os) in oracle_sized_oss() {
        for l in [5usize, 10, 15] {
            let (oracle, candidates) = BruteForce.compute_counted(&os, l, BRUTE_BUDGET);
            let optimal: [&dyn SizeLAlgorithm; 2] = [&DpNaive::default(), &DpKnapsack];
            for algo in optimal {
                let r = algo.compute(&os, l);
                assert_eq!(r.len(), l.min(os.len()), "{} author={author} l={l}", algo.name());
                assert!(
                    os.is_valid_selection(&r.selected),
                    "{} author={author} l={l}: invalid selection",
                    algo.name()
                );
                assert!(
                    (r.importance - oracle.importance).abs() < 1e-9,
                    "{} author={author} l={l}: got {}, oracle optimum {} ({candidates} candidates)",
                    algo.name(),
                    r.importance,
                    oracle.importance,
                );
            }
        }
    }
}

#[test]
fn heuristics_are_valid_dominated_and_near_optimal() {
    let mut exact_hits = std::collections::HashMap::new();
    for (author, os) in oracle_sized_oss() {
        for l in [5usize, 10, 15] {
            let (oracle, _) = BruteForce.compute_counted(&os, l, BRUTE_BUDGET);
            let heuristics: [&dyn SizeLAlgorithm; 2] = [&BottomUp, &TopPath];
            for algo in heuristics {
                let r = algo.compute(&os, l);
                assert_eq!(r.len(), l.min(os.len()), "{} author={author} l={l}", algo.name());
                assert!(
                    os.is_valid_selection(&r.selected),
                    "{} author={author} l={l}: invalid selection",
                    algo.name()
                );
                assert!(
                    r.importance <= oracle.importance + 1e-9,
                    "{} author={author} l={l}: heuristic beat the exhaustive optimum",
                    algo.name()
                );
                let ratio = r.importance / oracle.importance;
                assert!(
                    ratio >= 0.95,
                    "{} author={author} l={l}: quality ratio {ratio:.4} below 0.95",
                    algo.name()
                );
                if (r.importance - oracle.importance).abs() < 1e-9 {
                    *exact_hits.entry(algo.name()).or_insert(0u32) += 1;
                }
            }
        }
    }
    for algo in ["Bottom-Up", "Top-Path"] {
        assert!(
            exact_hits.get(algo).copied().unwrap_or(0) > 0,
            "{algo} never reached the optimum on any fixture OS — wholesale regression?"
        );
    }
}
