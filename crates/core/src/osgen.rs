//! Complete OS generation (Algorithm 5).
//!
//! Breadth-first traversal of the GDS(θ) starting at `t_DS`: for each OS
//! node and each child relation of its GDS node, fetch the joining tuples
//! and append them as children. Two tuple sources are supported, matching
//! the paper's §6.3 comparison:
//!
//! * [`OsSource::DataGraph`] — lookups against the precomputed in-memory
//!   data graph ("the OSs are generated much faster using the data graph"),
//! * [`OsSource::Database`] — the SQL-shaped joins of Algorithm 5 line 6,
//!   every probe counted by the storage layer's access counter.

use sizel_graph::{DataGraph, Direction, Gds, GdsNode, GdsNodeId, JoinSpec, MnLinkId, SchemaGraph};
use sizel_rank::RankScores;
use sizel_storage::{Database, FkOrderToken, LinkCursor, SliceLinkCursor, TupleRef};

use crate::os::{FetchScratch, Os, OsArenaPool};

/// Where OS generation reads tuples from.
/// `Hash` because the serving layer's cache key includes the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OsSource {
    /// The in-memory tuple graph (fast path).
    DataGraph,
    /// Direct joins against the stored tables (counted I/O).
    Database,
}

/// Everything OS generation needs, borrowed from the engine: database,
/// schema graph, data graph, a GDS(θ) with stats, and global importance.
pub struct OsContext<'a> {
    /// The database.
    pub db: &'a Database,
    /// Its schema graph.
    pub sg: &'a SchemaGraph,
    /// The tuple-level data graph.
    pub dg: &'a DataGraph,
    /// The (restricted) GDS for the DS relation, with `max/mmax` stats set.
    pub gds: &'a Gds,
    /// Global importance scores.
    pub scores: &'a RankScores,
    /// Resolved M:N link ids per GDS node. Owned when built ad hoc by
    /// [`OsContext::new`]; borrowed from the engine's precomputed
    /// per-table link tables on the serving path
    /// ([`OsContext::with_links`]), so building a context per query stops
    /// allocating and stops re-scanning the data graph's links.
    link_of_gds: std::borrow::Cow<'a, [Option<MnLinkId>]>,
    /// The database's installed importance order, when it matches these
    /// scores — unlocks the sorted-FK prefix scan in
    /// [`Database::select_eq_top_l`] and the sorted-link junction scan.
    /// `None` (heap fallback) when the scores never stamped an order or
    /// the database was re-ordered or mutated since.
    fk_order: Option<FkOrderToken>,
}

impl<'a> OsContext<'a> {
    /// Builds a context, resolving each GDS node's junction step to its
    /// collapsed M:N link. One-shot convenience: loops and engines should
    /// resolve the link table once ([`OsContext::resolve_links`]) and use
    /// [`OsContext::with_links`], which allocates nothing.
    pub fn new(
        db: &'a Database,
        sg: &'a SchemaGraph,
        dg: &'a DataGraph,
        gds: &'a Gds,
        scores: &'a RankScores,
    ) -> Self {
        let link_of_gds = std::borrow::Cow::Owned(Self::resolve_links(dg, gds));
        let fk_order = scores.fk_order.filter(|t| db.fk_order() == Some(*t));
        OsContext { db, sg, dg, gds, scores, link_of_gds, fk_order }
    }

    /// Builds a context over a precomputed link table (see
    /// [`OsContext::resolve_links`]). Allocation-free — the engine calls
    /// this once per query with its per-DS-table precomputation.
    pub fn with_links(
        db: &'a Database,
        sg: &'a SchemaGraph,
        dg: &'a DataGraph,
        gds: &'a Gds,
        scores: &'a RankScores,
        link_of_gds: &'a [Option<MnLinkId>],
    ) -> Self {
        debug_assert_eq!(link_of_gds.len(), gds.len(), "link table must match the GDS");
        let fk_order = scores.fk_order.filter(|t| db.fk_order() == Some(*t));
        OsContext {
            db,
            sg,
            dg,
            gds,
            scores,
            link_of_gds: std::borrow::Cow::Borrowed(link_of_gds),
            fk_order,
        }
    }

    /// Resolves each GDS node's junction step to its collapsed M:N link —
    /// the `O(|GDS| · |links|)` scan that used to run per query, now a
    /// build-time precomputation.
    pub fn resolve_links(dg: &DataGraph, gds: &Gds) -> Vec<Option<MnLinkId>> {
        gds.iter()
            .map(|(_, n)| match &n.join {
                JoinSpec::ViaJunction { e_in, e_out, .. } => Some(
                    dg.find_link(*e_in, *e_out).expect("every junction step has a collapsed link"),
                ),
                _ => None,
            })
            .collect()
    }

    /// Local importance `Im(OS, t_i) = Im(t_i) · Af(R_i)` (Equation 3).
    pub fn local_importance(&self, gds_node: GdsNodeId, tuple: TupleRef) -> f64 {
        self.scores.global(self.dg.node_id(tuple)) * self.gds.node(gds_node).affinity
    }

    /// Fetches the tuples of GDS node `child` joining with `parent_tuple`.
    /// `grandparent` is the tuple of the OS parent's parent, excluded by
    /// CoAuthor-style replicated steps. Appends to `out`.
    pub fn children_of(
        &self,
        child: GdsNodeId,
        parent_tuple: TupleRef,
        grandparent: Option<TupleRef>,
        source: OsSource,
        out: &mut Vec<TupleRef>,
    ) {
        let node = self.gds.node(child);
        match source {
            OsSource::DataGraph => {
                self.children_via_graph(child, node, parent_tuple, grandparent, out)
            }
            OsSource::Database => self.children_via_database(node, parent_tuple, grandparent, out),
        }
    }

    fn children_via_graph(
        &self,
        child_id: GdsNodeId,
        node: &GdsNode,
        parent: TupleRef,
        grandparent: Option<TupleRef>,
        out: &mut Vec<TupleRef>,
    ) {
        match &node.join {
            JoinSpec::Root => {}
            JoinSpec::Step { edge, dir } => match dir {
                Direction::Forward => {
                    if let Some(t) = self.dg.fwd_neighbor(*edge, parent.row) {
                        out.push(self.dg.tuple_of(t));
                    }
                }
                Direction::Backward => {
                    for &t in self.dg.bwd_neighbors(*edge, parent.row) {
                        out.push(self.dg.tuple_of(sizel_graph::NodeId(t)));
                    }
                }
            },
            JoinSpec::ViaJunction { exclude_parent, .. } => {
                let link =
                    self.dg.link(self.link_of_gds[child_id.index()].expect("resolved in new()"));
                for &t in link.targets(parent.row) {
                    let tuple = self.dg.tuple_of(sizel_graph::NodeId(t));
                    if *exclude_parent && Some(tuple) == grandparent {
                        continue;
                    }
                    out.push(tuple);
                }
            }
        }
    }

    /// The Avoidance-Condition-2 fetch (Algorithm 4 line 10): at most `l`
    /// joining tuples with local importance strictly above `largest_l`,
    /// ordered by descending importance. In database mode the predicate is
    /// pushed into the probe (the `SELECT * TOP l ... AND Ri.li >
    /// largest-l` form), so the access counter sees one probe and only the
    /// returned rows; in data-graph mode the same filter runs against the
    /// in-memory index. All working memory comes from `scratch` (pooled by
    /// the generation loops), so warm probes are allocation-free.
    #[allow(clippy::too_many_arguments)]
    pub fn children_of_top_l(
        &self,
        child: GdsNodeId,
        parent_tuple: TupleRef,
        grandparent: Option<TupleRef>,
        source: OsSource,
        l: usize,
        largest_l: f64,
        scratch: &mut FetchScratch,
        out: &mut Vec<TupleRef>,
    ) {
        let node = self.gds.node(child);
        match (source, &node.join) {
            (OsSource::Database, JoinSpec::Step { edge, dir: Direction::Backward }) => {
                let e = self.sg.edge(*edge);
                let pk = self.db.table(parent_tuple.table).pk_of(parent_tuple.row);
                let li = |r: sizel_storage::RowId| {
                    self.local_importance(child, TupleRef::new(e.from, r))
                };
                scratch.rows.clear();
                self.db.select_eq_top_l_into(
                    e.from,
                    e.fk_col,
                    pk,
                    l,
                    largest_l,
                    self.fk_order,
                    &li,
                    &mut scratch.row_topl,
                    &mut scratch.rows,
                );
                for &r in &scratch.rows {
                    out.push(TupleRef::new(e.from, r));
                }
            }
            (OsSource::Database, JoinSpec::Step { edge, dir: Direction::Forward }) => {
                // N:1 probe with the importance predicate pushed down: the
                // access is counted, but a filtered-out row is not returned.
                let e = self.sg.edge(*edge);
                let mut kept = 0usize;
                if let Some(k) = self.db.value(parent_tuple, e.fk_col).as_int() {
                    if let Some(r) = self.db.table(e.to).by_pk(k) {
                        let tuple = TupleRef::new(e.to, r);
                        if self.local_importance(child, tuple) > largest_l {
                            kept = 1;
                            out.push(tuple);
                        }
                    }
                }
                self.db.access().record_join(kept);
            }
            (
                OsSource::Database,
                JoinSpec::ViaJunction { junction, e_in, e_out, exclude_parent },
            ) => {
                let pk = self.db.table(parent_tuple.table).pk_of(parent_tuple.row);
                let e1 = self.sg.edge(*e_in);
                let e2 = self.sg.edge(*e_out);
                let jt = self.db.table(*junction);
                // Sorted-link fast path: when the installed order matches
                // these scores, the junction's pre-joined postings are
                // already ordered by descending target importance, so the
                // probe is a bounded prefix scan — same cut logic (and
                // the same boundary li-tie re-rank through `top_l`) as
                // the sorted-FK path of `select_eq_top_l`. Access
                // accounting is identical to the heap path by
                // construction: one junction probe reporting the raw FK
                // group size, one target fetch reporting the result size.
                // Pairs whose junction row or target row died since the
                // last compaction are tombstones: skipped, never cut on
                // (their target score cannot un-order the live suffix).
                if l > 0 && self.fk_order.is_some() && self.fk_order == self.db.fk_order() {
                    let target_t = self.db.table(e2.to);
                    let excl = *exclude_parent;
                    let run_scan = |cur: &mut dyn LinkCursor, kept: &mut Vec<(f64, TupleRef)>| {
                        kept.clear();
                        while let Some((j, t)) = cur.next_pair() {
                            if !jt.is_live(j) || !target_t.is_live(t) {
                                continue;
                            }
                            let tuple = TupleRef::new(e2.to, t);
                            let w = self.local_importance(child, tuple);
                            if w <= largest_l {
                                break;
                            }
                            if kept.len() >= l && w < kept[l - 1].0 {
                                break;
                            }
                            if excl && Some(tuple) == grandparent {
                                continue;
                            }
                            kept.push((w, tuple));
                        }
                    };
                    if let Some(link) = jt.sorted_link_index(e1.fk_col) {
                        self.db.access().record_join(link.raw_group_len(pk));
                        let mut cur = SliceLinkCursor::new(link.pairs(pk));
                        run_scan(&mut cur, &mut scratch.tuple_topl.staged);
                        let before = out.len();
                        scratch.tuple_topl.rank_staged_into(l, out);
                        self.db.access().record_join(out.len() - before);
                        self.db.access().record_fast_probe();
                        return;
                    }
                    // Paged fallback: link postings evicted to the disk
                    // tier. Same scan, same accounting; a read failure
                    // discards the partial prefix (fail closed) and drops
                    // through to the always-correct heap path.
                    if let Some(pager) = self.db.pager() {
                        if pager.stamp() == self.fk_order {
                            if let (Some(raw), Some(mut cur)) = (
                                pager.link_raw_len(*junction, e1.fk_col, pk),
                                pager.link_cursor(*junction, e1.fk_col, pk),
                            ) {
                                run_scan(cur.as_mut(), &mut scratch.tuple_topl.staged);
                                if !cur.failed() {
                                    self.db.access().record_join(raw);
                                    let before = out.len();
                                    scratch.tuple_topl.rank_staged_into(l, out);
                                    self.db.access().record_join(out.len() - before);
                                    self.db.access().record_fast_probe();
                                    return;
                                }
                                scratch.tuple_topl.staged.clear();
                            }
                        }
                    }
                }
                // Heap fallback: the junction probe is unavoidable (its
                // rows are read to find the targets); the target fetch is
                // TOP-l filtered.
                let jrows = jt.rows_where_eq(e1.fk_col, pk);
                self.db.access().record_join(jrows.len());
                self.db.access().record_heap_probe();
                let target = self.db.table(e2.to);
                let before = out.len();
                scratch.tuple_topl.select_into(
                    jrows.iter().filter_map(|&j| {
                        let k = jt.value(j, e2.fk_col).as_int()?;
                        let r = target.by_pk(k)?;
                        let tuple = TupleRef::new(e2.to, r);
                        if *exclude_parent && Some(tuple) == grandparent {
                            return None;
                        }
                        let w = self.local_importance(child, tuple);
                        (w > largest_l).then_some((w, tuple))
                    }),
                    l,
                    out,
                );
                self.db.access().record_join(out.len() - before);
            }
            _ => {
                // Data-graph mode, and the Forward (N:1) database step
                // whose result is at most one row: fetch then filter.
                let FetchScratch { all, tuple_topl, .. } = scratch;
                all.clear();
                self.children_of(child, parent_tuple, grandparent, source, all);
                tuple_topl.select_into(
                    all.drain(..).filter_map(|t| {
                        let w = self.local_importance(child, t);
                        (w > largest_l).then_some((w, t))
                    }),
                    l,
                    out,
                );
            }
        }
    }

    fn children_via_database(
        &self,
        node: &GdsNode,
        parent: TupleRef,
        grandparent: Option<TupleRef>,
        out: &mut Vec<TupleRef>,
    ) {
        // Each probe below is the SQL form of Algorithm 5 line 6 with the
        // same access accounting as `Database::select_eq`, but reads the
        // hash indexes through borrowed slices / point lookups instead of
        // materializing a `Vec<RowId>` per probe — the Database-source BFS
        // is allocation-free too (tests/alloc_guard.rs).
        match &node.join {
            JoinSpec::Root => {}
            JoinSpec::Step { edge, dir } => {
                let e = self.sg.edge(*edge);
                match dir {
                    Direction::Forward => {
                        // SELECT * FROM To WHERE To.pk = parent.fk — O(1)
                        // on the unique PK index.
                        if let Some(k) = self.db.value(parent, e.fk_col).as_int() {
                            let mut fetched = 0usize;
                            if let Some(r) = self.db.table(e.to).by_pk(k) {
                                fetched = 1;
                                out.push(TupleRef::new(e.to, r));
                            }
                            self.db.access().record_join(fetched);
                        }
                    }
                    Direction::Backward => {
                        // SELECT * FROM From WHERE From.fk = parent.pk
                        let pk = self.db.table(parent.table).pk_of(parent.row);
                        let rows = self.db.table(e.from).rows_where_eq(e.fk_col, pk);
                        self.db.access().record_join(rows.len());
                        for &r in rows {
                            out.push(TupleRef::new(e.from, r));
                        }
                    }
                }
            }
            JoinSpec::ViaJunction { junction, e_in, e_out, exclude_parent } => {
                // Probe the junction (1 access), then fetch the targets by
                // PK as one batched join (1 access).
                let pk = self.db.table(parent.table).pk_of(parent.row);
                let e1 = self.sg.edge(*e_in);
                let e2 = self.sg.edge(*e_out);
                let jt = self.db.table(*junction);
                let jrows = jt.rows_where_eq(e1.fk_col, pk);
                self.db.access().record_join(jrows.len());
                let target = self.db.table(e2.to);
                let mut fetched = 0usize;
                for &j in jrows {
                    if let Some(k) = jt.value(j, e2.fk_col).as_int() {
                        if let Some(r) = target.by_pk(k) {
                            let tuple = TupleRef::new(e2.to, r);
                            if *exclude_parent && Some(tuple) == grandparent {
                                continue;
                            }
                            fetched += 1;
                            out.push(tuple);
                        }
                    }
                }
                self.db.access().record_join(fetched);
            }
        }
    }
}

/// Algorithm 5: generates the complete OS for `t_DS`. `depth_cutoff` caps
/// node depth — size-l computations pass `Some(l - 1)` per the paper's §3.3
/// footnote ("any tuples or subtrees which have distance at least l from
/// the root are excluded, as these cannot be part of a connected size-l
/// OS").
///
/// One-shot convenience over [`generate_os_pooled`]: allocates a private
/// pool per call. Loops should hold an [`OsArenaPool`] and call the pooled
/// variant, which runs allocation-free once its buffers are warm.
pub fn generate_os(
    ctx: &OsContext<'_>,
    tds: TupleRef,
    depth_cutoff: Option<u32>,
    source: OsSource,
) -> Os {
    let mut pool = OsArenaPool::new();
    generate_os_pooled(ctx, tds, depth_cutoff, source, &mut pool)
}

/// [`generate_os`] drawing the arena and all BFS scratch from `pool`.
/// Release the returned OS back to the same pool when done with it to keep
/// the steady state allocation-free (asserted by `tests/alloc_guard.rs`).
pub fn generate_os_pooled(
    ctx: &OsContext<'_>,
    tds: TupleRef,
    depth_cutoff: Option<u32>,
    source: OsSource,
    pool: &mut OsArenaPool,
) -> Os {
    assert_eq!(tds.table, ctx.gds.root_relation(), "t_DS must belong to the GDS root relation");
    // Cold-arena sizing: a depth-cut OS for a size-l computation (cutoff
    // l - 1) typically stays within `4·l` nodes; uncut generation falls
    // back to the default floor.
    let mut os = pool.acquire_with_capacity(depth_cutoff.map_or(64, |c| 4 * (c as usize + 1)));
    let OsArenaPool { queue, buf, .. } = pool;
    queue.clear();
    buf.clear();
    let root_w = ctx.local_importance(ctx.gds.root(), tds);
    let root = os.add_root(tds, ctx.gds.root(), root_w);

    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let (u_tuple, u_gds, u_depth, u_parent) = {
            let n = os.node(u);
            (n.tuple, n.gds_node, n.depth, n.parent)
        };
        if depth_cutoff.is_some_and(|cap| u_depth >= cap) {
            continue;
        }
        let grandparent = u_parent.map(|p| os.node(p).tuple);
        for &g_child in &ctx.gds.node(u_gds).children {
            buf.clear();
            ctx.children_of(g_child, u_tuple, grandparent, source, buf);
            for &t in buf.iter() {
                let w = ctx.local_importance(g_child, t);
                let id = os.add_child(u, t, g_child, w);
                queue.push_back(id);
            }
        }
    }
    os
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::dblp_fixture;

    #[test]
    fn generates_consistent_tree_from_both_sources() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let tds = f.author_tds(0);
        let a = generate_os(&ctx, tds, None, OsSource::DataGraph);
        let b = generate_os(&ctx, tds, None, OsSource::Database);
        a.validate().unwrap();
        b.validate().unwrap();
        assert_eq!(a.len(), b.len(), "both sources yield the same OS");
        assert!((a.total_weight() - b.total_weight()).abs() < 1e-9);
        // Same multiset of tuples in BFS order.
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.tuple, y.tuple);
            assert_eq!(x.gds_node, y.gds_node);
        }
    }

    #[test]
    fn pooled_generation_is_identical_and_recycles() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let mut pool = OsArenaPool::new();
        for i in 0..3 {
            let tds = f.author_tds(i);
            for source in [OsSource::DataGraph, OsSource::Database] {
                let fresh = generate_os(&ctx, tds, Some(9), source);
                // Generate twice through the same pool: the second run
                // reuses the released arena and must be byte-identical.
                let a = generate_os_pooled(&ctx, tds, Some(9), source, &mut pool);
                pool.release(a);
                let b = generate_os_pooled(&ctx, tds, Some(9), source, &mut pool);
                b.validate().unwrap();
                assert_eq!(b.len(), fresh.len());
                for ((ia, na), (ib, nb)) in fresh.iter().zip(b.iter()) {
                    assert_eq!(na.tuple, nb.tuple);
                    assert_eq!(na.parent, nb.parent);
                    assert_eq!(na.weight.to_bits(), nb.weight.to_bits());
                    assert_eq!(fresh.children(ia), b.children(ib));
                }
                pool.release(b);
            }
        }
        assert_eq!(pool.parked(), 1, "one arena cycles through the pool");
    }

    #[test]
    fn database_mode_counts_joins() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let tds = f.author_tds(0);
        f.dblp.db.access().reset();
        let _ = generate_os(&ctx, tds, None, OsSource::DataGraph);
        assert_eq!(f.dblp.db.access().snapshot().joins, 0, "graph mode does no DB joins");
        let os = generate_os(&ctx, tds, None, OsSource::Database);
        let stats = f.dblp.db.access().snapshot();
        assert!(stats.joins > 0);
        assert!(stats.tuples as usize >= os.len() - 1);
    }

    #[test]
    fn coauthors_exclude_the_parent_author() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let tds = f.author_tds(0);
        let os = generate_os(&ctx, tds, None, OsSource::DataGraph);
        let co = f.gds.find_label("CoAuthor").unwrap();
        for (_, n) in os.iter() {
            if n.gds_node == co {
                assert_ne!(n.tuple, tds, "the DS author must never appear as a co-author");
            }
        }
    }

    #[test]
    fn depth_cutoff_excludes_far_tuples() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let tds = f.author_tds(0);
        let full = generate_os(&ctx, tds, None, OsSource::DataGraph);
        let cut = generate_os(&ctx, tds, Some(1), OsSource::DataGraph);
        assert!(cut.max_depth() <= 1);
        assert!(cut.len() < full.len());
        // Cut OS is a prefix-closed subset: every cut tuple exists in full.
        assert!(!cut.is_empty());
    }

    #[test]
    fn weights_are_global_times_affinity() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let tds = f.author_tds(1);
        let os = generate_os(&ctx, tds, None, OsSource::DataGraph);
        for (_, n) in os.iter() {
            let expect =
                ctx.scores.global(ctx.dg.node_id(n.tuple)) * ctx.gds.node(n.gds_node).affinity;
            assert!((n.weight - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn os_tuples_follow_gds_relations() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let os = generate_os(&ctx, f.author_tds(2), None, OsSource::DataGraph);
        for (_, n) in os.iter() {
            assert_eq!(n.tuple.table, ctx.gds.node(n.gds_node).relation);
        }
    }

    #[test]
    #[should_panic(expected = "t_DS must belong")]
    fn wrong_root_relation_is_rejected() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        // A Paper tuple against the Author GDS.
        let bad = TupleRef::new(f.dblp.paper, sizel_storage::RowId(0));
        let _ = generate_os(&ctx, bad, None, OsSource::DataGraph);
    }
}
