//! Shared test fixtures: small DBLP / TPC-H stacks built once per process.

use std::sync::OnceLock;

use sizel_datagen::dblp::{self, Dblp, DblpConfig};
use sizel_datagen::tpch::{self, Tpch, TpchConfig};
use sizel_graph::{presets, DataGraph, Gds, SchemaGraph};
use sizel_rank::{compute, dblp_ga, tpch_ga, GaPreset, RankConfig, RankScores};
use sizel_storage::{Database, RowId, TupleRef};

use crate::engine::QueryResult;
use crate::osgen::OsContext;

/// The one canonical byte-exact rendering of a query-result list that
/// every equivalence oracle compares — all scalar fields with floats as
/// raw bits, plus the full flat-arena structure of each summary (tuples,
/// GDS nodes, parents, CSR child slices, depths, weight bits). Accepts
/// `QueryResult`, `&QueryResult`, and the serving layer's
/// `Arc<QueryResult>` alike; keeping one renderer means every oracle
/// compares the same bytes (a new field gets threaded in exactly once).
pub fn result_fingerprint<R: std::borrow::Borrow<QueryResult>>(results: &[R]) -> String {
    let mut out = String::new();
    for r in results {
        let r = r.borrow();
        out.push_str(&format!(
            "tds={:?} label={:?} global={:016x} in_size={} im={:016x} sel={:?}\n",
            r.tds,
            r.ds_label,
            r.global_score.to_bits(),
            r.input_os_size,
            r.result.importance.to_bits(),
            r.result.selected,
        ));
        for (id, n) in r.summary.iter() {
            out.push_str(&format!(
                "  {:?}: t={:?} g={:?} p={:?} c={:?} d={} w={:016x}\n",
                id,
                n.tuple,
                n.gds_node,
                n.parent,
                r.summary.children(id),
                n.depth,
                n.weight.to_bits()
            ));
        }
    }
    out
}

/// The largest primary key currently in `table` — mutation tests and
/// benches mint fresh rows above it.
pub fn max_pk(db: &Database, table: &str) -> i64 {
    let tid = db.table_id(table).expect("fixture table name");
    let t = db.table(tid);
    t.iter().map(|(r, _)| t.pk_of(r)).max().expect("non-empty fixture table")
}

/// A fully-built tiny DBLP stack.
pub struct DblpFixture {
    /// Generated database + table handles.
    pub dblp: Dblp,
    /// Schema graph.
    pub sg: SchemaGraph,
    /// Data graph.
    pub dg: DataGraph,
    /// Author GDS(0.7) with stats.
    pub gds: Gds,
    /// Paper GDS(0.7) with stats.
    pub paper_gds: Gds,
    /// GA1-d1 global importance.
    pub scores: RankScores,
    /// Author rows ordered by descending paper count (fixture queries use
    /// `author_tds(i)` to get interesting DSs).
    pub authors_by_degree: Vec<RowId>,
}

impl DblpFixture {
    /// An [`OsContext`] over the Author GDS.
    pub fn ctx(&self) -> OsContext<'_> {
        OsContext::new(&self.dblp.db, &self.sg, &self.dg, &self.gds, &self.scores)
    }

    /// An [`OsContext`] over the Paper GDS.
    pub fn paper_ctx(&self) -> OsContext<'_> {
        OsContext::new(&self.dblp.db, &self.sg, &self.dg, &self.paper_gds, &self.scores)
    }

    /// The `i`-th most prolific author as a `t_DS`.
    pub fn author_tds(&self, i: usize) -> TupleRef {
        TupleRef::new(self.dblp.author, self.authors_by_degree[i])
    }
}

fn build_dblp() -> DblpFixture {
    let mut d = dblp::generate(&DblpConfig::tiny());
    let sg = SchemaGraph::from_database(&d.db);
    let dg = DataGraph::build(&d.db, &sg);
    let ga = dblp_ga(GaPreset::Ga1, &d.db, &sg, &dg);
    let mut scores = compute(&d.db, &sg, &dg, &ga, &RankConfig::default());
    sizel_rank::install_importance_order(&mut d.db, &dg, &mut scores);

    let mut gds =
        Gds::build(&d.db, &sg, &presets::dblp_author_gds_config(), d.author).restrict(0.7);
    gds.set_stats(&scores.per_table_max);
    let mut paper_gds =
        Gds::build(&d.db, &sg, &presets::dblp_paper_gds_config(), d.paper).restrict(0.7);
    paper_gds.set_stats(&scores.per_table_max);

    let ap = d.db.table(d.author_paper);
    let author_col = ap.schema.column_index("author_id").expect("schema");
    let authors = d.db.table(d.author);
    let mut by_degree: Vec<(usize, RowId)> = authors
        .iter()
        .map(|(rid, _)| (ap.rows_where_eq(author_col, authors.pk_of(rid)).len(), rid))
        .collect();
    by_degree.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let authors_by_degree = by_degree.into_iter().map(|(_, r)| r).collect();

    DblpFixture { dblp: d, sg, dg, gds, paper_gds, scores, authors_by_degree }
}

/// The process-wide tiny DBLP fixture.
pub fn dblp_fixture() -> &'static DblpFixture {
    static FIX: OnceLock<DblpFixture> = OnceLock::new();
    FIX.get_or_init(build_dblp)
}

/// A fully-built tiny TPC-H stack.
pub struct TpchFixture {
    /// Generated database + table handles.
    pub tpch: Tpch,
    /// Schema graph.
    pub sg: SchemaGraph,
    /// Data graph.
    pub dg: DataGraph,
    /// Customer GDS(0.7) with stats.
    pub customer_gds: Gds,
    /// Supplier GDS(0.7) with stats.
    pub supplier_gds: Gds,
    /// GA1-d1 (ValueRank) global importance.
    pub scores: RankScores,
}

impl TpchFixture {
    /// An [`OsContext`] over the Customer GDS.
    pub fn customer_ctx(&self) -> OsContext<'_> {
        OsContext::new(&self.tpch.db, &self.sg, &self.dg, &self.customer_gds, &self.scores)
    }

    /// An [`OsContext`] over the Supplier GDS.
    pub fn supplier_ctx(&self) -> OsContext<'_> {
        OsContext::new(&self.tpch.db, &self.sg, &self.dg, &self.supplier_gds, &self.scores)
    }
}

fn build_tpch() -> TpchFixture {
    let mut t = tpch::generate(&TpchConfig::tiny());
    let sg = SchemaGraph::from_database(&t.db);
    let dg = DataGraph::build(&t.db, &sg);
    let ga = tpch_ga(GaPreset::Ga1, &t.db, &sg, &dg);
    let mut scores = compute(&t.db, &sg, &dg, &ga, &RankConfig::default());
    sizel_rank::install_importance_order(&mut t.db, &dg, &mut scores);
    let mut customer_gds =
        Gds::build(&t.db, &sg, &presets::tpch_customer_gds_config(), t.customer).restrict(0.7);
    customer_gds.set_stats(&scores.per_table_max);
    let mut supplier_gds =
        Gds::build(&t.db, &sg, &presets::tpch_supplier_gds_config(), t.supplier).restrict(0.7);
    supplier_gds.set_stats(&scores.per_table_max);
    TpchFixture { tpch: t, sg, dg, customer_gds, supplier_gds, scores }
}

/// The process-wide tiny TPC-H fixture.
pub fn tpch_fixture() -> &'static TpchFixture {
    static FIX: OnceLock<TpchFixture> = OnceLock::new();
    FIX.get_or_init(build_tpch)
}
