//! Evaluation metrics and the synthetic evaluator panel (Section 6.1/6.2).
//!
//! * [`approximation_ratio`] — Figure 9's measure: achieved `Im(S)` over
//!   the optimal `Im(S)`.
//! * [`effectiveness`] — Figure 8's measure: |computed ∩ ideal| / l, which
//!   is recall *and* precision since both sets have size l.
//! * [`EvaluatorPanel`] — the substitution for the paper's human
//!   evaluators (see DESIGN.md §3): each evaluator's "ideal" size-l OS is
//!   the DP optimum under independently perturbed local importances
//!   (log-normal noise), with a bias toward 1st-level neighbours at small l
//!   that mirrors the paper's observation that "evaluators first selected
//!   important Paper tuples ... additional tuples [came at] l ≥ 10".
//! * [`snippet_selection`] — the Google-Desktop-style static snippet
//!   baseline of the §6.1 comparative evaluation.

use sizel_util::prng::Prng;

use crate::algo::{DpKnapsack, SizeLAlgorithm, SizeLResult};
use crate::os::Os;

/// Figure 9's quality ratio: `Im(S_greedy) / Im(S_opt)`, in `[0, 1]`.
pub fn approximation_ratio(achieved: &SizeLResult, optimal: &SizeLResult) -> f64 {
    if optimal.importance <= 0.0 {
        return 1.0;
    }
    (achieved.importance / optimal.importance).min(1.0)
}

/// Figure 8's effectiveness: overlap of two size-l selections over l
/// (recall = precision, as both sides hold l tuples). Node-id granularity;
/// see [`tuple_effectiveness`] for the tuple-set variant used against the
/// evaluator panel.
pub fn effectiveness(computed: &SizeLResult, ideal: &SizeLResult) -> f64 {
    let l = computed.len().max(ideal.len());
    if l == 0 {
        return 1.0;
    }
    computed.overlap(ideal) as f64 / l as f64
}

/// Tuple-set effectiveness: the paper measures "the percentage of the
/// tuples that exist in both the evaluators' size-l OSs and the computed
/// size-l OS" — i.e. it compares *database tuples*. An OS can hold the
/// same tuple in several tree positions (a co-author under each shared
/// paper, a well-cited paper under every paper citing it); two selections
/// showing the same tuple under different parents agree at the tuple
/// level. Duplicates within one selection collapse, so the denominator is
/// the larger distinct-tuple count (recall = precision still holds when
/// both sides have the same distinct count).
pub fn tuple_effectiveness(os: &Os, computed: &SizeLResult, ideal: &SizeLResult) -> f64 {
    let tuples = |r: &SizeLResult| -> std::collections::HashSet<sizel_storage::TupleRef> {
        r.selected.iter().map(|&id| os.node(id).tuple).collect()
    };
    let a = tuples(computed);
    let b = tuples(ideal);
    let denom = a.len().max(b.len());
    if denom == 0 {
        return 1.0;
    }
    a.intersection(&b).count() as f64 / denom as f64
}

/// The synthetic evaluator panel.
#[derive(Clone, Debug)]
pub struct EvaluatorPanel {
    /// Number of evaluators (the paper used 11 DBLP authors / 8
    /// professors).
    pub n_evaluators: usize,
    /// Log-normal noise sigma on each tuple's importance — evaluator
    /// disagreement about individual tuples.
    pub noise_sigma: f64,
    /// Multiplier applied to depth-1 tuples (Papers under an Author) when
    /// `l < bias_below_l`: evaluators prefer 1st-level neighbours in small
    /// summaries.
    pub depth1_bias: f64,
    /// The bias applies for `l` strictly below this.
    pub bias_below_l: usize,
    /// Panel seed (evaluator i uses an independent substream).
    pub seed: u64,
}

impl Default for EvaluatorPanel {
    fn default() -> Self {
        // sigma calibrated (against log-compressed scores) so GA1-d1 panel
        // agreement lands in the paper's 75-90% band for l in [10, 30] on
        // Author OSs (Figure 8a); the depth-1 bias reproduces the small-l
        // paper preference §6.1 reports.
        EvaluatorPanel {
            n_evaluators: 8,
            noise_sigma: 0.10,
            depth1_bias: 2.0,
            bias_below_l: 10,
            seed: 0xE7A1,
        }
    }
}

impl EvaluatorPanel {
    /// The ideal size-l OS of evaluator `i` for this OS: the DP optimum
    /// under that evaluator's perturbed importances. Deterministic per
    /// `(seed, i, OS root tuple, |OS|)`.
    pub fn ideal(&self, os: &Os, l: usize, i: usize) -> SizeLResult {
        let mut perturbed = os.clone();
        let mut rng = Prng::new(self.stream_seed(os, i));
        let n = perturbed.len();
        for idx in 0..n {
            let id = crate::os::OsNodeId(idx as u32);
            let node = perturbed.node_mut(id);
            let mut w = node.weight * rng.lognormal(self.noise_sigma);
            if l < self.bias_below_l && node.depth == 1 {
                w *= self.depth1_bias;
            }
            node.weight = w;
        }
        let sel = DpKnapsack.compute(&perturbed, l).selected;
        // Importance reported against the *true* weights.
        SizeLResult::from_selection(os, sel)
    }

    /// Average tuple-level effectiveness of `computed` against the whole
    /// panel (see [`tuple_effectiveness`]).
    pub fn panel_effectiveness(&self, os: &Os, computed: &SizeLResult, l: usize) -> f64 {
        let mut total = 0.0;
        for i in 0..self.n_evaluators {
            total += tuple_effectiveness(os, computed, &self.ideal(os, l, i));
        }
        total / self.n_evaluators as f64
    }

    fn stream_seed(&self, os: &Os, i: usize) -> u64 {
        let root = os.node(os.root()).tuple;
        let key = ((root.table.0 as u64) << 40) ^ ((root.row.0 as u64) << 8) ^ os.len() as u64;
        self.seed
            ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407)
    }
}

/// The §7 observation behind the paper's caching discussion: "optimal
/// size-l OSs for different l could be very different. This prevents the
/// incremental computation of a size-l OS from the optimal size-(l-1) OS."
/// Returns, for each l in `2..=l_max`, the Jaccard similarity between the
/// optimal size-l and size-(l-1) selections, plus whether the smaller one
/// is a subset of the larger (the precondition for incremental reuse).
pub fn consecutive_optima_similarity(os: &Os, l_max: usize) -> Vec<(usize, f64, bool)> {
    let l_max = l_max.min(os.len());
    let mut out = Vec::new();
    let mut prev = DpKnapsack.compute(os, 1);
    for l in 2..=l_max {
        let cur = DpKnapsack.compute(os, l);
        let inter = cur.overlap(&prev);
        let union = cur.len() + prev.len() - inter;
        let jaccard = if union == 0 { 1.0 } else { inter as f64 / union as f64 };
        let nested = inter == prev.len();
        out.push((l, jaccard, nested));
        prev = cur;
    }
    out
}

/// The §6.1 Google-Desktop baseline: a static snippet holding `k` tuples
/// from the "beginning of the file" — and since "the order of nodes in an
/// OS is random" when stored, this is `k` random tuples of the OS (not
/// necessarily connected; snippets know nothing of Definition 1).
pub fn snippet_selection(os: &Os, k: usize, seed: u64) -> SizeLResult {
    let mut ids: Vec<u32> = (0..os.len() as u32).collect();
    let mut rng = Prng::new(seed);
    rng.shuffle(&mut ids);
    ids.truncate(k);
    let selected: Vec<crate::os::OsNodeId> = ids.into_iter().map(crate::os::OsNodeId).collect();
    SizeLResult::from_selection(os, selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{BottomUp, TopPath};
    use crate::os::figure56_tree;
    use crate::osgen::{generate_os, OsSource};
    use crate::test_fixtures::dblp_fixture;

    #[test]
    fn ratio_and_effectiveness_bounds() {
        let os = figure56_tree(55.0);
        let opt = DpKnapsack.compute(&os, 5);
        let bu = BottomUp.compute(&os, 5);
        let r = approximation_ratio(&bu, &opt);
        assert!((r - 235.0 / 240.0).abs() < 1e-12);
        assert!(effectiveness(&bu, &opt) <= 1.0);
        assert!((effectiveness(&opt, &opt) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn panel_is_deterministic() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let os = generate_os(&ctx, f.author_tds(0), Some(9), OsSource::DataGraph);
        let p = EvaluatorPanel::default();
        let a = p.ideal(&os, 10, 3);
        let b = p.ideal(&os, 10, 3);
        assert_eq!(a.selected, b.selected);
        // Different evaluators disagree at least sometimes.
        let c = p.ideal(&os, 10, 4);
        assert!(a.selected != c.selected || a.overlap(&c) == a.len());
    }

    #[test]
    fn ideal_selections_are_valid_size_l() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let os = generate_os(&ctx, f.author_tds(1), Some(9), OsSource::DataGraph);
        let p = EvaluatorPanel::default();
        for i in 0..p.n_evaluators {
            let ideal = p.ideal(&os, 10, i);
            assert_eq!(ideal.len(), 10.min(os.len()));
            assert!(os.is_valid_selection(&ideal.selected));
        }
    }

    #[test]
    fn reasonable_algorithms_beat_noise_floor() {
        // The optimal under true weights should agree with perturbed ideals
        // far better than chance.
        let f = dblp_fixture();
        let ctx = f.ctx();
        let os = generate_os(&ctx, f.author_tds(0), Some(14), OsSource::DataGraph);
        let p = EvaluatorPanel::default();
        let l = 15;
        let computed = TopPath.compute(&os, l);
        let eff = p.panel_effectiveness(&os, &computed, l);
        let chance = l as f64 / os.len() as f64;
        assert!(
            eff > (2.0 * chance).min(0.4),
            "panel effectiveness {eff} should beat chance {chance}"
        );
    }

    #[test]
    fn snippet_baseline_overlaps_poorly() {
        // The §6.1 result: static snippets share ~0-1 tuples with a good
        // size-5 OS on a large OS.
        let f = dblp_fixture();
        let ctx = f.ctx();
        let os = generate_os(&ctx, f.author_tds(0), None, OsSource::DataGraph);
        assert!(os.len() > 50, "need a large OS for the baseline comparison");
        let good = DpKnapsack.compute(&os, 5);
        let mut total = 0usize;
        let runs = 20;
        for s in 0..runs {
            let snip = snippet_selection(&os, 3, s);
            assert_eq!(snip.len(), 3);
            total += snip.overlap(&good);
        }
        let avg = total as f64 / runs as f64;
        assert!(avg <= 1.0, "random static snippets rarely hit the size-5 OS (avg {avg})");
    }

    #[test]
    fn consecutive_similarity_bounds_and_shape() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let os = generate_os(&ctx, f.author_tds(0), Some(19), OsSource::DataGraph);
        let sims = consecutive_optima_similarity(&os, 20);
        assert_eq!(sims.len(), 19);
        for &(l, j, _) in &sims {
            assert!((2..=20).contains(&l));
            assert!((0.0..=1.0).contains(&j), "jaccard out of range at l={l}");
        }
        // Jaccard of consecutive optima of sizes l-1 and l is at most
        // (l-1)/l when nested; values above that indicate a bug.
        for &(l, j, nested) in &sims {
            if nested {
                let expect = (l - 1) as f64 / l as f64;
                assert!((j - expect).abs() < 1e-9, "nested similarity at l={l}");
            }
        }
    }

    #[test]
    fn consecutive_similarity_on_monotone_tree_is_nested() {
        // A pure path: optima are prefixes, always nested.
        let os =
            crate::os::Os::synthetic(&[None, Some(0), Some(1), Some(2)], &[4.0, 3.0, 2.0, 1.0]);
        let sims = consecutive_optima_similarity(&os, 4);
        assert!(sims.iter().all(|&(_, _, nested)| nested));
    }
}
