//! The Object Summary tree.
//!
//! An arena of nodes in BFS order (parents always precede children). Node
//! weights are local importances `Im(OS, t_i)`; the tree shape is what the
//! size-l algorithms operate on.

use std::collections::HashSet;

use sizel_graph::GdsNodeId;
use sizel_storage::{RowId, TableId, TupleRef};

/// Identifies a node within one OS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OsNodeId(pub u32);

impl OsNodeId {
    /// The node index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One tuple occurrence in an OS. The same database tuple can appear in
/// several nodes (a co-author under each shared paper) — the OS is a tree,
/// per the paper's treealization.
#[derive(Clone, Debug)]
pub struct OsNode {
    /// The database tuple.
    pub tuple: TupleRef,
    /// The GDS node this occurrence instantiates.
    pub gds_node: GdsNodeId,
    /// Parent node (`None` for the root `t_DS`).
    pub parent: Option<OsNodeId>,
    /// Children, in insertion (BFS) order.
    pub children: Vec<OsNodeId>,
    /// Depth (root = 0).
    pub depth: u32,
    /// Local importance `Im(OS, t_i)`.
    pub weight: f64,
}

/// An Object Summary: a rooted tree of weighted tuple nodes.
#[derive(Clone, Debug, Default)]
pub struct Os {
    nodes: Vec<OsNode>,
}

impl Os {
    /// An empty OS (no root yet).
    pub fn new() -> Self {
        Os { nodes: Vec::new() }
    }

    /// An OS with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Os { nodes: Vec::with_capacity(cap) }
    }

    /// Adds the root node; must be the first insertion.
    pub fn add_root(&mut self, tuple: TupleRef, gds_node: GdsNodeId, weight: f64) -> OsNodeId {
        assert!(self.nodes.is_empty(), "root must be the first node");
        self.nodes.push(OsNode {
            tuple,
            gds_node,
            parent: None,
            children: Vec::new(),
            depth: 0,
            weight,
        });
        OsNodeId(0)
    }

    /// Adds a child of `parent`; returns the new node's id.
    pub fn add_child(
        &mut self,
        parent: OsNodeId,
        tuple: TupleRef,
        gds_node: GdsNodeId,
        weight: f64,
    ) -> OsNodeId {
        let id = OsNodeId(self.nodes.len() as u32);
        let depth = self.nodes[parent.index()].depth + 1;
        self.nodes.push(OsNode {
            tuple,
            gds_node,
            parent: Some(parent),
            children: Vec::new(),
            depth,
            weight,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// The root id (panics on an empty OS).
    pub fn root(&self) -> OsNodeId {
        assert!(!self.nodes.is_empty(), "empty OS has no root");
        OsNodeId(0)
    }

    /// Number of nodes (the paper's |OS|).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the OS has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    pub fn node(&self, id: OsNodeId) -> &OsNode {
        &self.nodes[id.index()]
    }

    /// Mutable node access (used by the evaluator panel to perturb weights).
    pub fn node_mut(&mut self, id: OsNodeId) -> &mut OsNode {
        &mut self.nodes[id.index()]
    }

    /// Iterates `(OsNodeId, &OsNode)` in BFS order.
    pub fn iter(&self) -> impl Iterator<Item = (OsNodeId, &OsNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (OsNodeId(i as u32), n))
    }

    /// Sum of all node weights (`Im` of the complete OS).
    pub fn total_weight(&self) -> f64 {
        self.nodes.iter().map(|n| n.weight).sum()
    }

    /// Sum of weights over a node set.
    pub fn weight_of(&self, selected: &[OsNodeId]) -> f64 {
        selected.iter().map(|&id| self.nodes[id.index()].weight).sum()
    }

    /// Maximum node depth.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Ids of current leaves.
    pub fn leaves(&self) -> Vec<OsNodeId> {
        self.iter().filter(|(_, n)| n.children.is_empty()).map(|(id, _)| id).collect()
    }

    /// Projects a node subset into a standalone OS (used to materialize a
    /// size-l OS for rendering). The subset must be connected and contain
    /// the root — exactly Definition 1; panics otherwise.
    pub fn project(&self, selected: &[OsNodeId]) -> Os {
        let sel: HashSet<OsNodeId> = selected.iter().copied().collect();
        assert!(sel.contains(&self.root()), "a size-l OS must contain t_DS (Definition 1)");
        let mut map = vec![u32::MAX; self.nodes.len()];
        let mut out = Os::with_capacity(sel.len());
        // BFS order of the original arena preserves parent-before-child.
        for (id, n) in self.iter() {
            if !sel.contains(&id) {
                continue;
            }
            match n.parent {
                None => {
                    let new = out.add_root(n.tuple, n.gds_node, n.weight);
                    map[id.index()] = new.0;
                }
                Some(p) => {
                    assert!(
                        map[p.index()] != u32::MAX,
                        "selected set must be connected through the root (Definition 1)"
                    );
                    let new =
                        out.add_child(OsNodeId(map[p.index()]), n.tuple, n.gds_node, n.weight);
                    map[id.index()] = new.0;
                }
            }
        }
        out
    }

    /// Checks Definition 1 for a candidate selection: contains the root and
    /// is connected (every selected node's parent is selected).
    pub fn is_valid_selection(&self, selected: &[OsNodeId]) -> bool {
        let sel: HashSet<OsNodeId> = selected.iter().copied().collect();
        if sel.len() != selected.len() {
            return false; // duplicates
        }
        if !selected.is_empty() && !sel.contains(&self.root()) {
            return false;
        }
        selected.iter().all(|&id| match self.nodes[id.index()].parent {
            None => true,
            Some(p) => sel.contains(&p),
        })
    }

    /// Builds a synthetic OS from parent links and weights (test fixtures:
    /// the worked examples of Figures 4, 5 and 6 are transcribed with this).
    /// `parents[0]` must be `None` and `parents[i] < i` for all others.
    pub fn synthetic(parents: &[Option<usize>], weights: &[f64]) -> Os {
        assert_eq!(parents.len(), weights.len());
        assert!(!parents.is_empty() && parents[0].is_none());
        let mut os = Os::with_capacity(parents.len());
        os.add_root(dummy_tuple(0), GdsNodeId(0), weights[0]);
        for i in 1..parents.len() {
            let p = parents[i].expect("non-root needs a parent");
            assert!(p < i, "parents must precede children");
            os.add_child(OsNodeId(p as u32), dummy_tuple(i), GdsNodeId(0), weights[i]);
        }
        os
    }

    /// Internal consistency check used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        for (id, n) in self.iter() {
            if let Some(p) = n.parent {
                if p >= id {
                    return Err(format!("parent {p:?} does not precede child {id:?}"));
                }
                if !self.nodes[p.index()].children.contains(&id) {
                    return Err(format!("child link missing for {id:?}"));
                }
                if n.depth != self.nodes[p.index()].depth + 1 {
                    return Err(format!("bad depth at {id:?}"));
                }
            } else if id.0 != 0 {
                return Err(format!("non-root {id:?} without parent"));
            }
            for &c in &n.children {
                if self.nodes[c.index()].parent != Some(id) {
                    return Err(format!("parent link missing for {c:?}"));
                }
            }
        }
        Ok(())
    }
}

fn dummy_tuple(i: usize) -> TupleRef {
    TupleRef::new(TableId(0), RowId(i as u32))
}

/// The paper's Figure 4 example tree (the DP walk-through; 14 nodes).
/// Node ids here are zero-based: paper node k = id k-1. Structure derived
/// from the printed DP table: 3's children are {7,8,9}, 4's are {10,11},
/// 6's is {12}, 13 hangs under 11 and 14 under 12.
pub fn figure4_tree() -> Os {
    // paper:    1   2   3   4   5   6   7   8   9  10  11  12  13  14
    // weight:  30  20  11  31  80  35  10  15   5  13  30  12  60  40
    // parent:   -   1   1   1   1   1   3   3   3   4   4   6  11  12
    Os::synthetic(
        &[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(0),
            Some(0),
            Some(2),
            Some(2),
            Some(2),
            Some(3),
            Some(3),
            Some(5),
            Some(10),
            Some(11),
        ],
        &[30.0, 20.0, 11.0, 31.0, 80.0, 35.0, 10.0, 15.0, 5.0, 13.0, 30.0, 12.0, 60.0, 40.0],
    )
}

/// The paper's Figures 5/6 example tree (the greedy walk-throughs; same 14
/// node ids but a different shape: 2's children are {7,8}, 3's is {9}, 4's
/// is {10}, 11 hangs under 5). Node 12's weight differs between the two
/// figures (55 in Figure 5, 12 in Figure 6), so it is a parameter.
pub fn figure56_tree(w12: f64) -> Os {
    // paper:    1   2   3   4   5   6   7   8   9  10  11  12   13  14
    // weight:  30  20  11  31  80  35  10  15   5  13  30  w12  60  40
    // parent:   -   1   1   1   1   1   2   2   3   4   5   6   11  12
    Os::synthetic(
        &[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(0),
            Some(0),
            Some(1),
            Some(1),
            Some(2),
            Some(3),
            Some(4),
            Some(5),
            Some(10),
            Some(11),
        ],
        &[30.0, 20.0, 11.0, 31.0, 80.0, 35.0, 10.0, 15.0, 5.0, 13.0, 30.0, w12, 60.0, 40.0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate() {
        let os = figure4_tree();
        assert_eq!(os.len(), 14);
        os.validate().unwrap();
        assert_eq!(os.node(OsNodeId(0)).depth, 0);
        assert_eq!(os.node(OsNodeId(12)).depth, 3); // paper node 13
        assert_eq!(os.max_depth(), 3);
    }

    #[test]
    fn total_weight_and_subset_weight() {
        let os = figure4_tree();
        assert!((os.total_weight() - 392.0).abs() < 1e-12);
        // Optimal size-4 set from the paper: nodes 1,4,5,6 = ids 0,3,4,5.
        let sel = [OsNodeId(0), OsNodeId(3), OsNodeId(4), OsNodeId(5)];
        assert!((os.weight_of(&sel) - 176.0).abs() < 1e-12);
    }

    #[test]
    fn selection_validity() {
        let os = figure4_tree();
        assert!(os.is_valid_selection(&[OsNodeId(0), OsNodeId(3), OsNodeId(4)]));
        // Disconnected: node 13 (paper 14) without its ancestors.
        assert!(!os.is_valid_selection(&[OsNodeId(0), OsNodeId(13)]));
        // Missing root.
        assert!(!os.is_valid_selection(&[OsNodeId(3), OsNodeId(4)]));
        // Duplicates.
        assert!(!os.is_valid_selection(&[OsNodeId(0), OsNodeId(0)]));
    }

    #[test]
    fn project_preserves_structure_and_weights() {
        let os = figure4_tree();
        let sel = [OsNodeId(0), OsNodeId(4), OsNodeId(5), OsNodeId(11)];
        let sub = os.project(&sel);
        sub.validate().unwrap();
        assert_eq!(sub.len(), 4);
        assert!((sub.total_weight() - os.weight_of(&sel)).abs() < 1e-12);
        // Node 11 (paper 12) hangs under node 5 (paper 6) in the projection.
        let n = sub
            .iter()
            .find(|(_, n)| n.tuple == os.node(OsNodeId(11)).tuple)
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(sub.node(n).depth, 2);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn project_rejects_disconnected() {
        let os = figure4_tree();
        os.project(&[OsNodeId(0), OsNodeId(13)]);
    }

    #[test]
    fn leaves_of_figure4() {
        let os = figure4_tree();
        let leaves = os.leaves();
        // Paper leaves: 2, 5, 7, 8, 9, 10, 13, 14 -> ids 1,4,6,7,8,9,12,13.
        let expect: Vec<OsNodeId> =
            [1u32, 4, 6, 7, 8, 9, 12, 13].iter().map(|&i| OsNodeId(i)).collect();
        assert_eq!(leaves, expect);
    }
}
