//! The Object Summary tree, stored as a flat CSR arena.
//!
//! One contiguous node slab in BFS order (parents always precede children)
//! plus compressed child ranges: node `i`'s children occupy
//! `child_ids[child_start[i] .. child_end[i]]`, so [`Os::children`] is a
//! slice borrow and building a node costs **zero per-node allocations** —
//! the previous layout kept a `children: Vec<OsNodeId>` inside every node,
//! which dominated `generate_os` wall-clock on the 1000+-tuple OSs of
//! Figure 10e (ROADMAP hot path). Node weights are local importances
//! `Im(OS, t_i)`; the tree shape is what the size-l algorithms operate on.
//!
//! Two construction paths maintain the CSR:
//!
//! * **Grouped append** ([`Os::add_child`]) — all children of a node are
//!   appended consecutively, which BFS generation does naturally (Algorithm
//!   4/5 expand one OS node completely before moving on). Each append is
//!   `O(1)` amortized and the per-node ranges stay contiguous.
//! * **Batch rebuild** (`from_nodes`, used by [`Os::synthetic`] and
//!   [`Os::project`]) — a counting sort over parent links builds the CSR in
//!   `O(n)` for arbitrary parent-before-child insertion orders, with
//!   children listed in ascending id order (exactly the order the legacy
//!   per-node `Vec` layout produced).
//!
//! [`OsArenaPool`] recycles arenas plus the BFS scratch between
//! generations, so the steady state of a serving loop runs allocation-free
//! (asserted by the counting-allocator guard in `tests/alloc_guard.rs`).

use std::collections::{HashSet, VecDeque};

use sizel_graph::GdsNodeId;
use sizel_storage::{RowId, TableId, TupleRef};

/// Identifies a node within one OS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OsNodeId(pub u32);

impl OsNodeId {
    /// The node index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One tuple occurrence in an OS. The same database tuple can appear in
/// several nodes (a co-author under each shared paper) — the OS is a tree,
/// per the paper's treealization. Child links live in the arena's CSR
/// ([`Os::children`]), not in the node.
#[derive(Clone, Copy, Debug)]
pub struct OsNode {
    /// The database tuple.
    pub tuple: TupleRef,
    /// The GDS node this occurrence instantiates.
    pub gds_node: GdsNodeId,
    /// Parent node (`None` for the root `t_DS`).
    pub parent: Option<OsNodeId>,
    /// Depth (root = 0).
    pub depth: u32,
    /// Local importance `Im(OS, t_i)`.
    pub weight: f64,
}

/// An Object Summary: a rooted tree of weighted tuple nodes in a flat CSR
/// arena (see module docs).
#[derive(Clone, Debug, Default)]
pub struct Os {
    nodes: Vec<OsNode>,
    /// Flat child-id storage; node `i` owns `child_ids[child_start[i] ..
    /// child_end[i]]`, ids ascending within each range.
    child_ids: Vec<OsNodeId>,
    child_start: Vec<u32>,
    child_end: Vec<u32>,
}

impl Os {
    /// An empty OS (no root yet).
    pub fn new() -> Self {
        Os::default()
    }

    /// An OS with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Os {
            nodes: Vec::with_capacity(cap),
            child_ids: Vec::with_capacity(cap.saturating_sub(1)),
            child_start: Vec::with_capacity(cap),
            child_end: Vec::with_capacity(cap),
        }
    }

    /// Empties the arena, keeping every buffer's capacity (pool reuse).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.child_ids.clear();
        self.child_start.clear();
        self.child_end.clear();
    }

    fn push_node(&mut self, node: OsNode) {
        self.nodes.push(node);
        // A fresh node has an empty child range; its position is fixed
        // lazily when (if) the first child arrives.
        self.child_start.push(0);
        self.child_end.push(0);
    }

    /// Adds the root node; must be the first insertion.
    pub fn add_root(&mut self, tuple: TupleRef, gds_node: GdsNodeId, weight: f64) -> OsNodeId {
        assert!(self.nodes.is_empty(), "root must be the first node");
        self.push_node(OsNode { tuple, gds_node, parent: None, depth: 0, weight });
        OsNodeId(0)
    }

    /// Adds a child of `parent`; returns the new node's id.
    ///
    /// Children of a node must be appended *consecutively* (no other
    /// node's child in between) so the CSR range stays contiguous — the
    /// natural order of a BFS that fully expands one node before the next.
    /// Panics otherwise; build via [`Os::synthetic`] (which batch-rebuilds
    /// the CSR) when the insertion order is arbitrary.
    pub fn add_child(
        &mut self,
        parent: OsNodeId,
        tuple: TupleRef,
        gds_node: GdsNodeId,
        weight: f64,
    ) -> OsNodeId {
        let id = OsNodeId(self.nodes.len() as u32);
        let depth = self.nodes[parent.index()].depth + 1;
        let p = parent.index();
        let tail = self.child_ids.len() as u32;
        if self.child_start[p] == self.child_end[p] {
            // Opening the parent's range: it starts at the current tail.
            self.child_start[p] = tail;
            self.child_end[p] = tail;
        }
        assert!(
            self.child_end[p] == tail,
            "children of a node must be appended consecutively (CSR grouping); \
             another node's child was added since — build with Os::synthetic instead"
        );
        self.child_ids.push(id);
        self.child_end[p] = tail + 1;
        self.push_node(OsNode { tuple, gds_node, parent: Some(parent), depth, weight });
        id
    }

    /// Builds the arena from nodes in any parent-before-child order,
    /// reconstructing the CSR with a counting sort: children of each node
    /// in ascending id order, `O(n)`.
    fn from_nodes(nodes: Vec<OsNode>) -> Os {
        let n = nodes.len();
        let mut child_start = vec![0u32; n];
        let mut child_end = vec![0u32; n];
        // Count children per node, prefix-sum into ranges.
        for node in &nodes {
            if let Some(p) = node.parent {
                child_end[p.index()] += 1;
            }
        }
        let mut running = 0u32;
        for i in 0..n {
            child_start[i] = running;
            running += child_end[i];
            child_end[i] = child_start[i];
        }
        let mut child_ids = vec![OsNodeId(0); n.saturating_sub(1)];
        for (i, node) in nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                assert!(p.index() < i, "parents must precede children");
                let slot = child_end[p.index()];
                child_ids[slot as usize] = OsNodeId(i as u32);
                child_end[p.index()] = slot + 1;
            }
        }
        Os { nodes, child_ids, child_start, child_end }
    }

    /// The root id (panics on an empty OS).
    pub fn root(&self) -> OsNodeId {
        assert!(!self.nodes.is_empty(), "empty OS has no root");
        OsNodeId(0)
    }

    /// Number of nodes (the paper's |OS|).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the OS has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    pub fn node(&self, id: OsNodeId) -> &OsNode {
        &self.nodes[id.index()]
    }

    /// Mutable node access (used by the evaluator panel to perturb weights).
    pub fn node_mut(&mut self, id: OsNodeId) -> &mut OsNode {
        &mut self.nodes[id.index()]
    }

    /// The children of a node, as a borrowed slice of the CSR arena
    /// (ascending id order — the insertion order of every builder).
    pub fn children(&self, id: OsNodeId) -> &[OsNodeId] {
        let i = id.index();
        &self.child_ids[self.child_start[i] as usize..self.child_end[i] as usize]
    }

    /// Number of children of a node.
    pub fn child_count(&self, id: OsNodeId) -> usize {
        let i = id.index();
        (self.child_end[i] - self.child_start[i]) as usize
    }

    /// Iterates `(OsNodeId, &OsNode)` in BFS order.
    pub fn iter(&self) -> impl Iterator<Item = (OsNodeId, &OsNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (OsNodeId(i as u32), n))
    }

    /// Sum of all node weights (`Im` of the complete OS).
    pub fn total_weight(&self) -> f64 {
        self.nodes.iter().map(|n| n.weight).sum()
    }

    /// Sum of weights over a node set.
    pub fn weight_of(&self, selected: &[OsNodeId]) -> f64 {
        selected.iter().map(|&id| self.nodes[id.index()].weight).sum()
    }

    /// Maximum node depth.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Ids of current leaves.
    pub fn leaves(&self) -> Vec<OsNodeId> {
        self.iter().filter(|(id, _)| self.child_count(*id) == 0).map(|(id, _)| id).collect()
    }

    /// Projects a node subset into a standalone OS (used to materialize a
    /// size-l OS for rendering). The subset must be connected and contain
    /// the root — exactly Definition 1; panics otherwise.
    pub fn project(&self, selected: &[OsNodeId]) -> Os {
        let sel: HashSet<OsNodeId> = selected.iter().copied().collect();
        assert!(sel.contains(&self.root()), "a size-l OS must contain t_DS (Definition 1)");
        let mut map = vec![u32::MAX; self.nodes.len()];
        let mut out: Vec<OsNode> = Vec::with_capacity(sel.len());
        // BFS order of the original arena preserves parent-before-child.
        for (id, n) in self.iter() {
            if !sel.contains(&id) {
                continue;
            }
            let new = out.len() as u32;
            match n.parent {
                None => {
                    out.push(OsNode { parent: None, depth: 0, ..*n });
                }
                Some(p) => {
                    assert!(
                        map[p.index()] != u32::MAX,
                        "selected set must be connected through the root (Definition 1)"
                    );
                    let parent = OsNodeId(map[p.index()]);
                    let depth = out[parent.index()].depth + 1;
                    out.push(OsNode { parent: Some(parent), depth, ..*n });
                }
            }
            map[id.index()] = new;
        }
        Os::from_nodes(out)
    }

    /// Checks Definition 1 for a candidate selection: contains the root and
    /// is connected (every selected node's parent is selected).
    pub fn is_valid_selection(&self, selected: &[OsNodeId]) -> bool {
        let sel: HashSet<OsNodeId> = selected.iter().copied().collect();
        if sel.len() != selected.len() {
            return false; // duplicates
        }
        if !selected.is_empty() && !sel.contains(&self.root()) {
            return false;
        }
        selected.iter().all(|&id| match self.nodes[id.index()].parent {
            None => true,
            Some(p) => sel.contains(&p),
        })
    }

    /// Builds a synthetic OS from parent links and weights (test fixtures:
    /// the worked examples of Figures 4, 5 and 6 are transcribed with this;
    /// property tests feed it random trees). `parents[0]` must be `None`
    /// and `parents[i] < i` for all others — the insertion order may be
    /// arbitrary beyond that; the CSR is batch-rebuilt.
    pub fn synthetic(parents: &[Option<usize>], weights: &[f64]) -> Os {
        assert_eq!(parents.len(), weights.len());
        assert!(!parents.is_empty() && parents[0].is_none());
        let mut nodes: Vec<OsNode> = Vec::with_capacity(parents.len());
        nodes.push(OsNode {
            tuple: dummy_tuple(0),
            gds_node: GdsNodeId(0),
            parent: None,
            depth: 0,
            weight: weights[0],
        });
        for i in 1..parents.len() {
            let p = parents[i].expect("non-root needs a parent");
            assert!(p < i, "parents must precede children");
            nodes.push(OsNode {
                tuple: dummy_tuple(i),
                gds_node: GdsNodeId(0),
                parent: Some(OsNodeId(p as u32)),
                depth: nodes[p].depth + 1,
                weight: weights[i],
            });
        }
        Os::from_nodes(nodes)
    }

    /// Internal consistency check used by property tests: parent/child
    /// links mirror each other, depths are consistent, and the CSR is a
    /// partition — every non-root appears in exactly one child range, in
    /// ascending order within its range.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nodes.len();
        if self.child_start.len() != n || self.child_end.len() != n {
            return Err("CSR range arrays out of sync with the node slab".into());
        }
        if self.child_ids.len() != n.saturating_sub(1) {
            return Err(format!(
                "child_ids holds {} entries for {} nodes (want n - 1)",
                self.child_ids.len(),
                n
            ));
        }
        let mut seen_as_child = vec![false; n];
        for (id, node) in self.iter() {
            let i = id.index();
            if (self.child_end[i] as usize) > self.child_ids.len()
                || self.child_start[i] > self.child_end[i]
            {
                return Err(format!("bad child range at {id:?}"));
            }
            if let Some(p) = node.parent {
                if p >= id {
                    return Err(format!("parent {p:?} does not precede child {id:?}"));
                }
                if !self.children(p).contains(&id) {
                    return Err(format!("child link missing for {id:?}"));
                }
                if node.depth != self.nodes[p.index()].depth + 1 {
                    return Err(format!("bad depth at {id:?}"));
                }
            } else if id.0 != 0 {
                return Err(format!("non-root {id:?} without parent"));
            }
            let children = self.children(id);
            for w in children.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("children of {id:?} not in ascending order"));
                }
            }
            for &c in children {
                if c.index() >= n {
                    return Err(format!("child {c:?} out of bounds under {id:?}"));
                }
                if seen_as_child[c.index()] {
                    return Err(format!("{c:?} appears in two child ranges"));
                }
                seen_as_child[c.index()] = true;
                if self.nodes[c.index()].parent != Some(id) {
                    return Err(format!("parent link missing for {c:?}"));
                }
            }
        }
        if let Some(orphan) = (1..n).find(|&i| !seen_as_child[i]) {
            return Err(format!("node {orphan} is in no child range"));
        }
        Ok(())
    }
}

/// A recycling pool for OS arenas and the BFS scratch of OS generation.
///
/// `generate_os`'s steady state — the serving loop re-materializing
/// summaries over a warm engine — must not touch the allocator: arenas are
/// [`Os::clear`]ed (capacity kept) on release, and the BFS queue / tuple
/// fetch buffer are reused across generations. One pool per thread (the
/// engine keeps one in thread-local storage); the pool is cheap enough to
/// create ad hoc for one-shot callers.
#[derive(Debug, Default)]
pub struct OsArenaPool {
    arenas: Vec<Os>,
    /// BFS frontier scratch for `generate_os` / `generate_prelim`.
    pub(crate) queue: VecDeque<OsNodeId>,
    /// Tuple-fetch scratch for `OsContext::children_of`.
    pub(crate) buf: Vec<TupleRef>,
    /// TOP-l probe scratch for `OsContext::children_of_top_l`.
    pub(crate) fetch: FetchScratch,
}

/// Working memory for the Avoidance-Condition-2 TOP-l fetch paths
/// (`OsContext::children_of_top_l`): the bounded selection heaps, the
/// boundary-tie staging runs, and the unfiltered fetch buffer, all
/// recycled across probes so a warm prelim generation never touches the
/// allocator (pinned by `tests/alloc_guard.rs`). Pooled inside
/// [`OsArenaPool`]; one-shot callers can default-construct it.
#[derive(Debug, Default)]
pub struct FetchScratch {
    /// Row output of the sorted-FK probe (`select_eq_top_l_into`).
    pub(crate) rows: Vec<RowId>,
    /// Selection scratch for row-level probes.
    pub(crate) row_topl: sizel_storage::TopLScratch<RowId>,
    /// Selection scratch for tuple-level (junction / graph-mode) probes.
    pub(crate) tuple_topl: sizel_storage::TopLScratch<TupleRef>,
    /// Unfiltered children fetched before the TOP-l cut (graph mode).
    pub(crate) all: Vec<TupleRef>,
}

impl OsArenaPool {
    /// An empty pool.
    pub fn new() -> Self {
        OsArenaPool::default()
    }

    /// Takes an empty arena out of the pool (warm capacity when one was
    /// released before; freshly allocated otherwise).
    pub fn acquire(&mut self) -> Os {
        // A fresh arena pre-sizes for a typical small OS so one-shot
        // callers don't pay the doubling ladder; released arenas keep
        // whatever high-water capacity they grew to.
        self.acquire_with_capacity(64)
    }

    /// [`OsArenaPool::acquire`] with a capacity hint for the *cold* case:
    /// a freshly allocated arena pre-sizes to `cap` nodes (floor 64), so
    /// one-shot callers with a known workload — `generate_prelim`'s `4·l`
    /// sizing — skip the doubling ladder. Parked arenas are returned
    /// as-is (they already carry their high-water capacity), so the warm
    /// steady state is untouched.
    pub fn acquire_with_capacity(&mut self, cap: usize) -> Os {
        self.arenas.pop().unwrap_or_else(|| Os::with_capacity(cap.max(64)))
    }

    /// Returns an arena to the pool for reuse, keeping its capacity.
    pub fn release(&mut self, mut os: Os) {
        os.clear();
        self.arenas.push(os);
    }

    /// Number of arenas currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.arenas.len()
    }
}

fn dummy_tuple(i: usize) -> TupleRef {
    TupleRef::new(TableId(0), RowId(i as u32))
}

/// The paper's Figure 4 example tree (the DP walk-through; 14 nodes).
/// Node ids here are zero-based: paper node k = id k-1. Structure derived
/// from the printed DP table: 3's children are {7,8,9}, 4's are {10,11},
/// 6's is {12}, 13 hangs under 11 and 14 under 12.
pub fn figure4_tree() -> Os {
    // paper:    1   2   3   4   5   6   7   8   9  10  11  12  13  14
    // weight:  30  20  11  31  80  35  10  15   5  13  30  12  60  40
    // parent:   -   1   1   1   1   1   3   3   3   4   4   6  11  12
    Os::synthetic(
        &[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(0),
            Some(0),
            Some(2),
            Some(2),
            Some(2),
            Some(3),
            Some(3),
            Some(5),
            Some(10),
            Some(11),
        ],
        &[30.0, 20.0, 11.0, 31.0, 80.0, 35.0, 10.0, 15.0, 5.0, 13.0, 30.0, 12.0, 60.0, 40.0],
    )
}

/// The paper's Figures 5/6 example tree (the greedy walk-throughs; same 14
/// node ids but a different shape: 2's children are {7,8}, 3's is {9}, 4's
/// is {10}, 11 hangs under 5). Node 12's weight differs between the two
/// figures (55 in Figure 5, 12 in Figure 6), so it is a parameter.
pub fn figure56_tree(w12: f64) -> Os {
    // paper:    1   2   3   4   5   6   7   8   9  10  11  12   13  14
    // weight:  30  20  11  31  80  35  10  15   5  13  30  w12  60  40
    // parent:   -   1   1   1   1   1   2   2   3   4   5   6   11  12
    Os::synthetic(
        &[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(0),
            Some(0),
            Some(1),
            Some(1),
            Some(2),
            Some(3),
            Some(4),
            Some(5),
            Some(10),
            Some(11),
        ],
        &[30.0, 20.0, 11.0, 31.0, 80.0, 35.0, 10.0, 15.0, 5.0, 13.0, 30.0, w12, 60.0, 40.0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate() {
        let os = figure4_tree();
        assert_eq!(os.len(), 14);
        os.validate().unwrap();
        assert_eq!(os.node(OsNodeId(0)).depth, 0);
        assert_eq!(os.node(OsNodeId(12)).depth, 3); // paper node 13
        assert_eq!(os.max_depth(), 3);
    }

    #[test]
    fn children_are_borrowed_slices() {
        let os = figure4_tree();
        // Paper node 1's children are nodes 2..6 (ids 1..=5).
        let expect: Vec<OsNodeId> = (1u32..=5).map(OsNodeId).collect();
        assert_eq!(os.children(OsNodeId(0)), expect.as_slice());
        assert_eq!(os.child_count(OsNodeId(0)), 5);
        // Paper node 6 (id 5) has one child: node 12 (id 11).
        assert_eq!(os.children(OsNodeId(5)), &[OsNodeId(11)]);
        // Leaves have empty slices.
        assert!(os.children(OsNodeId(13)).is_empty());
    }

    #[test]
    fn incremental_and_batch_builders_agree() {
        // The same tree built by grouped add_child and by synthetic must
        // have identical CSR contents.
        let mut inc = Os::with_capacity(6);
        let r = inc.add_root(dummy_tuple(0), GdsNodeId(0), 1.0);
        let a = inc.add_child(r, dummy_tuple(1), GdsNodeId(0), 2.0);
        let b = inc.add_child(r, dummy_tuple(2), GdsNodeId(0), 3.0);
        inc.add_child(a, dummy_tuple(3), GdsNodeId(0), 4.0);
        inc.add_child(a, dummy_tuple(4), GdsNodeId(0), 5.0);
        inc.add_child(b, dummy_tuple(5), GdsNodeId(0), 6.0);
        inc.validate().unwrap();
        let batch = Os::synthetic(
            &[None, Some(0), Some(0), Some(1), Some(1), Some(2)],
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        );
        batch.validate().unwrap();
        for i in 0..inc.len() {
            let id = OsNodeId(i as u32);
            assert_eq!(inc.children(id), batch.children(id));
            assert_eq!(inc.node(id).parent, batch.node(id).parent);
            assert_eq!(inc.node(id).depth, batch.node(id).depth);
        }
    }

    #[test]
    #[should_panic(expected = "appended consecutively")]
    fn interleaved_children_are_rejected() {
        let mut os = Os::new();
        let r = os.add_root(dummy_tuple(0), GdsNodeId(0), 1.0);
        let a = os.add_child(r, dummy_tuple(1), GdsNodeId(0), 2.0);
        let _b = os.add_child(r, dummy_tuple(2), GdsNodeId(0), 3.0);
        let _ = os.add_child(a, dummy_tuple(3), GdsNodeId(0), 4.0);
        // Reopening the root's range after a's children started: invalid.
        let _ = os.add_child(r, dummy_tuple(4), GdsNodeId(0), 5.0);
    }

    #[test]
    fn pool_recycles_capacity() {
        let mut pool = OsArenaPool::new();
        let mut os = pool.acquire();
        let r = os.add_root(dummy_tuple(0), GdsNodeId(0), 1.0);
        for i in 1..100 {
            os.add_child(r, dummy_tuple(i), GdsNodeId(0), i as f64);
        }
        let cap = os.nodes.capacity();
        assert!(cap >= 100);
        pool.release(os);
        assert_eq!(pool.parked(), 1);
        let os = pool.acquire();
        assert!(os.is_empty());
        assert_eq!(os.nodes.capacity(), cap, "released capacity is reused");
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn total_weight_and_subset_weight() {
        let os = figure4_tree();
        assert!((os.total_weight() - 392.0).abs() < 1e-12);
        // Optimal size-4 set from the paper: nodes 1,4,5,6 = ids 0,3,4,5.
        let sel = [OsNodeId(0), OsNodeId(3), OsNodeId(4), OsNodeId(5)];
        assert!((os.weight_of(&sel) - 176.0).abs() < 1e-12);
    }

    #[test]
    fn selection_validity() {
        let os = figure4_tree();
        assert!(os.is_valid_selection(&[OsNodeId(0), OsNodeId(3), OsNodeId(4)]));
        // Disconnected: node 13 (paper 14) without its ancestors.
        assert!(!os.is_valid_selection(&[OsNodeId(0), OsNodeId(13)]));
        // Missing root.
        assert!(!os.is_valid_selection(&[OsNodeId(3), OsNodeId(4)]));
        // Duplicates.
        assert!(!os.is_valid_selection(&[OsNodeId(0), OsNodeId(0)]));
    }

    #[test]
    fn project_preserves_structure_and_weights() {
        let os = figure4_tree();
        let sel = [OsNodeId(0), OsNodeId(4), OsNodeId(5), OsNodeId(11)];
        let sub = os.project(&sel);
        sub.validate().unwrap();
        assert_eq!(sub.len(), 4);
        assert!((sub.total_weight() - os.weight_of(&sel)).abs() < 1e-12);
        // Node 11 (paper 12) hangs under node 5 (paper 6) in the projection.
        let n = sub
            .iter()
            .find(|(_, n)| n.tuple == os.node(OsNodeId(11)).tuple)
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(sub.node(n).depth, 2);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn project_rejects_disconnected() {
        let os = figure4_tree();
        os.project(&[OsNodeId(0), OsNodeId(13)]);
    }

    #[test]
    fn leaves_of_figure4() {
        let os = figure4_tree();
        let leaves = os.leaves();
        // Paper leaves: 2, 5, 7, 8, 9, 10, 13, 14 -> ids 1,4,6,7,8,9,12,13.
        let expect: Vec<OsNodeId> =
            [1u32, 4, 6, 7, 8, 9, 12, 13].iter().map(|&i| OsNodeId(i)).collect();
        assert_eq!(leaves, expect);
    }

    #[test]
    fn synthetic_accepts_non_grouped_parent_order() {
        // Children of node 0 are ids {1, 3} — not contiguous; the batch
        // builder must still produce a coherent CSR.
        let os = Os::synthetic(&[None, Some(0), Some(1), Some(0)], &[1.0, 2.0, 3.0, 4.0]);
        os.validate().unwrap();
        assert_eq!(os.children(OsNodeId(0)), &[OsNodeId(1), OsNodeId(3)]);
        assert_eq!(os.children(OsNodeId(1)), &[OsNodeId(2)]);
        assert!(os.children(OsNodeId(2)).is_empty());
    }
}
