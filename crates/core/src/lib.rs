//! Size-l Object Summaries — the paper's core contribution.
//!
//! An **Object Summary** (OS) is a tree of tuples rooted at the tuple
//! `t_DS` matching a keyword query, expanded over a
//! [`sizel_graph::Gds`]. A **size-l OS** is the connected subtree of `l`
//! tuples containing the root that maximizes total local importance
//! `Im(OS, t_i) = Im(t_i) · Af(t_i)` (Equations 2-3, Problem 1).
//!
//! Module map (paper algorithm → module):
//!
//! | Paper | Module |
//! |---|---|
//! | Algorithm 5 (complete OS generation) | [`osgen`] |
//! | Algorithm 4 (prelim-l OS, avoidance conditions) | [`prelim`] |
//! | Algorithm 1 (optimal DP) | [`algo::dp_naive`] (faithful) and [`algo::dp`] (knapsack-merge, same optimum in `O(n·l²)`) |
//! | Algorithm 2 (Bottom-Up Pruning) | [`algo::bottom_up`] |
//! | Algorithm 3 (Update Top-Path-l) | [`algo::top_path`] (+ the §5.2 `s(v)` optimization) |
//! | exhaustive baseline (test oracle) | [`algo::brute`] |
//! | keyword → `t_DS` lookup | [`keyword`] |
//! | Example 4/5 rendering | [`render`] |
//! | effectiveness / quality metrics, evaluator panel | [`eval`] |
//! | end-to-end engine | [`engine`] |

pub mod algo;
pub mod durability;
pub mod engine;
pub mod eval;
pub mod keyword;
pub mod os;
pub mod osgen;
pub mod prelim;
pub mod render;
pub mod test_fixtures;

pub use algo::{AlgoKind, SizeLAlgorithm, SizeLResult};
pub use durability::{DiskTierConfig, DiskTierStats, RecoveryReport};
pub use engine::{EngineConfig, QueryResult, SizeLEngine};
pub use keyword::KeywordIndex;
pub use os::{Os, OsNode, OsNodeId};
pub use osgen::{generate_os, OsContext, OsSource};
pub use prelim::generate_prelim;
