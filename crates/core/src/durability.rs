//! Write-ahead batch durability and the engine's disk tier.
//!
//! The engine's mutation surface ([`Mutation`]) gains **redo
//! durability**: every `apply`/`apply_batch` call first appends one
//! checksummed record — the encoded batch — to a [`sizel_disk::Wal`],
//! and only then settles the mutations into the database. A process
//! that dies between the append and the settlement recovers by
//! rebuilding the engine over the same base data and replaying the WAL
//! tail through the very same `apply_batch` path, which reproduces the
//! committed state byte for byte (the replay is deterministic: same
//! base, same records, same order). A torn or corrupted tail record is
//! detected by its checksum and the replay stops at the first damage —
//! exactly the prefix that was durably committed.
//!
//! The same [`DiskTier`] owns the [`PagedStore`] of posting segments:
//! [`crate::SizeLEngine::checkpoint_disk`] re-snapshots the
//! importance-sorted postings of the configured *paged* tables into a
//! fresh segment generation and evicts their RAM copies, so cold
//! tables serve TOP-`l` prefix scans from the block cache instead of
//! pinned heap memory.
//!
//! ## Record format
//!
//! A WAL record's payload (the [`Wal`] layer adds the length + CRC
//! frame) is:
//!
//! ```text
//! [epoch u64] [n_mutations u32] then per mutation:
//!   [policy u8: 0=incremental 1=exact] [op u8: 0=insert 1=update 2=delete]
//!   [table_len u16] [table utf-8]
//!   insert:        [n_values u16] [values]
//!   update: [pk i64] [n_values u16] [values]
//!   delete: [pk i64]
//! value: [tag u8: 0=null] | [1=int  i64] | [2=float f64-bits] | [3=text u32 len + utf-8]
//! ```
//!
//! All integers are little-endian. The epoch recorded is the epoch the
//! batch was applied *at* (pre-application), kept for diagnostics; the
//! replay derives its own epochs by re-applying.

use std::path::PathBuf;
use std::sync::Arc;

use sizel_disk::{DiskError, PagedStore, StoreStats, Wal};
use sizel_storage::TableId;

use crate::engine::{Mutation, MutationOp, RefreshPolicy};
use sizel_storage::Value;

/// Configuration for [`crate::SizeLEngine::attach_disk`].
#[derive(Clone, Debug)]
pub struct DiskTierConfig {
    /// Root directory: holds `wal.log` and the `segments/` store.
    pub dir: PathBuf,
    /// Block-cache capacity in 4 KiB pages.
    pub cache_pages: usize,
    /// Fsync the WAL every this many appends (minimum 1 — every
    /// append). Values above 1 trade a bounded redo window for
    /// throughput.
    pub fsync_every: usize,
    /// Tables whose sorted postings are paged to segments and evicted
    /// from RAM at each checkpoint (the residency policy: name the
    /// cold/huge tables here, keep hot ones resident).
    pub paged_tables: Vec<String>,
}

impl DiskTierConfig {
    /// A tier rooted at `dir` with defaults: 1024 cached pages, fsync
    /// on every append, nothing paged (WAL-only durability).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskTierConfig {
            dir: dir.into(),
            cache_pages: 1024,
            fsync_every: 1,
            paged_tables: Vec::new(),
        }
    }
}

/// What [`crate::SizeLEngine::attach_disk`] found and replayed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records decoded and re-applied.
    pub batches_replayed: usize,
    /// Mutations inside those records.
    pub mutations_replayed: usize,
    /// Records whose re-application was rejected by validation (the
    /// original run rejected the same suffix — deterministic).
    pub batches_rejected: usize,
    /// Bytes of torn/corrupt tail discarded by the WAL open.
    pub wal_truncated_bytes: u64,
    /// Whether the WAL tail was damaged (torn final record or checksum
    /// failure) — the replay stopped at the last intact record.
    pub wal_tail_damaged: bool,
    /// The segment generation installed by the attach-time checkpoint
    /// (0 if no tables are paged).
    pub generation: u64,
}

/// Point-in-time disk-tier statistics for the serving layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskTierStats {
    /// Paged-store + block-cache counters.
    pub store: StoreStats,
    /// Bytes currently in the WAL (since the last truncation).
    pub wal_bytes: u64,
    /// Batches appended to the WAL over the tier's lifetime.
    pub wal_appends: u64,
    /// How many of those appends fsynced (`fsync_every` batching).
    pub wal_syncs: u64,
}

/// The engine's attached disk tier: segment store + write-ahead log.
#[derive(Debug)]
pub struct DiskTier {
    pub(crate) store: Arc<PagedStore>,
    pub(crate) wal: Wal,
    pub(crate) paged: Vec<TableId>,
    pub(crate) wal_appends: u64,
    pub(crate) wal_syncs: u64,
}

impl DiskTier {
    /// Appends one encoded batch, tracking fsync batching.
    pub(crate) fn log_batch(&mut self, record: &[u8]) -> Result<(), DiskError> {
        let synced = self.wal.append(record)?;
        self.wal_appends += 1;
        if synced {
            self.wal_syncs += 1;
        }
        Ok(())
    }

    pub(crate) fn stats(&self) -> DiskTierStats {
        DiskTierStats {
            store: self.store.stats(),
            wal_bytes: self.wal.len_bytes(),
            wal_appends: self.wal_appends,
            wal_syncs: self.wal_syncs,
        }
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn put_values(out: &mut Vec<u8>, vs: &[Value]) {
    out.extend_from_slice(&(vs.len() as u16).to_le_bytes());
    for v in vs {
        put_value(out, v);
    }
}

/// Encodes a batch of mutations as one WAL record payload.
pub fn encode_batch(epoch: u64, ms: &[Mutation]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + ms.len() * 32);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(ms.len() as u32).to_le_bytes());
    for m in ms {
        out.push(match m.policy {
            RefreshPolicy::Incremental => 0,
            RefreshPolicy::Exact => 1,
        });
        let (op, pk, values) = match &m.op {
            MutationOp::Insert { values } => (0u8, None, Some(values)),
            MutationOp::Update { pk, values } => (1, Some(*pk), Some(values)),
            MutationOp::Delete { pk } => (2, Some(*pk), None),
        };
        out.push(op);
        out.extend_from_slice(&(m.table.len() as u16).to_le_bytes());
        out.extend_from_slice(m.table.as_bytes());
        if let Some(pk) = pk {
            out.extend_from_slice(&pk.to_le_bytes());
        }
        if let Some(values) = values {
            put_values(&mut out, values);
        }
    }
    out
}

/// A little cursor over a record payload; every read is bounds-checked
/// so a valid-CRC-but-wrong-format record decodes to a typed error, not
/// a panic.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

const BAD: DiskError = DiskError::Corrupt("malformed wal batch record");

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DiskError> {
        let end = self.at.checked_add(n).ok_or(BAD)?;
        let s = self.bytes.get(self.at..end).ok_or(BAD)?;
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DiskError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DiskError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DiskError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DiskError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DiskError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn text(&mut self, len: usize) -> Result<String, DiskError> {
        std::str::from_utf8(self.take(len)?).map(str::to_owned).map_err(|_| BAD)
    }

    fn value(&mut self) -> Result<Value, DiskError> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => {
                let len = self.u32()? as usize;
                Value::Text(self.text(len)?)
            }
            _ => return Err(BAD),
        })
    }

    fn values(&mut self) -> Result<Vec<Value>, DiskError> {
        let n = self.u16()? as usize;
        (0..n).map(|_| self.value()).collect()
    }
}

/// Decodes one WAL record payload back into `(epoch, mutations)`.
pub fn decode_batch(bytes: &[u8]) -> Result<(u64, Vec<Mutation>), DiskError> {
    let mut r = Reader { bytes, at: 0 };
    let epoch = r.u64()?;
    let n = r.u32()? as usize;
    let mut ms = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let policy = match r.u8()? {
            0 => RefreshPolicy::Incremental,
            1 => RefreshPolicy::Exact,
            _ => return Err(BAD),
        };
        let op = r.u8()?;
        let tlen = r.u16()? as usize;
        let table = r.text(tlen)?;
        let op = match op {
            0 => MutationOp::Insert { values: r.values()? },
            1 => {
                let pk = r.i64()?;
                MutationOp::Update { pk, values: r.values()? }
            }
            2 => MutationOp::Delete { pk: r.i64()? },
            _ => return Err(BAD),
        };
        ms.push(Mutation { table, op, policy });
    }
    if r.at != bytes.len() {
        return Err(BAD);
    }
    Ok((epoch, ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_mixed_batch_round_trips() {
        let ms = vec![
            Mutation::insert(
                "Product",
                vec![
                    Value::Int(7),
                    Value::Null,
                    Value::Float(1.25),
                    Value::Text("Chai Tea".into()),
                ],
            ),
            Mutation::update("Product", 7, vec![Value::Int(7), Value::Text("Chai".into())]).exact(),
            Mutation::delete("Order Details", -3),
        ];
        let rec = encode_batch(41, &ms);
        let (epoch, back) = decode_batch(&rec).unwrap();
        assert_eq!(epoch, 41);
        assert_eq!(back.len(), 3);
        for (a, b) in ms.iter().zip(&back) {
            assert_eq!(a.table, b.table);
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.op, b.op);
        }
    }

    #[test]
    fn empty_batches_and_nan_floats_survive() {
        let rec = encode_batch(0, &[]);
        assert_eq!(decode_batch(&rec).unwrap(), (0, vec![]));
        let ms = vec![Mutation::insert("T", vec![Value::Float(f64::NAN)])];
        let (_, back) = decode_batch(&encode_batch(1, &ms)).unwrap();
        let MutationOp::Insert { values } = &back[0].op else { panic!("insert") };
        let Value::Float(f) = values[0] else { panic!("float") };
        assert!(f.is_nan(), "NaN travels through to_bits verbatim");
    }

    #[test]
    fn malformed_payloads_decode_to_typed_errors_not_panics() {
        let good = encode_batch(9, &[Mutation::delete("T", 1)]);
        // Truncations at every prefix length fail cleanly.
        for cut in 0..good.len() {
            assert!(
                matches!(decode_batch(&good[..cut]), Err(DiskError::Corrupt(_))),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Trailing garbage is rejected, not silently ignored.
        let mut padded = good.clone();
        padded.push(0);
        assert!(matches!(decode_batch(&padded), Err(DiskError::Corrupt(_))));
        // A bad op tag is rejected.
        let mut bad = good;
        bad[13] = 9; // op byte of the first mutation
        assert!(matches!(decode_batch(&bad), Err(DiskError::Corrupt(_))));
    }
}
