//! Keyword → `t_DS` lookup.
//!
//! The OS paradigm's queries are keyword sets naming a Data Subject; the
//! result roots are the tuples of DS relations whose searchable attributes
//! contain *all* keywords (Example 3: Q1 "Faloutsos" returns the three
//! Author tuples). An inverted index over the searchable columns of the DS
//! relations serves the lookup.

use std::collections::HashMap;

use sizel_storage::{text, Database, TableId, TupleRef};

/// Inverted index: token → postings (sorted, deduplicated).
#[derive(Debug, Default)]
pub struct KeywordIndex {
    postings: HashMap<String, Vec<TupleRef>>,
    indexed_tables: Vec<TableId>,
}

impl KeywordIndex {
    /// Builds the index over the searchable columns of `ds_tables`.
    pub fn build(db: &Database, ds_tables: &[TableId]) -> Self {
        let mut postings: HashMap<String, Vec<TupleRef>> = HashMap::new();
        for &tid in ds_tables {
            let table = db.table(tid);
            let cols: Vec<usize> = table.schema.searchable_columns().collect();
            for (rid, row) in table.iter() {
                let tref = TupleRef::new(tid, rid);
                for &c in &cols {
                    if let Some(s) = row[c].as_str() {
                        for tok in text::tokenize(s) {
                            let list = postings.entry(tok).or_default();
                            if list.last() != Some(&tref) {
                                list.push(tref);
                            }
                        }
                    }
                }
            }
        }
        for list in postings.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        KeywordIndex { postings, indexed_tables: ds_tables.to_vec() }
    }

    /// Indexes one freshly inserted row of a covered table (a no-op for
    /// uncovered tables): tokens of its searchable columns are merged into
    /// the postings with sorted-insert, preserving the build-time
    /// invariant (sorted, deduplicated) that [`KeywordIndex::search`]'s
    /// binary-search intersection relies on. The engine's incremental
    /// apply path calls this so new DS tuples become queryable without a
    /// full index rebuild.
    pub fn add_row(&mut self, db: &Database, table: TableId, row: sizel_storage::RowId) {
        if !self.indexed_tables.contains(&table) {
            return;
        }
        let t = db.table(table);
        let tref = TupleRef::new(table, row);
        for c in t.schema.searchable_columns() {
            if let Some(s) = t.value(row, c).as_str() {
                for tok in text::tokenize(s) {
                    let list = self.postings.entry(tok).or_default();
                    if let Err(pos) = list.binary_search(&tref) {
                        list.insert(pos, tref);
                    }
                }
            }
        }
    }

    /// Un-indexes one row of a covered table given the values it held (a
    /// no-op for uncovered tables). Callers pass the values explicitly
    /// because an update replaces the slot before the settlement point
    /// where the index catches up — the engine captures them first. Tokens
    /// whose posting was never added (e.g. a row inserted and updated
    /// within one batch, whose intermediate values never reached the
    /// index) are skipped harmlessly, which is exactly what makes the
    /// batched remove/add schedule land on the same final postings as the
    /// per-mutation fold. Emptied postings are dropped so vocabulary size
    /// tracks live tokens.
    pub fn remove_row(
        &mut self,
        table: TableId,
        row: sizel_storage::RowId,
        schema: &sizel_storage::TableSchema,
        values: &[sizel_storage::Value],
    ) {
        if !self.indexed_tables.contains(&table) {
            return;
        }
        let tref = TupleRef::new(table, row);
        for c in schema.searchable_columns() {
            if let Some(s) = values[c].as_str() {
                for tok in text::tokenize(s) {
                    if let Some(list) = self.postings.get_mut(&tok) {
                        if let Ok(pos) = list.binary_search(&tref) {
                            list.remove(pos);
                        }
                        if list.is_empty() {
                            self.postings.remove(&tok);
                        }
                    }
                }
            }
        }
    }

    /// Tables covered by this index.
    pub fn indexed_tables(&self) -> &[TableId] {
        &self.indexed_tables
    }

    /// Number of distinct tokens.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Finds all tuples containing *all* keywords of `query` (conjunctive,
    /// case-insensitive, token-level). Result is sorted by `TupleRef`.
    pub fn search(&self, query: &str) -> Vec<TupleRef> {
        let keywords = text::tokenize(query);
        if keywords.is_empty() {
            return Vec::new();
        }
        // Intersect postings, smallest list first.
        let mut lists: Vec<&Vec<TupleRef>> = Vec::with_capacity(keywords.len());
        for k in &keywords {
            match self.postings.get(k) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<TupleRef> = lists[0].clone();
        for list in &lists[1..] {
            result.retain(|t| list.binary_search(t).is_ok());
            if result.is_empty() {
                break;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizel_datagen::dblp::{generate, DblpConfig};

    fn index() -> (sizel_datagen::dblp::Dblp, KeywordIndex) {
        let d = generate(&DblpConfig::small());
        let idx = KeywordIndex::build(&d.db, &[d.author]);
        (d, idx)
    }

    #[test]
    fn single_keyword_finds_all_faloutsos_brothers() {
        let (d, idx) = index();
        let hits = idx.search("Faloutsos");
        assert_eq!(hits.len(), 3, "Q1 returns the three Author tuples (Example 3)");
        for t in &hits {
            assert_eq!(t.table, d.author);
            let name = d.db.table(d.author).value(t.row, 1).as_str().unwrap();
            assert!(name.contains("Faloutsos"));
        }
    }

    #[test]
    fn conjunctive_keywords_narrow_to_one() {
        let (d, idx) = index();
        let hits = idx.search("Christos Faloutsos");
        assert_eq!(hits.len(), 1);
        let name = d.db.table(d.author).value(hits[0].row, 1).as_str().unwrap();
        assert_eq!(name, "Christos Faloutsos");
    }

    #[test]
    fn case_insensitive_and_order_insensitive() {
        let (_, idx) = index();
        assert_eq!(idx.search("faloutsos CHRISTOS"), idx.search("Christos Faloutsos"));
    }

    #[test]
    fn missing_keyword_and_empty_query() {
        let (_, idx) = index();
        assert!(idx.search("zzzzunknown").is_empty());
        assert!(idx.search("").is_empty());
        assert!(idx.search("!!!").is_empty());
    }

    #[test]
    fn index_covers_only_ds_tables() {
        let (d, idx) = index();
        // Paper titles are searchable in the schema but Paper is not a DS
        // table in this index: a title-only word must not hit.
        assert_eq!(idx.indexed_tables(), &[d.author]);
        let hits = idx.search("declustering");
        assert!(hits.iter().all(|t| t.table == d.author));
    }

    #[test]
    fn remove_row_retokenizes_and_tolerates_absent_tokens() {
        let (d, mut idx) = index();
        let hit = idx.search("Christos Faloutsos")[0];
        let schema = &d.db.table(d.author).schema;
        let values: Vec<sizel_storage::Value> =
            (0..schema.arity()).map(|c| d.db.table(d.author).value(hit.row, c).clone()).collect();
        idx.remove_row(d.author, hit.row, schema, &values);
        assert!(idx.search("Christos Faloutsos").is_empty(), "removed row no longer hits");
        assert_eq!(idx.search("Faloutsos").len(), 2, "the brothers keep their postings");
        // Removing values that were never indexed is a harmless no-op,
        // and emptied postings drop out of the vocabulary.
        let vocab = idx.vocabulary_size();
        idx.remove_row(d.author, hit.row, schema, &values);
        assert_eq!(idx.vocabulary_size(), vocab);
        assert!(idx.search("Christos").is_empty(), "token with no remaining rows is gone");
    }

    #[test]
    fn multi_table_index() {
        let d = generate(&DblpConfig::small());
        let idx = KeywordIndex::build(&d.db, &[d.author, d.paper]);
        assert!(idx.vocabulary_size() > 0);
        // "Faloutsos" still finds the three authors only (titles are
        // synthetic words).
        let hits = idx.search("Faloutsos");
        assert_eq!(hits.len(), 3);
    }
}
