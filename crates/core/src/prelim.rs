//! Prelim-l OS generation (Algorithm 4, Section 5.3).
//!
//! Instead of materializing the complete OS, generate a *preliminary*
//! partial OS guaranteed to contain the `l` tuples with the largest local
//! importance (the **top-l set**, Definition 2), by pruning with two
//! avoidance conditions over the GDS `max(Ri)` / `mmax(Ri)` annotations:
//!
//! * **Avoidance Condition 1** (fruitless subtrees): once the top-l PQ is
//!   full, a GDS subtree whose `max(Ri)` *and* `mmax(Ri)` are both at most
//!   `largest-l` cannot contribute, and is skipped without any access.
//! * **Avoidance Condition 2** (fruitful-l relations): when only the
//!   relation itself can still contribute (`largest-l ≥ mmax(Ri)`), at most
//!   `l` tuples above `largest-l` are extracted
//!   (`SELECT * TOP l ... AND Ri.li > largest-l`). The probe is issued — and
//!   counted — even when it returns nothing, matching the paper's cost
//!   accounting.
//!
//! Any size-l algorithm can then run on the prelim-l OS; Lemma 3 (tested):
//! under depth-monotone local importance the prelim-l OS contains the
//! optimal size-l OS.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sizel_storage::TupleRef;
use sizel_util::F64Ord;

use crate::os::{Os, OsArenaPool};
use crate::osgen::{OsContext, OsSource};

/// Statistics of one prelim-l generation.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrelimStats {
    /// GDS child expansions skipped by Avoidance Condition 1.
    pub cond1_skips: u64,
    /// Expansions served as TOP-l probes by Avoidance Condition 2.
    pub cond2_probes: u64,
    /// Full (unrestricted) join expansions.
    pub full_joins: u64,
}

/// Generates the prelim-l OS for `t_DS` (Algorithm 4).
///
/// One-shot convenience over [`generate_prelim_pooled`]; loops should hold
/// an [`OsArenaPool`] and call the pooled variant.
pub fn generate_prelim(
    ctx: &OsContext<'_>,
    tds: TupleRef,
    l: usize,
    source: OsSource,
) -> (Os, PrelimStats) {
    let mut pool = OsArenaPool::new();
    generate_prelim_pooled(ctx, tds, l, source, &mut pool)
}

/// [`generate_prelim`] drawing the arena and the BFS scratch from `pool`.
/// Release the returned OS back to the same pool when done with it.
pub fn generate_prelim_pooled(
    ctx: &OsContext<'_>,
    tds: TupleRef,
    l: usize,
    source: OsSource,
    pool: &mut OsArenaPool,
) -> (Os, PrelimStats) {
    assert!(l > 0, "prelim-l needs l >= 1");
    assert_eq!(tds.table, ctx.gds.root_relation(), "t_DS must belong to the GDS root relation");
    let mut stats = PrelimStats::default();

    // The paper's sizing heuristic: a prelim-l OS holds the top-l set plus
    // the partial expansions around it — `4·l` nodes covers the fixtures'
    // high-water mark, so a cold one-shot arena skips the doubling ladder
    // (warm pooled arenas keep their own capacity; ROADMAP nit from PR 3).
    let mut os = pool.acquire_with_capacity(4 * l);
    let OsArenaPool { queue, buf, fetch, .. } = pool;
    queue.clear();
    buf.clear();
    let root_w = ctx.local_importance(ctx.gds.root(), tds);
    let root = os.add_root(tds, ctx.gds.root(), root_w);

    // top-l PQ: a min-heap of the l largest local importances seen so far.
    let mut top_l: BinaryHeap<Reverse<F64Ord>> = BinaryHeap::with_capacity(l + 1);
    top_l.push(Reverse(F64Ord(root_w)));
    // largest-l: the l-th largest local importance so far, or 0 while
    // fewer than l tuples were extracted (Algorithm 4 lines 20-23).
    let mut largest_l = if l == 1 { root_w } else { 0.0 };

    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let (u_tuple, u_gds, u_depth, u_parent) = {
            let n = os.node(u);
            (n.tuple, n.gds_node, n.depth, n.parent)
        };
        // The §3.3 footnote applies to prelim generation too: tuples at
        // distance >= l cannot join a connected size-l OS.
        if u_depth + 1 >= l as u32 {
            continue;
        }
        let grandparent = u_parent.map(|p| os.node(p).tuple);
        for &g_child in &ctx.gds.node(u_gds).children {
            let child = ctx.gds.node(g_child);
            let full = top_l.len() >= l;
            // Avoidance Condition 1: fruitless GDS subtree.
            if full && largest_l >= child.max_ri && largest_l >= child.mmax_ri {
                stats.cond1_skips += 1;
                continue;
            }
            buf.clear();
            if largest_l >= child.mmax_ri {
                // Avoidance Condition 2: fruitful-l relation — extract at
                // most l tuples with li > largest-l.
                stats.cond2_probes += 1;
                fetch_top_l(ctx, g_child, u_tuple, grandparent, l, largest_l, source, fetch, buf);
            } else {
                stats.full_joins += 1;
                ctx.children_of(g_child, u_tuple, grandparent, source, buf);
            }
            for &t in buf.iter() {
                let w = ctx.local_importance(g_child, t);
                let id = os.add_child(u, t, g_child, w);
                queue.push_back(id);
                if w > largest_l {
                    top_l.push(Reverse(F64Ord(w)));
                    if top_l.len() > l {
                        top_l.pop();
                    }
                }
                largest_l =
                    if top_l.len() < l { 0.0 } else { top_l.peek().expect("non-empty").0.get() };
            }
        }
    }
    (os, stats)
}

/// The Avoidance-Condition-2 fetch: `SELECT * TOP l FROM Ri WHERE
/// tj.ID = Ri.ID AND Ri.li > largest-l` (Algorithm 4 line 10); see
/// [`OsContext::children_of_top_l`] for the per-source behaviour.
#[allow(clippy::too_many_arguments)]
fn fetch_top_l(
    ctx: &OsContext<'_>,
    g_child: sizel_graph::GdsNodeId,
    parent: TupleRef,
    grandparent: Option<TupleRef>,
    l: usize,
    largest_l: f64,
    source: OsSource,
    scratch: &mut crate::os::FetchScratch,
    out: &mut Vec<TupleRef>,
) {
    ctx.children_of_top_l(g_child, parent, grandparent, source, l, largest_l, scratch, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{BottomUp, DpKnapsack, SizeLAlgorithm};
    use crate::osgen::generate_os;
    use crate::test_fixtures::{dblp_fixture, tpch_fixture};
    use std::collections::HashSet;

    #[test]
    fn prelim_is_a_valid_tree_and_smaller_than_complete() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let tds = f.author_tds(0);
        let l = 10;
        let complete = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
        let (prelim, stats) = generate_prelim(&ctx, tds, l, OsSource::DataGraph);
        prelim.validate().unwrap();
        assert!(prelim.len() <= complete.len());
        assert!(prelim.len() >= l.min(complete.len()), "prelim must hold at least l tuples");
        assert!(stats.cond1_skips + stats.cond2_probes + stats.full_joins > 0);
    }

    #[test]
    fn prelim_contains_the_top_l_set() {
        // Definition 2: the prelim-l OS includes the l tuples of the OS
        // with the largest local importance.
        let f = dblp_fixture();
        let ctx = f.ctx();
        for i in [0, 1, 2] {
            let tds = f.author_tds(i);
            for l in [1, 5, 10, 20] {
                let complete = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
                let (prelim, _) = generate_prelim(&ctx, tds, l, OsSource::DataGraph);
                let mut weights: Vec<(f64, TupleRef, u32)> =
                    complete.iter().map(|(_, n)| (n.weight, n.tuple, n.gds_node.0)).collect();
                weights.sort_by(|a, b| b.0.total_cmp(&a.0));
                let top: Vec<&(f64, TupleRef, u32)> = weights.iter().take(l).collect();
                let prelim_keys: HashSet<(TupleRef, u32)> =
                    prelim.iter().map(|(_, n)| (n.tuple, n.gds_node.0)).collect();
                // The l-th value can tie with excluded tuples; require only
                // strictly-above-threshold members (ties are
                // interchangeable for Im(S)).
                let threshold = top.last().expect("l >= 1").0;
                for &&(w, t, g) in &top {
                    if w > threshold {
                        assert!(
                            prelim_keys.contains(&(t, g)),
                            "author {i} l={l}: top tuple (w={w}) missing from prelim"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn greedy_on_prelim_matches_greedy_on_complete_quality() {
        // §6.2: "top-l prelim-l OSs ... have no impact on the Bottom-Up
        // algorithm" — on this small fixture we verify quality parity.
        let f = dblp_fixture();
        let ctx = f.ctx();
        let tds = f.author_tds(0);
        for l in [5, 10, 15] {
            let complete = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::DataGraph);
            let (prelim, _) = generate_prelim(&ctx, tds, l, OsSource::DataGraph);
            let on_complete = BottomUp.compute(&complete, l);
            let on_prelim = BottomUp.compute(&prelim, l);
            assert!(
                on_prelim.importance <= on_complete.importance + 1e-9,
                "prelim cannot beat complete for the same algorithm"
            );
            let ratio = on_prelim.importance / on_complete.importance.max(1e-12);
            assert!(ratio > 0.9, "l={l}: prelim quality ratio {ratio}");
        }
    }

    #[test]
    fn lemma3_monotone_scores_make_prelim_contain_the_optimum() {
        // Force exact depth-monotonicity by using uniform global scores:
        // local importance then equals the GDS affinity, which Equation 1
        // makes non-increasing along every path. Lemma 3 must then hold:
        // the prelim-l OS contains an optimal size-l OS.
        let f = dblp_fixture();
        let uniform = sizel_rank::RankScores {
            scores: vec![1.0; f.dg.n_nodes()],
            iterations: 0,
            converged: true,
            per_table_max: vec![1.0; f.dblp.db.table_count()],
            fk_order: None,
        };
        let ctx = {
            let mut gds = f.gds.clone();
            gds.set_stats(&uniform.per_table_max);
            // Rebuild a context over the uniform scores.
            (gds, uniform)
        };
        let (gds, scores) = &ctx;
        let octx = OsContext::new(&f.dblp.db, &f.sg, &f.dg, gds, scores);
        let mut checked = 0;
        for i in 0..5 {
            let tds = f.author_tds(i);
            for l in [4, 8, 12] {
                let complete = generate_os(&octx, tds, Some(l as u32 - 1), OsSource::DataGraph);
                if complete.len() < l {
                    continue;
                }
                // Confirm the monotonicity premise.
                for (_, n) in complete.iter() {
                    if let Some(p) = n.parent {
                        assert!(complete.node(p).weight >= n.weight - 1e-12);
                    }
                }
                checked += 1;
                let (prelim, _) = generate_prelim(&octx, tds, l, OsSource::DataGraph);
                let opt_complete = DpKnapsack.compute(&complete, l);
                let opt_prelim = DpKnapsack.compute(&prelim, l);
                assert!(
                    (opt_complete.importance - opt_prelim.importance).abs() < 1e-9,
                    "Lemma 3 violated: author {i} l={l}: {} vs {}",
                    opt_complete.importance,
                    opt_prelim.importance
                );
            }
        }
        assert!(checked >= 5, "fixture produced only {checked} monotone cases");
    }

    #[test]
    fn avoidance_conditions_save_accesses_in_database_mode() {
        let f = tpch_fixture();
        let ctx = f.supplier_ctx();
        let suppliers = f.tpch.db.table(f.tpch.supplier);
        let tds = TupleRef::new(f.tpch.supplier, suppliers.iter().next().expect("rows").0);
        let l = 10;
        f.tpch.db.access().reset();
        let complete = generate_os(&ctx, tds, Some(l as u32 - 1), OsSource::Database);
        let complete_cost = f.tpch.db.access().snapshot();
        f.tpch.db.access().reset();
        let (prelim, stats) = generate_prelim(&ctx, tds, l, OsSource::Database);
        let prelim_cost = f.tpch.db.access().snapshot();
        assert!(prelim.len() <= complete.len());
        assert!(
            prelim_cost.tuples <= complete_cost.tuples,
            "prelim reads no more tuples than the complete OS"
        );
        assert!(stats.cond1_skips > 0 || stats.cond2_probes > 0, "conditions should fire");
    }

    #[test]
    fn sorted_link_fast_path_is_byte_identical_with_identical_accounting() {
        // Database-source prelim generation over the Author GDS drives
        // junction TOP-l probes (Paper, CoAuthor, citations). With the
        // installed order attested, they run as sorted-link prefix scans;
        // with it withheld, as heap passes. Both the generated OS and the
        // paper-cost accounting must be byte-identical, and the fast run
        // must actually prefix-scan (probe mix).
        let f = dblp_fixture();
        let fast_ctx = f.ctx();
        let mut blind = f.scores.clone();
        blind.fk_order = None;
        let heap_ctx = OsContext::new(&f.dblp.db, &f.sg, &f.dg, &f.gds, &blind);
        for i in 0..4 {
            let tds = f.author_tds(i);
            for l in [1usize, 5, 12] {
                let s0 = f.dblp.db.access().snapshot();
                let p0 = f.dblp.db.access().probes();
                let (fast, _) = generate_prelim(&fast_ctx, tds, l, OsSource::Database);
                let s1 = f.dblp.db.access().snapshot();
                let p1 = f.dblp.db.access().probes();
                let (heap, _) = generate_prelim(&heap_ctx, tds, l, OsSource::Database);
                let s2 = f.dblp.db.access().snapshot();
                assert_eq!(fast.len(), heap.len(), "author {i} l={l}");
                for ((ia, na), (ib, nb)) in fast.iter().zip(heap.iter()) {
                    assert_eq!(na.tuple, nb.tuple);
                    assert_eq!(na.parent, nb.parent);
                    assert_eq!(na.weight.to_bits(), nb.weight.to_bits());
                    assert_eq!(fast.children(ia), heap.children(ib));
                }
                assert_eq!(
                    s1.since(s0),
                    s2.since(s1),
                    "author {i} l={l}: access accounting diverges between link scan and heap"
                );
                assert_eq!(p1.heap, p0.heap, "attested context must never heap-fall-back");
                if l > 1 {
                    assert!(p1.fast > p0.fast, "author {i} l={l}: no prefix scan fired");
                }
            }
        }
    }

    #[test]
    fn dangling_junction_heal_restores_the_fast_path_ratio() {
        // ISSUE 5 satellite: a scored junction insert referencing a
        // not-yet-existing endpoint drops the sorted link postings (heap
        // fallback); when the endpoint later arrives through a scored
        // insert, the storage layer *heals* the postings and re-stamps the
        // token — so Database-source prelim probes go back to a fast-path
        // ratio of 1.0 without any reinstall, byte-identical to a
        // token-less heap run. (Before the heal existed, the drop was
        // permanent until the next full install.)
        use sizel_datagen::dblp::{generate, DblpConfig};
        use sizel_graph::{presets, DataGraph, Gds, SchemaGraph};
        use sizel_rank::RankScores;
        use sizel_storage::{Database, RowId, TableId, Value};

        let mut d = generate(&DblpConfig::tiny());
        let sg = SchemaGraph::from_database(&d.db);
        // Synthetic deterministic importance, installed directly: the
        // maintained snapshot then *is* the global score, which keeps the
        // prefix-scan precondition (li monotone in the installed score)
        // true by construction after the mutations below.
        let score_of = |t: TableId, r: RowId| 1.0 + ((t.index() * 31 + r.index() * 7) % 13) as f64;
        d.db.install_importance_order(&score_of);

        let max_pk = |db: &Database, t: &str| {
            let tid = db.table_id(t).unwrap();
            let tb = db.table(tid);
            tb.iter().map(|(r, _)| tb.pk_of(r)).max().unwrap()
        };
        let missing_paper = max_pk(&d.db, "Paper") + 1;
        let jpk = max_pk(&d.db, "AuthorPaper") + 1;
        let author_pk = d.db.table(d.author).pk_of(RowId(0));
        let ap = d.db.table_id("AuthorPaper").unwrap();
        let ap_author_col = d.db.table(ap).schema.column_index("author_id").unwrap();

        // The dangling insert drops the link postings: heap fallback.
        d.db.insert_scored(
            "AuthorPaper",
            vec![Value::Int(jpk), Value::Int(author_pk), Value::Int(missing_paper)],
            0.1,
        )
        .unwrap();
        assert!(
            d.db.table(ap).sorted_link_index(ap_author_col).is_none(),
            "dangling endpoint drops the junction's link postings"
        );

        // The endpoint arrives: the postings heal on the spot.
        let year_pk = {
            let year = d.db.table_id("Year").unwrap();
            d.db.table(year).pk_of(RowId(0))
        };
        d.db.insert_scored(
            "Paper",
            vec![Value::Int(missing_paper), "healed endpoint".into(), Value::Int(year_pk)],
            4.5,
        )
        .unwrap();
        assert!(
            d.db.table(ap).sorted_link_index(ap_author_col).is_some(),
            "the arriving endpoint heals the postings without a reinstall"
        );

        // Rebuild the read stack over the healed database (FK-consistent
        // again) with the *maintained* scores as the global importance.
        let dg = DataGraph::build(&d.db, &sg);
        let mut per_table_max = vec![0.0f64; d.db.table_count()];
        let mut dense = Vec::with_capacity(d.db.total_tuples());
        for (tid, t) in d.db.tables() {
            for (r, _) in t.iter() {
                let s = t.installed_score(r);
                dense.push(s);
                per_table_max[tid.index()] = per_table_max[tid.index()].max(s);
            }
        }
        let scores = RankScores {
            scores: dense,
            iterations: 0,
            converged: true,
            per_table_max,
            fk_order: d.db.fk_order(),
        };
        let mut gds =
            Gds::build(&d.db, &sg, &presets::dblp_author_gds_config(), d.author).restrict(0.7);
        gds.set_stats(&scores.per_table_max);
        let ctx = OsContext::new(&d.db, &sg, &dg, &gds, &scores);
        let mut blind = scores.clone();
        blind.fk_order = None;
        let heap_ctx = OsContext::new(&d.db, &sg, &dg, &gds, &blind);

        let tds = TupleRef::new(d.author, RowId(0));
        d.db.access().reset();
        let (fast, _) = generate_prelim(&ctx, tds, 8, OsSource::Database);
        let probes = d.db.access().probes();
        assert!(probes.fast > 0, "healed postings must serve prefix scans again: {probes:?}");
        assert_eq!(probes.heap, 0, "fast-path ratio recovers to 1.0: {probes:?}");
        let (heap, _) = generate_prelim(&heap_ctx, tds, 8, OsSource::Database);
        assert_eq!(fast.len(), heap.len());
        for ((ia, na), (ib, nb)) in fast.iter().zip(heap.iter()) {
            assert_eq!(na.tuple, nb.tuple);
            assert_eq!(na.weight.to_bits(), nb.weight.to_bits());
            assert_eq!(fast.children(ia), heap.children(ib));
        }
        // The healed summary really sees the new endpoint.
        assert!(
            fast.iter().any(|(_, n)| n.tuple.table == d.paper
                && d.db.table(d.paper).pk_of(n.tuple.row) == missing_paper),
            "the healed pair surfaces in the generated OS"
        );
    }

    #[test]
    #[should_panic(expected = "l >= 1")]
    fn l_zero_is_rejected() {
        let f = dblp_fixture();
        let ctx = f.ctx();
        let _ = generate_prelim(&ctx, f.author_tds(0), 0, OsSource::DataGraph);
    }
}
