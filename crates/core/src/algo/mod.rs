//! Size-l OS computation algorithms (Sections 4 and 5).

pub mod bottom_up;
pub mod brute;
pub mod dp;
pub mod dp_naive;
pub mod top_path;
pub mod word_budget;

pub use bottom_up::BottomUp;
pub use brute::BruteForce;
pub use dp::DpKnapsack;
pub use dp_naive::{DpNaive, NaiveOutcome};
pub use top_path::{TopPath, TopPathOpt};
pub use word_budget::WordBudgetDp;

use crate::os::{Os, OsNodeId};
use sizel_util::F64Ord;

/// Reusable scratch for the size-l algorithms — the computation-side
/// analogue of [`crate::os::OsArenaPool`] (ROADMAP scratch-reuse item):
/// the DP/greedy working sets (alive flags, forest roots, DFS stacks,
/// path buffers, per-node tables, the DP arena) are drawn from here
/// instead of being allocated per `compute` call, so a warm serving
/// thread's size-l computation only allocates what it returns (the
/// selection vector inside [`SizeLResult`]). Buffers grow to the
/// workload's high-water mark and stay; the counting-allocator guard
/// (`crates/core/tests/alloc_guard.rs`) pins the resulting per-call
/// budget on the serving path.
#[derive(Debug, Default)]
pub struct AlgoScratch {
    /// Per-node liveness (Top-Path forests, Bottom-Up pruning).
    alive: Vec<bool>,
    /// Current forest roots (Top-Path).
    roots: Vec<OsNodeId>,
    /// Iterative-DFS stack carrying `(node, path sum, path len)`.
    stack: Vec<(OsNodeId, f64, u32)>,
    /// Root-to-target path buffer.
    path: Vec<OsNodeId>,
    /// `(candidate AI, candidate node, forest root)` entries (Top-Path
    /// `s(v)` variant).
    entries: Vec<(f64, OsNodeId, OsNodeId)>,
    /// Subtree sizes / remaining-children counters.
    counts: Vec<usize>,
    /// Per-node DP capacity bounds.
    caps: Vec<usize>,
    /// Ping-pong DP row buffers.
    f64a: Vec<f64>,
    f64b: Vec<f64>,
    /// Per-node subtree-argmax ids (Top-Path `s(v)`).
    ids: Vec<u32>,
    /// The Bottom-Up leaf priority queue's backing storage.
    heap: Vec<std::cmp::Reverse<(F64Ord, OsNodeId)>>,
    /// Flat DP-table arena: node `i`'s table occupies
    /// `dp_flat[dp_off[i] .. dp_off[i + 1]]`.
    dp_flat: Vec<f64>,
    dp_off: Vec<usize>,
}

impl AlgoScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        AlgoScratch::default()
    }
}

/// The result of a size-l computation: a connected node set containing the
/// root (Definition 1) and its total importance (Equation 2).
#[derive(Clone, Debug, PartialEq)]
pub struct SizeLResult {
    /// Selected nodes, sorted by id.
    pub selected: Vec<OsNodeId>,
    /// `Im(S)`: sum of local importances of the selection.
    pub importance: f64,
}

impl SizeLResult {
    /// Builds a result from a selection, computing its importance.
    pub fn from_selection(os: &Os, mut selected: Vec<OsNodeId>) -> Self {
        selected.sort_unstable();
        selected.dedup();
        let importance = os.weight_of(&selected);
        SizeLResult { selected, importance }
    }

    /// Number of selected nodes.
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// True when nothing was selected (l = 0 or empty OS).
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// Number of common nodes with another result.
    pub fn overlap(&self, other: &SizeLResult) -> usize {
        // Both selections are sorted: linear merge.
        let (mut i, mut j, mut common) = (0, 0, 0);
        while i < self.selected.len() && j < other.selected.len() {
            match self.selected[i].cmp(&other.selected[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        common
    }
}

/// A size-l OS algorithm. All implementations guarantee the returned
/// selection is valid per Definition 1 and has exactly `min(l, |OS|)`
/// nodes.
pub trait SizeLAlgorithm {
    /// Algorithm name for experiment tables.
    fn name(&self) -> &'static str;

    /// Computes a size-l OS over the (complete or prelim) input OS.
    fn compute(&self, os: &Os, l: usize) -> SizeLResult;

    /// [`SizeLAlgorithm::compute`] drawing its working sets from a
    /// reusable [`AlgoScratch`] — byte-identical output (same float
    /// operation order), no per-call scratch allocations. The default
    /// falls back to `compute` for the reference/test algorithms whose
    /// cost is dominated elsewhere (brute force, the paper's naive DP).
    fn compute_pooled(&self, os: &Os, l: usize, scratch: &mut AlgoScratch) -> SizeLResult {
        let _ = scratch;
        self.compute(os, l)
    }
}

/// Algorithm selector used by the engine and the benchmark harness.
/// `Hash` because the serving layer's cache key includes the algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// Optimal via knapsack-merge tree DP (`O(n·l²)`).
    Optimal,
    /// The paper's Algorithm 1 as written (exponential child-combination
    /// enumeration).
    OptimalNaive,
    /// Algorithm 2.
    BottomUp,
    /// Algorithm 3.
    TopPath,
    /// Algorithm 3 with the §5.2 `s(v)` precomputation.
    TopPathOpt,
}

impl AlgoKind {
    /// Instantiates the algorithm.
    pub fn algorithm(self) -> Box<dyn SizeLAlgorithm> {
        match self {
            AlgoKind::Optimal => Box::new(DpKnapsack),
            AlgoKind::OptimalNaive => Box::new(DpNaive::default()),
            AlgoKind::BottomUp => Box::new(BottomUp),
            AlgoKind::TopPath => Box::new(TopPath),
            AlgoKind::TopPathOpt => Box::new(TopPathOpt),
        }
    }

    /// Statically-dispatched scratch-reusing computation — the serving
    /// path's entry point: no `Box` per call, no per-call scratch (see
    /// [`AlgoScratch`]).
    pub fn compute_pooled(self, os: &Os, l: usize, scratch: &mut AlgoScratch) -> SizeLResult {
        match self {
            AlgoKind::Optimal => DpKnapsack.compute_pooled(os, l, scratch),
            AlgoKind::OptimalNaive => DpNaive::default().compute_pooled(os, l, scratch),
            AlgoKind::BottomUp => BottomUp.compute_pooled(os, l, scratch),
            AlgoKind::TopPath => TopPath.compute_pooled(os, l, scratch),
            AlgoKind::TopPathOpt => TopPathOpt.compute_pooled(os, l, scratch),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Optimal => "Optimal(DP)",
            AlgoKind::OptimalNaive => "Optimal(DP-naive)",
            AlgoKind::BottomUp => "Bottom-Up",
            AlgoKind::TopPath => "Top-Path",
            AlgoKind::TopPathOpt => "Top-Path(s(v))",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::figure4_tree;

    #[test]
    fn result_from_selection_sorts_and_dedups() {
        let os = figure4_tree();
        let r = SizeLResult::from_selection(
            &os,
            vec![OsNodeId(4), OsNodeId(0), OsNodeId(4), OsNodeId(3)],
        );
        assert_eq!(r.selected, vec![OsNodeId(0), OsNodeId(3), OsNodeId(4)]);
        assert!((r.importance - 141.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_counts_common_nodes() {
        let os = figure4_tree();
        let a = SizeLResult::from_selection(&os, vec![OsNodeId(0), OsNodeId(3), OsNodeId(4)]);
        let b = SizeLResult::from_selection(&os, vec![OsNodeId(0), OsNodeId(4), OsNodeId(5)]);
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(a.overlap(&a), 3);
    }

    #[test]
    fn algo_kind_roundtrip() {
        for kind in [
            AlgoKind::Optimal,
            AlgoKind::OptimalNaive,
            AlgoKind::BottomUp,
            AlgoKind::TopPath,
            AlgoKind::TopPathOpt,
        ] {
            let a = kind.algorithm();
            assert!(!a.name().is_empty());
            assert!(!kind.name().is_empty());
        }
    }
}
