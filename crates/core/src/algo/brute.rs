//! Exhaustive enumeration of all candidate size-l OSs.
//!
//! The paper's "brute force approach, that considers all candidate size-l
//! OSs before finding the one with the maximum importance, requires
//! exponential time" — we implement it as the test oracle that certifies
//! the DP algorithms optimal on small inputs.
//!
//! Enumeration uses the classic connected-subtree scheme: grow the
//! selection one frontier node at a time, only ever adding extension
//! candidates that appear *after* the last chosen candidate in the
//! extension list. Every connected, root-containing subset of size `l` is
//! produced exactly once.

use crate::algo::{SizeLAlgorithm, SizeLResult};
use crate::os::{Os, OsNodeId};

/// Exhaustive optimal size-l search (exponential; test-scale only).
#[derive(Clone, Copy, Debug, Default)]
pub struct BruteForce;

impl BruteForce {
    /// Enumerates all candidate size-l OSs, returning the best and the
    /// number of candidates visited. Panics if more than `budget`
    /// candidates exist (guards accidental use on large inputs).
    pub fn compute_counted(&self, os: &Os, l: usize, budget: u64) -> (SizeLResult, u64) {
        if os.is_empty() || l == 0 {
            return (SizeLResult { selected: Vec::new(), importance: 0.0 }, 0);
        }
        let l = l.min(os.len());
        let mut best: Option<(f64, Vec<OsNodeId>)> = None;
        let mut count = 0u64;
        let root = os.root();
        let mut selection = vec![root];
        let extensions: Vec<OsNodeId> = os.children(root).to_vec();
        recurse(
            os,
            l,
            &extensions,
            0,
            &mut selection,
            os.node(root).weight,
            &mut best,
            &mut count,
            budget,
        );
        let (importance, mut selected) = best.expect("at least the root-only prefix exists");
        selected.sort_unstable();
        (SizeLResult { selected, importance }, count)
    }
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    os: &Os,
    l: usize,
    extensions: &[OsNodeId],
    start: usize,
    selection: &mut Vec<OsNodeId>,
    weight: f64,
    best: &mut Option<(f64, Vec<OsNodeId>)>,
    count: &mut u64,
    budget: u64,
) {
    if selection.len() == l {
        *count += 1;
        assert!(*count <= budget, "brute-force budget exceeded ({budget} candidates)");
        if best.as_ref().is_none_or(|(w, _)| weight > *w) {
            *best = Some((weight, selection.clone()));
        }
        return;
    }
    for i in start..extensions.len() {
        let v = extensions[i];
        selection.push(v);
        // New extensions: everything after i, plus v's children.
        let mut next: Vec<OsNodeId> = extensions[i + 1..].to_vec();
        next.extend_from_slice(os.children(v));
        recurse(os, l, &next, 0, selection, weight + os.node(v).weight, best, count, budget);
        selection.pop();
    }
}

impl SizeLAlgorithm for BruteForce {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn compute(&self, os: &Os, l: usize) -> SizeLResult {
        self.compute_counted(os, l, u64::MAX).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::{figure4_tree, figure56_tree};

    #[test]
    fn figure4_optimal_size4_matches_paper() {
        let os = figure4_tree();
        let r = BruteForce.compute(&os, 4);
        // Paper: S1,4 = {1, 4, 5, 6} with weight 176.
        assert_eq!(r.selected, vec![OsNodeId(0), OsNodeId(3), OsNodeId(4), OsNodeId(5)]);
        assert!((r.importance - 176.0).abs() < 1e-12);
    }

    #[test]
    fn figure5_optimal_size5_matches_paper() {
        let os = figure56_tree(55.0);
        let r = BruteForce.compute(&os, 5);
        // Paper §5.1: "the optimal size-5 OS should include nodes 1, 5, 6,
        // 12 and 14" = ids {0, 4, 5, 11, 13}, weight 240.
        assert_eq!(
            r.selected,
            vec![OsNodeId(0), OsNodeId(4), OsNodeId(5), OsNodeId(11), OsNodeId(13)]
        );
        assert!((r.importance - 240.0).abs() < 1e-12);
    }

    #[test]
    fn l_larger_than_tree_selects_everything() {
        let os = figure4_tree();
        let r = BruteForce.compute(&os, 100);
        assert_eq!(r.len(), os.len());
        assert!((r.importance - os.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn l_one_selects_root_only() {
        let os = figure4_tree();
        let r = BruteForce.compute(&os, 1);
        assert_eq!(r.selected, vec![OsNodeId(0)]);
        assert!((r.importance - 30.0).abs() < 1e-12);
    }

    #[test]
    fn l_zero_selects_nothing() {
        let os = figure4_tree();
        let r = BruteForce.compute(&os, 0);
        assert!(r.is_empty());
    }

    #[test]
    fn every_candidate_is_counted_once() {
        // A path of 4 nodes has exactly one candidate per l.
        let os = Os::synthetic(&[None, Some(0), Some(1), Some(2)], &[1.0, 1.0, 1.0, 1.0]);
        for l in 1..=4 {
            let (_, count) = BruteForce.compute_counted(&os, l, 1000);
            assert_eq!(count, 1, "path tree has a single connected subtree per size");
        }
        // A star with 3 leaves: C(3, l-1) candidates.
        let os = Os::synthetic(&[None, Some(0), Some(0), Some(0)], &[1.0, 1.0, 1.0, 1.0]);
        let expect = [1, 3, 3, 1];
        for l in 1..=4 {
            let (_, count) = BruteForce.compute_counted(&os, l, 1000);
            assert_eq!(count, expect[l - 1], "star candidates for l={l}");
        }
    }

    #[test]
    fn selections_are_valid() {
        let os = figure56_tree(12.0);
        for l in 1..=os.len() {
            let r = BruteForce.compute(&os, l);
            assert_eq!(r.len(), l);
            assert!(os.is_valid_selection(&r.selected), "l={l}");
        }
    }
}
