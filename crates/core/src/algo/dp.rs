//! Optimal size-l OS via knapsack-merge tree DP.
//!
//! This computes the same optimum as the paper's Algorithm 1 but merges
//! children *incrementally* (a classic tree-knapsack), which brings the
//! cost down from the paper's exponential combination enumeration to
//! `O(n · l²)` — the ablation benchmark (`ablations` bench, EXPERIMENTS.md)
//! quantifies the difference against [`crate::algo::DpNaive`].
//!
//! For every node `v` (processed children-first) we compute
//! `dp[v][k]` = maximum weight of a connected subtree rooted at `v` with
//! exactly `k` nodes, for `k ≤ cap(v) = min(l - depth(v), |subtree(v)|)` —
//! the same `S_{v,i}` tables as the paper, including the depth bound of
//! Section 4 ("the subtree rooted at v can contribute at most l - d(v)
//! nodes").

use crate::algo::{AlgoScratch, SizeLAlgorithm, SizeLResult};
use crate::os::{Os, OsNodeId};

/// Optimal size-l OS algorithm (knapsack-merge DP).
#[derive(Clone, Copy, Debug, Default)]
pub struct DpKnapsack;

const NEG: f64 = f64::NEG_INFINITY;

impl SizeLAlgorithm for DpKnapsack {
    fn name(&self) -> &'static str {
        "Optimal(DP)"
    }

    fn compute(&self, os: &Os, l: usize) -> SizeLResult {
        self.compute_pooled(os, l, &mut AlgoScratch::new())
    }

    fn compute_pooled(&self, os: &Os, l: usize, scratch: &mut AlgoScratch) -> SizeLResult {
        if os.is_empty() || l == 0 {
            return SizeLResult { selected: Vec::new(), importance: 0.0 };
        }
        let n = os.len();
        let l = l.min(n);
        let AlgoScratch { counts: subtree, caps: cap, f64a, f64b, dp_flat, dp_off, .. } = scratch;

        // Subtree sizes, children-first (reverse BFS index order).
        subtree.clear();
        subtree.resize(n, 1);
        for i in (1..n).rev() {
            let p = os.node(OsNodeId(i as u32)).parent.expect("non-root").index();
            subtree[p] += subtree[i];
        }

        // cap[v] = min(l - depth(v), subtree(v)); nodes at depth >= l cannot
        // participate at all.
        cap.clear();
        cap.extend((0..n).map(|i| {
            let d = os.node(OsNodeId(i as u32)).depth as usize;
            if d >= l {
                0
            } else {
                (l - d).min(subtree[i])
            }
        }));

        // The DP tables live in one flat arena: node i's table occupies
        // dp_flat[dp_off[i]..dp_off[i + 1]] (empty for cap 0) — no
        // per-node Vec (the scratch-reuse analogue of the Os CSR layout).
        dp_off.clear();
        dp_off.reserve(n + 1);
        let mut acc = 0usize;
        for &c in cap.iter() {
            dp_off.push(acc);
            if c > 0 {
                acc += c + 1;
            }
        }
        dp_off.push(acc);
        dp_flat.clear();
        dp_flat.resize(acc, NEG);

        // dp tables, children-first: each node's row is merged in the
        // f64a/f64b ping-pong buffers, then copied into its arena slot.
        for i in (0..n).rev() {
            let cap_v = cap[i];
            if cap_v == 0 {
                continue;
            }
            let v = OsNodeId(i as u32);
            f64a.clear();
            f64a.resize(cap_v + 1, NEG);
            f64a[1] = os.node(v).weight;
            for &c in os.children(v) {
                let ci = c.index();
                if cap[ci] == 0 {
                    continue;
                }
                merge_into(f64a, &dp_flat[dp_off[ci]..dp_off[ci + 1]], cap_v, f64b);
                std::mem::swap(f64a, f64b);
            }
            f64a[0] = 0.0;
            dp_flat[dp_off[i]..dp_off[i] + cap_v + 1].copy_from_slice(f64a);
        }

        let k = l.min(cap[0]);
        let mut selected = Vec::with_capacity(k);
        reconstruct(os, os.root(), k, cap, dp_flat, dp_off, &mut selected);
        debug_assert_eq!(selected.len(), k);
        SizeLResult::from_selection(os, selected)
    }
}

/// Knapsack merge of a partial table with one child's table into `out`.
pub(crate) fn merge_into(f: &[f64], child: &[f64], cap_v: usize, out: &mut Vec<f64>) {
    out.clear();
    out.resize(cap_v + 1, NEG);
    for (k, &fk) in f.iter().enumerate() {
        if fk == NEG {
            continue;
        }
        let j_max = (cap_v - k).min(child.len() - 1);
        for (j, &cj) in child.iter().enumerate().take(j_max + 1) {
            if cj == NEG {
                continue;
            }
            let cand = fk + cj;
            if cand > out[k + j] {
                out[k + j] = cand;
            }
        }
    }
}

/// Allocating form of [`merge_into`]. Also used by
/// [`crate::algo::dp_naive`] to reconstruct selections from its
/// (exponentially computed) tables without re-enumerating.
pub(crate) fn merge(f: &[f64], child: &[f64], cap_v: usize) -> Vec<f64> {
    let mut out = Vec::new();
    merge_into(f, child, cap_v, &mut out);
    out
}

/// Walks the DP back: selects `k` nodes from the subtree rooted at `v` by
/// re-running the merges of `v` (only on the O(l) selected nodes) and
/// splitting `k` across children. The small per-level stage tables are
/// plain allocations — bounded by the O(l) selection, not by |OS|.
fn reconstruct(
    os: &Os,
    v: OsNodeId,
    k: usize,
    cap: &[usize],
    dp_flat: &[f64],
    dp_off: &[usize],
    out: &mut Vec<OsNodeId>,
) {
    if k == 0 {
        return;
    }
    out.push(v);
    if k == 1 {
        return;
    }
    let dp_of = |i: usize| &dp_flat[dp_off[i]..dp_off[i + 1]];
    // Rebuild the stage tables of v's merge, deterministically identical to
    // the forward pass (same code path, same float operation order).
    let cap_v = cap[v.index()];
    let children: Vec<OsNodeId> =
        os.children(v).iter().copied().filter(|c| cap[c.index()] > 0).collect();
    let mut stages: Vec<Vec<f64>> = Vec::with_capacity(children.len() + 1);
    let mut f = vec![NEG; cap_v + 1];
    f[1] = os.node(v).weight;
    stages.push(f.clone());
    for &c in &children {
        f = merge(&f, dp_of(c.index()), cap_v);
        stages.push(f.clone());
    }
    // Split k across children, last stage first.
    let mut need = k;
    for i in (0..children.len()).rev() {
        let c = children[i];
        let child_dp = dp_of(c.index());
        let prev = &stages[i];
        let cur_val = stages[i + 1][need];
        let mut found = None;
        for j in 0..=need.min(child_dp.len() - 1) {
            if need - j >= prev.len() {
                continue;
            }
            let (a, b) = (prev[need - j], child_dp[j]);
            if a == NEG || b == NEG {
                continue;
            }
            if a + b == cur_val {
                found = Some(j);
                break;
            }
        }
        let j = found.expect("DP reconstruction must find an exact split");
        reconstruct(os, c, j, cap, dp_flat, dp_off, out);
        need -= j;
    }
    debug_assert_eq!(need, 1, "after children, exactly v itself remains");
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::algo::brute::BruteForce;
    use crate::os::{figure4_tree, figure56_tree};
    use sizel_util::prng::Prng;

    #[test]
    fn figure4_size4_matches_paper() {
        let os = figure4_tree();
        let r = DpKnapsack.compute(&os, 4);
        assert_eq!(r.selected, vec![OsNodeId(0), OsNodeId(3), OsNodeId(4), OsNodeId(5)]);
        assert!((r.importance - 176.0).abs() < 1e-12);
    }

    #[test]
    fn figure56_optima() {
        // Figure 5 variant (w12 = 55): optimal size-5 = {1,5,6,12,14} = 240.
        let os = figure56_tree(55.0);
        let r = DpKnapsack.compute(&os, 5);
        assert!((r.importance - 240.0).abs() < 1e-12);
        // Figure 6 variant (w12 = 12): optimal size-3 = {1,5,6} = 145.
        let os = figure56_tree(12.0);
        let r = DpKnapsack.compute(&os, 3);
        assert_eq!(r.selected, vec![OsNodeId(0), OsNodeId(4), OsNodeId(5)]);
        assert!((r.importance - 145.0).abs() < 1e-12);
    }

    #[test]
    fn edge_cases() {
        let os = figure4_tree();
        assert!(DpKnapsack.compute(&os, 0).is_empty());
        let r1 = DpKnapsack.compute(&os, 1);
        assert_eq!(r1.selected, vec![OsNodeId(0)]);
        let rn = DpKnapsack.compute(&os, os.len());
        assert_eq!(rn.len(), os.len());
        let rbig = DpKnapsack.compute(&os, 10 * os.len());
        assert_eq!(rbig.len(), os.len());
    }

    /// Generates a random tree of `n` nodes with random weights.
    pub(crate) fn random_tree(rng: &mut Prng, n: usize) -> crate::os::Os {
        let mut parents = vec![None];
        let mut weights = vec![rng.f64_range(0.0, 100.0)];
        for i in 1..n {
            parents.push(Some(rng.range(0, i)));
            weights.push(rng.f64_range(0.0, 100.0));
        }
        crate::os::Os::synthetic(&parents, &weights)
    }

    #[test]
    fn matches_brute_force_on_random_trees() {
        let mut rng = Prng::new(0xD9);
        for case in 0..60 {
            let n = rng.range(1, 15);
            let os = random_tree(&mut rng, n);
            for l in 1..=n {
                let b = BruteForce.compute(&os, l);
                let d = DpKnapsack.compute(&os, l);
                assert!(
                    (b.importance - d.importance).abs() < 1e-9,
                    "case {case} n={n} l={l}: brute {} vs dp {}",
                    b.importance,
                    d.importance
                );
                assert!(os.is_valid_selection(&d.selected));
                assert_eq!(d.len(), l);
            }
        }
    }

    #[test]
    fn deep_path_beats_heavy_far_leaf() {
        // Root - light chain - huge leaf vs heavy near leaf: DP must weigh
        // the connection cost of the chain.
        //       0 (10)
        //      /      \
        //   1 (1)    3 (50)
        //     |
        //   2 (100)
        let os =
            crate::os::Os::synthetic(&[None, Some(0), Some(1), Some(0)], &[10.0, 1.0, 100.0, 50.0]);
        // l=3: {0,1,2} = 111 beats {0,3,1} = 61 and {0,3,...}.
        let r = DpKnapsack.compute(&os, 3);
        assert_eq!(r.selected, vec![OsNodeId(0), OsNodeId(1), OsNodeId(2)]);
        // l=2: {0,3} = 60 beats {0,1} = 11.
        let r = DpKnapsack.compute(&os, 2);
        assert_eq!(r.selected, vec![OsNodeId(0), OsNodeId(3)]);
    }
}
