//! The paper's Algorithm 1, as written.
//!
//! "For each candidate node v ... we examine all possible combinations of
//! v's children and number of nodes to be selected from their subtrees,
//! such that the total number of selected nodes is i − 1. ... This cost of
//! choosing the best combination increases exponentially with i."
//!
//! We enumerate child compositions *without* the incremental merging that
//! makes [`crate::algo::DpKnapsack`] polynomial, so this implementation has
//! the paper's exponential behaviour — it produces Figure 10's DP blow-up
//! and is capped by a step budget for the benchmarks. The computed `S_{v,i}`
//! tables are identical to the knapsack DP (verified by tests), only the
//! cost differs.

use crate::algo::{SizeLAlgorithm, SizeLResult};
use crate::os::{Os, OsNodeId};

const NEG: f64 = f64::NEG_INFINITY;

/// Faithful Algorithm 1 with a step budget.
#[derive(Clone, Copy, Debug)]
pub struct DpNaive {
    /// Maximum number of enumeration steps before giving up (the harness
    /// uses this to report the paper's "> 30 min" cells).
    pub budget: u64,
}

impl Default for DpNaive {
    fn default() -> Self {
        // Effectively unlimited for the trait path; benches set real caps.
        DpNaive { budget: u64::MAX }
    }
}

/// Outcome of a budgeted run.
#[derive(Clone, Debug)]
pub enum NaiveOutcome {
    /// Finished within budget; includes steps spent.
    Done(SizeLResult, u64),
    /// Budget exhausted.
    BudgetExceeded,
}

struct Ctx<'a> {
    os: &'a Os,
    cap: Vec<usize>,
    tables: Vec<Vec<f64>>, // S_{v,i}; index 0 unused (0.0)
    steps: u64,
    budget: u64,
}

impl DpNaive {
    /// Runs Algorithm 1; returns the optimum or reports budget exhaustion.
    pub fn try_compute(&self, os: &Os, l: usize) -> NaiveOutcome {
        if os.is_empty() || l == 0 {
            return NaiveOutcome::Done(SizeLResult { selected: Vec::new(), importance: 0.0 }, 0);
        }
        let n = os.len();
        let l = l.min(n);

        let mut subtree = vec![1usize; n];
        for i in (1..n).rev() {
            subtree[os.node(OsNodeId(i as u32)).parent.expect("non-root").index()] += subtree[i];
        }
        let cap: Vec<usize> = (0..n)
            .map(|i| {
                let d = os.node(OsNodeId(i as u32)).depth as usize;
                if d >= l {
                    0
                } else {
                    (l - d).min(subtree[i])
                }
            })
            .collect();

        let mut ctx = Ctx { os, cap, tables: vec![Vec::new(); n], steps: 0, budget: self.budget };

        // Bottom-up over depths, exactly as Algorithm 1 lines 2-6.
        for i in (0..n).rev() {
            if ctx.cap[i] == 0 {
                continue;
            }
            let v = OsNodeId(i as u32);
            // At the root we only need S_{r,l} (paper: "there is no need to
            // compute S_{r,i} for i in [1, l-1]").
            let lo = if i == 0 { ctx.cap[0] } else { 1 };
            let hi = ctx.cap[i];
            let mut table = vec![NEG; hi + 1];
            table[0] = 0.0;
            // One eligible-children collection per node, not per (node, k)
            // — the cap vector is fixed for the whole loop, and the
            // measured blow-up lives in `best_combination`'s steps.
            let children: Vec<OsNodeId> = eligible_children(ctx.os, v, &ctx.cap);
            #[allow(clippy::needless_range_loop)] // mirrors Algorithm 1 lines 5-6
            for k in lo..=hi {
                match best_combination(&mut ctx, &children, 0, k - 1) {
                    Some(best) => table[k] = ctx.os.node(v).weight + best,
                    None => return NaiveOutcome::BudgetExceeded,
                }
            }
            ctx.tables[i] = table;
        }

        let k = l.min(ctx.cap[0]);
        let mut selected = Vec::with_capacity(k);
        if !reconstruct(&mut ctx, os.root(), k, &mut selected) {
            return NaiveOutcome::BudgetExceeded;
        }
        let steps = ctx.steps;
        NaiveOutcome::Done(SizeLResult::from_selection(os, selected), steps)
    }
}

fn eligible_children(os: &Os, v: OsNodeId, cap: &[usize]) -> Vec<OsNodeId> {
    os.children(v).iter().copied().filter(|c| cap[c.index()] > 0).collect()
}

/// Exhaustively enumerates compositions of `remaining` over `children[idx..]`
/// (the paper's "all possible combinations"), returning the best total
/// weight, or `None` when the budget runs out. No memoization across `idx` —
/// that is the point.
fn best_combination(
    ctx: &mut Ctx<'_>,
    children: &[OsNodeId],
    idx: usize,
    remaining: usize,
) -> Option<f64> {
    ctx.steps += 1;
    if ctx.steps > ctx.budget {
        return None;
    }
    if idx == children.len() {
        return Some(if remaining == 0 { 0.0 } else { NEG });
    }
    let c = children[idx].index();
    let c_cap = ctx.cap[c].min(remaining);
    let mut best = NEG;
    for j in 0..=c_cap {
        let mine = if j == 0 { 0.0 } else { ctx.tables[c][j] };
        if mine == NEG {
            continue;
        }
        let rest = best_combination(ctx, children, idx + 1, remaining - j)?;
        if rest != NEG && mine + rest > best {
            best = mine + rest;
        }
    }
    Some(best)
}

/// Recovers the winning node set from the `S_{v,i}` tables. Algorithm 1
/// only describes table construction (where the exponential enumeration
/// faithfully lives, in [`best_combination`]); reconstruction over the
/// finished tables is done with cheap stage merges so it does not distort
/// the measured blow-up.
fn reconstruct(ctx: &mut Ctx<'_>, v: OsNodeId, k: usize, out: &mut Vec<OsNodeId>) -> bool {
    if k == 0 {
        return true;
    }
    out.push(v);
    if k == 1 {
        return true;
    }
    let children = eligible_children(ctx.os, v, &ctx.cap);
    // Stage tables: best weight of selecting from children[..i] only.
    // cap for the children pool at v is k-1.
    let cap = k - 1;
    let mut stages: Vec<Vec<f64>> = Vec::with_capacity(children.len() + 1);
    let mut f = vec![NEG; cap + 1];
    f[0] = 0.0;
    stages.push(f.clone());
    for &c in &children {
        f = crate::algo::dp::merge(&f, &ctx.tables[c.index()], cap);
        stages.push(f.clone());
    }
    let mut need = cap;
    for i in (0..children.len()).rev() {
        if need == 0 {
            break;
        }
        let c = children[i];
        let child_table = &ctx.tables[c.index()];
        let prev = &stages[i];
        let cur = stages[i + 1][need];
        let mut found = None;
        for j in 0..=need.min(child_table.len() - 1) {
            let (a, b) = (prev[need - j], child_table[j]);
            if a == NEG || b == NEG {
                continue;
            }
            if a + b == cur {
                found = Some(j);
                break;
            }
        }
        let j = found.expect("naive tables admit an exact split");
        if j > 0 && !reconstruct(ctx, c, j, out) {
            return false;
        }
        need -= j;
    }
    debug_assert_eq!(need, 0);
    true
}

impl SizeLAlgorithm for DpNaive {
    fn name(&self) -> &'static str {
        "Optimal(DP-naive)"
    }

    fn compute(&self, os: &Os, l: usize) -> SizeLResult {
        match self.try_compute(os, l) {
            NaiveOutcome::Done(r, _) => r,
            NaiveOutcome::BudgetExceeded => {
                panic!("DpNaive budget exceeded; use try_compute for budgeted runs")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dp::DpKnapsack;
    use crate::os::{figure4_tree, figure56_tree};
    use sizel_util::prng::Prng;

    #[test]
    fn figure4_size4_matches_paper() {
        let os = figure4_tree();
        let r = DpNaive::default().compute(&os, 4);
        assert_eq!(r.selected, vec![OsNodeId(0), OsNodeId(3), OsNodeId(4), OsNodeId(5)]);
        assert!((r.importance - 176.0).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_knapsack_dp_on_random_trees() {
        let mut rng = Prng::new(0xAB);
        for _ in 0..40 {
            let n = rng.range(1, 14);
            let os = crate::algo::dp::tests::random_tree(&mut rng, n);
            for l in 1..=n {
                let a = DpNaive::default().compute(&os, l);
                let b = DpKnapsack.compute(&os, l);
                assert!(
                    (a.importance - b.importance).abs() < 1e-9,
                    "n={n} l={l}: naive {} vs knapsack {}",
                    a.importance,
                    b.importance
                );
                assert!(os.is_valid_selection(&a.selected));
                assert_eq!(a.len(), l);
            }
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let os = figure56_tree(12.0);
        let tight = DpNaive { budget: 3 };
        assert!(matches!(tight.try_compute(&os, 6), NaiveOutcome::BudgetExceeded));
    }

    #[test]
    fn step_count_grows_superlinearly_with_l() {
        // A two-level tree with many children per node: the composition
        // enumeration cost must grow much faster than l.
        let mut parents = vec![None];
        let mut weights = vec![1.0];
        for i in 0..8 {
            parents.push(Some(0));
            weights.push((i + 2) as f64);
            for _ in 0..4 {
                parents.push(Some(1 + i * 5));
                weights.push(1.0);
            }
        }
        let os = crate::os::Os::synthetic(&parents, &weights);
        let steps_at = |l: usize| match DpNaive::default().try_compute(&os, l) {
            NaiveOutcome::Done(_, s) => s,
            NaiveOutcome::BudgetExceeded => unreachable!(),
        };
        let s4 = steps_at(4);
        let s12 = steps_at(12);
        assert!(s12 > 20 * s4, "naive DP should blow up with l: steps(4)={s4}, steps(12)={s12}");
    }
}
