//! Algorithm 2: Bottom-Up Pruning.
//!
//! Iteratively prunes the leaf with the smallest local importance until
//! only `l` nodes remain; a priority queue orders current leaves. `O(n log
//! n)`; optimal when local importance decreases monotonically with depth
//! (Lemma 2, verified by a property test).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sizel_util::F64Ord;

use crate::algo::{AlgoScratch, SizeLAlgorithm, SizeLResult};
use crate::os::{Os, OsNodeId};

/// Algorithm 2.
#[derive(Clone, Copy, Debug, Default)]
pub struct BottomUp;

impl SizeLAlgorithm for BottomUp {
    fn name(&self) -> &'static str {
        "Bottom-Up"
    }

    fn compute(&self, os: &Os, l: usize) -> SizeLResult {
        self.compute_pooled(os, l, &mut AlgoScratch::new())
    }

    fn compute_pooled(&self, os: &Os, l: usize, scratch: &mut AlgoScratch) -> SizeLResult {
        if os.is_empty() || l == 0 {
            return SizeLResult { selected: Vec::new(), importance: 0.0 };
        }
        let n = os.len();
        if l >= n {
            let all: Vec<OsNodeId> = os.iter().map(|(id, _)| id).collect();
            return SizeLResult::from_selection(os, all);
        }

        let AlgoScratch { alive, counts: remaining_children, heap, .. } = scratch;
        alive.clear();
        alive.resize(n, true);
        remaining_children.clear();
        remaining_children.extend(os.iter().map(|(id, _)| os.child_count(id)));

        // Min-heap of current leaves over the recycled backing storage
        // (cleared *before* heapification — `from` on a non-empty vec
        // would sift the previous call's garbage); ties broken by node id
        // for determinism (node ids are unique, so the pop order is
        // independent of how the heap was built). The root is never
        // enqueued (it must survive).
        let mut buf = std::mem::take(heap);
        buf.clear();
        let mut pq: BinaryHeap<Reverse<(F64Ord, OsNodeId)>> = BinaryHeap::from(buf);
        for (id, node) in os.iter() {
            if os.child_count(id) == 0 && id.0 != 0 {
                pq.push(Reverse((F64Ord(node.weight), id)));
            }
        }

        let mut size = n;
        while size > l {
            let Reverse((_, id)) =
                pq.pop().expect("a tree with > l >= 1 nodes has a non-root leaf");
            debug_assert!(alive[id.index()], "leaves enter the queue exactly once");
            alive[id.index()] = false;
            size -= 1;
            let parent = os.node(id).parent.expect("root is never pruned");
            let p = parent.index();
            remaining_children[p] -= 1;
            if remaining_children[p] == 0 && parent.0 != 0 {
                pq.push(Reverse((F64Ord(os.node(parent).weight), parent)));
            }
        }

        let selected: Vec<OsNodeId> =
            (0..n).filter(|&i| alive[i]).map(|i| OsNodeId(i as u32)).collect();
        *heap = pq.into_vec();
        SizeLResult::from_selection(os, selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dp::DpKnapsack;
    use crate::os::{figure56_tree, Os};
    use sizel_util::prng::Prng;

    #[test]
    fn figure5_walkthrough_size10_and_size5() {
        // Figure 5 uses the w12 = 55 variant.
        let os = figure56_tree(55.0);
        // Size-10 (Figure 5(c)): paper nodes {1,2,4,5,6,8,11,12,13,14}
        // = ids {0,1,3,4,5,7,10,11,12,13}.
        let r10 = BottomUp.compute(&os, 10);
        let expect10: Vec<OsNodeId> =
            [0u32, 1, 3, 4, 5, 7, 10, 11, 12, 13].iter().map(|&i| OsNodeId(i)).collect();
        assert_eq!(r10.selected, expect10);
        // Size-5 (Figure 5(d)): paper nodes {1,5,6,11,13} = ids {0,4,5,10,12}.
        let r5 = BottomUp.compute(&os, 5);
        let expect5: Vec<OsNodeId> = [0u32, 4, 5, 10, 12].iter().map(|&i| OsNodeId(i)).collect();
        assert_eq!(r5.selected, expect5);
        assert!((r5.importance - 235.0).abs() < 1e-12);
        // The paper notes this is suboptimal: the optimum is 240.
        let opt = DpKnapsack.compute(&os, 5);
        assert!((opt.importance - 240.0).abs() < 1e-12);
        assert!(r5.importance < opt.importance);
    }

    #[test]
    fn always_valid_and_exact_size() {
        let mut rng = Prng::new(0xB0);
        for _ in 0..40 {
            let n = rng.range(1, 60);
            let os = crate::algo::dp::tests::random_tree(&mut rng, n);
            for l in [0, 1, 2, n / 2, n.saturating_sub(1), n, n + 5] {
                let r = BottomUp.compute(&os, l);
                assert_eq!(r.len(), l.min(n));
                assert!(os.is_valid_selection(&r.selected));
                // Never better than the optimum.
                let opt = DpKnapsack.compute(&os, l);
                assert!(r.importance <= opt.importance + 1e-9);
            }
        }
    }

    #[test]
    fn lemma2_optimal_under_monotone_weights() {
        // Weights decrease with depth => Bottom-Up returns the optimum.
        let mut rng = Prng::new(0x1E);
        for _ in 0..30 {
            let n = rng.range(2, 40);
            let mut parents = vec![None];
            for i in 1..n {
                parents.push(Some(rng.range(0, i)));
            }
            // Assign weights strictly decreasing with depth.
            let mut os_probe = Os::synthetic(&parents, &vec![1.0; n]);
            let weights: Vec<f64> = (0..n)
                .map(|i| {
                    let d = os_probe.node(OsNodeId(i as u32)).depth as f64;
                    100.0 / (1.0 + d) + rng.f64() // jitter within a depth band
                })
                .collect();
            // Enforce parent >= child explicitly (jitter could break bands
            // at equal depth only, which is fine for the lemma).
            let mut weights = weights;
            for i in 1..n {
                let p = os_probe.node(OsNodeId(i as u32)).parent.unwrap().index();
                if weights[i] > weights[p] {
                    weights[i] = weights[p];
                }
            }
            os_probe = Os::synthetic(&parents, &weights);
            for l in 1..=n {
                let bu = BottomUp.compute(&os_probe, l);
                let opt = DpKnapsack.compute(&os_probe, l);
                assert!(
                    (bu.importance - opt.importance).abs() < 1e-9,
                    "Lemma 2 violated: n={n} l={l} bu={} opt={}",
                    bu.importance,
                    opt.importance
                );
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let os = Os::synthetic(&[None], &[7.0]);
        let r = BottomUp.compute(&os, 1);
        assert_eq!(r.selected, vec![OsNodeId(0)]);
        assert!((r.importance - 7.0).abs() < 1e-12);
    }
}
